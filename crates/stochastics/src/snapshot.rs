//! Persistent columnar snapshots: the binary container format behind
//! `audit_game::persist` and the runtime's checkpoint/restore.
//!
//! The offline serde shim has no data format (see `vendor/README.md`), so
//! — like the umbrella crate's hand-rolled JSON layer — persistence is
//! written by hand. The container is deliberately mmap-shaped:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "AAUDSNAP"
//! 8       4     format version (little-endian u32)
//! 12      4     payload kind   (little-endian u32, caller-defined)
//! 16      8     payload length in bytes (little-endian u64)
//! 24      8     4-lane FNV-1a checksum of the payload u64 words (LE)
//! 32      …     payload: a sequence of sections
//! ```
//!
//! Each section is `[tag u64][body length u64][body…]` with the body
//! padded to an 8-byte boundary, and every scalar inside a body is
//! written as a full little-endian 8-byte word. Section headers are 16
//! bytes and the container header is 32, so **every section body starts
//! 8-byte aligned** — a future memory-mapped reader can borrow `u64`
//! column data zero-copy instead of parsing it. Readers are fully
//! validated: a truncated file, a flipped payload byte, a foreign magic,
//! or a future format version all fail with a typed [`SnapshotError`]
//! before any value is handed to the caller.
//!
//! On top of the container this module defines the codec for the
//! stochastic substrate itself: [`SampleBank`] columns (`u64` columns
//! plus the optional compact `u32` mirror) and the constructor-parameter
//! enums [`DistParams`] / [`JointParams`] through which count
//! distributions and joint count models round-trip **bit-exactly** —
//! reconstruction re-runs the original constructors on the original
//! parameters (or, where a constructor renormalizes, a trust-the-weights
//! twin), so pmfs, supports, and sampling streams are bit-identical to
//! the saved object.

use crate::bank::SampleBank;
use crate::discrete::{
    Constant, CountDistribution, DiscretizedGaussian, Empirical, Mixture, Poisson, UniformCount,
    Zipf,
};
use std::path::Path;
use std::sync::Arc;

/// Magic bytes opening every snapshot file.
pub const MAGIC: [u8; 8] = *b"AAUDSNAP";

/// Current snapshot format version. Bump when the container layout or any
/// section encoding changes shape; readers reject files from the future
/// (see the format-stability golden in `tests/persist_roundtrip.rs`).
pub const FORMAT_VERSION: u32 = 1;

/// Size of the fixed container header in bytes.
pub const HEADER_LEN: usize = 32;

/// Typed failure of snapshot encoding or decoding. No variant panics and
/// no partially-decoded value escapes: decoding either returns the full
/// object or one of these.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// Filesystem I/O failed (message carries the OS error).
    Io(String),
    /// The file does not start with [`MAGIC`] — not a snapshot at all.
    BadMagic,
    /// The file was written by a newer format than this reader supports.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Newest version this build reads.
        supported: u32,
    },
    /// The payload bytes do not hash to the checksum in the header.
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum computed over the payload actually read.
        computed: u64,
    },
    /// The buffer ends before the structure it promises.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes available.
        available: usize,
    },
    /// The container kind field does not match what the caller expected.
    WrongKind {
        /// Kind the caller asked for.
        expected: u32,
        /// Kind found in the header.
        found: u32,
    },
    /// Structurally invalid content inside a checksummed payload (missing
    /// section, inconsistent shape, out-of-range parameter).
    Malformed(String),
    /// The in-memory object cannot be persisted (e.g. a count distribution
    /// that does not expose snapshot parameters).
    Unsupported(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(msg) => write!(f, "snapshot I/O failed: {msg}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is newer than supported version {supported}"
            ),
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot payload checksum mismatch: header {stored:016x}, computed {computed:016x}"
            ),
            SnapshotError::Truncated { needed, available } => write!(
                f,
                "snapshot truncated: needed {needed} bytes, only {available} available"
            ),
            SnapshotError::WrongKind { expected, found } => write!(
                f,
                "snapshot holds payload kind {found}, expected kind {expected}"
            ),
            SnapshotError::Malformed(msg) => write!(f, "malformed snapshot payload: {msg}"),
            SnapshotError::Unsupported(msg) => write!(f, "cannot snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a over a byte slice — the same construction as
/// `GameSpec::fingerprint`, applied byte-at-a-time.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Four-lane FNV-1a over little-endian `u64` words — the container
/// checksum.
///
/// The payload is 8-byte aligned and padded by construction, so hashing
/// it word-wise is well defined and detects any flipped byte just like
/// the byte-wise fold. Four independent lanes stride the words and are
/// folded (with the total length) into one digest at the end: the lanes
/// break FNV's serial multiply dependency, so the checksum streams at
/// memory speed instead of one multiply-latency per byte — on
/// million-row banks a byte-serial checksum would dominate snapshot load
/// latency, defeating the point of persisting the bank. Trailing bytes
/// of a non-multiple-of-8 input (never produced by the writer) fold in
/// as one zero-padded word.
pub fn fnv1a_words(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut lanes = [OFFSET; 4];
    let mut blocks = bytes.chunks_exact(32);
    for b in &mut blocks {
        for (k, lane) in lanes.iter_mut().enumerate() {
            *lane ^= u64::from_le_bytes(b[k * 8..k * 8 + 8].try_into().expect("8 bytes"));
            *lane = lane.wrapping_mul(PRIME);
        }
    }
    let mut tail = blocks.remainder().chunks_exact(8);
    let mut k = 0;
    for c in &mut tail {
        lanes[k] ^= u64::from_le_bytes(c.try_into().expect("8 bytes"));
        lanes[k] = lanes[k].wrapping_mul(PRIME);
        k += 1;
    }
    let rest = tail.remainder();
    if !rest.is_empty() {
        let mut w = [0u8; 8];
        w[..rest.len()].copy_from_slice(rest);
        lanes[k] ^= u64::from_le_bytes(w);
        lanes[k] = lanes[k].wrapping_mul(PRIME);
    }
    let mut h = OFFSET;
    for lane in lanes {
        h ^= lane;
        h = h.wrapping_mul(PRIME);
    }
    h ^= bytes.len() as u64;
    h.wrapping_mul(PRIME)
}

fn pad8(len: usize) -> usize {
    len.div_ceil(8) * 8
}

// ---------------------------------------------------------------------
// Section body writer/reader
// ---------------------------------------------------------------------

/// Append-only little-endian encoder for one section body. Every scalar
/// occupies a full 8-byte word so offsets inside a body stay 8-aligned
/// without per-field padding.
#[derive(Default)]
pub struct SectionWriter {
    buf: Vec<u8>,
}

impl SectionWriter {
    /// An empty body.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one `u64` word.
    pub fn put_u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Append a `usize` as a `u64` word.
    pub fn put_usize(&mut self, x: usize) {
        self.put_u64(x as u64);
    }

    /// Append an `f64` bit-exactly.
    pub fn put_f64(&mut self, x: f64) {
        self.put_u64(x.to_bits());
    }

    /// Append a boolean as a 0/1 word.
    pub fn put_bool(&mut self, x: bool) {
        self.put_u64(x as u64);
    }

    /// Append a length-prefixed UTF-8 string, padded to 8 bytes.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
        self.buf.resize(pad8(self.buf.len()), 0);
    }

    /// Append a length-prefixed `u64` column (raw little-endian words).
    pub fn put_u64s(&mut self, xs: &[u64]) {
        self.put_usize(xs.len());
        self.buf.reserve(xs.len() * 8);
        for &x in xs {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Append a length-prefixed `u32` column, padded to 8 bytes.
    pub fn put_u32s(&mut self, xs: &[u32]) {
        self.put_usize(xs.len());
        self.buf.reserve(pad8(xs.len() * 4));
        for &x in xs {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
        self.buf.resize(pad8(self.buf.len()), 0);
    }

    /// Append a length-prefixed `f64` column (bit-exact words).
    pub fn put_f64s(&mut self, xs: &[f64]) {
        self.put_usize(xs.len());
        self.buf.reserve(xs.len() * 8);
        for &x in xs {
            self.buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
    }

    fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Checked little-endian decoder over one section body. Every accessor
/// validates bounds and value ranges; failures surface as
/// [`SnapshotError::Truncated`] / [`SnapshotError::Malformed`].
pub struct SectionReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SectionReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(SnapshotError::Malformed("length overflow".into()))?;
        if end > self.buf.len() {
            return Err(SnapshotError::Truncated {
                needed: end,
                available: self.buf.len(),
            });
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Read one `u64` word.
    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Read a `u64` word that must fit a `usize`.
    pub fn get_usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.get_u64()?)
            .map_err(|_| SnapshotError::Malformed("count exceeds usize".into()))
    }

    /// Read an `f64` bit-exactly.
    pub fn get_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a 0/1 word as a boolean.
    pub fn get_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.get_u64()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::Malformed(format!(
                "boolean word holds {other}"
            ))),
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, SnapshotError> {
        let len = self.get_usize()?;
        let bytes = self.take(pad8(len))?;
        String::from_utf8(bytes[..len].to_vec())
            .map_err(|_| SnapshotError::Malformed("string is not UTF-8".into()))
    }

    /// Read a length-prefixed `u64` column.
    pub fn get_u64s(&mut self) -> Result<Vec<u64>, SnapshotError> {
        let len = self.get_usize()?;
        let bytes = self.take(
            len.checked_mul(8)
                .ok_or(SnapshotError::Malformed("column length overflow".into()))?,
        )?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    /// Read a length-prefixed `u32` column.
    pub fn get_u32s(&mut self) -> Result<Vec<u32>, SnapshotError> {
        let len = self.get_usize()?;
        let raw = len
            .checked_mul(4)
            .ok_or(SnapshotError::Malformed("column length overflow".into()))?;
        let bytes = self.take(pad8(raw))?;
        Ok(bytes[..raw]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    /// Read a length-prefixed `f64` column (bit-exact).
    pub fn get_f64s(&mut self) -> Result<Vec<f64>, SnapshotError> {
        Ok(self.get_u64s()?.into_iter().map(f64::from_bits).collect())
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

// ---------------------------------------------------------------------
// Container
// ---------------------------------------------------------------------

/// An in-memory snapshot container: a payload kind plus tagged sections.
///
/// Sections live in one contiguous buffer in their on-disk framing
/// (`[tag][len][body pad8]…`) with a small `(tag, range)` index over it —
/// the same zero-copy shape whether the container was built by a writer
/// or parsed from a file, so serializing is one buffer copy and parsing
/// a million-row bank does not re-copy its columns section by section.
pub struct Snapshot {
    /// Caller-defined payload kind (what the sections describe).
    pub kind: u32,
    /// Section framing + bodies, exactly as written to disk.
    payload: Vec<u8>,
    /// `(tag, body range into payload)` in append order.
    index: Vec<(u64, std::ops::Range<usize>)>,
}

impl Snapshot {
    /// An empty container of the given payload kind.
    pub fn new(kind: u32) -> Self {
        Self {
            kind,
            payload: Vec::new(),
            index: Vec::new(),
        }
    }

    /// Append a section. Tags may repeat; readers take the first match.
    pub fn add_section(&mut self, tag: u64, body: SectionWriter) {
        let body = body.into_bytes();
        self.payload.reserve(16 + pad8(body.len()));
        self.payload.extend_from_slice(&tag.to_le_bytes());
        self.payload
            .extend_from_slice(&(body.len() as u64).to_le_bytes());
        let start = self.payload.len();
        self.payload.extend_from_slice(&body);
        self.payload.resize(pad8(self.payload.len()), 0);
        self.index.push((tag, start..start + body.len()));
    }

    /// Reader over the first section with `tag`.
    pub fn section(&self, tag: u64) -> Result<SectionReader<'_>, SnapshotError> {
        self.try_section(tag)
            .ok_or_else(|| SnapshotError::Malformed(format!("missing section {tag:#x}")))
    }

    /// Reader over the first section with `tag`, if present.
    pub fn try_section(&self, tag: u64) -> Option<SectionReader<'_>> {
        self.index
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, range)| SectionReader::new(&self.payload[range.clone()]))
    }

    /// Serialize to the on-disk byte layout (header + checksummed payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.kind.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a_words(&self.payload).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parse and fully validate the on-disk byte layout: magic, version,
    /// payload length, checksum, and section framing.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let (kind, payload_range) = Self::validate(bytes)?;
        let payload = bytes[payload_range].to_vec();
        let index = Self::index_payload(&payload)?;
        Ok(Self {
            kind,
            payload,
            index,
        })
    }

    /// As [`Snapshot::from_bytes`] but consuming the buffer: the payload
    /// is sliced out of the given allocation instead of copied — the
    /// file-read path hands its buffer straight to the container.
    pub fn from_vec(mut bytes: Vec<u8>) -> Result<Self, SnapshotError> {
        let (kind, payload_range) = Self::validate(&bytes)?;
        bytes.truncate(payload_range.end);
        bytes.drain(..payload_range.start);
        let index = Self::index_payload(&bytes)?;
        Ok(Self {
            kind,
            payload: bytes,
            index,
        })
    }

    /// Header + checksum validation shared by the borrowing and owning
    /// parsers; returns the payload kind and byte range.
    fn validate(bytes: &[u8]) -> Result<(u32, std::ops::Range<usize>), SnapshotError> {
        if bytes.len() < HEADER_LEN {
            return Err(SnapshotError::Truncated {
                needed: HEADER_LEN,
                available: bytes.len(),
            });
        }
        if bytes[..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version > FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let kind = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
        let payload_len = usize::try_from(u64::from_le_bytes(
            bytes[16..24].try_into().expect("8 bytes"),
        ))
        .map_err(|_| SnapshotError::Malformed("payload length exceeds usize".into()))?;
        let stored = u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes"));
        let needed = HEADER_LEN
            .checked_add(payload_len)
            .ok_or(SnapshotError::Malformed("payload length overflow".into()))?;
        if bytes.len() < needed {
            return Err(SnapshotError::Truncated {
                needed,
                available: bytes.len(),
            });
        }
        let payload = &bytes[HEADER_LEN..needed];
        let computed = fnv1a_words(payload);
        if computed != stored {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }
        Ok((kind, HEADER_LEN..needed))
    }

    /// Walk the section framing of a checksum-verified payload and build
    /// the `(tag, body range)` index.
    fn index_payload(payload: &[u8]) -> Result<Vec<(u64, std::ops::Range<usize>)>, SnapshotError> {
        let mut index = Vec::new();
        let mut pos = 0usize;
        while pos < payload.len() {
            if pos + 16 > payload.len() {
                return Err(SnapshotError::Malformed("dangling section header".into()));
            }
            let tag = u64::from_le_bytes(payload[pos..pos + 8].try_into().expect("8 bytes"));
            let len = usize::try_from(u64::from_le_bytes(
                payload[pos + 8..pos + 16].try_into().expect("8 bytes"),
            ))
            .map_err(|_| SnapshotError::Malformed("section length exceeds usize".into()))?;
            let start = pos + 16;
            let end = start
                .checked_add(len)
                .ok_or(SnapshotError::Malformed("section length overflow".into()))?;
            if end > payload.len() {
                return Err(SnapshotError::Malformed("section overruns payload".into()));
            }
            index.push((tag, start..end));
            pos = pad8(end);
        }
        Ok(index)
    }

    /// Write the container to a file **atomically**: the bytes land in a
    /// `<name>.tmp` sibling first, are fsynced, and are then renamed over
    /// `path` (a single-filesystem rename, atomic on POSIX). An
    /// interrupted write can therefore never leave a torn snapshot at
    /// `path` — readers see either the complete previous file or the
    /// complete new one. The on-disk bytes are identical to a plain
    /// write, so existing format goldens are unaffected.
    pub fn write_to(&self, path: &Path) -> Result<(), SnapshotError> {
        let io_err = |e: std::io::Error| SnapshotError::Io(format!("{}: {e}", path.display()));
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        {
            use std::io::Write;
            let mut file = std::fs::File::create(&tmp).map_err(io_err)?;
            file.write_all(&self.to_bytes()).map_err(io_err)?;
            file.sync_all().map_err(io_err)?;
        }
        std::fs::rename(&tmp, path).map_err(io_err)?;
        // Best-effort directory sync so the rename itself is durable; not
        // all platforms allow opening a directory for sync, so failures
        // here are ignored rather than surfaced.
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Read and validate a container from a file.
    pub fn read_from(path: &Path) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path)
            .map_err(|e| SnapshotError::Io(format!("{}: {e}", path.display())))?;
        Self::from_vec(bytes)
    }

    /// Assert the container holds the expected payload kind.
    pub fn expect_kind(&self, expected: u32) -> Result<(), SnapshotError> {
        if self.kind != expected {
            return Err(SnapshotError::WrongKind {
                expected,
                found: self.kind,
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// SampleBank codec
// ---------------------------------------------------------------------

/// Section tag: bank shape (`n_types`, `n_samples`).
pub const TAG_BANK_SHAPE: u64 = 0x10;
/// Section tag: column-major `u64` counts (`n_types × n_samples`).
pub const TAG_BANK_COLS: u64 = 0x11;
/// Section tag: optional compact `u32` column mirror.
pub const TAG_BANK_COLS32: u64 = 0x12;

/// How a persisted bank's derived layouts are re-established on load.
#[derive(Debug, Clone, Copy, Default)]
pub struct BankReadOptions {
    /// `true`: ignore any persisted compact mirror and rebuild all derived
    /// layouts from the `u64` columns. `false` (default): cross-check the
    /// persisted mirror against the columns and fail on disagreement —
    /// corruption hardening beyond the payload checksum.
    pub rebuild_mirrors: bool,
}

/// Append the bank's columnar sections to a container: the authoritative
/// `u64` column matrix plus, when present, the compact `u32` mirror. The
/// row-major layout is derived, not stored.
pub fn write_bank(snap: &mut Snapshot, bank: &SampleBank) {
    let mut shape = SectionWriter::new();
    shape.put_usize(bank.n_types());
    shape.put_usize(bank.n_samples());
    snap.add_section(TAG_BANK_SHAPE, shape);

    let mut cols = SectionWriter::new();
    cols.put_u64s(bank.columns_flat());
    snap.add_section(TAG_BANK_COLS, cols);

    if let Some(mirror) = bank.compact_columns_flat() {
        let mut compact = SectionWriter::new();
        compact.put_u32s(mirror);
        snap.add_section(TAG_BANK_COLS32, compact);
    }
}

/// Decode a bank from its columnar sections, rebuilding the row-major
/// layout and (per [`BankReadOptions`]) the compact mirror.
pub fn read_bank(snap: &Snapshot, opts: BankReadOptions) -> Result<SampleBank, SnapshotError> {
    let mut shape = snap.section(TAG_BANK_SHAPE)?;
    let n_types = shape.get_usize()?;
    let n_samples = shape.get_usize()?;
    if n_types == 0 || n_samples == 0 {
        return Err(SnapshotError::Malformed("empty bank shape".into()));
    }
    let expected = n_types
        .checked_mul(n_samples)
        .ok_or(SnapshotError::Malformed("bank shape overflow".into()))?;
    let cols = snap.section(TAG_BANK_COLS)?.get_u64s()?;
    if cols.len() != expected {
        return Err(SnapshotError::Malformed(format!(
            "bank columns hold {} counts, shape promises {expected}",
            cols.len()
        )));
    }
    let bank = SampleBank::from_column_major(n_types, n_samples, cols);
    if !opts.rebuild_mirrors {
        if let Some(mut stored) = snap.try_section(TAG_BANK_COLS32) {
            let mirror = stored.get_u32s()?;
            if Some(mirror.as_slice()) != bank.compact_columns_flat() {
                return Err(SnapshotError::Malformed(
                    "compact column mirror disagrees with the u64 columns".into(),
                ));
            }
        }
    }
    Ok(bank)
}

// ---------------------------------------------------------------------
// Distribution / joint-model constructor parameters
// ---------------------------------------------------------------------

/// Constructor parameters of a persistable [`CountDistribution`].
///
/// Persisting parameters (not pmfs) keeps snapshots compact and makes
/// reconstruction exact by definition: [`DistParams::instantiate`] re-runs
/// the same deterministic constructor the live object was built with, so
/// the rebuilt pmf/cdf/sampling behaviour is bit-identical. Custom
/// distributions outside this crate return `None` from
/// [`CountDistribution::snapshot_params`] and fail persistence with a
/// typed error instead of silently degrading.
#[derive(Debug, Clone, PartialEq)]
pub enum DistParams {
    /// [`Constant`] count.
    Constant(u64),
    /// [`UniformCount`] over `[lo, hi]`.
    Uniform {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
    /// [`DiscretizedGaussian`] on an explicit window.
    Gaussian {
        /// Gaussian mean parameter.
        mean: f64,
        /// Gaussian standard deviation parameter.
        std: f64,
        /// Truncation window lower edge.
        lo: u64,
        /// Truncation window upper edge.
        hi: u64,
    },
    /// [`Poisson`] with rate λ (truncation cap is derived by `new`).
    Poisson {
        /// Rate parameter λ.
        lambda: f64,
    },
    /// [`Zipf`] power law.
    Zipf {
        /// Tail exponent `s`.
        exponent: f64,
        /// Truncation cap.
        cap: u64,
    },
    /// [`Empirical`] histogram.
    Empirical {
        /// `weights[n]` = observed periods with exactly `n` alerts.
        weights: Vec<u64>,
    },
    /// [`Mixture`] with **already-normalized** weights (the live object's
    /// internal weights, reinstated bit-for-bit via
    /// [`Mixture::from_normalized`] so no renormalization perturbs them).
    Mixture {
        /// `(normalized weight, component parameters)` pairs.
        components: Vec<(f64, DistParams)>,
    },
}

/// Maximum mixture nesting depth accepted by the decoder (real scenarios
/// nest one level; the cap keeps crafted files from recursing unboundedly).
const MAX_DIST_DEPTH: usize = 16;

impl DistParams {
    const KIND_CONSTANT: u64 = 0;
    const KIND_UNIFORM: u64 = 1;
    const KIND_GAUSSIAN: u64 = 2;
    const KIND_POISSON: u64 = 3;
    const KIND_ZIPF: u64 = 4;
    const KIND_EMPIRICAL: u64 = 5;
    const KIND_MIXTURE: u64 = 6;

    /// Append the parameters to a section body.
    pub fn encode(&self, w: &mut SectionWriter) {
        match self {
            DistParams::Constant(v) => {
                w.put_u64(Self::KIND_CONSTANT);
                w.put_u64(*v);
            }
            DistParams::Uniform { lo, hi } => {
                w.put_u64(Self::KIND_UNIFORM);
                w.put_u64(*lo);
                w.put_u64(*hi);
            }
            DistParams::Gaussian { mean, std, lo, hi } => {
                w.put_u64(Self::KIND_GAUSSIAN);
                w.put_f64(*mean);
                w.put_f64(*std);
                w.put_u64(*lo);
                w.put_u64(*hi);
            }
            DistParams::Poisson { lambda } => {
                w.put_u64(Self::KIND_POISSON);
                w.put_f64(*lambda);
            }
            DistParams::Zipf { exponent, cap } => {
                w.put_u64(Self::KIND_ZIPF);
                w.put_f64(*exponent);
                w.put_u64(*cap);
            }
            DistParams::Empirical { weights } => {
                w.put_u64(Self::KIND_EMPIRICAL);
                w.put_u64s(weights);
            }
            DistParams::Mixture { components } => {
                w.put_u64(Self::KIND_MIXTURE);
                w.put_usize(components.len());
                for (weight, params) in components {
                    w.put_f64(*weight);
                    params.encode(w);
                }
            }
        }
    }

    /// Read parameters from a section body, validating every constructor
    /// precondition so [`DistParams::instantiate`] cannot panic.
    pub fn decode(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        Self::decode_depth(r, 0)
    }

    fn decode_depth(r: &mut SectionReader<'_>, depth: usize) -> Result<Self, SnapshotError> {
        if depth > MAX_DIST_DEPTH {
            return Err(SnapshotError::Malformed(
                "distribution nesting too deep".into(),
            ));
        }
        let kind = r.get_u64()?;
        let malformed = |msg: &str| SnapshotError::Malformed(msg.to_string());
        match kind {
            Self::KIND_CONSTANT => Ok(DistParams::Constant(r.get_u64()?)),
            Self::KIND_UNIFORM => {
                let lo = r.get_u64()?;
                let hi = r.get_u64()?;
                if hi < lo {
                    return Err(malformed("uniform window is empty"));
                }
                Ok(DistParams::Uniform { lo, hi })
            }
            Self::KIND_GAUSSIAN => {
                let mean = r.get_f64()?;
                let std = r.get_f64()?;
                let lo = r.get_u64()?;
                let hi = r.get_u64()?;
                if !(mean.is_finite() && std.is_finite() && std > 0.0) || hi < lo {
                    return Err(malformed("gaussian parameters out of range"));
                }
                Ok(DistParams::Gaussian { mean, std, lo, hi })
            }
            Self::KIND_POISSON => {
                let lambda = r.get_f64()?;
                if !(lambda.is_finite() && lambda > 0.0) {
                    return Err(malformed("poisson rate out of range"));
                }
                Ok(DistParams::Poisson { lambda })
            }
            Self::KIND_ZIPF => {
                let exponent = r.get_f64()?;
                let cap = r.get_u64()?;
                if !(exponent.is_finite() && exponent > 0.0) {
                    return Err(malformed("zipf exponent out of range"));
                }
                Ok(DistParams::Zipf { exponent, cap })
            }
            Self::KIND_EMPIRICAL => {
                let weights = r.get_u64s()?;
                if weights.iter().sum::<u64>() == 0 {
                    return Err(malformed("empirical histogram carries no mass"));
                }
                Ok(DistParams::Empirical { weights })
            }
            Self::KIND_MIXTURE => {
                let n = r.get_usize()?;
                if n == 0 {
                    return Err(malformed("mixture has no components"));
                }
                let mut components = Vec::with_capacity(n.min(1024));
                let mut total = 0.0f64;
                for _ in 0..n {
                    let weight = r.get_f64()?;
                    if !(weight.is_finite() && weight >= 0.0) {
                        return Err(malformed("mixture weight out of range"));
                    }
                    total += weight;
                    components.push((weight, Self::decode_depth(r, depth + 1)?));
                }
                if (total - 1.0).abs() > 1e-6 {
                    return Err(malformed("mixture weights are not normalized"));
                }
                Ok(DistParams::Mixture { components })
            }
            other => Err(SnapshotError::Malformed(format!(
                "unknown distribution kind {other}"
            ))),
        }
    }

    /// Rebuild the live distribution — bit-identical to the object the
    /// parameters were taken from (constructors are deterministic, and the
    /// mixture path trusts the stored normalized weights).
    pub fn instantiate(&self) -> Arc<dyn CountDistribution> {
        match self {
            DistParams::Constant(v) => Arc::new(Constant(*v)),
            DistParams::Uniform { lo, hi } => Arc::new(UniformCount::new(*lo, *hi)),
            DistParams::Gaussian { mean, std, lo, hi } => {
                Arc::new(DiscretizedGaussian::on_window(*mean, *std, *lo, *hi))
            }
            DistParams::Poisson { lambda } => Arc::new(Poisson::new(*lambda)),
            DistParams::Zipf { exponent, cap } => Arc::new(Zipf::new(*exponent, *cap)),
            DistParams::Empirical { weights } => {
                Arc::new(Empirical::from_histogram(weights.clone()))
            }
            DistParams::Mixture { components } => Arc::new(Mixture::from_normalized(
                components
                    .iter()
                    .map(|(w, p)| (*w, p.instantiate()))
                    .collect(),
            )),
        }
    }
}

/// Constructor parameters of a persistable joint count model.
///
/// The concrete models live in `audit-game` (`RegimeMixingCounts`,
/// `SeasonalCounts`); this crate only defines the parameter shapes so the
/// trait hook [`crate::bank::JointCountModel::snapshot_params`] can be
/// declared next to the trait. Reconstruction lives with the models.
#[derive(Debug, Clone, PartialEq)]
pub enum JointParams {
    /// A latent-regime mixer: **already-normalized** regime weights plus
    /// per-regime component rows (`components[r][t]`).
    Regime {
        /// Normalized regime weights.
        weights: Vec<f64>,
        /// Per-regime, per-type component parameters.
        components: Vec<Vec<DistParams>>,
    },
    /// A deterministic season cycle: per-phase component rows
    /// (`phases[p][t]`), period `i` using phase `i mod phases.len()`.
    Seasonal {
        /// Per-phase, per-type component parameters.
        phases: Vec<Vec<DistParams>>,
    },
}

impl JointParams {
    const KIND_REGIME: u64 = 0;
    const KIND_SEASONAL: u64 = 1;

    /// Append the parameters to a section body.
    pub fn encode(&self, w: &mut SectionWriter) {
        let encode_rows = |w: &mut SectionWriter, rows: &[Vec<DistParams>]| {
            w.put_usize(rows.len());
            for row in rows {
                w.put_usize(row.len());
                for p in row {
                    p.encode(w);
                }
            }
        };
        match self {
            JointParams::Regime {
                weights,
                components,
            } => {
                w.put_u64(Self::KIND_REGIME);
                w.put_f64s(weights);
                encode_rows(w, components);
            }
            JointParams::Seasonal { phases } => {
                w.put_u64(Self::KIND_SEASONAL);
                encode_rows(w, phases);
            }
        }
    }

    /// Read parameters from a section body, validating shapes (rectangular
    /// rows, matching weight count, normalized weights).
    pub fn decode(r: &mut SectionReader<'_>) -> Result<Self, SnapshotError> {
        let decode_rows =
            |r: &mut SectionReader<'_>| -> Result<Vec<Vec<DistParams>>, SnapshotError> {
                let n_rows = r.get_usize()?;
                if n_rows == 0 {
                    return Err(SnapshotError::Malformed("joint model has no rows".into()));
                }
                let mut rows = Vec::with_capacity(n_rows.min(1024));
                for _ in 0..n_rows {
                    let n = r.get_usize()?;
                    let mut row = Vec::with_capacity(n.min(1024));
                    for _ in 0..n {
                        row.push(DistParams::decode(r)?);
                    }
                    rows.push(row);
                }
                let width = rows[0].len();
                if width == 0 || rows.iter().any(|row| row.len() != width) {
                    return Err(SnapshotError::Malformed("ragged joint model rows".into()));
                }
                Ok(rows)
            };
        match r.get_u64()? {
            Self::KIND_REGIME => {
                let weights = r.get_f64s()?;
                let components = decode_rows(r)?;
                if weights.len() != components.len() {
                    return Err(SnapshotError::Malformed(
                        "regime weight count disagrees with component rows".into(),
                    ));
                }
                if weights.iter().any(|&w| !(w.is_finite() && w >= 0.0))
                    || (weights.iter().sum::<f64>() - 1.0).abs() > 1e-6
                {
                    return Err(SnapshotError::Malformed(
                        "regime weights are not normalized".into(),
                    ));
                }
                Ok(JointParams::Regime {
                    weights,
                    components,
                })
            }
            Self::KIND_SEASONAL => Ok(JointParams::Seasonal {
                phases: decode_rows(r)?,
            }),
            other => Err(SnapshotError::Malformed(format!(
                "unknown joint model kind {other}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::JointCountModel;
    use crate::rng::seeded_rng;

    fn sample_dists() -> Vec<Arc<dyn CountDistribution>> {
        vec![
            Arc::new(DiscretizedGaussian::with_halfwidth(6.0, 2.0, 5)),
            Arc::new(Poisson::new(4.0)),
            Arc::new(Zipf::new(1.8, 40)),
            Arc::new(Empirical::from_observations(&[3, 3, 4, 5, 5, 5, 7])),
            Arc::new(Constant(3)),
            Arc::new(UniformCount::new(2, 5)),
            Arc::new(Mixture::new(vec![
                (0.25, Arc::new(Constant(2)) as Arc<dyn CountDistribution>),
                (0.75, Arc::new(Poisson::new(2.5))),
            ])),
        ]
    }

    #[test]
    fn container_roundtrip_preserves_sections() {
        let mut snap = Snapshot::new(7);
        let mut a = SectionWriter::new();
        a.put_u64(42);
        a.put_str("hello");
        a.put_f64(1.5);
        a.put_bool(true);
        snap.add_section(0xA, a);
        let mut b = SectionWriter::new();
        b.put_u64s(&[1, 2, 3]);
        b.put_u32s(&[4, 5, 6, 7, 8]);
        b.put_f64s(&[0.25, -0.5]);
        snap.add_section(0xB, b);

        let bytes = snap.to_bytes();
        assert_eq!(bytes.len() % 8, 0, "container must stay 8-aligned");
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back.kind, 7);
        let mut r = back.section(0xA).unwrap();
        assert_eq!(r.get_u64().unwrap(), 42);
        assert_eq!(r.get_str().unwrap(), "hello");
        assert_eq!(r.get_f64().unwrap(), 1.5);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.remaining(), 0);
        let mut r = back.section(0xB).unwrap();
        assert_eq!(r.get_u64s().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_u32s().unwrap(), vec![4, 5, 6, 7, 8]);
        assert_eq!(r.get_f64s().unwrap(), vec![0.25, -0.5]);
        assert!(back.try_section(0xC).is_none());
        assert!(matches!(
            back.section(0xC),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn write_to_is_atomic_and_byte_identical_to_to_bytes() {
        let mut snap = Snapshot::new(3);
        let mut s = SectionWriter::new();
        s.put_u64s(&[9, 8, 7]);
        s.put_str("atomic");
        snap.add_section(0x2, s);

        let dir = std::env::temp_dir().join(format!("audit-snap-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("case.snap");
        // Overwrite an existing (stale) file: the rename must replace it.
        std::fs::write(&path, b"stale").unwrap();
        snap.write_to(&path).unwrap();

        // On-disk bytes are exactly the container encoding (no staging
        // artifacts), and the temp sibling is gone after the rename.
        assert_eq!(std::fs::read(&path).unwrap(), snap.to_bytes());
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "staging files left behind: {leftovers:?}"
        );
        let back = Snapshot::read_from(&path).unwrap();
        assert_eq!(back.kind, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn header_validation_catches_corruption() {
        let mut snap = Snapshot::new(1);
        let mut s = SectionWriter::new();
        s.put_u64s(&[10, 20, 30, 40]);
        snap.add_section(0x1, s);
        let good = snap.to_bytes();
        assert!(Snapshot::from_bytes(&good).is_ok());

        // Wrong magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert_eq!(Snapshot::from_bytes(&bad), magic_err());
        // Future version.
        let mut bad = good.clone();
        bad[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        assert!(matches!(
            Snapshot::from_bytes(&bad),
            Err(SnapshotError::UnsupportedVersion { found, supported })
                if found == FORMAT_VERSION + 1 && supported == FORMAT_VERSION
        ));
        // Flipped payload byte.
        let mut bad = good.clone();
        let last = bad.len() - 5;
        bad[last] ^= 0x01;
        assert!(matches!(
            Snapshot::from_bytes(&bad),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        // Truncations at every prefix must fail without panicking.
        for cut in 0..good.len() {
            assert!(
                Snapshot::from_bytes(&good[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    fn magic_err() -> Result<Snapshot, SnapshotError> {
        Err(SnapshotError::BadMagic)
    }

    // `Snapshot` has no PartialEq; compare through the error only.
    impl PartialEq for Snapshot {
        fn eq(&self, other: &Self) -> bool {
            self.kind == other.kind && self.payload == other.payload
        }
    }
    impl std::fmt::Debug for Snapshot {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Snapshot")
                .field("kind", &self.kind)
                .finish()
        }
    }

    #[test]
    fn bank_roundtrips_bit_identically() {
        let dists = sample_dists();
        let bank = SampleBank::generate_from(dists.iter().map(|d| d.as_ref()), 257, 42);
        let mut snap = Snapshot::new(2);
        write_bank(&mut snap, &bank);
        let bytes = snap.to_bytes();
        for rebuild in [false, true] {
            let back = read_bank(
                &Snapshot::from_bytes(&bytes).unwrap(),
                BankReadOptions {
                    rebuild_mirrors: rebuild,
                },
            )
            .unwrap();
            assert_eq!(back.n_types(), bank.n_types());
            assert_eq!(back.n_samples(), bank.n_samples());
            assert_eq!(back.columns_flat(), bank.columns_flat());
            assert_eq!(back.compact_columns_flat(), bank.compact_columns_flat());
            for s in 0..bank.n_samples() {
                assert_eq!(back.row(s), bank.row(s));
            }
        }
    }

    #[test]
    fn oversized_bank_roundtrips_without_mirror() {
        let big = u64::from(u32::MAX) + 7;
        let bank = SampleBank::from_rows(vec![vec![1, big], vec![2, 3]]);
        assert!(!bank.has_compact_columns());
        let mut snap = Snapshot::new(2);
        write_bank(&mut snap, &bank);
        let back = read_bank(
            &Snapshot::from_bytes(&snap.to_bytes()).unwrap(),
            BankReadOptions::default(),
        )
        .unwrap();
        assert!(!back.has_compact_columns());
        assert_eq!(back.column(1), bank.column(1));
    }

    #[test]
    fn bank_shape_mismatch_is_malformed() {
        let bank = SampleBank::from_rows(vec![vec![1, 2], vec![3, 4]]);
        let mut snap = Snapshot::new(2);
        write_bank(&mut snap, &bank);
        // Rewrite the shape section to promise more samples than stored.
        let mut bad = Snapshot::new(2);
        let mut shape = SectionWriter::new();
        shape.put_usize(2);
        shape.put_usize(99);
        bad.add_section(TAG_BANK_SHAPE, shape);
        let mut cols = SectionWriter::new();
        cols.put_u64s(bank.columns_flat());
        bad.add_section(TAG_BANK_COLS, cols);
        assert!(matches!(
            read_bank(&bad, BankReadOptions::default()),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn dist_params_roundtrip_and_reinstantiate_bit_exactly() {
        for dist in sample_dists() {
            let params = dist
                .snapshot_params()
                .expect("built-in distributions are persistable");
            let mut w = SectionWriter::new();
            params.encode(&mut w);
            let mut snap = Snapshot::new(3);
            snap.add_section(0x1, w);
            let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
            let decoded = DistParams::decode(&mut back.section(0x1).unwrap()).unwrap();
            assert_eq!(decoded, params);

            let rebuilt = decoded.instantiate();
            assert_eq!(rebuilt.support_min(), dist.support_min());
            assert_eq!(rebuilt.support_max(), dist.support_max());
            for n in dist.support_min()..=dist.support_max() {
                assert_eq!(
                    rebuilt.pmf(n).to_bits(),
                    dist.pmf(n).to_bits(),
                    "pmf({n}) drifted"
                );
            }
            // Sampling consumes the RNG identically.
            let mut a = seeded_rng(99);
            let mut b = seeded_rng(99);
            for _ in 0..100 {
                assert_eq!(dist.sample(&mut a), rebuilt.sample(&mut b));
            }
        }
    }

    #[test]
    fn mixture_snapshot_params_survive_renormalization() {
        // Unnormalized construction weights: the live object holds the
        // normalized ones, and those must round-trip bit-for-bit.
        let live = Mixture::new(vec![
            (2.0, Arc::new(Constant(1)) as Arc<dyn CountDistribution>),
            (6.0, Arc::new(Constant(3))),
        ]);
        let params = live.snapshot_params().unwrap();
        let rebuilt = params.instantiate();
        for n in 0..=3 {
            assert_eq!(rebuilt.pmf(n).to_bits(), live.pmf(n).to_bits());
        }
    }

    type WriteCase = Box<dyn Fn(&mut SectionWriter)>;

    #[test]
    fn malformed_dist_params_are_rejected() {
        // (encode bytes, expectation) pairs of invalid parameter payloads.
        let cases: Vec<WriteCase> = vec![
            Box::new(|w| {
                w.put_u64(99); // unknown kind
            }),
            Box::new(|w| {
                w.put_u64(DistParams::KIND_UNIFORM);
                w.put_u64(5);
                w.put_u64(2); // hi < lo
            }),
            Box::new(|w| {
                w.put_u64(DistParams::KIND_POISSON);
                w.put_f64(-1.0); // negative rate
            }),
            Box::new(|w| {
                w.put_u64(DistParams::KIND_EMPIRICAL);
                w.put_u64s(&[0, 0]); // zero mass
            }),
            Box::new(|w| {
                w.put_u64(DistParams::KIND_MIXTURE);
                w.put_usize(1);
                w.put_f64(0.5); // weights don't sum to 1
                w.put_u64(DistParams::KIND_CONSTANT);
                w.put_u64(1);
            }),
        ];
        for (i, encode) in cases.iter().enumerate() {
            let mut w = SectionWriter::new();
            encode(&mut w);
            let mut snap = Snapshot::new(3);
            snap.add_section(0x1, w);
            let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
            let got = DistParams::decode(&mut back.section(0x1).unwrap());
            assert!(
                matches!(got, Err(SnapshotError::Malformed(_))),
                "case {i} decoded to {got:?}"
            );
        }
    }

    struct TwoPhase;

    impl JointCountModel for TwoPhase {
        fn n_types(&self) -> usize {
            2
        }
        fn sample_row(&self, i: usize, rng: &mut dyn rand::RngCore) -> Vec<u64> {
            let d = UniformCount::new(0, 3 + (i % 2) as u64);
            vec![d.sample(rng), d.sample(rng)]
        }
    }

    #[test]
    fn joint_models_default_to_unsupported() {
        assert_eq!(TwoPhase.snapshot_params(), None);
    }

    #[test]
    fn joint_params_roundtrip() {
        let params = JointParams::Regime {
            weights: vec![0.75, 0.25],
            components: vec![
                vec![DistParams::Poisson { lambda: 3.0 }, DistParams::Constant(1)],
                vec![DistParams::Poisson { lambda: 9.0 }, DistParams::Constant(4)],
            ],
        };
        let mut w = SectionWriter::new();
        params.encode(&mut w);
        let mut snap = Snapshot::new(4);
        snap.add_section(0x2, w);
        let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        let decoded = JointParams::decode(&mut back.section(0x2).unwrap()).unwrap();
        assert_eq!(decoded, params);

        let seasonal = JointParams::Seasonal {
            phases: vec![
                vec![DistParams::Uniform { lo: 0, hi: 4 }],
                vec![DistParams::Uniform { lo: 2, hi: 9 }],
            ],
        };
        let mut w = SectionWriter::new();
        seasonal.encode(&mut w);
        let mut snap = Snapshot::new(4);
        snap.add_section(0x2, w);
        let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(
            JointParams::decode(&mut back.section(0x2).unwrap()).unwrap(),
            seasonal
        );
    }

    #[test]
    fn joint_params_validate_shapes() {
        // Ragged rows.
        let mut w = SectionWriter::new();
        w.put_u64(JointParams::KIND_SEASONAL);
        w.put_usize(2);
        w.put_usize(1);
        DistParams::Constant(1).encode(&mut w);
        w.put_usize(2);
        DistParams::Constant(1).encode(&mut w);
        DistParams::Constant(2).encode(&mut w);
        let mut snap = Snapshot::new(4);
        snap.add_section(0x2, w);
        let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert!(matches!(
            JointParams::decode(&mut back.section(0x2).unwrap()),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn wrong_kind_is_typed() {
        let snap = Snapshot::new(5);
        let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert!(back.expect_kind(5).is_ok());
        assert_eq!(
            back.expect_kind(6),
            Err(SnapshotError::WrongKind {
                expected: 6,
                found: 5
            })
        );
    }
}
