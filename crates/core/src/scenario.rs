//! The scenario substrate: every workload this workspace can audit,
//! expressed as one uniform interface.
//!
//! The paper evaluates the audit game on one synthetic setting (Syn A)
//! plus two real workloads. This module turns "a setting" into a
//! first-class object: a [`Scenario`] deterministically maps a seed to a
//! solvable [`GameSpec`] (and to a benign alert stream for simulation),
//! and a [`Registry`] lists every known scenario under a stable string
//! key. Experiment drivers, examples, and the golden conformance suite
//! all resolve scenarios through the registry, so adding a workload is a
//! one-file change: implement the trait, register the instance.
//!
//! This module ships the **core** scenarios:
//!
//! * `syn-a`, `syn-a-b6`, `syn-a-b20` — the paper's Table II game at
//!   budget 2 / 6 / 20;
//! * `syn-heavy-tail` — Zipf benign counts: most periods are quiet, rare
//!   bursts reach deep into the tail (stresses the Gaussian assumption);
//! * `syn-correlated` — a latent calm/storm regime lifts every type's
//!   counts together (correlated workload via [`RegimeMixingCounts`]);
//! * `syn-seasonal` — a weekly weekday/weekend cycle drifts the arrival
//!   intensities ([`SeasonalCounts`]);
//! * `syn-wide25`, `syn-wide50` — 25- and 50-type mixed-law workloads far
//!   past the paper's exact-solve ceiling, served by the
//!   [`crate::planner`] decomposed tier.
//!
//! The simulator crates (`emrsim`, `creditsim`, `tdmt`) implement
//! [`Scenario`] for their workloads; the umbrella crate's
//! `alert_audit::scenario::registry()` assembles the full cross-crate
//! registry. [`registry`] here returns the core subset.

use crate::attacker::{AdaptiveConfig, AttackerModel};
use crate::datasets::syn_a_with_budget;
use crate::error::GameError;
use crate::general_sum::DamageModel;
use crate::model::{AttackAction, Attacker, GameSpec, GameSpecBuilder};
use crate::persist::{load_scenario_snapshot, PersistError};
use crate::quantal::QuantalResponse;
use rand::Rng;
use std::path::PathBuf;
use std::sync::Arc;
use stochastics::rng::{derive_seed, stream_rng};
use stochastics::snapshot::{BankReadOptions, DistParams, JointParams};
use stochastics::{
    CountDistribution, DiscretizedGaussian, JointCountModel, Mixture, Poisson, SampleBank, Zipf,
};

/// A named, reproducible audit setting.
///
/// Implementations must be **deterministic**: the same `seed` yields a
/// bit-identical [`GameSpec`] (see [`GameSpec::fingerprint`]) and alert
/// stream on every call, from any thread. All solver-side knobs (ε,
/// sample counts, threads) stay out of the scenario; only
/// [`Scenario::suggested_epsilon`] leaks a hint for drivers that want a
/// sensible default.
pub trait Scenario: Send + Sync {
    /// Stable registry key, e.g. `"syn-a"` or `"emr-reaa"`.
    fn key(&self) -> &str;

    /// Which substrate generates the workload (`"core"`, `"emrsim"`,
    /// `"creditsim"`, `"tdmt"`).
    fn source(&self) -> &str;

    /// One-line human description of the setting and its parameters.
    fn describe(&self) -> String;

    /// The seed drivers use when the caller does not supply one.
    fn default_seed(&self) -> u64 {
        0
    }

    /// A reasonable ISHM step size for this scenario's scale.
    fn suggested_epsilon(&self) -> f64 {
        0.25
    }

    /// Which behavioural model the scenario's adversary follows. Defaults
    /// to the paper's fully rational zero-sum attacker; strategic-attacker
    /// scenarios override this, and the conformance matrix and the online
    /// runtime branch on it (see [`crate::attacker::AttackerModel`]).
    fn attacker_model(&self) -> AttackerModel {
        AttackerModel::Rational
    }

    /// Compile the scenario to a full-scale game.
    fn build(&self, seed: u64) -> Result<GameSpec, GameError>;

    /// A reduced-size variant for conformance tests and CI: same
    /// statistical structure, smaller world. Defaults to [`Scenario::build`].
    fn build_small(&self, seed: u64) -> Result<GameSpec, GameError> {
        self.build(seed)
    }

    /// A stream of benign per-period alert-count vectors (`n_periods`
    /// rows, one count per alert type) — the workload an operational
    /// auditor would face. Defaults to sampling the game's count model;
    /// simulator-backed scenarios override this with their native logs.
    fn alert_stream(&self, seed: u64, n_periods: usize) -> Result<Vec<Vec<u64>>, GameError> {
        let spec = self.build(seed)?;
        let bank = spec.sample_bank(n_periods.max(1), derive_seed(seed, 0xA1E7));
        Ok(bank.rows().take(n_periods).map(|r| r.to_vec()).collect())
    }
}

/// Where a scenario's common-random-number sample bank comes from: the
/// seam through which every workload gets its data.
///
/// Historically banks were always regenerated from the seed on every run
/// — fine at 1000 rows, prohibitive at the million-row banks that sharpen
/// the paper's Monte-Carlo estimates. [`BankSource::resolve`] makes the
/// choice explicit: regenerate from seed, or load a persisted snapshot.
/// The snapshot path is always **fingerprint-verified**: decoding checks
/// the container checksum and demands the reconstructed spec fingerprint
/// match the stored one, and `resolve` additionally checks scenario key
/// and bank shape. The [`SnapshotVerify`] knob picks how far provenance
/// checking goes beyond that: [`SnapshotVerify::Rebuild`] (the default)
/// also rebuilds the spec from the stored seed and demands a bit-identical
/// [`GameSpec::fingerprint`] — a snapshot cannot silently substitute a
/// different game — while [`SnapshotVerify::Fingerprint`] skips the
/// rebuild, the fast path when the scenario build itself is expensive
/// (the simulator-backed workloads) and the caller separately audits
/// banks against regeneration (as the runtime checkpoint loader and the
/// `exp_restart` driver both do).
#[derive(Debug, Clone)]
pub enum BankSource {
    /// Build the spec and draw the bank fresh from `seed` (the historical
    /// behaviour).
    Regenerate {
        /// Seed for both the spec build and the bank draw.
        seed: u64,
    },
    /// Load spec and bank from a scenario snapshot file (see
    /// `persist::save_scenario_snapshot`).
    Snapshot {
        /// Path of the snapshot file.
        path: PathBuf,
        /// How much provenance to verify beyond the container checksum
        /// and internal fingerprint.
        verify: SnapshotVerify,
    },
}

/// Provenance-verification depth of [`BankSource::Snapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SnapshotVerify {
    /// Rebuild the spec from the stored seed and demand a bit-identical
    /// fingerprint — the strongest check, at the cost of one scenario
    /// build.
    #[default]
    Rebuild,
    /// Trust the checksummed container and its internal spec fingerprint;
    /// verify only scenario key and bank shape. Skips the scenario
    /// rebuild — the fast restart path for large banks.
    Fingerprint,
}

impl BankSource {
    /// Produce the `(spec, bank)` pair for `scenario`, either by
    /// regeneration or by verified snapshot load. The returned bank always
    /// holds exactly `n_samples` rows; a snapshot of a different size is
    /// rejected rather than silently resampled.
    pub fn resolve(
        &self,
        scenario: &dyn Scenario,
        n_samples: usize,
    ) -> Result<(GameSpec, SampleBank), GameError> {
        match self {
            BankSource::Regenerate { seed } => {
                let spec = scenario.build(*seed)?;
                let bank = spec.sample_bank(n_samples, *seed);
                Ok((spec, bank))
            }
            BankSource::Snapshot { path, verify } => {
                let snap = load_scenario_snapshot(path, BankReadOptions::default())?;
                if snap.key != scenario.key() {
                    return Err(PersistError::Provenance(format!(
                        "snapshot was saved from scenario '{}', not '{}'",
                        snap.key,
                        scenario.key()
                    ))
                    .into());
                }
                if *verify == SnapshotVerify::Rebuild {
                    let regenerated = scenario.build(snap.seed)?;
                    let computed = regenerated.fingerprint();
                    let stored = snap.spec.fingerprint();
                    if stored != computed {
                        return Err(PersistError::FingerprintMismatch { stored, computed }.into());
                    }
                }
                if snap.bank.n_samples() != n_samples {
                    return Err(PersistError::Provenance(format!(
                        "snapshot bank holds {} samples, caller wants {}",
                        snap.bank.n_samples(),
                        n_samples
                    ))
                    .into());
                }
                Ok((snap.spec, snap.bank))
            }
        }
    }
}

/// An ordered collection of scenarios with unique keys.
#[derive(Default)]
pub struct Registry {
    entries: Vec<Arc<dyn Scenario>>,
}

impl Registry {
    /// An empty registry (use [`registry`] for the core built-ins).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Add a scenario. Panics on a duplicate key — keys are the public
    /// contract of the experiment CLI and the golden snapshot files.
    pub fn register(&mut self, scenario: Arc<dyn Scenario>) {
        assert!(
            self.get(scenario.key()).is_none(),
            "scenario key '{}' registered twice",
            scenario.key()
        );
        self.entries.push(scenario);
    }

    /// Look up by key.
    pub fn get(&self, key: &str) -> Option<&Arc<dyn Scenario>> {
        self.entries.iter().find(|s| s.key() == key)
    }

    /// Look up by key, with an error listing the known keys.
    pub fn resolve(&self, key: &str) -> Result<&Arc<dyn Scenario>, GameError> {
        self.get(key).ok_or_else(|| GameError::UnknownScenario {
            key: key.to_string(),
            known: self.keys().iter().map(|k| k.to_string()).collect(),
        })
    }

    /// All keys, in registration order.
    pub fn keys(&self) -> Vec<&str> {
        self.entries.iter().map(|s| s.key()).collect()
    }

    /// Iterate the scenarios in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<dyn Scenario>> {
        self.entries.iter()
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Build the full-scale game of scenario `key` with `seed`.
    pub fn build(&self, key: &str, seed: u64) -> Result<GameSpec, GameError> {
        self.resolve(key)?.build(seed)
    }

    /// Resolve scenario `key` and its `(spec, bank)` pair through a
    /// [`BankSource`] — the one-call entry point for drivers that accept a
    /// `--snapshot` flag.
    pub fn build_banked(
        &self,
        key: &str,
        source: &BankSource,
        n_samples: usize,
    ) -> Result<(GameSpec, SampleBank), GameError> {
        source.resolve(self.resolve(key)?.as_ref(), n_samples)
    }
}

/// The core built-in scenarios (Syn A variants + the three synthetic
/// families). The umbrella crate extends this with the simulator-backed
/// scenarios.
pub fn registry() -> Registry {
    let mut r = Registry::empty();
    r.register(Arc::new(SynA {
        key: "syn-a",
        budget: 2.0,
        epsilon: 0.1,
    }));
    r.register(Arc::new(SynA {
        key: "syn-a-b6",
        budget: 6.0,
        epsilon: 0.1,
    }));
    r.register(Arc::new(SynA {
        key: "syn-a-b20",
        budget: 20.0,
        epsilon: 0.3,
    }));
    r.register(Arc::new(HeavyTail));
    r.register(Arc::new(Correlated));
    r.register(Arc::new(Seasonal));
    r.register(Arc::new(Quantal));
    r.register(Arc::new(GeneralSum));
    r.register(Arc::new(Adaptive));
    r.register(Arc::new(Wide {
        key: "syn-wide25",
        full: (25, 6, 6, 6.0),
        small: (25, 5, 4, 6.0),
    }));
    r.register(Arc::new(Wide {
        key: "syn-wide50",
        full: (50, 6, 6, 10.0),
        small: (32, 5, 4, 8.0),
    }));
    r
}

// ---------------------------------------------------------------------
// Syn A variants
// ---------------------------------------------------------------------

/// The paper's Syn A game (Table II) at a fixed budget. The game is fully
/// table-driven, so the seed only affects downstream sampling, not the
/// spec itself.
struct SynA {
    key: &'static str,
    budget: f64,
    epsilon: f64,
}

impl Scenario for SynA {
    fn key(&self) -> &str {
        self.key
    }

    fn source(&self) -> &str {
        "core"
    }

    fn describe(&self) -> String {
        format!(
            "paper Table II synthetic game (4 Gaussian alert types, 5x8 attack grid), budget {}",
            self.budget
        )
    }

    fn suggested_epsilon(&self) -> f64 {
        self.epsilon
    }

    fn build(&self, _seed: u64) -> Result<GameSpec, GameError> {
        Ok(syn_a_with_budget(self.budget))
    }
}

// ---------------------------------------------------------------------
// Heavy-tail benign counts
// ---------------------------------------------------------------------

/// Zipf benign counts: `pmf(n) ∝ (n+1)^{-s}`, exponents per type chosen
/// so higher-value alert types have fatter tails.
struct HeavyTail;

/// Shared generator for the heavy-tail family, parameterized by scale.
fn heavy_tail_game(
    seed: u64,
    caps: [u64; 4],
    n_attackers: usize,
    n_victims: usize,
) -> Result<GameSpec, GameError> {
    const EXPONENTS: [f64; 4] = [2.5, 2.1, 1.8, 1.6];
    const BENEFITS: [f64; 4] = [3.0, 3.6, 4.2, 5.0];
    let mut b = GameSpecBuilder::new();
    for t in 0..4 {
        b.alert_type(
            format!("HT{}", t + 1),
            1.0,
            Arc::new(Zipf::new(EXPONENTS[t], caps[t])),
        );
    }
    let mut rng = stream_rng(seed, 0x4EA7);
    for e in 0..n_attackers {
        let actions: Vec<AttackAction> = (0..n_victims)
            .map(|v| {
                if rng.gen_bool(0.15) {
                    AttackAction::benign(format!("v{v}"), 0.4)
                } else {
                    let t = rng.gen_range(0..4usize);
                    AttackAction::deterministic(format!("v{v}"), t, BENEFITS[t], 0.4, 4.0)
                }
            })
            .collect();
        b.attacker(Attacker::new(format!("e{e}"), 1.0, actions));
    }
    b.budget(4.0);
    b.allow_opt_out(true);
    b.build()
}

impl Scenario for HeavyTail {
    fn key(&self) -> &str {
        "syn-heavy-tail"
    }

    fn source(&self) -> &str {
        "core"
    }

    fn describe(&self) -> String {
        "heavy-tail benign counts: 4 Zipf alert types (s in [1.6, 2.5]), seeded 6x6 attack grid"
            .into()
    }

    fn suggested_epsilon(&self) -> f64 {
        0.3
    }

    fn build(&self, seed: u64) -> Result<GameSpec, GameError> {
        heavy_tail_game(seed, [24, 28, 32, 36], 6, 6)
    }

    fn build_small(&self, seed: u64) -> Result<GameSpec, GameError> {
        heavy_tail_game(seed, [10, 12, 14, 16], 4, 4)
    }
}

// ---------------------------------------------------------------------
// Correlated alert types (latent calm/storm regime)
// ---------------------------------------------------------------------

/// Joint benign-count sampler with a latent per-period regime: draw the
/// regime from fixed weights, then every type from that regime's
/// component distribution. All types surge together in a storm period —
/// the correlation structure the paper's independent-marginal model
/// cannot express. The matching per-type marginal is the [`Mixture`] of
/// the components under the regime weights.
pub struct RegimeMixingCounts {
    weights: Vec<f64>,
    /// `components[r][t]`: type `t`'s law under regime `r`.
    components: Vec<Vec<Arc<dyn CountDistribution>>>,
}

impl RegimeMixingCounts {
    /// Build from regime weights (renormalized) and per-regime component
    /// rows. Every regime must cover the same number of types.
    pub fn new(weights: Vec<f64>, components: Vec<Vec<Arc<dyn CountDistribution>>>) -> Self {
        assert_eq!(weights.len(), components.len(), "one weight per regime");
        assert!(!components.is_empty(), "need at least one regime");
        let n = components[0].len();
        assert!(n > 0, "regimes must cover at least one type");
        assert!(components.iter().all(|c| c.len() == n), "ragged regimes");
        assert!(
            weights.iter().all(|&w| w >= 0.0),
            "regime weights must be non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "regime weights need positive mass");
        Self {
            weights: weights.into_iter().map(|w| w / total).collect(),
            components,
        }
    }

    /// Build from **already-normalized** regime weights, trusting them
    /// bit-for-bit. This is the snapshot-restore path:
    /// [`RegimeMixingCounts::new`] divides by the total, and re-dividing
    /// persisted normalized weights would perturb their low bits and break
    /// bit-exact spec reconstruction.
    pub fn from_normalized(
        weights: Vec<f64>,
        components: Vec<Vec<Arc<dyn CountDistribution>>>,
    ) -> Self {
        assert_eq!(weights.len(), components.len(), "one weight per regime");
        assert!(!components.is_empty(), "need at least one regime");
        let n = components[0].len();
        assert!(n > 0, "regimes must cover at least one type");
        assert!(components.iter().all(|c| c.len() == n), "ragged regimes");
        let total: f64 = weights.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-6 && weights.iter().all(|&w| w >= 0.0),
            "weights must already be normalized"
        );
        Self {
            weights,
            components,
        }
    }

    /// The marginal law of type `t`: the mixture of its per-regime
    /// components under the regime weights.
    pub fn marginal(&self, t: usize) -> Mixture {
        Mixture::new(
            self.weights
                .iter()
                .zip(&self.components)
                .map(|(&w, row)| (w, row[t].clone()))
                .collect(),
        )
    }
}

impl JointCountModel for RegimeMixingCounts {
    fn n_types(&self) -> usize {
        self.components[0].len()
    }

    fn sample_row(&self, _i: usize, rng: &mut dyn rand::RngCore) -> Vec<u64> {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        let mut regime = self.weights.len() - 1;
        for (r, &w) in self.weights.iter().enumerate() {
            acc += w;
            if u <= acc {
                regime = r;
                break;
            }
        }
        self.components[regime]
            .iter()
            .map(|d| d.sample(rng))
            .collect()
    }

    fn snapshot_params(&self) -> Option<JointParams> {
        let components = self
            .components
            .iter()
            .map(|row| {
                row.iter()
                    .map(|d| d.snapshot_params())
                    .collect::<Option<Vec<DistParams>>>()
            })
            .collect::<Option<Vec<_>>>()?;
        Some(JointParams::Regime {
            // Internal (normalized) weights; restore goes through
            // `from_normalized` so they survive bit-for-bit.
            weights: self.weights.clone(),
            components,
        })
    }
}

/// Correlated scenario: calm (75%) vs storm (25%) regimes over 3 alert
/// types, with stochastic attack footprints spanning two types.
struct Correlated;

fn correlated_counts() -> RegimeMixingCounts {
    let calm: Vec<Arc<dyn CountDistribution>> = vec![
        Arc::new(DiscretizedGaussian::with_halfwidth(3.0, 1.2, 3)),
        Arc::new(DiscretizedGaussian::with_halfwidth(2.5, 1.0, 3)),
        Arc::new(DiscretizedGaussian::with_halfwidth(2.0, 0.9, 3)),
    ];
    let storm: Vec<Arc<dyn CountDistribution>> = vec![
        Arc::new(DiscretizedGaussian::with_halfwidth(9.0, 2.5, 6)),
        Arc::new(DiscretizedGaussian::with_halfwidth(8.0, 2.0, 6)),
        Arc::new(DiscretizedGaussian::with_halfwidth(6.0, 1.8, 5)),
    ];
    RegimeMixingCounts::new(vec![0.75, 0.25], vec![calm, storm])
}

fn correlated_game(seed: u64, n_attackers: usize, n_victims: usize) -> Result<GameSpec, GameError> {
    const BENEFITS: [f64; 3] = [3.2, 3.8, 4.5];
    let joint = Arc::new(correlated_counts());
    let mut b = GameSpecBuilder::new();
    for t in 0..3 {
        b.alert_type(format!("C{}", t + 1), 1.0, Arc::new(joint.marginal(t)));
    }
    let mut rng = stream_rng(seed, 0xC0C0);
    for e in 0..n_attackers {
        let actions: Vec<AttackAction> = (0..n_victims)
            .map(|v| {
                // Stochastic footprint: the attack trips one of two
                // adjacent alert types depending on the benign context.
                let t = rng.gen_range(0..3usize);
                let spill = rng.gen_range(0.2..0.45);
                let other = (t + 1) % 3;
                AttackAction {
                    victim: format!("v{v}"),
                    alert_probs: vec![(t, 1.0 - spill), (other, spill)],
                    reward: BENEFITS[t],
                    attack_cost: 0.4,
                    penalty: 4.0,
                }
            })
            .collect();
        b.attacker(Attacker::new(format!("e{e}"), 1.0, actions));
    }
    b.budget(3.0);
    b.allow_opt_out(true);
    b.joint_counts(joint);
    b.build()
}

impl Scenario for Correlated {
    fn key(&self) -> &str {
        "syn-correlated"
    }

    fn source(&self) -> &str {
        "core"
    }

    fn describe(&self) -> String {
        "correlated workload: calm/storm regime mixes 3 Gaussian types, two-type attack footprints"
            .into()
    }

    fn suggested_epsilon(&self) -> f64 {
        0.3
    }

    fn build(&self, seed: u64) -> Result<GameSpec, GameError> {
        correlated_game(seed, 5, 4)
    }

    fn build_small(&self, seed: u64) -> Result<GameSpec, GameError> {
        correlated_game(seed, 4, 3)
    }
}

// ---------------------------------------------------------------------
// Seasonal arrival drift
// ---------------------------------------------------------------------

/// Joint benign-count sampler with a deterministic season cycle: period
/// `i` uses phase `i mod phases.len()`. With a weekly cycle, weekday
/// periods are busy and weekend periods quiet — bursty drift in the
/// arrival intensities. The marginal of each type is the phase-uniform
/// [`Mixture`] of its per-phase laws.
pub struct SeasonalCounts {
    /// `phases[p][t]`: type `t`'s law in phase `p`.
    phases: Vec<Vec<Arc<dyn CountDistribution>>>,
}

impl SeasonalCounts {
    /// Build from per-phase component rows (all the same width).
    pub fn new(phases: Vec<Vec<Arc<dyn CountDistribution>>>) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        let n = phases[0].len();
        assert!(n > 0, "phases must cover at least one type");
        assert!(phases.iter().all(|p| p.len() == n), "ragged phases");
        Self { phases }
    }

    /// The phase-uniform marginal law of type `t`.
    pub fn marginal(&self, t: usize) -> Mixture {
        Mixture::new(
            self.phases
                .iter()
                .map(|row| (1.0, row[t].clone()))
                .collect(),
        )
    }
}

impl JointCountModel for SeasonalCounts {
    fn n_types(&self) -> usize {
        self.phases[0].len()
    }

    fn sample_row(&self, i: usize, rng: &mut dyn rand::RngCore) -> Vec<u64> {
        let phase = &self.phases[i % self.phases.len()];
        phase.iter().map(|d| d.sample(rng)).collect()
    }

    fn snapshot_params(&self) -> Option<JointParams> {
        let phases = self
            .phases
            .iter()
            .map(|row| {
                row.iter()
                    .map(|d| d.snapshot_params())
                    .collect::<Option<Vec<DistParams>>>()
            })
            .collect::<Option<Vec<_>>>()?;
        Some(JointParams::Seasonal { phases })
    }
}

/// Seasonal scenario: a 7-phase weekly cycle (5 busy weekdays, 2 quiet
/// weekend days) over 3 Poisson alert types.
struct Seasonal;

fn seasonal_counts() -> SeasonalCounts {
    let weekday: Vec<Arc<dyn CountDistribution>> = vec![
        Arc::new(Poisson::new(6.0)),
        Arc::new(Poisson::new(4.0)),
        Arc::new(Poisson::new(3.0)),
    ];
    let weekend: Vec<Arc<dyn CountDistribution>> = vec![
        Arc::new(Poisson::new(2.0)),
        Arc::new(Poisson::new(1.5)),
        Arc::new(Poisson::new(1.0)),
    ];
    let mut phases: Vec<Vec<Arc<dyn CountDistribution>>> = Vec::new();
    for _ in 0..5 {
        phases.push(weekday.clone());
    }
    for _ in 0..2 {
        phases.push(weekend.clone());
    }
    SeasonalCounts::new(phases)
}

fn seasonal_game(seed: u64, n_attackers: usize, n_victims: usize) -> Result<GameSpec, GameError> {
    const BENEFITS: [f64; 3] = [3.5, 4.0, 4.6];
    let joint = Arc::new(seasonal_counts());
    let mut b = GameSpecBuilder::new();
    for t in 0..3 {
        b.alert_type(format!("S{}", t + 1), 1.0, Arc::new(joint.marginal(t)));
    }
    let mut rng = stream_rng(seed, 0x5EA5);
    for e in 0..n_attackers {
        let actions: Vec<AttackAction> = (0..n_victims)
            .map(|v| {
                if rng.gen_bool(0.1) {
                    AttackAction::benign(format!("v{v}"), 0.4)
                } else {
                    let t = rng.gen_range(0..3usize);
                    AttackAction::deterministic(format!("v{v}"), t, BENEFITS[t], 0.4, 4.0)
                }
            })
            .collect();
        b.attacker(Attacker::new(format!("e{e}"), 1.0, actions));
    }
    b.budget(4.0);
    b.allow_opt_out(true);
    b.joint_counts(joint);
    b.build()
}

impl Scenario for Seasonal {
    fn key(&self) -> &str {
        "syn-seasonal"
    }

    fn source(&self) -> &str {
        "core"
    }

    fn describe(&self) -> String {
        "seasonal drift: weekly busy/quiet cycle over 3 Poisson types, seeded 4x5 attack grid"
            .into()
    }

    fn suggested_epsilon(&self) -> f64 {
        0.3
    }

    fn build(&self, seed: u64) -> Result<GameSpec, GameError> {
        seasonal_game(seed, 4, 5)
    }

    fn build_small(&self, seed: u64) -> Result<GameSpec, GameError> {
        seasonal_game(seed, 3, 4)
    }
}

// ---------------------------------------------------------------------
// Strategic-attacker families (quantal / general-sum / adaptive)
// ---------------------------------------------------------------------

/// The λ the quantal scenario's attackers respond with: soft enough that
/// dominated actions keep real probability mass, sharp enough that the
/// best response still dominates.
pub const QUANTAL_LAMBDA: f64 = 1.5;

/// Boundedly rational attackers: 3 Gaussian alert types and a seeded
/// attack grid, with [`Scenario::attacker_model`] declaring a
/// quantal-response population at [`QUANTAL_LAMBDA`].
struct Quantal;

fn quantal_game(seed: u64, n_attackers: usize, n_victims: usize) -> Result<GameSpec, GameError> {
    const MEANS: [f64; 3] = [5.0, 4.0, 3.0];
    const STDS: [f64; 3] = [1.5, 1.2, 1.0];
    const BENEFITS: [f64; 3] = [3.0, 3.8, 4.4];
    let mut b = GameSpecBuilder::new();
    for t in 0..3 {
        b.alert_type(
            format!("Q{}", t + 1),
            1.0,
            Arc::new(DiscretizedGaussian::with_halfwidth(MEANS[t], STDS[t], 4)),
        );
    }
    let mut rng = stream_rng(seed, 0x9A7A);
    for e in 0..n_attackers {
        let actions: Vec<AttackAction> = (0..n_victims)
            .map(|v| {
                let t = rng.gen_range(0..3usize);
                let jitter = rng.gen_range(0.0..0.6);
                AttackAction::deterministic(format!("v{v}"), t, BENEFITS[t] + jitter, 0.4, 4.0)
            })
            .collect();
        b.attacker(Attacker::new(format!("e{e}"), 1.0, actions));
    }
    b.budget(3.0);
    b.allow_opt_out(true);
    b.build()
}

impl Scenario for Quantal {
    fn key(&self) -> &str {
        "syn-quantal"
    }

    fn source(&self) -> &str {
        "core"
    }

    fn describe(&self) -> String {
        format!(
            "boundedly rational attackers: 3 Gaussian types, logit responses at lambda {QUANTAL_LAMBDA}"
        )
    }

    fn suggested_epsilon(&self) -> f64 {
        0.3
    }

    fn attacker_model(&self) -> AttackerModel {
        AttackerModel::Quantal(QuantalResponse::new(QUANTAL_LAMBDA))
    }

    fn build(&self, seed: u64) -> Result<GameSpec, GameError> {
        quantal_game(seed, 4, 4)
    }

    fn build_small(&self, seed: u64) -> Result<GameSpec, GameError> {
        quantal_game(seed, 3, 3)
    }
}

/// General-sum damage: the attacker plays the same zero-sum game, but the
/// auditor scores policies by organizational damage (fines dwarfing the
/// insider's gain, partial recovery on detection).
struct GeneralSum;

fn general_sum_game(
    seed: u64,
    n_attackers: usize,
    n_victims: usize,
) -> Result<GameSpec, GameError> {
    const BENEFITS: [f64; 3] = [3.4, 4.0, 4.8];
    let mut b = GameSpecBuilder::new();
    for t in 0..3 {
        b.alert_type(
            format!("G{}", t + 1),
            1.0,
            Arc::new(Poisson::new(4.0 - t as f64)),
        );
    }
    let mut rng = stream_rng(seed, 0x65D0);
    for e in 0..n_attackers {
        let actions: Vec<AttackAction> = (0..n_victims)
            .map(|v| {
                if rng.gen_bool(0.1) {
                    AttackAction::benign(format!("v{v}"), 0.4)
                } else {
                    let t = rng.gen_range(0..3usize);
                    AttackAction::deterministic(format!("v{v}"), t, BENEFITS[t], 0.4, 4.0)
                }
            })
            .collect();
        b.attacker(Attacker::new(format!("e{e}"), 1.0, actions));
    }
    b.budget(3.0);
    b.allow_opt_out(true);
    b.build()
}

impl Scenario for GeneralSum {
    fn key(&self) -> &str {
        "syn-general-sum"
    }

    fn source(&self) -> &str {
        "core"
    }

    fn describe(&self) -> String {
        "general-sum damage: 3 Poisson types, auditor scores 3x reward damage, 0.5x recovery".into()
    }

    fn suggested_epsilon(&self) -> f64 {
        0.3
    }

    fn attacker_model(&self) -> AttackerModel {
        AttackerModel::GeneralSum(DamageModel {
            damage_per_reward: 3.0,
            recovery_per_penalty: 0.5,
        })
    }

    fn build(&self, seed: u64) -> Result<GameSpec, GameError> {
        general_sum_game(seed, 4, 5)
    }

    fn build_small(&self, seed: u64) -> Result<GameSpec, GameError> {
        general_sum_game(seed, 3, 4)
    }
}

/// Adaptive repeated-game attackers: the runtime publishes a policy per
/// epoch and these attackers best-respond to an EWMA belief over the
/// published per-type detection probabilities.
struct Adaptive;

fn adaptive_game(seed: u64, n_attackers: usize, n_victims: usize) -> Result<GameSpec, GameError> {
    const BENEFITS: [f64; 3] = [3.2, 3.9, 4.5];
    let mut b = GameSpecBuilder::new();
    for t in 0..3 {
        b.alert_type(
            format!("A{}", t + 1),
            1.0,
            Arc::new(Poisson::new(4.0 - t as f64)),
        );
    }
    let mut rng = stream_rng(seed, 0xADA7);
    for e in 0..n_attackers {
        let attack_prob = 0.5 + 0.3 * (e as f64 / n_attackers.max(1) as f64);
        let actions: Vec<AttackAction> = (0..n_victims)
            .map(|v| {
                let t = rng.gen_range(0..3usize);
                let jitter = rng.gen_range(0.0..0.5);
                AttackAction::deterministic(format!("v{v}"), t, BENEFITS[t] + jitter, 0.4, 4.0)
            })
            .collect();
        b.attacker(Attacker::new(format!("e{e}"), attack_prob, actions));
    }
    b.budget(3.0);
    b.allow_opt_out(true);
    b.build()
}

impl Scenario for Adaptive {
    fn key(&self) -> &str {
        "syn-adaptive"
    }

    fn source(&self) -> &str {
        "core"
    }

    fn describe(&self) -> String {
        "adaptive repeated-game attackers: 3 Poisson types, EWMA best-response to published policy"
            .into()
    }

    fn suggested_epsilon(&self) -> f64 {
        0.3
    }

    fn attacker_model(&self) -> AttackerModel {
        AttackerModel::Adaptive(AdaptiveConfig { learning_rate: 0.5 })
    }

    fn build(&self, seed: u64) -> Result<GameSpec, GameError> {
        adaptive_game(seed, 4, 4)
    }

    fn build_small(&self, seed: u64) -> Result<GameSpec, GameError> {
        adaptive_game(seed, 3, 3)
    }
}

// ---------------------------------------------------------------------
// Wide-type families (the planner's decomposed tier)
// ---------------------------------------------------------------------

/// Generate a wide-type audit game: `n_types` alert types cycling through
/// small-support Gaussian / Poisson / Zipf count laws (all
/// snapshot-capable), alternating 1.0 / 0.5 audit costs, and a seeded
/// `n_attackers × n_victims` attack grid with rewards rising in the
/// targeted type index. This is the shared generator behind the
/// `syn-wide25` / `syn-wide50` registry families and the `exp_scale`
/// types-vs-latency sweep, which calls it at arbitrary widths.
///
/// Deterministic in `(seed, shape)`; the RNG stream is nonce-separated
/// (`0x51DE`) from every other scenario family.
pub fn wide_game(
    seed: u64,
    n_types: usize,
    n_attackers: usize,
    n_victims: usize,
    budget: f64,
) -> Result<GameSpec, GameError> {
    let mut b = GameSpecBuilder::new();
    for t in 0..n_types {
        let tier = (t / 3) % 3;
        let dist: Arc<dyn CountDistribution> = match t % 3 {
            0 => Arc::new(DiscretizedGaussian::with_halfwidth(
                2.0 + 0.8 * tier as f64,
                1.0,
                2,
            )),
            1 => Arc::new(Poisson::new(0.8 + 0.3 * tier as f64)),
            _ => Arc::new(Zipf::new(2.0 + 0.2 * tier as f64, 4 + (t % 2) as u64 * 2)),
        };
        let cost = if t % 2 == 0 { 1.0 } else { 0.5 };
        b.alert_type(format!("W{t}"), cost, dist);
    }
    let mut rng = stream_rng(seed, 0x51DE);
    for e in 0..n_attackers {
        let actions: Vec<AttackAction> = (0..n_victims)
            .map(|v| {
                if rng.gen_bool(0.1) {
                    return AttackAction::benign(format!("v{v}"), 0.4);
                }
                let t = rng.gen_range(0..n_types);
                // Rewards rise with the targeted type index so the density
                // ranking (and hence the clustering) is non-trivial.
                let reward =
                    3.0 + 3.0 * (t as f64 / n_types.max(1) as f64) + rng.gen_range(0.0..0.5);
                AttackAction::deterministic(format!("v{v}"), t, reward, 0.4, 4.0)
            })
            .collect();
        b.attacker(Attacker::new(format!("e{e}"), 1.0, actions));
    }
    b.budget(budget);
    b.allow_opt_out(true);
    b.build()
}

/// A wide-type registry family: `(types, attackers, victims, budget)` for
/// the full and the CI-scale small build. Both builds keep `types` past
/// the planner's uncapped-ISHM ceiling, so every conformance cell of
/// these scenarios exercises the decomposed tier.
struct Wide {
    key: &'static str,
    full: (usize, usize, usize, f64),
    small: (usize, usize, usize, f64),
}

impl Scenario for Wide {
    fn key(&self) -> &str {
        self.key
    }

    fn source(&self) -> &str {
        "core"
    }

    fn describe(&self) -> String {
        format!(
            "wide-type workload: {} small-support mixed-law alert types, seeded {}x{} attack grid, budget {} (planner decomposed tier)",
            self.full.0, self.full.1, self.full.2, self.full.3
        )
    }

    fn suggested_epsilon(&self) -> f64 {
        0.5
    }

    fn build(&self, seed: u64) -> Result<GameSpec, GameError> {
        let (t, e, v, budget) = self.full;
        wide_game(seed, t, e, v, budget)
    }

    fn build_small(&self, seed: u64) -> Result<GameSpec, GameError> {
        let (t, e, v, budget) = self.small;
        wide_game(seed, t, e, v, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{OapSolver, SolverConfig};

    #[test]
    fn core_registry_lists_the_builtins() {
        let r = registry();
        assert_eq!(
            r.keys(),
            vec![
                "syn-a",
                "syn-a-b6",
                "syn-a-b20",
                "syn-heavy-tail",
                "syn-correlated",
                "syn-seasonal",
                "syn-quantal",
                "syn-general-sum",
                "syn-adaptive",
                "syn-wide25",
                "syn-wide50"
            ]
        );
        assert_eq!(r.len(), 11);
        assert!(!r.is_empty());
    }

    #[test]
    fn unknown_key_lists_known_keys() {
        let r = registry();
        let err = r.resolve("nope").map(|_| ()).unwrap_err();
        match err {
            GameError::UnknownScenario { key, known } => {
                assert_eq!(key, "nope");
                assert!(known.contains(&"syn-a".to_string()));
            }
            other => panic!("expected UnknownScenario, got {other:?}"),
        }
    }

    #[test]
    #[should_panic]
    fn duplicate_registration_panics() {
        let mut r = registry();
        r.register(Arc::new(HeavyTail));
    }

    #[test]
    fn every_core_scenario_builds_and_validates() {
        let r = registry();
        for sc in r.iter() {
            let seed = sc.default_seed();
            let full = sc.build(seed).unwrap();
            full.validate().unwrap();
            let small = sc.build_small(seed).unwrap();
            small.validate().unwrap();
            assert!(
                small.n_actions() <= full.n_actions(),
                "{}: small variant larger than full",
                sc.key()
            );
            assert_eq!(sc.source(), "core");
            assert!(!sc.describe().is_empty());
            assert!(sc.suggested_epsilon() > 0.0);
        }
    }

    #[test]
    fn builds_are_deterministic_in_the_seed() {
        let r = registry();
        for sc in r.iter() {
            let a = sc.build(3).unwrap().fingerprint();
            let b = sc.build(3).unwrap().fingerprint();
            assert_eq!(a, b, "{} not reproducible", sc.key());
        }
        // Seeded generators must actually respond to the seed.
        for key in [
            "syn-heavy-tail",
            "syn-correlated",
            "syn-seasonal",
            "syn-quantal",
            "syn-general-sum",
            "syn-adaptive",
            "syn-wide25",
            "syn-wide50",
        ] {
            let sc = r.get(key).unwrap();
            assert_ne!(
                sc.build(3).unwrap().fingerprint(),
                sc.build(4).unwrap().fingerprint(),
                "{key} ignores its seed"
            );
        }
    }

    #[test]
    fn attacker_models_are_declared_where_expected() {
        let r = registry();
        for (key, want) in [
            ("syn-a", "rational"),
            ("syn-seasonal", "rational"),
            ("syn-quantal", "quantal"),
            ("syn-general-sum", "general-sum"),
            ("syn-adaptive", "adaptive"),
        ] {
            let sc = r.get(key).unwrap();
            assert_eq!(sc.attacker_model().key(), want, "{key}");
        }
        match r.get("syn-quantal").unwrap().attacker_model() {
            AttackerModel::Quantal(qr) => assert_eq!(qr.lambda, QUANTAL_LAMBDA),
            other => panic!("expected quantal, got {other:?}"),
        }
        match r.get("syn-adaptive").unwrap().attacker_model() {
            AttackerModel::Adaptive(cfg) => assert!(cfg.learning_rate > 0.0),
            other => panic!("expected adaptive, got {other:?}"),
        }
    }

    #[test]
    fn alert_stream_has_the_requested_shape() {
        let r = registry();
        for sc in r.iter() {
            let stream = sc.alert_stream(1, 9).unwrap();
            let spec = sc.build(1).unwrap();
            assert_eq!(stream.len(), 9, "{}", sc.key());
            assert!(stream.iter().all(|row| row.len() == spec.n_types()));
        }
    }

    #[test]
    fn wide_scenarios_have_the_declared_widths() {
        let r = registry();
        for (key, full, small) in [("syn-wide25", 25, 25), ("syn-wide50", 50, 32)] {
            let sc = r.get(key).unwrap();
            assert_eq!(sc.build(0).unwrap().n_types(), full, "{key}");
            assert_eq!(sc.build_small(0).unwrap().n_types(), small, "{key}");
            // Both builds live past the uncapped-ISHM ceiling, so every
            // solve of these scenarios runs the planner's decomposed tier.
            assert!(small > crate::planner::ISHM_FULL_MAX_TYPES);
            assert_eq!(sc.attacker_model().key(), "rational", "{key}");
        }
    }

    #[test]
    fn correlated_bank_moves_types_together() {
        let spec = registry().build("syn-correlated", 0).unwrap();
        let bank = spec.sample_bank(4000, 11);
        // Empirical covariance between types 0 and 1 must be clearly
        // positive: storms lift both.
        let (m0, m1) = (bank.mean_count(0), bank.mean_count(1));
        let cov: f64 = bank
            .rows()
            .map(|r| (r[0] as f64 - m0) * (r[1] as f64 - m1))
            .sum::<f64>()
            / bank.n_samples() as f64;
        assert!(cov > 1.0, "expected strong positive covariance, got {cov}");
    }

    #[test]
    fn seasonal_bank_cycles_weekday_weekend() {
        let spec = registry().build("syn-seasonal", 0).unwrap();
        let bank = spec.sample_bank(700, 5);
        let mut weekday_sum = 0u64;
        let mut weekend_sum = 0u64;
        let mut weekday_n = 0u64;
        let mut weekend_n = 0u64;
        for (i, row) in bank.rows().enumerate() {
            if i % 7 < 5 {
                weekday_sum += row[0];
                weekday_n += 1;
            } else {
                weekend_sum += row[0];
                weekend_n += 1;
            }
        }
        let weekday_mean = weekday_sum as f64 / weekday_n as f64;
        let weekend_mean = weekend_sum as f64 / weekend_n as f64;
        assert!(
            weekday_mean > weekend_mean + 2.0,
            "weekday {weekday_mean} vs weekend {weekend_mean}"
        );
    }

    #[test]
    fn bank_source_regenerate_matches_direct_build() {
        let r = registry();
        let sc = r.get("syn-seasonal").unwrap();
        let (spec, bank) = BankSource::Regenerate { seed: 5 }
            .resolve(sc.as_ref(), 48)
            .unwrap();
        let direct = sc.build(5).unwrap();
        assert_eq!(spec.fingerprint(), direct.fingerprint());
        assert_eq!(
            bank.columns_flat(),
            direct.sample_bank(48, 5).columns_flat()
        );
    }

    #[test]
    fn bank_source_snapshot_roundtrips_and_verifies() {
        use crate::persist::save_scenario_snapshot;
        let r = registry();
        let sc = r.get("syn-correlated").unwrap();
        let spec = sc.build(9).unwrap();
        let bank = spec.sample_bank(32, 9);
        let dir = std::env::temp_dir().join(format!("audit-banksource-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corr.snap");
        save_scenario_snapshot(&path, sc.key(), 9, &spec, &bank).unwrap();

        let source = BankSource::Snapshot {
            path: path.clone(),
            verify: SnapshotVerify::Rebuild,
        };
        let (loaded_spec, loaded_bank) = source.resolve(sc.as_ref(), 32).unwrap();
        assert_eq!(loaded_spec.fingerprint(), spec.fingerprint());
        assert_eq!(loaded_bank.columns_flat(), bank.columns_flat());

        // The rebuild-free mode agrees bit-for-bit on an authentic file.
        let fast = BankSource::Snapshot {
            path: path.clone(),
            verify: SnapshotVerify::Fingerprint,
        };
        let (fast_spec, fast_bank) = fast.resolve(sc.as_ref(), 32).unwrap();
        assert_eq!(fast_spec.fingerprint(), spec.fingerprint());
        assert_eq!(fast_bank.columns_flat(), bank.columns_flat());

        // Wrong scenario: the key check fires.
        let other = r.get("syn-seasonal").unwrap();
        assert!(matches!(
            source.resolve(other.as_ref(), 32),
            Err(GameError::Persist(
                crate::persist::PersistError::Provenance(_)
            ))
        ));
        // Wrong sample count: the shape check fires.
        assert!(matches!(
            source.resolve(sc.as_ref(), 64),
            Err(GameError::Persist(
                crate::persist::PersistError::Provenance(_)
            ))
        ));
        // The registry convenience resolves the same pair.
        let (spec2, bank2) = r.build_banked("syn-correlated", &source, 32).unwrap();
        assert_eq!(spec2.fingerprint(), spec.fingerprint());
        assert_eq!(bank2.columns_flat(), bank.columns_flat());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn small_scenarios_solve_through_the_facade() {
        let r = registry();
        for key in [
            "syn-heavy-tail",
            "syn-correlated",
            "syn-seasonal",
            "syn-quantal",
            "syn-general-sum",
            "syn-adaptive",
        ] {
            let sc = r.get(key).unwrap();
            let spec = sc.build_small(sc.default_seed()).unwrap();
            let sol = OapSolver::new(SolverConfig {
                n_samples: 40,
                epsilon: 0.5,
                ..Default::default()
            })
            .solve(&spec)
            .unwrap_or_else(|e| panic!("{key} failed to solve: {e}"));
            assert!(sol.loss.is_finite(), "{key}");
            assert!(sol.loss <= spec.max_possible_loss() + 1e-9, "{key}");
        }
    }
}
