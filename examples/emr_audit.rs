//! EMR privacy-audit scenario (the paper's Rea A use case, end to end):
//! simulate a hospital's access logs, fit alert-count models, solve the
//! audit game, and compare the policy against the naive baselines.
//!
//! ```text
//! cargo run --release --example emr_audit
//! ```

use alert_audit::game::baselines::{greedy_by_benefit_loss, random_orders_loss};
use alert_audit::game::cggs::CggsConfig;
use alert_audit::game::detection::{DetectionEstimator, DetectionModel};
use alert_audit::game::ishm::{CggsEvaluator, Ishm, IshmConfig};

fn main() {
    // 1. Resolve the Rea A scenario from the registry: it simulates the
    //    hospital + 28 days of access logs and assembles the game
    //    (50 employees × 50 patients; see emrsim::scenario).
    let registry = alert_audit::scenario::registry();
    let scenario = registry.get("emr-reaa").expect("registered").clone();
    let mut spec = scenario.build(42).expect("Rea A builds");
    spec.budget = 40.0;

    // The scenario's native alert stream is the simulated daily workload;
    // its per-type means reproduce the shape of paper Table VIII.
    let stream = scenario.alert_stream(42, 28).expect("simulates");
    println!("simulated daily alert counts (cf. paper Table VIII):");
    for t in 0..spec.n_types() {
        let mean: f64 = stream.iter().map(|row| row[t] as f64).sum::<f64>() / stream.len() as f64;
        println!("  {:<38} mean {:>7.2}", spec.alert_types[t].name, mean);
    }

    // 2. Solve with ISHM + CGGS (7 types → 5040 orderings, so column
    //    generation is the only viable inner solver).
    let working = spec.dedup_actions();
    let bank = working.sample_bank(400, 1);
    let est = DetectionEstimator::new(&working, &bank, DetectionModel::PaperApprox);
    let ishm = Ishm::new(IshmConfig {
        epsilon: 0.2,
        ..Default::default()
    });
    let mut eval = CggsEvaluator::new(&working, est, CggsConfig::default());
    let outcome = ishm.solve(&working, &mut eval).expect("ISHM solves");

    println!("\ngame-theoretic audit policy @ budget {}:", working.budget);
    println!("  auditor loss: {:.2}", outcome.value);
    for (t, b) in outcome.thresholds.iter().enumerate() {
        println!("  {:<38} threshold {:>4.0}", working.alert_types[t].name, b);
    }
    println!(
        "  mixture support: {} orders",
        outcome
            .master
            .p_orders
            .iter()
            .filter(|&&p| p > 1e-4)
            .count()
    );

    // 3. Baselines for context (Figure 1's comparison).
    let rnd_orders =
        random_orders_loss(&working, &est, &outcome.thresholds, 500, 3).expect("baseline");
    let greedy = greedy_by_benefit_loss(&working, &est).expect("baseline");
    println!("\nbaseline losses:");
    println!("  random audit order:      {rnd_orders:.2}");
    println!("  greedy by benefit:       {greedy:.2}");
    println!(
        "  game-theoretic policy:   {:.2}  (lower is better)",
        outcome.value
    );

    // 4. How many attackers are deterred outright?
    let deterred = outcome
        .master
        .u_attackers
        .iter()
        .filter(|&&u| u <= 1e-6)
        .count();
    println!(
        "\n{deterred} of {} potential attackers are fully deterred",
        working.n_attackers()
    );
}
