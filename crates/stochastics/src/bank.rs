//! Common-random-number sample banks.
//!
//! The detection probability `Pal(o, b, t) ≈ E_Z[n_t(o,b,Z)/Z_t]` (eq. 1 of
//! the paper) is estimated by Monte Carlo over joint count realizations
//! `Z = (Z_1, …, Z_|T|)`. ISHM's accept/reject test compares objective values
//! of *different* threshold vectors; if each evaluation drew fresh samples,
//! sampling noise would routinely flip comparisons and derail the search.
//! A [`SampleBank`] therefore freezes one matrix of realizations per solver
//! run and evaluates every candidate policy on the same rows ("common random
//! numbers"). The `ablation_crn` benchmark quantifies what goes wrong
//! without this.

use crate::discrete::CountDistribution;
use crate::rng::stream_rng;
use crate::snapshot::JointParams;

/// A joint sampler of per-period count vectors `Z = (Z_1, …, Z_|T|)`.
///
/// The paper's model draws each type independently from its marginal `F_t`,
/// which is what [`SampleBank::generate`] does. Scenarios with *correlated*
/// benign workload (a latent calm/storm regime lifting every type at once,
/// or a seasonal weekday/weekend cycle) instead implement this trait:
/// [`SampleBank::generate_joint`] asks the model for one full row per
/// sample. Implementations must be deterministic functions of
/// `(sample_index, rng)` — the bank derives one RNG stream per row from the
/// master seed, so row `s` never depends on how many rows are drawn around
/// it.
pub trait JointCountModel: Send + Sync {
    /// Number of alert types per row.
    fn n_types(&self) -> usize;

    /// Draw realization `sample_index` using the provided per-row stream.
    /// `sample_index` is made available so deterministic structure (e.g. a
    /// season phase cycling with the period) can depend on the period
    /// itself rather than on RNG state.
    fn sample_row(&self, sample_index: usize, rng: &mut dyn rand::RngCore) -> Vec<u64>;

    /// Constructor parameters for persistence, or `None` when the model
    /// cannot be snapshotted. The default keeps ad-hoc test models out of
    /// the persistence layer; the registry's concrete models override it.
    fn snapshot_params(&self) -> Option<JointParams> {
        None
    }
}

/// A frozen matrix of joint alert-count realizations.
///
/// Row `s` is one realization of the benign workload: `row(s)[t]` is the
/// number of benign type-`t` alerts in sample `s`. Types are sampled
/// independently, matching the paper's per-type `F_t` model.
///
/// The matrix is stored in **both** orientations: row-major for per-sample
/// walks (one realization at a time) and column-major for per-type walks
/// ([`SampleBank::column`]), which is what the batched `Pal` engine streams
/// — for a fixed type in the audit order it touches one contiguous column
/// instead of striding through every row. The duplication costs
/// `8·|T|·S` bytes (a few hundred KB at experiment scale) and buys the
/// dominant hot loop sequential memory access.
///
/// When every count fits in 32 bits (validated once at build time — true
/// for every realistic alert workload), a **compact `u32` mirror** of the
/// column-major layout is kept as well ([`SampleBank::compact_column`]):
/// the hot columns the detection engine streams then occupy half the
/// footprint. Counts widen back to `u64` before any arithmetic, so the
/// compact path is bit-identical to the wide one; banks with counts above
/// `u32::MAX` simply fall back to the `u64` columns.
#[derive(Debug, Clone)]
pub struct SampleBank {
    n_types: usize,
    n_samples: usize,
    /// Row-major `n_samples × n_types`.
    data: Vec<u64>,
    /// Column-major `n_types × n_samples` mirror of `data`.
    cols: Vec<u64>,
    /// Compact column-major mirror, present when all counts fit in `u32`.
    cols32: Option<Vec<u32>>,
}

/// A contiguous block of bank rows (samples `start..start + len`).
///
/// Produced by [`SampleBank::par_chunks`]. Chunk boundaries depend only on
/// the bank shape and the requested chunk size — never on how many workers
/// consume them — so any reduction that combines per-chunk partials *in
/// chunk order* is deterministic and independent of thread count. (Note
/// that the batched `Pal` engine does not row-parallelize: it splits work
/// by policy to stay bit-identical to the scalar path. This iterator is
/// the seam for future reductions that accept chunk-ordered summation.)
#[derive(Debug, Clone, Copy)]
pub struct BankChunk<'a> {
    /// Row-major slice `len × n_types`.
    rows: &'a [u64],
    n_types: usize,
    start: usize,
}

impl<'a> BankChunk<'a> {
    /// Index of the first bank row in this chunk.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of rows in this chunk.
    pub fn len(&self) -> usize {
        self.rows.len() / self.n_types
    }

    /// Whether the chunk holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterate over the chunk's realizations in bank order.
    pub fn rows(&self) -> impl Iterator<Item = &'a [u64]> {
        self.rows.chunks_exact(self.n_types)
    }
}

impl SampleBank {
    /// Draw `n_samples` joint realizations from per-type distributions.
    ///
    /// Each type is sampled from its own derived RNG stream so that adding
    /// or removing a type does not perturb the draws of the others.
    pub fn generate(dists: &[Box<dyn CountDistribution>], n_samples: usize, seed: u64) -> Self {
        Self::generate_from(dists.iter().map(|d| d.as_ref()), n_samples, seed)
    }

    /// As [`SampleBank::generate`] but borrowing unboxed distributions.
    pub fn generate_from<'a, I>(dists: I, n_samples: usize, seed: u64) -> Self
    where
        I: IntoIterator<Item = &'a dyn CountDistribution>,
    {
        let dists: Vec<&dyn CountDistribution> = dists.into_iter().collect();
        let n_types = dists.len();
        assert!(n_types > 0, "need at least one alert type");
        assert!(n_samples > 0, "need at least one sample");
        let mut data = vec![0u64; n_samples * n_types];
        for (t, dist) in dists.iter().enumerate() {
            let mut rng = stream_rng(seed, t as u64);
            for s in 0..n_samples {
                data[s * n_types + t] = dist.sample(&mut rng);
            }
        }
        Self::from_row_major(n_types, n_samples, data)
    }

    /// Draw `n_samples` joint realizations from a correlated count model.
    ///
    /// Each row gets its own RNG stream derived from `(seed, row index)`,
    /// mirroring the per-type streams of [`SampleBank::generate`]: the
    /// draws of row `s` are independent of `n_samples`, so growing the bank
    /// extends it without perturbing existing rows.
    pub fn generate_joint(model: &dyn JointCountModel, n_samples: usize, seed: u64) -> Self {
        let n_types = model.n_types();
        assert!(n_types > 0, "need at least one alert type");
        assert!(n_samples > 0, "need at least one sample");
        let mut data = Vec::with_capacity(n_samples * n_types);
        for s in 0..n_samples {
            // Stream labels offset by a large constant so joint banks never
            // collide with the per-type streams of `generate`.
            let mut rng = stream_rng(seed, 0x4A01_0000_0000_0000u64 ^ s as u64);
            let row = model.sample_row(s, &mut rng);
            assert_eq!(row.len(), n_types, "joint model returned a ragged row");
            data.extend_from_slice(&row);
        }
        Self::from_row_major(n_types, n_samples, data)
    }

    /// Build from explicit rows (used by tests and the hardness reduction,
    /// where `Z` is deterministic).
    pub fn from_rows(rows: Vec<Vec<u64>>) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let n_types = rows[0].len();
        assert!(n_types > 0, "rows must be non-empty");
        let n_samples = rows.len();
        let mut data = Vec::with_capacity(n_samples * n_types);
        for row in &rows {
            assert_eq!(row.len(), n_types, "ragged sample rows");
            data.extend_from_slice(row);
        }
        Self::from_row_major(n_types, n_samples, data)
    }

    /// Build both layouts from a row-major matrix.
    fn from_row_major(n_types: usize, n_samples: usize, data: Vec<u64>) -> Self {
        debug_assert_eq!(data.len(), n_samples * n_types);
        let mut cols = vec![0u64; n_samples * n_types];
        for (s, row) in data.chunks_exact(n_types).enumerate() {
            for (t, &z) in row.iter().enumerate() {
                cols[t * n_samples + s] = z;
            }
        }
        let cols32 = Self::derive_compact(&cols);
        Self {
            n_types,
            n_samples,
            data,
            cols,
            cols32,
        }
    }

    /// Build both layouts from a column-major matrix (`n_types × n_samples`,
    /// the orientation snapshots persist).
    pub fn from_column_major(n_types: usize, n_samples: usize, cols: Vec<u64>) -> Self {
        assert!(n_types > 0, "need at least one alert type");
        assert!(n_samples > 0, "need at least one sample");
        assert_eq!(cols.len(), n_samples * n_types, "column matrix shape");
        let mut data = vec![0u64; n_samples * n_types];
        // Row-outer order keeps the writes streaming (the reads advance
        // `n_types` sequential column cursors) — the transposed loop
        // scatters writes at a `n_types`-word stride and is several times
        // slower on the million-row banks the snapshot path loads.
        for (s, row) in data.chunks_exact_mut(n_types).enumerate() {
            for (t, slot) in row.iter_mut().enumerate() {
                *slot = cols[t * n_samples + s];
            }
        }
        let cols32 = Self::derive_compact(&cols);
        Self {
            n_types,
            n_samples,
            data,
            cols,
            cols32,
        }
    }

    /// The one place the compact-mirror validation lives: every
    /// constructor funnels through this, so the "all counts fit `u32`"
    /// check cannot drift between the generate / joint / explicit-row /
    /// snapshot-load paths. Counts beyond `u32` (never seen in practice)
    /// keep the `u64` fallback.
    fn derive_compact(cols: &[u64]) -> Option<Vec<u32>> {
        cols.iter()
            .map(|&z| u32::try_from(z).ok())
            .collect::<Option<Vec<u32>>>()
    }

    /// Number of alert types per row.
    pub fn n_types(&self) -> usize {
        self.n_types
    }

    /// Number of realizations.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// One realization of the joint count vector `Z`.
    #[inline]
    pub fn row(&self, s: usize) -> &[u64] {
        &self.data[s * self.n_types..(s + 1) * self.n_types]
    }

    /// Iterate over all realizations.
    pub fn rows(&self) -> impl Iterator<Item = &[u64]> {
        self.data.chunks_exact(self.n_types)
    }

    /// All realizations of type `t`, contiguous in memory: `column(t)[s]`
    /// equals `row(s)[t]`. This is the layout the batched `Pal` engine
    /// streams type-by-type.
    #[inline]
    pub fn column(&self, t: usize) -> &[u64] {
        assert!(t < self.n_types, "type index out of range");
        &self.cols[t * self.n_samples..(t + 1) * self.n_samples]
    }

    /// The compact (`u32`) mirror of [`SampleBank::column`], or `None`
    /// when some count exceeds `u32::MAX` and the bank fell back to the
    /// wide columns. Values are bit-equal after widening, so consumers can
    /// prefer this layout for half the memory traffic without changing any
    /// result.
    #[inline]
    pub fn compact_column(&self, t: usize) -> Option<&[u32]> {
        assert!(t < self.n_types, "type index out of range");
        self.cols32
            .as_ref()
            .map(|c| &c[t * self.n_samples..(t + 1) * self.n_samples])
    }

    /// Whether the compact `u32` column mirror is present (all counts fit).
    pub fn has_compact_columns(&self) -> bool {
        self.cols32.is_some()
    }

    /// The full column-major matrix (`n_types × n_samples`, type-contiguous)
    /// — the authoritative layout the snapshot writer persists.
    pub fn columns_flat(&self) -> &[u64] {
        &self.cols
    }

    /// The full compact column-major mirror, when present.
    pub fn compact_columns_flat(&self) -> Option<&[u32]> {
        self.cols32.as_deref()
    }

    /// Split the bank into contiguous row blocks of (at most) `chunk_rows`
    /// rows each, suitable for handing to parallel workers.
    ///
    /// The boundaries depend only on `n_samples` and `chunk_rows`, so a
    /// reduction over per-chunk partials taken in chunk order yields the
    /// same result no matter how many threads consume the iterator.
    pub fn par_chunks(&self, chunk_rows: usize) -> impl Iterator<Item = BankChunk<'_>> {
        assert!(chunk_rows > 0, "chunk size must be positive");
        let n_types = self.n_types;
        self.data
            .chunks(chunk_rows * n_types)
            .enumerate()
            .map(move |(i, rows)| BankChunk {
                rows,
                n_types,
                start: i * chunk_rows,
            })
    }

    /// Sample mean count of type `t` across the bank.
    pub fn mean_count(&self, t: usize) -> f64 {
        let sum: u64 = self.column(t).iter().sum();
        sum as f64 / self.n_samples as f64
    }

    /// Largest observed count of type `t` in the bank.
    pub fn max_count(&self, t: usize) -> u64 {
        self.column(t).iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discrete::{Constant, DiscretizedGaussian, UniformCount};

    fn dists() -> Vec<Box<dyn CountDistribution>> {
        vec![
            Box::new(DiscretizedGaussian::with_halfwidth(6.0, 2.0, 5)),
            Box::new(UniformCount::new(0, 4)),
            Box::new(Constant(3)),
        ]
    }

    #[test]
    fn shape_and_determinism() {
        let a = SampleBank::generate(&dists(), 500, 99);
        let b = SampleBank::generate(&dists(), 500, 99);
        assert_eq!(a.n_samples(), 500);
        assert_eq!(a.n_types(), 3);
        assert_eq!(a.data, b.data);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SampleBank::generate(&dists(), 200, 1);
        let b = SampleBank::generate(&dists(), 200, 2);
        assert_ne!(a.data, b.data);
    }

    #[test]
    fn per_type_streams_are_stable() {
        // Adding a new type must not change the draws of existing types.
        let all = dists();
        let narrow = SampleBank::generate_from(all[..2].iter().map(|d| d.as_ref()), 100, 5);
        let wide = SampleBank::generate(&all, 100, 5);
        for s in 0..100 {
            assert_eq!(narrow.row(s)[0], wide.row(s)[0]);
            assert_eq!(narrow.row(s)[1], wide.row(s)[1]);
        }
    }

    #[test]
    fn constant_column_is_constant() {
        let bank = SampleBank::generate(&dists(), 50, 3);
        assert!(bank.rows().all(|r| r[2] == 3));
        assert_eq!(bank.max_count(2), 3);
        assert!((bank.mean_count(2) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_tracks_distribution() {
        let bank = SampleBank::generate(&dists(), 20_000, 11);
        assert!((bank.mean_count(0) - 6.0).abs() < 0.1);
        assert!((bank.mean_count(1) - 2.0).abs() < 0.1);
    }

    struct PhaseShift;

    impl JointCountModel for PhaseShift {
        fn n_types(&self) -> usize {
            2
        }

        fn sample_row(&self, sample_index: usize, rng: &mut dyn rand::RngCore) -> Vec<u64> {
            let base = (sample_index % 3) as u64 * 10;
            let d = UniformCount::new(0, 4);
            vec![base + d.sample(rng), base + d.sample(rng)]
        }
    }

    #[test]
    fn joint_bank_is_deterministic_and_row_stable() {
        let a = SampleBank::generate_joint(&PhaseShift, 30, 7);
        let b = SampleBank::generate_joint(&PhaseShift, 30, 7);
        assert_eq!(a.data, b.data);
        // Per-row streams: extending the bank keeps the prefix bit-identical.
        let longer = SampleBank::generate_joint(&PhaseShift, 60, 7);
        for s in 0..30 {
            assert_eq!(a.row(s), longer.row(s));
        }
        // The deterministic phase structure survives into the rows.
        for s in 0..30 {
            let base = (s % 3) as u64 * 10;
            assert!(a.row(s).iter().all(|&z| (base..base + 5).contains(&z)));
        }
    }

    #[test]
    fn from_rows_roundtrip() {
        let bank = SampleBank::from_rows(vec![vec![1, 2], vec![3, 4], vec![5, 6]]);
        assert_eq!(bank.n_samples(), 3);
        assert_eq!(bank.row(1), &[3, 4]);
        assert_eq!(bank.max_count(1), 6);
    }

    #[test]
    #[should_panic]
    fn ragged_rows_rejected() {
        SampleBank::from_rows(vec![vec![1, 2], vec![3]]);
    }

    #[test]
    fn columns_mirror_rows() {
        let bank = SampleBank::generate(&dists(), 137, 42);
        for t in 0..bank.n_types() {
            let col = bank.column(t);
            assert_eq!(col.len(), bank.n_samples());
            for (s, &z) in col.iter().enumerate() {
                assert_eq!(z, bank.row(s)[t], "mismatch at ({s}, {t})");
            }
        }
    }

    #[test]
    fn compact_columns_mirror_wide_columns() {
        let bank = SampleBank::generate(&dists(), 137, 42);
        assert!(bank.has_compact_columns());
        for t in 0..bank.n_types() {
            let wide = bank.column(t);
            let compact = bank.compact_column(t).expect("small counts fit u32");
            assert_eq!(compact.len(), wide.len());
            for (&c, &w) in compact.iter().zip(wide) {
                assert_eq!(u64::from(c), w);
            }
        }
    }

    #[test]
    fn oversized_counts_fall_back_to_wide_columns() {
        let big = u64::from(u32::MAX) + 7;
        let bank = SampleBank::from_rows(vec![vec![1, big], vec![2, 3]]);
        assert!(!bank.has_compact_columns());
        assert_eq!(bank.compact_column(0), None);
        assert_eq!(bank.compact_column(1), None);
        assert_eq!(bank.column(1), &[big, 3]);
    }

    #[test]
    fn from_column_major_mirrors_row_major() {
        let bank = SampleBank::generate(&dists(), 73, 21);
        let rebuilt =
            SampleBank::from_column_major(bank.n_types(), bank.n_samples(), bank.cols.clone());
        assert_eq!(rebuilt.data, bank.data);
        assert_eq!(rebuilt.cols, bank.cols);
        assert_eq!(rebuilt.cols32, bank.cols32);
    }

    #[test]
    #[should_panic]
    fn from_column_major_rejects_bad_shape() {
        SampleBank::from_column_major(2, 3, vec![0; 5]);
    }

    #[test]
    fn par_chunks_cover_every_row_in_order() {
        let bank = SampleBank::generate(&dists(), 103, 8);
        for chunk_rows in [1, 7, 50, 103, 200] {
            let mut seen = 0usize;
            for chunk in bank.par_chunks(chunk_rows) {
                assert_eq!(chunk.start(), seen);
                assert!(chunk.len() <= chunk_rows);
                assert!(!chunk.is_empty());
                for (i, row) in chunk.rows().enumerate() {
                    assert_eq!(row, bank.row(seen + i));
                }
                seen += chunk.len();
            }
            assert_eq!(seen, bank.n_samples(), "chunk_rows={chunk_rows}");
        }
    }

    #[test]
    fn chunk_boundaries_independent_of_consumer_count() {
        // The contract the batch engine relies on: boundaries are a pure
        // function of (n_samples, chunk_rows).
        let bank = SampleBank::generate(&dists(), 64, 1);
        let a: Vec<(usize, usize)> = bank.par_chunks(10).map(|c| (c.start(), c.len())).collect();
        let b: Vec<(usize, usize)> = bank.par_chunks(10).map(|c| (c.start(), c.len())).collect();
        assert_eq!(a, b);
        assert_eq!(a.last(), Some(&(60, 4)));
    }

    #[test]
    #[should_panic]
    fn zero_chunk_size_rejected() {
        let bank = SampleBank::from_rows(vec![vec![1]]);
        let _ = bank.par_chunks(0).count();
    }
}
