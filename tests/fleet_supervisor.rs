//! The supervised fleet's fault-tolerance contract.
//!
//! A [`FaultPlan`] quarantining k of N tenants must leave the run
//! completing, exactly the planned tenants `Failed`/`Recovered`, and the
//! unaffected tenants bit-identical to the fault-free run — at every
//! worker count. A tenant whose only fault strikes *before* any state
//! mutation (solver panic, malformed epoch) must recover
//! fingerprint-identical to its fault-free self, because retries resume
//! from the last good state and consumed faults never re-fire. An empty
//! plan must change nothing at all.

use alert_audit::scenario::registry;
use audit_game::solver::{DegradeReason, InnerKind, SolverConfig};
use audit_runtime::{
    AuditService, DriftConfig, FaultPlan, FaultSite, FleetConfig, FleetReport, FleetService,
    RetryPolicy, RuntimeConfig, TenantHealth, TenantSpec,
};
use std::sync::Arc;
use stochastics::rng::derive_seed;

fn tenant_config(seed: u64) -> RuntimeConfig {
    RuntimeConfig {
        epochs: 3,
        periods_per_epoch: 4,
        seed,
        solver: SolverConfig {
            inner: InnerKind::Cggs,
            n_samples: 40,
            epsilon: 0.5,
            ..Default::default()
        },
        drift: DriftConfig::default(),
        warm_start: true,
        compare_cold: false,
    }
}

fn tenants(n: usize) -> Vec<TenantSpec> {
    let reg = registry();
    let scenario = reg.get("syn-a").unwrap().clone();
    (0..n)
        .map(|i| TenantSpec {
            name: format!("t{i}"),
            scenario: Arc::clone(&scenario),
            config: tenant_config(derive_seed(7, i as u64)),
        })
        .collect()
}

fn run_with(n: usize, workers: usize, plan: FaultPlan, retry: RetryPolicy) -> FleetReport {
    FleetService::new(
        tenants(n),
        FleetConfig {
            workers,
            share_caches: true,
            fault_plan: plan,
            retry,
        },
    )
    .run()
    .unwrap()
}

fn health_of<'a>(report: &'a FleetReport, name: &str) -> &'a TenantHealth {
    &report
        .tenants
        .iter()
        .find(|t| t.tenant == name)
        .unwrap_or_else(|| panic!("no tenant {name}"))
        .health
}

/// Satellite (a): a tenant that panics mid-epoch no longer aborts the
/// fleet (the old scheduler died on a poisoned tenant-slot mutex). With
/// retries disabled the tenant fails terminally; everyone else finishes
/// healthy and bit-identical to the fault-free run.
#[test]
fn panicking_tenant_no_longer_aborts_the_fleet() {
    let plan = FaultPlan::new().inject("t1", 2, FaultSite::SolverPanic);
    let no_retry = RetryPolicy {
        max_retries: 0,
        backoff_rounds: 1,
    };
    let chaos = run_with(4, 2, plan, no_retry);
    let baseline = run_with(4, 2, FaultPlan::new(), no_retry);

    match health_of(&chaos, "t1") {
        TenantHealth::Failed { cause, .. } => {
            assert!(cause.contains("solver-panic"), "cause: {cause}")
        }
        h => panic!("t1 should have failed terminally, got {}", h.key()),
    }
    // The failed tenant keeps the partial report its last good state
    // supports: exactly the one epoch completed before the panic.
    let t1 = chaos.tenants.iter().find(|t| t.tenant == "t1").unwrap();
    assert_eq!(t1.report.epochs.len(), 1);

    let untouched: Vec<String> = ["t0", "t2", "t3"].iter().map(|s| s.to_string()).collect();
    for name in &untouched {
        assert!(health_of(&chaos, name).is_healthy(), "{name} not healthy");
    }
    assert_eq!(
        chaos.subset_fingerprint(&untouched),
        baseline.subset_fingerprint(&untouched),
        "unaffected tenants diverged from the fault-free run"
    );
    assert_eq!(chaos.health_counts(), (3, 0, 1));
}

/// The headline contract: a plan quarantining k of N tenants leaves
/// exactly those tenants non-healthy, and the untouched subset
/// bit-identical to the fault-free run — at workers 1, 2, and 4, with
/// the whole chaos fingerprint invariant across worker counts.
#[test]
fn quarantine_isolates_faults_at_every_worker_count() {
    // t1: one panic -> recovered. t3: three panics -> retry budget (2)
    // exhausted -> failed. t0, t2, t4, t5 untouched.
    let plan = FaultPlan::new()
        .inject("t1", 1, FaultSite::SolverPanic)
        .inject("t3", 1, FaultSite::SolverPanic)
        .inject("t3", 2, FaultSite::SolverPanic)
        .inject("t3", 3, FaultSite::SolverPanic);
    let retry = RetryPolicy::default();
    let untouched: Vec<String> = ["t0", "t2", "t4", "t5"]
        .iter()
        .map(|s| s.to_string())
        .collect();

    let baseline = run_with(6, 2, FaultPlan::new(), retry);
    let mut fingerprints = Vec::new();
    for workers in [1usize, 2, 4] {
        let chaos = run_with(6, workers, plan.clone(), retry);
        assert_eq!(
            health_of(&chaos, "t1").key(),
            "recovered",
            "workers {workers}"
        );
        assert_eq!(health_of(&chaos, "t3").key(), "failed", "workers {workers}");
        for name in &untouched {
            assert!(health_of(&chaos, name).is_healthy(), "{name} not healthy");
        }
        assert_eq!(
            chaos.subset_fingerprint(&untouched),
            baseline.subset_fingerprint(&untouched),
            "workers {workers}: unaffected tenants diverged"
        );
        fingerprints.push(chaos.fingerprint());
    }
    assert_eq!(fingerprints[0], fingerprints[1]);
    assert_eq!(fingerprints[0], fingerprints[2]);
}

/// A retried tenant resumes from its last good state and the consumed
/// fault never re-fires, so when the only faults strike *before* any
/// state mutation — a solver panic or a malformed epoch rejection — the
/// recovered tenant's report is fingerprint-identical to its fault-free
/// self.
#[test]
fn recovered_tenants_are_fingerprint_identical_to_fault_free() {
    for site in [FaultSite::SolverPanic, FaultSite::MalformedEpoch] {
        let plan = FaultPlan::new().inject("t2", 2, site);
        let chaos = run_with(4, 2, plan, RetryPolicy::default());
        let baseline = run_with(4, 2, FaultPlan::new(), RetryPolicy::default());

        let health = health_of(&chaos, "t2");
        assert_eq!(health.key(), "recovered", "site {site}");
        assert_eq!(health.failures().len(), 1);
        let t2 = chaos.tenants.iter().find(|t| t.tenant == "t2").unwrap();
        let b2 = baseline.tenants.iter().find(|t| t.tenant == "t2").unwrap();
        assert_eq!(
            t2.report.fingerprint(),
            b2.report.fingerprint(),
            "site {site}: recovered tenant diverged from its fault-free run"
        );
        assert_eq!(t2.report.epochs.len(), 3);
    }
}

/// A cold-start panic (round 0) is retried from scratch and recovers
/// fingerprint-identical too.
#[test]
fn cold_start_panic_recovers_from_scratch() {
    let plan = FaultPlan::new().inject("t0", 0, FaultSite::SolverPanic);
    let chaos = run_with(2, 1, plan, RetryPolicy::default());
    let baseline = run_with(2, 1, FaultPlan::new(), RetryPolicy::default());
    assert_eq!(health_of(&chaos, "t0").key(), "recovered");
    assert_eq!(
        chaos.tenants[0].report.fingerprint(),
        baseline.tenants[0].report.fingerprint()
    );
    assert_eq!(chaos.tenants[0].report.epochs.len(), 3);
}

/// Absorbed faults (empty epoch, budget exhaustion) never quarantine:
/// the tenant stays supervisor-healthy, serves every epoch, and records
/// the degradation in its fingerprinted telemetry instead.
#[test]
fn absorbed_faults_degrade_without_quarantine() {
    let plan = FaultPlan::new()
        .inject("t0", 2, FaultSite::EmptyEpoch)
        .inject("t1", 2, FaultSite::BudgetExhaust)
        .inject("t2", 2, FaultSite::SolveError);
    let chaos = run_with(3, 2, plan, RetryPolicy::default());
    assert_eq!(chaos.health_counts(), (3, 0, 0));
    for t in &chaos.tenants {
        assert_eq!(t.report.epochs.len(), 3, "{} lost epochs", t.tenant);
    }

    // Budget exhaustion forces a re-solve that must still commit a
    // feasible policy, with the degradation recorded.
    let t1 = &chaos.tenants[1].report.epochs[1];
    let degrade = t1.degrade.expect("budget-exhausted epoch records degrade");
    assert!(matches!(
        degrade,
        DegradeReason::Truncated | DegradeReason::Degraded { .. }
    ));
    assert!(t1.objective.is_finite());
    assert!(!t1.thresholds.is_empty());

    // A failed committed re-solve re-commits the incumbent.
    let t2 = &chaos.tenants[2].report.epochs[1];
    assert_eq!(t2.degrade, Some(DegradeReason::KeptIncumbent));
    assert!(!t2.resolved);
}

/// The zero-change guarantee: an empty plan (the default) is bit-identical
/// to the pre-supervisor scheduler's output, plan or no plan.
#[test]
fn empty_plan_is_bit_identical_to_default_config() {
    let explicit = run_with(3, 2, FaultPlan::new(), RetryPolicy::default());
    let via_default = FleetService::new(
        tenants(3),
        FleetConfig {
            workers: 2,
            ..FleetConfig::default()
        },
    )
    .run()
    .unwrap();
    assert_eq!(explicit.fingerprint(), via_default.fingerprint());
    assert_eq!(explicit.health_counts(), (3, 0, 0));
    assert_eq!(
        explicit.healthy_fingerprint(),
        explicit.subset_fingerprint(&explicit.healthy_names())
    );

    // And the single-tenant fleet still reproduces the plain service run.
    let solo = AuditService::new(
        registry().get("syn-a").unwrap().clone(),
        tenant_config(derive_seed(7, 0)),
    )
    .run()
    .unwrap();
    assert_eq!(explicit.tenants[0].report.fingerprint(), solo.fingerprint());
}
