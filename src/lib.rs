//! # alert-audit — game-theoretic prioritization of database auditing
//!
//! Umbrella crate for the reproduction of *Yan et al., "Get Your Workload
//! in Order: Game Theoretic Prioritization of Database Auditing"* (ICDE
//! 2018). It re-exports the workspace crates so downstream users can depend
//! on a single package:
//!
//! * [`game`] (`audit-game`) — the Stackelberg alert-prioritization game:
//!   model, detection math, CGGS, ISHM, brute force, baselines;
//! * [`lp`] (`lp-solver`) — the two-phase simplex substrate with duals;
//! * [`stochastics`] — count distributions and CRN sample banks;
//! * [`tdmt`] — the rule-based alert engine substrate;
//! * [`emr`] (`emrsim`) — the synthetic EMR workload (Rea A substitute);
//! * [`credit`] (`creditsim`) — the synthetic credit dataset (Rea B
//!   substitute).
//!
//! On top of the re-exports, this crate hosts the cross-crate glue:
//!
//! * [`runtime`] (`audit-runtime`) — the online epoch-based auditing
//!   service: streaming workload fits, drift-gated warm re-solving,
//!   structured telemetry;
//! * [`scenario`] — the full scenario registry assembling the core
//!   synthetic families with the `emrsim` / `creditsim` / `tdmt`
//!   workloads under string keys;
//! * [`conformance`] — the golden conformance harness solving every
//!   registry scenario under every solver/detection-model combination
//!   (snapshots in `tests/golden/`);
//! * [`persist`] — the facade over the columnar snapshot stack: binary
//!   container, scenario snapshots (spec + bank), and runtime service
//!   checkpoints for warm restarts;
//! * [`json`] — the minimal JSON layer behind the snapshots (the offline
//!   serde shim has no data format);
//! * [`telemetry`] — JSON rendering of the runtime's epoch telemetry
//!   (the `exp_online` wire format and the `BENCH_runtime.json`
//!   artifact).
//!
//! See `examples/` for runnable end-to-end scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology.
//!
//! ## Quick start
//!
//! ```
//! use alert_audit::prelude::*;
//!
//! // The paper's synthetic game (Table II) at budget 4.
//! let spec = alert_audit::game::datasets::syn_a_with_budget(4.0);
//! let solver = OapSolver::new(SolverConfig { n_samples: 200, epsilon: 0.25, ..Default::default() });
//! let solution = solver.solve(&spec).unwrap();
//! assert!(solution.loss < spec.max_possible_loss());
//! ```

#![warn(missing_docs)]

pub use audit_game as game;
pub use audit_runtime as runtime;
pub use creditsim as credit;
pub use emrsim as emr;
pub use lp_solver as lp;
pub use stochastics;
pub use tdmt;

pub mod conformance;
pub mod json;
pub mod persist;
pub mod scenario;
pub mod telemetry;

/// One-stop re-exports for application code.
pub mod prelude {
    pub use audit_game::prelude::*;
}
