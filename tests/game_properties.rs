//! Property-based tests of game-level invariants on randomly generated
//! instances.

use alert_audit::game::datasets::{random_game, RandomGameConfig};
use alert_audit::game::detection::{DetectionEstimator, DetectionModel};
use alert_audit::game::master::MasterSolver;
use alert_audit::game::ordering::AuditOrder;
use alert_audit::game::payoff::PayoffMatrix;
use proptest::prelude::*;

fn cfg(n_types: usize, opt_out: bool, budget: f64) -> RandomGameConfig {
    RandomGameConfig {
        n_types,
        n_attackers: 4,
        n_victims: 6,
        budget,
        allow_opt_out: opt_out,
        benign_prob: 0.15,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The game value is a saddle point: no attacker can gain by deviating
    /// (loss under best responses equals the LP value), and every pure
    /// auditor order does at least as badly as the mixture.
    #[test]
    fn master_value_is_a_saddle_point(seed in 0u64..500, opt_out in any::<bool>()) {
        let spec = random_game(&cfg(3, opt_out, 4.0), seed);
        let bank = spec.sample_bank(60, seed);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let orders = AuditOrder::enumerate_all(3);
        let thresholds = vec![3.0, 3.0, 3.0];
        let m = PayoffMatrix::build(&spec, &est, orders, &thresholds);
        let sol = MasterSolver::solve(&spec, &m).unwrap();

        // (a) realized loss of the mixture equals the LP value;
        let loss = m.loss_under_mixture(&spec, &sol.p_orders);
        prop_assert!((loss - sol.value).abs() < 1e-6,
            "loss {loss} vs value {}", sol.value);

        // (b) every pure strategy is weakly worse for the auditor.
        for k in 0..m.n_orders() {
            let mut pure = vec![0.0; m.n_orders()];
            pure[k] = 1.0;
            let pure_loss = m.loss_under_mixture(&spec, &pure);
            prop_assert!(pure_loss >= sol.value - 1e-6,
                "pure order {k} loss {pure_loss} beats value {}", sol.value);
        }

        // (c) u_e decomposition: Σ p_e·u_e = value.
        let decomposed: f64 = spec.attackers.iter().zip(&sol.u_attackers)
            .map(|(a, &u)| a.attack_prob * u)
            .sum();
        prop_assert!((decomposed - sol.value).abs() < 1e-6);
    }

    /// Raising the budget can only help the auditor.
    #[test]
    fn value_monotone_in_budget(seed in 0u64..200) {
        let mut prev = f64::INFINITY;
        for budget in [1.0, 3.0, 6.0, 12.0] {
            let spec = random_game(&cfg(3, false, budget), seed);
            let bank = spec.sample_bank(60, 99);
            let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
            let orders = AuditOrder::enumerate_all(3);
            let thresholds = spec.threshold_upper_bounds();
            let m = PayoffMatrix::build(&spec, &est, orders, &thresholds);
            let v = MasterSolver::solve(&spec, &m).unwrap().value;
            prop_assert!(v <= prev + 1e-6, "budget {budget}: {v} > {prev}");
            prev = v;
        }
    }

    /// With opting out allowed, the value is capped by the no-opt-out value
    /// and floored at... nothing specific, but each u_e must be ≥ 0.
    #[test]
    fn opt_out_only_helps_attackers_stay_home(seed in 0u64..200) {
        let spec_free = random_game(&cfg(3, true, 4.0), seed);
        let mut spec_locked = spec_free.clone();
        spec_locked.allow_opt_out = false;
        let bank = spec_free.sample_bank(60, 5);
        let est_free = DetectionEstimator::new(&spec_free, &bank, DetectionModel::PaperApprox);
        let est_locked = DetectionEstimator::new(&spec_locked, &bank, DetectionModel::PaperApprox);
        let orders = AuditOrder::enumerate_all(3);
        let thresholds = vec![3.0, 3.0, 3.0];

        let m_free = PayoffMatrix::build(&spec_free, &est_free, orders.clone(), &thresholds);
        let sol_free = MasterSolver::solve(&spec_free, &m_free).unwrap();
        let m_locked = PayoffMatrix::build(&spec_locked, &est_locked, orders, &thresholds);
        let sol_locked = MasterSolver::solve(&spec_locked, &m_locked).unwrap();

        for &u in &sol_free.u_attackers {
            prop_assert!(u >= -1e-7, "opt-out attacker with negative utility {u}");
        }
        // Opting out floors each attacker's utility at 0, so the total can
        // only be ≥ the unconstrained (possibly negative) total.
        prop_assert!(sol_free.value >= sol_locked.value - 1e-6);
    }

    /// Pal is a probability vector and is monotone in thresholds.
    #[test]
    fn pal_bounds_and_monotonicity(seed in 0u64..300) {
        let spec = random_game(&cfg(3, false, 5.0), seed);
        let bank = spec.sample_bank(80, seed ^ 7);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let order = AuditOrder::identity(3);
        let lo = vec![1.0, 1.0, 1.0];
        let hi = vec![4.0, 4.0, 4.0];
        let pal_lo = est.pal(&order, &lo);
        let pal_hi = est.pal(&order, &hi);
        for t in 0..3 {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&pal_lo[t]));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&pal_hi[t]));
        }
        // The FIRST type in the order can only gain from its own threshold
        // increasing (later types may lose budget, so no global claim).
        prop_assert!(pal_hi[0] >= pal_lo[0] - 1e-9);
    }

    /// Dedup never changes the game value.
    #[test]
    fn dedup_is_value_preserving(seed in 0u64..200) {
        let spec = random_game(&RandomGameConfig {
            n_victims: 10,
            ..cfg(3, true, 4.0)
        }, seed);
        let deduped = spec.dedup_actions();
        let bank = spec.sample_bank(50, 3);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let est_d = DetectionEstimator::new(&deduped, &bank, DetectionModel::PaperApprox);
        let orders = AuditOrder::enumerate_all(3);
        let thresholds = vec![2.0, 2.0, 2.0];
        let v = MasterSolver::solve(
            &spec,
            &PayoffMatrix::build(&spec, &est, orders.clone(), &thresholds),
        ).unwrap().value;
        let vd = MasterSolver::solve(
            &deduped,
            &PayoffMatrix::build(&deduped, &est_d, orders, &thresholds),
        ).unwrap().value;
        prop_assert!((v - vd).abs() < 1e-7, "dedup changed value {v} -> {vd}");
    }
}
