//! Structured telemetry of the epoch loop.
//!
//! One [`EpochTelemetry`] record per epoch, collected into a
//! [`RuntimeReport`]. Everything except wall-clock latency is
//! deterministic given the service seed, and [`RuntimeReport::fingerprint`]
//! hashes exactly that deterministic subset — the property suite pins
//! "same config ⇒ same fingerprint" across reruns and thread counts.

use audit_game::detection::CacheStats;
use audit_game::solver::DegradeReason;
use serde::{Deserialize, Serialize};

/// Telemetry of one epoch of the service loop.
///
/// `objective` and `thresholds` describe the policy committed *at the end
/// of* the epoch (i.e. after any re-solve the epoch triggered);
/// `predicted_pal` belongs to the policy that was *executed* during the
/// epoch (the vector `pal_gap` was computed against — on a re-solve epoch
/// that is the superseded incumbent); `epochs_since_resolve` is the
/// incumbent's age as seen by the drift gate, before any reset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochTelemetry {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Periods executed this epoch.
    pub periods: usize,
    /// Benign alerts raised per type over the epoch.
    pub alerts_seen: Vec<u64>,
    /// Benign alerts audited per type over the epoch.
    pub alerts_audited: Vec<u64>,
    /// Mean budget spent per period.
    pub mean_spent: f64,
    /// Realized per-type audit rate `audited/seen` (0 where none seen) —
    /// the operational estimate of the detection probability an attack
    /// alert of that type would have faced this epoch.
    pub realized_rate: Vec<f64>,
    /// The executed policy's predicted mixture `Pal` per type.
    pub predicted_pal: Vec<f64>,
    /// Mean absolute gap between predicted `Pal` and realized rate — the
    /// per-epoch regret of trusting the model's detection forecast.
    pub pal_gap: f64,
    /// Worst-type KS distance of the recent window vs the committed model.
    pub max_ks: f64,
    /// Whether the drift gate tripped this epoch.
    pub drift: bool,
    /// Whether a re-solve was committed this epoch (drift or staleness).
    pub resolved: bool,
    /// Incumbent age in epochs when the gate ran.
    pub epochs_since_resolve: usize,
    /// Predicted loss of the committed policy.
    pub objective: f64,
    /// Committed per-type thresholds.
    pub thresholds: Vec<f64>,
    /// Simulated strategic attacks launched this epoch (0 for scenarios
    /// with the rational paper attacker — no attack traffic is injected).
    pub attacks_launched: u64,
    /// Of those, how many the executed policy caught.
    pub attacks_detected: u64,
    /// Realized total attacker utility over the epoch's attacks.
    pub attacker_utility: f64,
    /// Realized auditor damage under the scenario's damage model
    /// (negative contributions are recovered value on detection).
    pub auditor_damage: f64,
    /// Threshold vectors the re-solve explored (LP evaluations), when one
    /// ran — the deterministic cost measure of the solve.
    pub solve_explored: Option<usize>,
    /// Wall-clock milliseconds of the committed re-solve, when one ran.
    /// **Excluded from the fingerprint** (nondeterministic).
    pub solve_millis: Option<f64>,
    /// Shadow cold solve objective (only with `compare_cold`).
    pub cold_objective: Option<f64>,
    /// Shadow cold solve explored count (only with `compare_cold`).
    pub cold_explored: Option<usize>,
    /// Shadow cold solve wall-clock milliseconds. **Excluded from the
    /// fingerprint.**
    pub cold_millis: Option<f64>,
    /// How the committed re-solve degraded under its work budget, when it
    /// did: ladder fallback ([`DegradeReason::Degraded`]), exhausted floor
    /// ([`DegradeReason::Truncated`]), or solve failure absorbed by
    /// keeping the incumbent ([`DegradeReason::KeptIncumbent`]). `None`
    /// on epochs with no re-solve or an undegraded one.
    pub degrade: Option<DegradeReason>,
    /// Whether the drift gate's KS statistic was clamped this epoch
    /// because a committed count model carried non-finite mass (see
    /// [`crate::online::OnlineFit::max_ks_guarded`]).
    pub ks_degenerate: bool,
}

/// The full telemetry log of one service run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RuntimeReport {
    /// Scenario key the service ran on.
    pub scenario: String,
    /// Service seed.
    pub seed: u64,
    /// Periods per epoch.
    pub periods_per_epoch: usize,
    /// Objective of the initial (cold) solve.
    pub initial_objective: f64,
    /// Wall-clock milliseconds of the initial solve. **Excluded from the
    /// fingerprint.**
    pub initial_solve_millis: f64,
    /// Detection-engine counters summed over the initial solve and every
    /// *committed* re-solve (shadow cold solves are excluded) — the
    /// observability behind `exp_online --cache-stats`. Deterministic, but
    /// **excluded from the fingerprint**: the fingerprint pins observable
    /// behaviour (policies, audits, objectives), not evaluator internals,
    /// so engine tuning cannot shift recorded fingerprints.
    pub engine_cache: CacheStats,
    /// Per-epoch records.
    pub epochs: Vec<EpochTelemetry>,
}

impl RuntimeReport {
    /// Number of committed re-solves across the run.
    pub fn resolves(&self) -> usize {
        self.epochs.iter().filter(|e| e.resolved).count()
    }

    /// Number of epochs whose drift gate tripped.
    pub fn drift_epochs(&self) -> usize {
        self.epochs.iter().filter(|e| e.drift).count()
    }

    /// Total periods executed.
    pub fn total_periods(&self) -> usize {
        self.epochs.iter().map(|e| e.periods).sum()
    }

    /// FNV-1a fingerprint of the deterministic telemetry content.
    ///
    /// Covers every field of every record **except** wall-clock latency
    /// (`*_millis`), so two runs of the same configuration — at any thread
    /// count — hash identically, and any behavioural difference (one extra
    /// audit, one shifted threshold, one missed drift) changes the hash.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.bytes(self.scenario.as_bytes());
        h.word(self.seed);
        h.word(self.periods_per_epoch as u64);
        h.word(self.initial_objective.to_bits());
        h.word(self.epochs.len() as u64);
        for e in &self.epochs {
            h.word(e.epoch as u64);
            h.word(e.periods as u64);
            for &z in &e.alerts_seen {
                h.word(z);
            }
            for &z in &e.alerts_audited {
                h.word(z);
            }
            h.word(e.mean_spent.to_bits());
            for &r in &e.realized_rate {
                h.word(r.to_bits());
            }
            for &p in &e.predicted_pal {
                h.word(p.to_bits());
            }
            h.word(e.pal_gap.to_bits());
            h.word(e.max_ks.to_bits());
            h.word(e.drift as u64);
            h.word(e.resolved as u64);
            h.word(e.epochs_since_resolve as u64);
            h.word(e.objective.to_bits());
            for &b in &e.thresholds {
                h.word(b.to_bits());
            }
            h.word(e.attacks_launched);
            h.word(e.attacks_detected);
            h.word(e.attacker_utility.to_bits());
            h.word(e.auditor_damage.to_bits());
            h.word(e.solve_explored.map(|n| n as u64 + 1).unwrap_or(0));
            // Presence bit first: `Some(0.0)` hashes as bits 0, which a
            // bare unwrap_or(0) would conflate with `None`.
            h.word(e.cold_objective.is_some() as u64);
            h.word(e.cold_objective.map(f64::to_bits).unwrap_or(0));
            h.word(e.cold_explored.map(|n| n as u64 + 1).unwrap_or(0));
            // Robustness fields hash only when set: a fault-free,
            // unbudgeted run carries none of them and its fingerprint is
            // bit-identical to the pre-supervisor encoding.
            if let Some(d) = &e.degrade {
                h.word(0xDE64_4ADE);
                h.word(d.code());
            }
            if e.ks_degenerate {
                h.word(0x6B73_6E61);
            }
        }
        h.finish()
    }
}

/// Aggregate statistics over the re-solve epochs of a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResolveStats {
    /// Committed re-solves.
    pub resolves: usize,
    /// Mean wall-clock milliseconds of the committed re-solves.
    pub mean_solve_millis: f64,
    /// Mean wall-clock milliseconds of the shadow cold solves (only when
    /// the run compared against cold).
    pub mean_cold_millis: Option<f64>,
    /// `mean_cold_millis / mean_solve_millis` — how much cheaper the
    /// committed (warm) re-solve was than a cold one.
    pub speedup: Option<f64>,
    /// Worst `committed − cold` objective gap across re-solves; at most
    /// ~0 when warm-starting (the warm start is value-equivalent to the
    /// cold start, so warm can only match or beat cold).
    pub max_objective_gap: Option<f64>,
}

impl RuntimeReport {
    /// Aggregate the re-solve epochs, or `None` if the run never re-solved.
    pub fn resolve_stats(&self) -> Option<ResolveStats> {
        let resolved: Vec<&EpochTelemetry> = self.epochs.iter().filter(|e| e.resolved).collect();
        if resolved.is_empty() {
            return None;
        }
        let mean = |xs: Vec<f64>| xs.iter().sum::<f64>() / xs.len() as f64;
        let mean_solve_millis = mean(
            resolved
                .iter()
                .filter_map(|e| e.solve_millis)
                .collect::<Vec<_>>(),
        );
        let cold: Vec<f64> = resolved.iter().filter_map(|e| e.cold_millis).collect();
        let mean_cold_millis = (!cold.is_empty()).then(|| mean(cold));
        let speedup = mean_cold_millis.map(|c| c / mean_solve_millis);
        let max_objective_gap = resolved
            .iter()
            .filter_map(|e| e.cold_objective.map(|c| e.objective - c))
            .fold(None, |acc: Option<f64>, g| {
                Some(acc.map_or(g, |a| a.max(g)))
            });
        Some(ResolveStats {
            resolves: resolved.len(),
            mean_solve_millis,
            mean_cold_millis,
            speedup,
            max_objective_gap,
        })
    }
}

/// FNV-1a, the same construction as `GameSpec::fingerprint`. Shared with
/// the fleet layer, whose report fingerprint folds per-tenant
/// [`RuntimeReport::fingerprint`]s through the same hash.
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn word(&mut self, x: u64) {
        self.bytes(&x.to_le_bytes());
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(epoch: usize) -> EpochTelemetry {
        EpochTelemetry {
            epoch,
            periods: 5,
            alerts_seen: vec![10, 20],
            alerts_audited: vec![4, 8],
            mean_spent: 3.5,
            realized_rate: vec![0.4, 0.4],
            predicted_pal: vec![0.45, 0.38],
            pal_gap: 0.035,
            max_ks: 0.12,
            drift: false,
            resolved: false,
            epochs_since_resolve: epoch,
            objective: 7.25,
            thresholds: vec![3.0, 2.0],
            attacks_launched: 0,
            attacks_detected: 0,
            attacker_utility: 0.0,
            auditor_damage: 0.0,
            solve_explored: None,
            solve_millis: None,
            cold_objective: None,
            cold_explored: None,
            cold_millis: None,
            degrade: None,
            ks_degenerate: false,
        }
    }

    fn report() -> RuntimeReport {
        RuntimeReport {
            scenario: "syn-seasonal".into(),
            seed: 7,
            periods_per_epoch: 5,
            initial_objective: 7.25,
            initial_solve_millis: 12.0,
            engine_cache: CacheStats::default(),
            epochs: vec![record(0), record(1)],
        }
    }

    #[test]
    fn fingerprint_ignores_wall_clock_latency() {
        let a = report();
        let mut b = report();
        b.initial_solve_millis = 9999.0;
        b.epochs[1].solve_millis = Some(123.4);
        b.epochs[1].cold_millis = Some(0.1);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_sees_behavioural_changes() {
        let a = report();
        for mutate in [
            |r: &mut RuntimeReport| r.epochs[0].alerts_audited[1] += 1,
            |r: &mut RuntimeReport| r.epochs[1].drift = true,
            |r: &mut RuntimeReport| r.epochs[1].resolved = true,
            |r: &mut RuntimeReport| r.epochs[0].thresholds[0] = 2.0,
            |r: &mut RuntimeReport| r.epochs[1].solve_explored = Some(0),
            // Some(0.0) must hash apart from None (presence bit).
            |r: &mut RuntimeReport| r.epochs[1].cold_objective = Some(0.0),
            |r: &mut RuntimeReport| r.seed = 8,
            |r: &mut RuntimeReport| r.epochs[0].attacks_launched = 1,
            |r: &mut RuntimeReport| r.epochs[0].attacks_detected = 1,
            |r: &mut RuntimeReport| r.epochs[1].attacker_utility = 2.5,
            |r: &mut RuntimeReport| r.epochs[1].auditor_damage = -1.0,
            |r: &mut RuntimeReport| {
                r.epochs[1].degrade = Some(DegradeReason::Degraded { tiers: 1 })
            },
            |r: &mut RuntimeReport| r.epochs[1].degrade = Some(DegradeReason::Truncated),
            |r: &mut RuntimeReport| r.epochs[1].degrade = Some(DegradeReason::KeptIncumbent),
            |r: &mut RuntimeReport| r.epochs[0].ks_degenerate = true,
        ] {
            let mut b = report();
            mutate(&mut b);
            assert_ne!(a.fingerprint(), b.fingerprint());
        }
    }

    #[test]
    fn counters_aggregate_records() {
        let mut r = report();
        r.epochs[1].resolved = true;
        r.epochs[1].drift = true;
        assert_eq!(r.resolves(), 1);
        assert_eq!(r.drift_epochs(), 1);
        assert_eq!(r.total_periods(), 10);
    }
}
