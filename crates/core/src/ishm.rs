//! Iterative Shrink Heuristic Method (paper Algorithm 2).
//!
//! ISHM searches the (continuous) threshold space by starting from the
//! full-coverage vector `Ĥ_t = C_t · max supp(F_t)` — above which
//! `F_t(b_t/C_t) ≈ 1` and further budget is wasted (Section III-B) — and
//! repeatedly *shrinking* subsets of thresholds by a ratio `1 − i·ε`:
//!
//! * level `lh` enumerates all `C(|T|, lh)` subsets of that size;
//! * for each shrink ratio (coarse to fine: `i = 1 … ⌈1/ε⌉`) the best
//!   subset at the current level is evaluated through the inner LP;
//! * the first strict improvement is accepted and the search *restarts* at
//!   level 1; when a full ratio sweep yields no improvement the level
//!   increases, and the search terminates once `lh > |T|`.
//!
//! The inner evaluation (one LP per candidate) is pluggable: exact
//! enumeration of all orderings for small `|T|` or [`crate::cggs::Cggs`]
//! column generation for large `|T|` — the two variants compared in paper
//! Tables IV and V.

use crate::cggs::{Cggs, CggsConfig};
use crate::detection::{DetectionEstimator, PalEngine, PalQuery};
use crate::error::GameError;
use crate::master::{MasterSolution, MasterSolver};
use crate::model::GameSpec;
use crate::ordering::AuditOrder;
use crate::payoff::PayoffMatrix;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// All `k`-element subsets of `0..n` in lexicographic order (the `choose`
/// of Algorithm 2, line 4).
pub fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    assert!(k <= n, "cannot choose {k} of {n}");
    let mut out = Vec::new();
    let mut combo: Vec<usize> = (0..k).collect();
    if k == 0 {
        out.push(Vec::new());
        return out;
    }
    loop {
        out.push(combo.clone());
        // Advance to the next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if combo[i] != i + n - k {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        combo[i] += 1;
        for j in i + 1..k {
            combo[j] = combo[j - 1] + 1;
        }
    }
}

/// Evaluates the auditor's objective for a candidate threshold vector by
/// solving the induced LP. Implementations may cache across calls.
pub trait ThresholdEvaluator {
    /// Objective value (auditor's loss) under `thresholds`.
    fn evaluate(&mut self, thresholds: &[f64]) -> Result<f64, GameError>;

    /// Full policy (master solution + its order columns) under `thresholds`.
    fn solve_full(
        &mut self,
        thresholds: &[f64],
    ) -> Result<(MasterSolution, Vec<AuditOrder>), GameError>;

    /// Hint that `evaluate` is about to be called for each of `candidates`
    /// (ISHM announces every `(level, ratio)` sweep batch this way):
    /// implementations may evaluate the whole frontier jointly — e.g. one
    /// prefix-trie batch over every `(order, candidate)` pair — and serve
    /// the subsequent `evaluate` calls from their memo. Results must be
    /// bit-identical to evaluating each candidate alone; the default
    /// does nothing, leaving all work to `evaluate`.
    fn prime(&mut self, _candidates: &[Vec<f64>]) -> Result<(), GameError> {
        Ok(())
    }
}

/// Inner evaluator that materializes **all** feasible orderings — exact but
/// exponential in `|T|` (paper Table IV path).
///
/// Holds a [`PalEngine`] for the whole ISHM run, so `Pal` estimates are
/// shared across every candidate threshold vector the search revisits, and
/// an objective memo keyed by the engine's **canonical threshold class**
/// (saturated coordinates collapse), so revisited and
/// detection-equivalent candidates skip the master LP entirely. (ISHM
/// revisits a lot: different shrink ratios floor onto the same lattice
/// point, each accepted improvement restarts the level-1 sweep, and the
/// early search shrinks thresholds that are still above the saturation
/// point.) [`ThresholdEvaluator::prime`] evaluates a whole sweep batch as
/// one `(order × candidate)` trie frontier, so candidates differing in a
/// single coordinate share every audit prefix that avoids it.
pub struct ExactEvaluator<'a> {
    spec: &'a GameSpec,
    engine: PalEngine<'a>,
    orders: Vec<AuditOrder>,
    values: HashMap<Vec<u64>, f64>,
}

impl<'a> ExactEvaluator<'a> {
    /// Build with the full order set and a single-threaded engine.
    pub fn new(spec: &'a GameSpec, est: DetectionEstimator<'a>) -> Self {
        Self::with_threads(spec, est, 1)
    }

    /// Build with the full order set and `threads` batch workers.
    pub fn with_threads(spec: &'a GameSpec, est: DetectionEstimator<'a>, threads: usize) -> Self {
        let orders = AuditOrder::enumerate_all(spec.n_types());
        Self::from_engine(spec, PalEngine::new(est, threads), orders)
    }

    /// Build with an explicit (e.g. precedence-filtered) order set.
    pub fn with_orders(
        spec: &'a GameSpec,
        est: DetectionEstimator<'a>,
        orders: Vec<AuditOrder>,
    ) -> Self {
        Self::from_engine(spec, PalEngine::new(est, 1), orders)
    }

    /// Build from a caller-configured engine (benchmarks use this to
    /// compare cached against uncached evaluation).
    pub fn from_engine(spec: &'a GameSpec, engine: PalEngine<'a>, orders: Vec<AuditOrder>) -> Self {
        assert!(!orders.is_empty(), "order set must be non-empty");
        Self {
            spec,
            engine,
            orders,
            values: HashMap::new(),
        }
    }

    /// The engine backing this evaluator.
    pub fn engine(&self) -> &PalEngine<'a> {
        &self.engine
    }
}

impl ThresholdEvaluator for ExactEvaluator<'_> {
    fn evaluate(&mut self, thresholds: &[f64]) -> Result<f64, GameError> {
        let key = self.engine.threshold_class_key(thresholds);
        if let Some(&v) = self.values.get(&key) {
            return Ok(v);
        }
        let m = PayoffMatrix::build_with_engine(
            self.spec,
            &self.engine,
            self.orders.clone(),
            thresholds,
        );
        let v = MasterSolver::solve(self.spec, &m)?.value;
        self.values.insert(key, v);
        Ok(v)
    }

    fn solve_full(
        &mut self,
        thresholds: &[f64],
    ) -> Result<(MasterSolution, Vec<AuditOrder>), GameError> {
        let m = PayoffMatrix::build_with_engine(
            self.spec,
            &self.engine,
            self.orders.clone(),
            thresholds,
        );
        let sol = MasterSolver::solve(self.spec, &m)?;
        Ok((sol, m.orders))
    }

    /// Evaluate a whole sweep batch jointly: every `(order, candidate)`
    /// pair goes into **one** engine batch, so the prefix trie shares all
    /// common audit prefixes across the frontier (ISHM's single-coordinate
    /// candidates share every prefix avoiding the shrunk coordinate), then
    /// one master LP per distinct candidate class lands in the memo. The
    /// subsequent `evaluate` calls are pure memo hits — values, acceptance
    /// decisions, and exploration counts are bit-identical to the
    /// unprimed path.
    fn prime(&mut self, candidates: &[Vec<f64>]) -> Result<(), GameError> {
        let mut seen: HashSet<Vec<u64>> = HashSet::new();
        let fresh: Vec<Vec<f64>> = candidates
            .iter()
            .filter(|c| {
                let key = self.engine.threshold_class_key(c);
                !self.values.contains_key(&key) && seen.insert(key)
            })
            .cloned()
            .collect();
        // A lone fresh candidate gains nothing here: `evaluate` already
        // batches all of its orders through the trie.
        if fresh.len() > 1 {
            let queries: Vec<PalQuery> = fresh
                .iter()
                .flat_map(|c| self.orders.iter().map(move |o| PalQuery::full(o, c)))
                .collect();
            self.engine.pal_batch(&queries);
        }
        for c in &fresh {
            self.evaluate(c)?;
        }
        Ok(())
    }
}

/// Inner evaluator backed by CGGS column generation (paper Table V path).
/// Owns one [`PalEngine`] (with `config.threads` workers) for the whole
/// run, plus the same class-keyed objective memo as [`ExactEvaluator`].
/// It keeps the default (no-op) [`ThresholdEvaluator::prime`]: column
/// generation adapts its query stream per candidate, so cross-candidate
/// reuse comes from the engine instead — the prefix-state cache serves
/// every greedy trial whose prefix avoids the shrunk coordinate, and the
/// canonical keys collapse saturated candidates outright.
pub struct CggsEvaluator<'a> {
    spec: &'a GameSpec,
    engine: PalEngine<'a>,
    cggs: Cggs,
    values: HashMap<Vec<u64>, f64>,
}

impl<'a> CggsEvaluator<'a> {
    /// Build with a CGGS configuration.
    pub fn new(spec: &'a GameSpec, est: DetectionEstimator<'a>, config: CggsConfig) -> Self {
        let engine = PalEngine::new(est, config.threads);
        Self {
            spec,
            engine,
            cggs: Cggs::new(config),
            values: HashMap::new(),
        }
    }

    /// The engine backing this evaluator.
    pub fn engine(&self) -> &PalEngine<'a> {
        &self.engine
    }
}

impl ThresholdEvaluator for CggsEvaluator<'_> {
    fn evaluate(&mut self, thresholds: &[f64]) -> Result<f64, GameError> {
        let key = self.engine.threshold_class_key(thresholds);
        if let Some(&v) = self.values.get(&key) {
            return Ok(v);
        }
        let v = self
            .cggs
            .solve_with_engine(self.spec, &self.engine, thresholds)?
            .master
            .value;
        self.values.insert(key, v);
        Ok(v)
    }

    fn solve_full(
        &mut self,
        thresholds: &[f64],
    ) -> Result<(MasterSolution, Vec<AuditOrder>), GameError> {
        let out = self
            .cggs
            .solve_with_engine(self.spec, &self.engine, thresholds)?;
        Ok((out.master, out.orders))
    }
}

/// ISHM configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IshmConfig {
    /// Step size `ε ∈ (0, 1]` controlling the shrink-ratio grid.
    pub epsilon: f64,
    /// Minimal strict improvement to accept a shrink (guards against
    /// accepting float noise and guarantees termination).
    pub improvement_tol: f64,
    /// Warm-start threshold vector: when set, the shrink search starts
    /// from this point (clamped elementwise to the full-coverage upper
    /// bounds) instead of from full coverage. An online re-solve passes a
    /// vector bracketing the previous optimum so the search begins near
    /// the incumbent and terminates after far fewer LP evaluations.
    /// `None` is bit-identical to a cold solve.
    pub initial_thresholds: Option<Vec<f64>>,
    /// Cap on the subset level `lh` the shrink search may reach. The
    /// search is exponential in the level (`C(|T|, lh)` subsets each
    /// sweep, and termination requires a no-improvement pass at *every*
    /// level up to `|T|`), which is fine at paper scale but intractable
    /// at 20–50 types — the planner caps wide instances at one or two
    /// levels ([`crate::planner::plan`]). `None` (the default) runs the
    /// full search and is bit-identical to the pre-cap behavior; `Some(c)`
    /// is clamped into `[1, |T|]`.
    pub max_level: Option<usize>,
    /// Deterministic work budget on the shrink search: a cap on inner LP
    /// evaluations (the `thresholds_explored` counter — never wall-clock,
    /// so budgeted runs are bit-reproducible). The initial evaluation of
    /// the start vector always runs, so a budgeted solve still commits a
    /// feasible policy; when the cap stops the search early the best
    /// vector found so far is kept and [`SearchStats::budget_exhausted`]
    /// is set. `None` (the default) is bit-identical to an unbudgeted
    /// search.
    pub eval_budget: Option<usize>,
}

impl Default for IshmConfig {
    fn default() -> Self {
        Self {
            epsilon: 0.1,
            improvement_tol: 1e-9,
            initial_thresholds: None,
            max_level: None,
            eval_budget: None,
        }
    }
}

/// Instrumentation counters (paper Table VII / Section IV.C `T` vector).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SearchStats {
    /// Threshold vectors evaluated (LP calls), including the initial one.
    pub thresholds_explored: usize,
    /// Accepted shrinks.
    pub improvements: usize,
    /// Highest subset level `lh` reached.
    pub max_level: usize,
    /// True when [`IshmConfig::eval_budget`] stopped the search before it
    /// converged; the committed policy is the best vector found in budget.
    pub budget_exhausted: bool,
}

/// Result of an ISHM run.
#[derive(Debug, Clone)]
pub struct IshmOutcome {
    /// Best threshold vector found.
    pub thresholds: Vec<f64>,
    /// Objective value at `thresholds`.
    pub value: f64,
    /// Master solution (mixed strategy) at the best thresholds.
    pub master: MasterSolution,
    /// Order columns aligned with `master.p_orders`.
    pub orders: Vec<AuditOrder>,
    /// Search counters.
    pub stats: SearchStats,
}

/// Iterative Shrink Heuristic Method driver.
#[derive(Debug, Clone)]
pub struct Ishm {
    /// Configuration.
    pub config: IshmConfig,
}

impl Ishm {
    /// Construct with a configuration.
    pub fn new(config: IshmConfig) -> Self {
        Self { config }
    }

    /// Run ISHM against an inner evaluator (Algorithm 2).
    pub fn solve<E: ThresholdEvaluator>(
        &self,
        spec: &GameSpec,
        evaluator: &mut E,
    ) -> Result<IshmOutcome, GameError> {
        if !(self.config.epsilon > 0.0 && self.config.epsilon <= 1.0) {
            return Err(GameError::InvalidConfig(format!(
                "ISHM step size must lie in (0, 1], got {}",
                self.config.epsilon
            )));
        }
        spec.validate()?;
        let n = spec.n_types();
        let n_ratios = (1.0 / self.config.epsilon).ceil() as usize;
        let costs = spec.audit_costs();
        // Thresholds live on the audit-unit lattice: a fractional budget
        // share above ⌊b_t/C_t⌋·C_t buys no audit yet is still consumed by
        // the paper's recourse formula, so every shrink is floored to a
        // multiple of C_t (this also matches the integer thresholds the
        // paper reports, e.g. 11·0.9 → 9 in Table IV).
        let floor_unit = |b: f64, t: usize| (b / costs[t]).floor().max(0.0) * costs[t];

        // Ĥ initialized at full coverage (Algorithm 2, line 1), or at the
        // caller's warm-start point clamped into [0, Ĥ].
        let upper = spec.threshold_upper_bounds();
        let mut h: Vec<f64> = match &self.config.initial_thresholds {
            None => upper,
            Some(init) => {
                if init.len() != n {
                    return Err(GameError::InvalidConfig(format!(
                        "warm-start thresholds cover {} types but the game has {n}",
                        init.len()
                    )));
                }
                init.iter()
                    .zip(&upper)
                    .map(|(&b, &ub)| b.clamp(0.0, ub))
                    .collect()
            }
        };
        let mut stats = SearchStats::default();
        let mut obj = evaluator.evaluate(&h)?;
        stats.thresholds_explored += 1;

        // The budget caps LP evaluations, never wall-clock, so a budgeted
        // run is bit-reproducible; the start-vector evaluation above is
        // always allowed so even `Some(0)` commits a feasible policy.
        let budget = self.config.eval_budget;
        let spent = |stats: &SearchStats| budget.is_some_and(|b| stats.thresholds_explored >= b);

        let level_cap = self.config.max_level.map_or(n, |c| c.clamp(1, n));
        let mut lh = 1usize;
        'search: while lh <= level_cap {
            stats.max_level = stats.max_level.max(lh);
            let combos = combinations(n, lh);
            let mut progress = 0usize;
            for i in 1..=n_ratios {
                if spent(&stats) {
                    stats.budget_exhausted = true;
                    break 'search;
                }
                let ratio = (1.0 - i as f64 * self.config.epsilon).max(0.0);
                // Materialize this sweep's candidate vectors once (`None`
                // where flooring absorbed the shrink — a no-op cannot
                // improve) and announce the whole frontier to the
                // evaluator: it may evaluate the batch jointly (shared
                // audit prefixes, one LP per candidate class) so the
                // sequential accept-first scan below runs on memo hits.
                // Values, decisions, and the explored counter are
                // bit-identical to evaluating one candidate at a time.
                let temps: Vec<Option<Vec<f64>>> = combos
                    .iter()
                    .map(|combo| {
                        let mut temp = h.clone();
                        for &k in combo {
                            temp[k] = floor_unit(temp[k] * ratio, k);
                        }
                        (temp != h).then_some(temp)
                    })
                    .collect();
                let mut batch: Vec<Vec<f64>> = temps.iter().flatten().cloned().collect();
                if let Some(b) = budget {
                    // Only prime what the scan below may still evaluate:
                    // the scan stops at the cap, and priming past it would
                    // spend (deterministic) work the budget exists to bound.
                    batch.truncate(b - stats.thresholds_explored);
                }
                evaluator.prime(&batch)?;
                let mut best_obj = f64::INFINITY;
                let mut best_combo: Option<usize> = None;
                for (j, temp) in temps.iter().enumerate() {
                    let Some(temp) = temp else {
                        continue;
                    };
                    if spent(&stats) {
                        stats.budget_exhausted = true;
                        break;
                    }
                    let candidate = evaluator.evaluate(temp)?;
                    stats.thresholds_explored += 1;
                    if candidate < best_obj {
                        best_obj = candidate;
                        best_combo = Some(j);
                    }
                }
                // An improvement found in a partial (budget-clipped) scan
                // is still accepted: degradation commits the best vector
                // seen, it never discards paid-for progress.
                if best_obj < obj - self.config.improvement_tol {
                    obj = best_obj;
                    let combo = &combos[best_combo.expect("improvement implies a combo")];
                    for &k in combo {
                        h[k] = floor_unit(h[k] * ratio, k);
                    }
                    stats.improvements += 1;
                    progress = 0;
                    if stats.budget_exhausted {
                        break 'search;
                    }
                    break;
                }
                if stats.budget_exhausted {
                    break 'search;
                }
                progress = i;
            }
            if progress == n_ratios {
                lh += 1;
            } else {
                lh = 1;
            }
        }

        let (master, orders) = evaluator.solve_full(&h)?;
        Ok(IshmOutcome {
            thresholds: h,
            value: master.value,
            master,
            orders,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detection::DetectionModel;
    use crate::model::{AttackAction, Attacker, GameSpecBuilder};
    use std::sync::Arc;
    use stochastics::{Constant, DiscretizedGaussian};

    #[test]
    fn combinations_enumerate_correctly() {
        assert_eq!(combinations(4, 1), vec![vec![0], vec![1], vec![2], vec![3]]);
        assert_eq!(
            combinations(4, 2),
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
        assert_eq!(combinations(3, 3), vec![vec![0, 1, 2]]);
        assert_eq!(combinations(5, 0), vec![Vec::<usize>::new()]);
        // Binomial sizes.
        assert_eq!(combinations(6, 3).len(), 20);
        assert_eq!(combinations(7, 2).len(), 21);
    }

    fn small_spec(budget: f64) -> GameSpec {
        let mut b = GameSpecBuilder::new();
        let t0 = b.alert_type(
            "t0",
            1.0,
            Arc::new(DiscretizedGaussian::with_halfwidth(3.0, 1.0, 2)),
        );
        let t1 = b.alert_type("t1", 1.0, Arc::new(Constant(2)));
        b.attacker(Attacker::new(
            "e0",
            1.0,
            vec![
                AttackAction::deterministic("v0", t0, 6.0, 0.4, 4.0),
                AttackAction::deterministic("v1", t1, 7.0, 0.4, 4.0),
            ],
        ));
        b.attacker(Attacker::new(
            "e1",
            1.0,
            vec![AttackAction::deterministic("v1", t1, 5.0, 0.4, 4.0)],
        ));
        b.budget(budget);
        b.build().unwrap()
    }

    #[test]
    fn ishm_improves_on_full_coverage_start() {
        let spec = small_spec(3.0);
        let bank = spec.sample_bank(400, 1);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let mut eval = ExactEvaluator::new(&spec, est);
        let start = eval.evaluate(&spec.threshold_upper_bounds()).unwrap();
        let out = Ishm::new(IshmConfig {
            epsilon: 0.1,
            ..Default::default()
        })
        .solve(&spec, &mut eval)
        .unwrap();
        assert!(
            out.value <= start + 1e-9,
            "ISHM worsened: {} > {start}",
            out.value
        );
        assert!(out.stats.thresholds_explored > 1);
        assert!(out.stats.max_level >= 1);
    }

    #[test]
    fn ishm_with_cggs_close_to_exact_inner() {
        let spec = small_spec(3.0);
        let bank = spec.sample_bank(400, 1);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);

        let mut exact = ExactEvaluator::new(&spec, est);
        let out_exact = Ishm::default_config().solve(&spec, &mut exact).unwrap();

        let mut cggs = CggsEvaluator::new(&spec, est, CggsConfig::default());
        let out_cggs = Ishm::default_config().solve(&spec, &mut cggs).unwrap();

        // CGGS under-approximates the order set, so its value can only be
        // equal or slightly worse; on a 2-type game they must coincide.
        assert!(
            (out_exact.value - out_cggs.value).abs() < 1e-5,
            "exact {} vs cggs {}",
            out_exact.value,
            out_cggs.value
        );
    }

    #[test]
    fn coarser_epsilon_explores_fewer_candidates() {
        let spec = small_spec(3.0);
        let bank = spec.sample_bank(300, 1);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);

        let mut e1 = ExactEvaluator::new(&spec, est);
        let fine = Ishm::new(IshmConfig {
            epsilon: 0.05,
            ..Default::default()
        })
        .solve(&spec, &mut e1)
        .unwrap();
        let mut e2 = ExactEvaluator::new(&spec, est);
        let coarse = Ishm::new(IshmConfig {
            epsilon: 0.5,
            ..Default::default()
        })
        .solve(&spec, &mut e2)
        .unwrap();
        assert!(coarse.stats.thresholds_explored < fine.stats.thresholds_explored);
        // Finer grid can only help (or tie) on the objective.
        assert!(fine.value <= coarse.value + 1e-6);
    }

    #[test]
    fn warm_start_at_full_coverage_is_bit_identical_to_cold() {
        let spec = small_spec(3.0);
        let bank = spec.sample_bank(300, 1);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);

        let mut e1 = ExactEvaluator::new(&spec, est);
        let cold = Ishm::default_config().solve(&spec, &mut e1).unwrap();
        let mut e2 = ExactEvaluator::new(&spec, est);
        let warm = Ishm::new(IshmConfig {
            initial_thresholds: Some(spec.threshold_upper_bounds()),
            ..Default::default()
        })
        .solve(&spec, &mut e2)
        .unwrap();
        assert_eq!(cold.value.to_bits(), warm.value.to_bits());
        assert_eq!(cold.thresholds, warm.thresholds);
        assert_eq!(cold.master.p_orders, warm.master.p_orders);
        assert_eq!(
            cold.stats.thresholds_explored,
            warm.stats.thresholds_explored
        );
    }

    #[test]
    fn warm_start_from_incumbent_matches_value_with_less_search() {
        let spec = small_spec(3.0);
        let bank = spec.sample_bank(300, 1);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);

        let mut e1 = ExactEvaluator::new(&spec, est);
        let cold = Ishm::default_config().solve(&spec, &mut e1).unwrap();
        let mut e2 = ExactEvaluator::new(&spec, est);
        let warm = Ishm::new(IshmConfig {
            initial_thresholds: Some(cold.thresholds.clone()),
            ..Default::default()
        })
        .solve(&spec, &mut e2)
        .unwrap();
        assert!(
            (warm.value - cold.value).abs() < 1e-9,
            "warm {} vs cold {}",
            warm.value,
            cold.value
        );
        assert!(
            warm.stats.thresholds_explored <= cold.stats.thresholds_explored,
            "warm explored {} > cold {}",
            warm.stats.thresholds_explored,
            cold.stats.thresholds_explored
        );
    }

    #[test]
    fn warm_start_is_clamped_into_the_feasible_box() {
        let spec = small_spec(3.0);
        let bank = spec.sample_bank(100, 1);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let upper = spec.threshold_upper_bounds();
        let mut eval = ExactEvaluator::new(&spec, est);
        let out = Ishm::new(IshmConfig {
            initial_thresholds: Some(vec![1e9, -4.0]),
            ..Default::default()
        })
        .solve(&spec, &mut eval)
        .unwrap();
        for (t, &b) in out.thresholds.iter().enumerate() {
            assert!(b <= upper[t] + 1e-12 && b >= 0.0);
        }
    }

    #[test]
    fn warm_start_arity_mismatch_rejected() {
        let spec = small_spec(3.0);
        let bank = spec.sample_bank(50, 1);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let mut eval = ExactEvaluator::new(&spec, est);
        let bad = Ishm::new(IshmConfig {
            initial_thresholds: Some(vec![1.0]),
            ..Default::default()
        });
        assert!(bad.solve(&spec, &mut eval).is_err());
    }

    #[test]
    fn level_cap_at_or_above_n_is_bit_identical_to_uncapped() {
        let spec = small_spec(3.0);
        let bank = spec.sample_bank(300, 1);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let mut e1 = ExactEvaluator::new(&spec, est);
        let full = Ishm::default_config().solve(&spec, &mut e1).unwrap();
        for cap in [spec.n_types(), spec.n_types() + 3] {
            let mut e2 = ExactEvaluator::new(&spec, est);
            let capped = Ishm::new(IshmConfig {
                max_level: Some(cap),
                ..Default::default()
            })
            .solve(&spec, &mut e2)
            .unwrap();
            assert_eq!(full.value.to_bits(), capped.value.to_bits());
            assert_eq!(full.thresholds, capped.thresholds);
            assert_eq!(
                full.stats.thresholds_explored,
                capped.stats.thresholds_explored
            );
        }
    }

    #[test]
    fn level_cap_bounds_the_search() {
        let spec = small_spec(3.0);
        let bank = spec.sample_bank(300, 1);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let mut e1 = ExactEvaluator::new(&spec, est);
        let full = Ishm::default_config().solve(&spec, &mut e1).unwrap();
        let mut e2 = ExactEvaluator::new(&spec, est);
        let capped = Ishm::new(IshmConfig {
            max_level: Some(1),
            ..Default::default()
        })
        .solve(&spec, &mut e2)
        .unwrap();
        assert_eq!(capped.stats.max_level, 1);
        assert!(capped.stats.thresholds_explored <= full.stats.thresholds_explored);
        // The cap prunes the search space, so the value can only tie or
        // worsen relative to the full search.
        assert!(capped.value >= full.value - 1e-9);
    }

    #[test]
    fn generous_eval_budget_is_bit_identical_to_unbudgeted() {
        let spec = small_spec(3.0);
        let bank = spec.sample_bank(300, 1);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let mut e1 = ExactEvaluator::new(&spec, est);
        let full = Ishm::default_config().solve(&spec, &mut e1).unwrap();
        assert!(!full.stats.budget_exhausted);
        let mut e2 = ExactEvaluator::new(&spec, est);
        let budgeted = Ishm::new(IshmConfig {
            eval_budget: Some(full.stats.thresholds_explored + 1),
            ..Default::default()
        })
        .solve(&spec, &mut e2)
        .unwrap();
        assert!(!budgeted.stats.budget_exhausted);
        assert_eq!(full.value.to_bits(), budgeted.value.to_bits());
        assert_eq!(full.thresholds, budgeted.thresholds);
        assert_eq!(full.master.p_orders, budgeted.master.p_orders);
        assert_eq!(
            full.stats.thresholds_explored,
            budgeted.stats.thresholds_explored
        );
    }

    #[test]
    fn eval_budget_caps_exploration_and_flags_exhaustion() {
        let spec = small_spec(3.0);
        let bank = spec.sample_bank(300, 1);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let mut e1 = ExactEvaluator::new(&spec, est);
        let full = Ishm::default_config().solve(&spec, &mut e1).unwrap();
        for budget in [0usize, 1, 3, 5] {
            let mut e2 = ExactEvaluator::new(&spec, est);
            let out = Ishm::new(IshmConfig {
                eval_budget: Some(budget),
                ..Default::default()
            })
            .solve(&spec, &mut e2)
            .unwrap();
            // The start vector is always evaluated, so even budget 0
            // commits a feasible policy from exactly one LP evaluation.
            assert!(out.stats.thresholds_explored <= budget.max(1), "{budget}");
            assert!(out.stats.budget_exhausted, "{budget}");
            assert!(out.value.is_finite());
            let psum: f64 = out.master.p_orders.iter().sum();
            assert!((psum - 1.0).abs() < 1e-6, "{budget}");
            // Pruned search can only tie or worsen the objective.
            assert!(out.value >= full.value - 1e-9, "{budget}");
        }
    }

    #[test]
    fn eval_budget_runs_are_reproducible() {
        let spec = small_spec(3.0);
        let bank = spec.sample_bank(300, 1);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let cfg = IshmConfig {
            eval_budget: Some(4),
            ..Default::default()
        };
        let mut e1 = ExactEvaluator::new(&spec, est);
        let a = Ishm::new(cfg.clone()).solve(&spec, &mut e1).unwrap();
        let mut e2 = ExactEvaluator::new(&spec, est);
        let b = Ishm::new(cfg).solve(&spec, &mut e2).unwrap();
        assert_eq!(a.value.to_bits(), b.value.to_bits());
        assert_eq!(a.thresholds, b.thresholds);
        assert_eq!(a.stats.thresholds_explored, b.stats.thresholds_explored);
        assert_eq!(a.stats.budget_exhausted, b.stats.budget_exhausted);
    }

    #[test]
    fn invalid_epsilon_rejected() {
        let spec = small_spec(2.0);
        let bank = spec.sample_bank(50, 0);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let mut eval = ExactEvaluator::new(&spec, est);
        let bad = Ishm::new(IshmConfig {
            epsilon: 0.0,
            ..Default::default()
        });
        assert!(bad.solve(&spec, &mut eval).is_err());
        let bad = Ishm::new(IshmConfig {
            epsilon: 1.5,
            ..Default::default()
        });
        assert!(bad.solve(&spec, &mut eval).is_err());
    }

    impl Ishm {
        fn default_config() -> Self {
            Ishm::new(IshmConfig::default())
        }
    }
}
