//! Multi-tenant fleet runtime: many independent audit streams, one
//! process.
//!
//! [`FleetService`] multiplexes N tenants — each a registry scenario with
//! its own seed, drift gate, attacker model, and committed policy — over
//! a bounded worker pool. Scheduling is **round-based**: round 0 cold-
//! starts every tenant (initial solve + alert-stream derivation), and
//! each later round advances every live tenant by exactly one epoch.
//! Within a round, workers pull tenant indices from a shared cursor; a
//! round is a barrier, so no tenant ever runs two epochs concurrently
//! with itself.
//!
//! **Determinism.** Each tenant's epoch loop is the unmodified
//! [`AuditService`] loop — per-period derived RNG streams, deterministic
//! solves — so a tenant's [`RuntimeReport`] is bit-identical to running
//! that tenant alone. The scheduler only decides *when* work happens,
//! never *what* it computes, so the [`FleetReport::fingerprint`] is
//! invariant across worker counts, reruns, and cache sharing.
//!
//! **Shared solver work.** With [`FleetConfig::share_caches`] on, every
//! tenant's solver joins one [`SharedPalCache`]: tenants whose sample
//! banks coincide (same deduped spec, bank parameters, detection model —
//! see [`audit_game::detection::shared_bank_key`]) adopt each other's
//! prefix-state snapshots instead of recomputing the columns. Adoption
//! is bit-identical by construction; only wall-clock time and cache
//! counters (excluded from fingerprints) change.

use crate::service::{AuditService, RuntimeConfig, ServiceState};
use crate::supervisor::{
    panic_message, FaultInjector, FaultPlan, RetryPolicy, TenantFailure, TenantHealth,
};
use crate::telemetry::{Fnv, RuntimeReport};
use audit_game::detection::{SharedCacheStats, SharedPalCache};
use audit_game::error::GameError;
use audit_game::scenario::Scenario;
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// One tenant of the fleet: a named scenario instance with its own
/// runtime configuration (seed, horizon, drift gate, solver).
pub struct TenantSpec {
    /// Display name carried into the per-tenant report (and hashed into
    /// the fleet fingerprint).
    pub name: String,
    /// The tenant's registry scenario.
    pub scenario: Arc<dyn Scenario>,
    /// The tenant's service configuration.
    pub config: RuntimeConfig,
}

/// Fleet scheduling configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker threads pulling tenants within a scheduling round (`0` is
    /// treated as `1`). Never changes results, only wall-clock time.
    pub workers: usize,
    /// Share one prefix-state exchange across all tenants' solvers (see
    /// module docs). Bit-identical on or off.
    pub share_caches: bool,
    /// Deterministic fault plan (see [`crate::supervisor::FaultPlan`]).
    /// Empty by default: no injectors are attached and the run is
    /// bit-identical to the pre-supervisor scheduler.
    pub fault_plan: FaultPlan,
    /// Quarantine retry/backoff policy for failed tenants.
    pub retry: RetryPolicy,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            share_caches: true,
            fault_plan: FaultPlan::new(),
            retry: RetryPolicy::default(),
        }
    }
}

/// One tenant's outcome: its full service report plus fleet-side
/// scheduling latencies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetTenantReport {
    /// The tenant's name from its [`TenantSpec`].
    pub tenant: String,
    /// The tenant's service report — bit-identical to running the tenant
    /// alone.
    pub report: RuntimeReport,
    /// Wall-clock milliseconds of the tenant's cold start (round 0).
    /// **Excluded from the fingerprint.**
    pub start_millis: f64,
    /// Wall-clock milliseconds of each epoch advance (rounds 1..).
    /// **Excluded from the fingerprint.**
    pub epoch_millis: Vec<f64>,
    /// The supervisor's verdict on the tenant: healthy, recovered after
    /// quarantine, or permanently failed. Healthy tenants contribute
    /// nothing extra to the fingerprint, keeping fault-free fleet
    /// fingerprints bit-identical to the pre-supervisor encoding.
    pub health: TenantHealth,
}

/// Aggregate outcome of one fleet run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetReport {
    /// Worker threads the fleet ran with.
    pub workers: usize,
    /// Whether solver caches were shared across tenants.
    pub shared: bool,
    /// Per-tenant reports, in tenant order.
    pub tenants: Vec<FleetTenantReport>,
    /// Periods executed across all tenants.
    pub total_periods: usize,
    /// Wall-clock milliseconds of the whole run (cold starts included).
    /// **Excluded from the fingerprint.**
    pub wall_millis: f64,
    /// Aggregate throughput: `total_periods / wall seconds`. **Excluded
    /// from the fingerprint.**
    pub periods_per_sec: f64,
    /// Median per-period service latency (milliseconds), over every
    /// epoch advance of every tenant. **Excluded from the fingerprint.**
    pub latency_p50_millis: f64,
    /// 95th-percentile per-period latency. **Excluded.**
    pub latency_p95_millis: f64,
    /// 99th-percentile per-period latency. **Excluded.**
    pub latency_p99_millis: f64,
    /// Shared-exchange counters (zeros when sharing was off). **Excluded
    /// from the fingerprint** like every cache statistic.
    pub shared_cache: SharedCacheStats,
}

impl FleetReport {
    /// FNV-1a fingerprint of the fleet's deterministic outcome: the
    /// tenant count and, per tenant in order, its name and its
    /// [`RuntimeReport::fingerprint`]. Scheduling artifacts — worker
    /// count, sharing flag, latencies, cache counters — are excluded, so
    /// the fingerprint is invariant across worker counts, reruns, and
    /// cache sharing.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.word(self.tenants.len() as u64);
        for (i, t) in self.tenants.iter().enumerate() {
            h.word(i as u64);
            h.bytes(t.tenant.as_bytes());
            h.word(t.report.fingerprint());
            // Healthy folds nothing: fault-free fingerprints are
            // bit-identical to the pre-supervisor encoding.
            t.health.fold(&mut h);
        }
        h.finish()
    }

    /// Names of the tenants the supervisor judged [`TenantHealth::Healthy`].
    pub fn healthy_names(&self) -> Vec<String> {
        self.tenants
            .iter()
            .filter(|t| t.health.is_healthy())
            .map(|t| t.tenant.clone())
            .collect()
    }

    /// Fingerprint restricted to the named tenants (original tenant
    /// indices included, so the subset hash of a faulted run can be
    /// compared against the *same subset* of a fault-free run).
    pub fn subset_fingerprint(&self, names: &[String]) -> u64 {
        let mut h = Fnv::new();
        let included: Vec<(usize, &FleetTenantReport)> = self
            .tenants
            .iter()
            .enumerate()
            .filter(|(_, t)| names.contains(&t.tenant))
            .collect();
        h.word(included.len() as u64);
        for (i, t) in included {
            h.word(i as u64);
            h.bytes(t.tenant.as_bytes());
            h.word(t.report.fingerprint());
        }
        h.finish()
    }

    /// Fingerprint over the healthy subset only — the quantity the chaos
    /// harness diffs against a fault-free run to prove fault isolation:
    /// tenants the plan never touched are bit-identical.
    pub fn healthy_fingerprint(&self) -> u64 {
        self.subset_fingerprint(&self.healthy_names())
    }

    /// Committed re-solves summed across tenants.
    pub fn total_resolves(&self) -> usize {
        self.tenants.iter().map(|t| t.report.resolves()).sum()
    }

    /// Tenants per health key: `(healthy, recovered, failed)`.
    pub fn health_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for t in &self.tenants {
            match t.health {
                TenantHealth::Healthy => counts.0 += 1,
                TenantHealth::Recovered { .. } => counts.1 += 1,
                TenantHealth::Failed { .. } => counts.2 += 1,
            }
        }
        counts
    }
}

/// Live scheduling state of one tenant between rounds.
struct TenantRun {
    service: AuditService,
    epochs: usize,
    state: Option<ServiceState>,
    /// Clone of the state after the last successful round — the
    /// checkpoint a quarantined tenant resumes from. `None` until the
    /// cold start succeeds (a cold-start failure retries from scratch).
    last_good: Option<ServiceState>,
    stream: Vec<Vec<u64>>,
    start_millis: f64,
    epoch_millis: Vec<f64>,
    /// Every failure observed so far, in order.
    failures: Vec<TenantFailure>,
    /// Failures consumed against [`RetryPolicy::max_retries`].
    attempts: usize,
    /// `Some(r)`: quarantined until scheduler round `r`.
    quarantined_until: Option<usize>,
    /// Terminal failure: `(round, cause)`. Set once retries are spent.
    failed: Option<(usize, String)>,
}

impl TenantRun {
    /// Does this tenant still want scheduler rounds?
    fn is_pending(&self) -> bool {
        self.failed.is_none()
            && (self.quarantined_until.is_some()
                || match &self.state {
                    None => true,
                    Some(st) => st.epoch < self.epochs,
                })
    }

    /// Record one failure: quarantine with deterministic backoff while
    /// retries remain, otherwise fail the tenant terminally.
    fn record_failure(&mut self, round: usize, cause: String, retry: &RetryPolicy) {
        self.attempts += 1;
        if self.attempts > retry.max_retries {
            self.failures.push(TenantFailure {
                round,
                cause: cause.clone(),
                resume_round: None,
            });
            self.failed = Some((round, cause));
        } else {
            let resume = retry.resume_round(round, self.attempts);
            self.failures.push(TenantFailure {
                round,
                cause,
                resume_round: Some(resume),
            });
            self.quarantined_until = Some(resume);
        }
    }

    /// The supervisor's verdict once scheduling is over.
    fn health(&self) -> TenantHealth {
        match &self.failed {
            Some((round, cause)) => TenantHealth::Failed {
                round: *round,
                cause: cause.clone(),
                failures: self.failures.clone(),
            },
            None if self.failures.is_empty() => TenantHealth::Healthy,
            None => TenantHealth::Recovered {
                failures: self.failures.clone(),
            },
        }
    }
}

/// Lock a tenant slot, recovering a poisoned mutex instead of aborting:
/// the only code that can panic while holding the guard is tenant work,
/// which is wrapped in `catch_unwind`, so a poisoned slot still holds a
/// consistent `TenantRun` (the failure was already recorded or will be
/// visible as a missing state).
fn lock_slot(slot: &Mutex<TenantRun>) -> MutexGuard<'_, TenantRun> {
    slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The multi-tenant scheduler. See the module docs for the round model
/// and the determinism contract.
pub struct FleetService {
    tenants: Vec<TenantSpec>,
    config: FleetConfig,
}

impl FleetService {
    /// Build a fleet over `tenants`.
    pub fn new(tenants: Vec<TenantSpec>, config: FleetConfig) -> Self {
        Self { tenants, config }
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the fleet has no tenants (a degenerate but valid fleet:
    /// [`FleetService::run`] returns an empty report).
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Run every tenant to its horizon and aggregate the reports.
    ///
    /// Tenant failures — panics or typed errors, injected or organic — no
    /// longer abort the fleet. The failing tenant is quarantined and
    /// retried from its last good state under [`FleetConfig::retry`];
    /// once retries are spent it is marked [`TenantHealth::Failed`] and
    /// the rest of the fleet keeps running. `Err` is reserved for fleet-
    /// level invariant breaches, none of which currently exist.
    pub fn run(&self) -> Result<FleetReport, GameError> {
        let t0 = Instant::now();
        let shared = self.config.share_caches.then(SharedPalCache::new);
        let plan = Arc::new(self.config.fault_plan.clone());
        let retry = self.config.retry;
        let runs: Vec<Mutex<TenantRun>> = self
            .tenants
            .iter()
            .map(|t| {
                let service = AuditService::new(Arc::clone(&t.scenario), t.config.clone());
                let service = match &shared {
                    Some(cache) => service.with_shared_cache(cache.clone()),
                    None => service,
                };
                let service = if plan.is_empty() {
                    service
                } else {
                    service.with_injector(FaultInjector::new(Arc::clone(&plan), &t.name))
                };
                Mutex::new(TenantRun {
                    service,
                    epochs: t.config.epochs,
                    state: None,
                    last_good: None,
                    stream: Vec::new(),
                    start_millis: 0.0,
                    epoch_millis: Vec::new(),
                    failures: Vec::new(),
                    attempts: 0,
                    quarantined_until: None,
                    failed: None,
                })
            })
            .collect();

        let n = runs.len();
        let max_epochs = self
            .tenants
            .iter()
            .map(|t| t.config.epochs)
            .max()
            .unwrap_or(0);
        // Hard cap on scheduler rounds: the fault-free schedule plus the
        // worst-case quarantine delay any retry ladder can add. Purely a
        // livelock backstop — the loop normally exits when no tenant is
        // pending.
        let round_cap = 1 + max_epochs + retry.worst_case_delay();
        let workers = self.config.workers.max(1).min(n.max(1));
        let mut round = 0usize;
        loop {
            if n == 0 || !runs.iter().any(|slot| lock_slot(slot).is_pending()) {
                break;
            }
            if round > round_cap {
                for slot in &runs {
                    let mut run = lock_slot(slot);
                    if run.is_pending() {
                        let cause = "scheduler round cap exceeded".to_string();
                        run.failures.push(TenantFailure {
                            round,
                            cause: cause.clone(),
                            resume_round: None,
                        });
                        run.failed = Some((round, cause));
                    }
                }
                break;
            }
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let mut guard = lock_slot(&runs[i]);
                        let run = &mut *guard;
                        if run.failed.is_some() {
                            continue;
                        }
                        if let Some(resume) = run.quarantined_until {
                            if round < resume {
                                continue; // serving its backoff delay
                            }
                            // Resume from the last good state. After a
                            // cold-start failure this is `None` and the
                            // tenant cold-starts again.
                            run.quarantined_until = None;
                            run.state = run.last_good.clone();
                        }
                        let t = Instant::now();
                        if run.state.is_none() {
                            // Cold start (fresh tenant or cold-start retry).
                            let service = &run.service;
                            let result = catch_unwind(AssertUnwindSafe(|| {
                                service
                                    .start_state()
                                    .and_then(|st| service.full_alert_stream().map(|s| (st, s)))
                            }));
                            match result {
                                Ok(Ok((st, stream))) => {
                                    run.state = Some(st);
                                    run.last_good = run.state.clone();
                                    run.stream = stream;
                                    run.start_millis = millis_since(t);
                                }
                                Ok(Err(e)) => run.record_failure(round, e.to_string(), &retry),
                                Err(payload) => {
                                    run.record_failure(round, panic_message(payload), &retry)
                                }
                            }
                        } else {
                            let epoch = run.state.as_ref().map(|st| st.epoch).unwrap_or(0);
                            if epoch >= run.epochs {
                                continue; // tenant already at its horizon
                            }
                            // Move the state into the unwind scope: if the
                            // advance panics, the torn state is dropped
                            // with the closure and the tenant resumes from
                            // `last_good`.
                            let state = run.state.take().expect("checked above");
                            let stop = epoch + 1;
                            let service = &run.service;
                            let stream = &run.stream;
                            let result = catch_unwind(AssertUnwindSafe(move || {
                                let mut state = state;
                                service
                                    .advance_with_stream(&mut state, stop, stream)
                                    .map(|()| state)
                            }));
                            match result {
                                Ok(Ok(state)) => {
                                    run.state = Some(state);
                                    run.last_good = run.state.clone();
                                    run.epoch_millis.push(millis_since(t));
                                }
                                Ok(Err(e)) => run.record_failure(round, e.to_string(), &retry),
                                Err(payload) => {
                                    run.record_failure(round, panic_message(payload), &retry)
                                }
                            }
                        }
                    });
                }
            });
            round += 1;
        }

        // Assemble in tenant order. Failed tenants keep whatever partial
        // report their last good state supports; tenants that never
        // cold-started get an empty report.
        let mut tenants = Vec::with_capacity(n);
        let mut latencies: Vec<f64> = Vec::new();
        let mut total_periods = 0usize;
        for (spec, slot) in self.tenants.iter().zip(runs) {
            let run = slot
                .into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            let health = run.health();
            let report = match run.state.or(run.last_good) {
                Some(state) => run.service.report(state),
                None => empty_report(spec),
            };
            total_periods += report.total_periods();
            let per_epoch = spec.config.periods_per_epoch.max(1) as f64;
            latencies.extend(run.epoch_millis.iter().map(|&m| m / per_epoch));
            tenants.push(FleetTenantReport {
                tenant: spec.name.clone(),
                report,
                start_millis: run.start_millis,
                epoch_millis: run.epoch_millis,
                health,
            });
        }
        let wall_millis = millis_since(t0);
        latencies.sort_by(f64::total_cmp);
        Ok(FleetReport {
            workers,
            shared: shared.is_some(),
            tenants,
            total_periods,
            wall_millis,
            periods_per_sec: if wall_millis > 0.0 {
                total_periods as f64 / (wall_millis / 1e3)
            } else {
                0.0
            },
            latency_p50_millis: percentile(&latencies, 50.0),
            latency_p95_millis: percentile(&latencies, 95.0),
            latency_p99_millis: percentile(&latencies, 99.0),
            shared_cache: shared.map(|s| s.stats()).unwrap_or_default(),
        })
    }
}

/// Report for a tenant that never completed a cold start: the identity
/// header is real, everything else is empty.
fn empty_report(spec: &TenantSpec) -> RuntimeReport {
    RuntimeReport {
        scenario: spec.scenario.key().to_string(),
        seed: spec.config.seed,
        periods_per_epoch: spec.config.periods_per_epoch,
        initial_objective: 0.0,
        initial_solve_millis: 0.0,
        engine_cache: Default::default(),
        epochs: Vec::new(),
    }
}

/// Nearest-rank percentile of an ascending-sorted sample (`0.0` when
/// empty).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn millis_since(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_handles_edges() {
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[3.0], 99.0), 3.0);
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
    }

    #[test]
    fn empty_fleet_reports_empty() {
        let fleet = FleetService::new(Vec::new(), FleetConfig::default());
        assert!(fleet.is_empty());
        let report = fleet.run().unwrap();
        assert_eq!(report.tenants.len(), 0);
        assert_eq!(report.total_periods, 0);
        assert_eq!(report.periods_per_sec, 0.0);
        // The empty fingerprint is stable: just the zero tenant count.
        assert_eq!(report.fingerprint(), {
            let mut h = Fnv::new();
            h.word(0);
            h.finish()
        });
    }
}
