//! Offline shim for `criterion` 0.5.
//!
//! Gives the workspace's `harness = false` benches the criterion API they
//! use — [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], `sample_size`,
//! [`criterion_group!`] / [`criterion_main!`], [`black_box`] — with a
//! single-measurement timer instead of criterion's statistical engine.
//! `cargo bench` prints one wall-clock line per benchmark; swapping in the
//! real crate upgrades that to full sampling without source changes.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver (shim for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.into(), &mut f);
        self
    }
}

/// A named set of benchmarks (shim for `criterion::BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim always measures one sample.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim ignores the time budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into(), &mut f);
        self
    }

    /// Run one benchmark that borrows an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into(), &mut |b| f(b, input));
        self
    }

    /// End the group (no-op beyond matching the real API).
    pub fn finish(self) {}
}

fn run_one(group: &str, id: &BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    report(group, id, &b);
}

fn report(group: &str, id: &BenchmarkId, b: &Bencher) {
    let label = if group.is_empty() {
        id.label.clone()
    } else {
        format!("{group}/{}", id.label)
    };
    if b.iters > 0 {
        let per_iter = b.elapsed / b.iters;
        println!("bench {label}: {per_iter:?}/iter ({} iters)", b.iters);
    } else {
        println!("bench {label}: no measurement");
    }
}

/// Identifies one benchmark within a group (shim for `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name + parameter pair.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// A bare parameter (group name supplies the function).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing hook handed to benchmark closures (shim for `criterion::Bencher`).
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Measure the closure. The shim times a small fixed number of
    /// iterations (after one warm-up) rather than criterion's adaptive
    /// sampling.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        const ITERS: u32 = 3;
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += ITERS;
    }
}

/// Bundle benchmark functions into a named group runner
/// (shim for `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups
/// (shim for `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter("n=5"), &5u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_machinery_runs() {
        benches();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("4x2").label, "4x2");
        assert_eq!(BenchmarkId::from("plain").label, "plain");
    }
}
