//! Minimal dense linear algebra: LU decomposition with partial pivoting.
//!
//! Used for independent verification of simplex results (re-solving the
//! optimal basis system `B x_B = b` and the dual system `Bᵀ y = c_B`) and by
//! tests that cross-check duals extracted from the tableau.

/// A dense column-major square matrix.
#[derive(Debug, Clone)]
pub struct DenseMatrix {
    n: usize,
    /// Row-major storage.
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Zero matrix of dimension `n × n`.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Build from row-major data.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let n = rows.len();
        assert!(rows.iter().all(|r| r.len() == n), "matrix must be square");
        let mut data = Vec::with_capacity(n * n);
        for r in rows {
            data.extend_from_slice(r);
        }
        Self { n, data }
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// Matrix–vector product `A·x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        (0..self.n)
            .map(|i| (0..self.n).map(|j| self.get(i, j) * x[j]).sum())
            .collect()
    }

    /// Transposed matrix–vector product `Aᵀ·x`.
    pub fn mul_vec_transposed(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        (0..self.n)
            .map(|j| (0..self.n).map(|i| self.get(i, j) * x[i]).sum())
            .collect()
    }
}

/// LU factorization `PA = LU` with partial pivoting.
#[derive(Debug, Clone)]
pub struct Lu {
    n: usize,
    /// Combined L (unit lower, below diagonal) and U (upper incl. diagonal).
    lu: Vec<f64>,
    /// Row permutation: `perm[i]` is the original row in position `i`.
    perm: Vec<usize>,
}

impl Lu {
    /// Factorize; returns `None` when the matrix is numerically singular.
    pub fn factorize(a: &DenseMatrix) -> Option<Self> {
        let n = a.n;
        let mut lu = a.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();

        for k in 0..n {
            // Partial pivot: largest magnitude in column k at/below row k.
            let mut p = k;
            let mut best = lu[k * n + k].abs();
            for i in (k + 1)..n {
                let v = lu[i * n + k].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best < 1e-12 {
                return None;
            }
            if p != k {
                for j in 0..n {
                    lu.swap(k * n + j, p * n + j);
                }
                perm.swap(k, p);
            }
            let pivot = lu[k * n + k];
            for i in (k + 1)..n {
                let factor = lu[i * n + k] / pivot;
                lu[i * n + k] = factor;
                for j in (k + 1)..n {
                    lu[i * n + j] -= factor * lu[k * n + j];
                }
            }
        }
        Some(Self { n, lu, perm })
    }

    /// Solve `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        // Apply permutation, then forward substitution with unit-L.
        let mut y: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
        for i in 1..n {
            for j in 0..i {
                y[i] -= self.lu[i * n + j] * y[j];
            }
        }
        // Back substitution with U.
        let mut x = y;
        for i in (0..n).rev() {
            for j in (i + 1)..n {
                x[i] -= self.lu[i * n + j] * x[j];
            }
            x[i] /= self.lu[i * n + i];
        }
        x
    }

    /// Solve `Aᵀ y = c` (used for dual extraction `Bᵀ y = c_B`).
    pub fn solve_transposed(&self, c: &[f64]) -> Vec<f64> {
        assert_eq!(c.len(), self.n);
        let n = self.n;
        // Aᵀ = (P⁻¹ L U)ᵀ = Uᵀ Lᵀ P. Solve Uᵀ z = c (forward), Lᵀ w = z
        // (backward), then y = Pᵀ w (scatter through the permutation).
        let mut z = c.to_vec();
        for i in 0..n {
            for j in 0..i {
                z[i] -= self.lu[j * n + i] * z[j];
            }
            z[i] /= self.lu[i * n + i];
        }
        let mut w = z;
        for i in (0..n).rev() {
            for j in (i + 1)..n {
                w[i] -= self.lu[j * n + i] * w[j];
            }
        }
        let mut y = vec![0.0; n];
        for (pos, &orig) in self.perm.iter().enumerate() {
            y[orig] = w[pos];
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> DenseMatrix {
        DenseMatrix::from_rows(&[
            vec![2.0, 1.0, 1.0],
            vec![4.0, -6.0, 0.0],
            vec![-2.0, 7.0, 2.0],
        ])
    }

    #[test]
    fn solve_roundtrip() {
        let a = example();
        let lu = Lu::factorize(&a).unwrap();
        let x_true = vec![1.0, -2.0, 3.0];
        let b = a.mul_vec(&x_true);
        let x = lu.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_transposed_roundtrip() {
        let a = example();
        let lu = Lu::factorize(&a).unwrap();
        let y_true = vec![0.5, 2.0, -1.5];
        let c = a.mul_vec_transposed(&y_true);
        let y = lu.solve_transposed(&c);
        for (yi, ti) in y.iter().zip(&y_true) {
            assert!((yi - ti).abs() < 1e-10, "{y:?} vs {y_true:?}");
        }
    }

    #[test]
    fn singular_detected() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(Lu::factorize(&a).is_none());
    }

    #[test]
    fn identity_solves_trivially() {
        let mut a = DenseMatrix::zeros(4);
        for i in 0..4 {
            a.set(i, i, 1.0);
        }
        let lu = Lu::factorize(&a).unwrap();
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(lu.solve(&b), b);
        assert_eq!(lu.solve_transposed(&b), b);
    }

    #[test]
    fn permutation_heavy_case() {
        // Leading zero forces pivoting immediately.
        let a = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let lu = Lu::factorize(&a).unwrap();
        let x = lu.solve(&[3.0, 7.0]);
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }
}
