//! End-to-end smoke test: the `exp_chaos` driver must run a faulted
//! fleet to completion, report every planned fault and supervisor
//! verdict, prove fault isolation (untouched tenants bit-identical to
//! the fault-free baseline), stay deterministic across reruns and
//! worker counts, and exit non-zero only on isolation violations.

use std::process::Command;

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_exp_chaos"))
        .args(args)
        .output()
        .expect("exp_chaos spawns")
}

fn line_of<'a>(stdout: &'a str, prefix: &str) -> &'a str {
    stdout
        .lines()
        .find(|l| l.starts_with(prefix))
        .unwrap_or_else(|| panic!("missing '{prefix}' line:\n{stdout}"))
}

const PLAN: &str = "syn-a#1:1:solver-panic,syn-a#0:2:budget-exhaust,syn-a#2:1:solve-error";

#[test]
fn exp_chaos_survives_a_fault_plan_and_proves_isolation() {
    let out = run(&["4", "3", "2", "--plan", PLAN]);
    assert!(
        out.status.success(),
        "exp_chaos exited with {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Every planned fault is echoed.
    for needle in [
        "fault: tenant=syn-a#1 round=1 site=solver-panic",
        "fault: tenant=syn-a#0 round=2 site=budget-exhaust",
        "fault: tenant=syn-a#2 round=1 site=solve-error",
    ] {
        assert!(stdout.contains(needle), "missing '{needle}':\n{stdout}");
    }
    // The panicked tenant recovered; the degrade ladder left its marks.
    assert!(
        stdout.contains("health: syn-a#1 recovered retries=1"),
        "panicked tenant should recover:\n{stdout}"
    );
    assert!(
        stdout.contains("reason=kept-incumbent"),
        "forced solve error should re-commit the incumbent:\n{stdout}"
    );
    assert!(
        stdout.contains("reason=truncated") || stdout.contains("reason=degraded"),
        "budget exhaustion should degrade the solve:\n{stdout}"
    );
    // Isolation verdict: the untouched tenant matches the baseline.
    assert_eq!(
        line_of(&stdout, "fault isolation: "),
        "fault isolation: identical"
    );
    line_of(&stdout, "health counts: healthy=");
    line_of(&stdout, "fleet fingerprint: ");
}

#[test]
fn exp_chaos_is_deterministic_across_reruns_and_workers() {
    let pin = |args: &[&str]| -> Vec<String> {
        let out = run(args);
        assert!(out.status.success());
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| {
                l.starts_with("fault")
                    || l.starts_with("health")
                    || l.starts_with("degrade")
                    || l.contains("fingerprint")
            })
            .map(String::from)
            .collect()
    };
    let base = pin(&["4", "3", "1", "--plan", PLAN]);
    assert_eq!(base, pin(&["4", "3", "1", "--plan", PLAN]), "rerun");
    assert_eq!(base, pin(&["4", "3", "4", "--plan", PLAN]), "workers 4");
}

#[test]
fn exp_chaos_empty_plan_matches_the_baseline_exactly() {
    let out = run(&["3", "2", "2", "--rate", "0"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fault plan: 0 fault(s)"));
    let fleet = line_of(&stdout, "fleet fingerprint: ")
        .trim_start_matches("fleet fingerprint: ")
        .to_string();
    let baseline = line_of(&stdout, "baseline fingerprint: ")
        .trim_start_matches("baseline fingerprint: ")
        .to_string();
    assert_eq!(
        fleet, baseline,
        "an empty plan must be bit-identical to the fault-free run:\n{stdout}"
    );
    assert!(stdout.contains("health counts: healthy=3 recovered=0 failed=0"));
}

#[test]
fn exp_chaos_json_mode_emits_a_parseable_document() {
    let out = run(&["3", "2", "1", "--plan", "syn-a#0:1:solver-panic", "--json"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let doc = alert_audit::json::Value::parse(stdout.trim()).expect("valid JSON");
    assert_eq!(
        doc.get("fault_isolation").unwrap(),
        &alert_audit::json::Value::Bool(true)
    );
    assert_eq!(
        doc.get("plan")
            .unwrap()
            .get("faults")
            .unwrap()
            .as_f64()
            .unwrap(),
        1.0
    );
    let chaos = doc.get("chaos").unwrap();
    let log = chaos.get("tenant_log").unwrap().as_arr().unwrap();
    assert_eq!(log.len(), 3);
    // The faulted tenant's health record rides in the document.
    let statuses: Vec<&str> = log
        .iter()
        .map(|t| {
            t.get("health")
                .unwrap()
                .get("status")
                .unwrap()
                .as_str()
                .unwrap()
        })
        .collect();
    assert!(
        statuses.contains(&"recovered"),
        "expected a recovered tenant in {statuses:?}"
    );
}
