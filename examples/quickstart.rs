//! Quickstart: define a custom scenario, register it alongside the
//! built-in registry, solve it, and execute one audit period.
//!
//! The [`Scenario`] trait is the one-file extension point of this
//! workspace: anything that can deterministically map a seed to a
//! `GameSpec` plugs into the same registry the experiment drivers
//! (`exp_* --scenario <key>`), the conformance suite, and the examples
//! use.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use alert_audit::game::error::GameError;
use alert_audit::game::execute::{execute_policy, RealizedAlert};
use alert_audit::game::model::{AttackAction, Attacker, GameSpec, GameSpecBuilder};
use alert_audit::game::scenario::Scenario;
use alert_audit::prelude::*;
use std::sync::Arc;
use stochastics::DiscretizedGaussian;

/// A three-alert-type insider-threat clinic, as a registry scenario.
struct ClinicDemo;

impl Scenario for ClinicDemo {
    fn key(&self) -> &str {
        "clinic-demo"
    }

    fn source(&self) -> &str {
        "example"
    }

    fn describe(&self) -> String {
        "quickstart demo: 3 Gaussian alert types, 3 insiders, budget 4".into()
    }

    fn build(&self, _seed: u64) -> Result<GameSpec, GameError> {
        // ------------------------------------------------------------------
        // Describe the alert landscape: three alert types with Gaussian
        // benign counts and unit audit costs...
        // ------------------------------------------------------------------
        let mut builder = GameSpecBuilder::new();
        let t_vip = builder.alert_type(
            "VIP record access",
            1.0,
            Arc::new(DiscretizedGaussian::with_halfwidth(6.0, 2.0, 5)),
        );
        let t_coworker = builder.alert_type(
            "Co-worker record access",
            1.0,
            Arc::new(DiscretizedGaussian::with_halfwidth(4.0, 1.5, 4)),
        );
        let t_neighbor = builder.alert_type(
            "Neighbor record access",
            1.0,
            Arc::new(DiscretizedGaussian::with_halfwidth(3.0, 1.0, 3)),
        );

        // ------------------------------------------------------------------
        // ...and who might attack what, and what it is worth to them.
        // ------------------------------------------------------------------
        for (i, &(t, reward)) in [(t_vip, 8.0), (t_coworker, 6.0), (t_neighbor, 5.0)]
            .iter()
            .enumerate()
        {
            builder.attacker(Attacker::new(
                format!("insider-{i}"),
                1.0,
                vec![
                    AttackAction::deterministic("victim-record", t, reward, 0.5, 6.0),
                    AttackAction::benign("harmless-record", 0.5),
                ],
            ));
        }
        builder.budget(4.0);
        builder.allow_opt_out(true);
        builder.build()
    }
}

fn main() {
    // ------------------------------------------------------------------
    // 1. Register the custom scenario next to the built-ins and resolve
    //    it by key — exactly how the exp_* drivers find their games.
    // ------------------------------------------------------------------
    let mut registry = alert_audit::scenario::registry();
    registry.register(Arc::new(ClinicDemo));
    println!("registry knows: {}", registry.keys().join(", "));
    let spec = registry.build("clinic-demo", 7).expect("valid game");

    // ------------------------------------------------------------------
    // 2. Solve the Stackelberg game: ISHM threshold search over an exact
    //    inner LP (3 types → 6 orderings).
    // ------------------------------------------------------------------
    let solver = OapSolver::new(SolverConfig {
        epsilon: 0.1,
        n_samples: 500,
        seed: 7,
        ..Default::default()
    });
    let solution = solver.solve(&spec).expect("solvable game");

    println!("auditor's optimal loss: {:.4}", solution.loss);
    println!("thresholds (audit slots per type):");
    for (t, b) in solution.policy.thresholds.iter().enumerate() {
        println!("  {:<28} {:>4.0}", spec.alert_types[t].name, b);
    }
    println!("mixed strategy over audit orders:");
    for (o, p) in solution.policy.orders.iter().zip(&solution.policy.probs) {
        if *p > 1e-4 {
            println!("  order {o}  with probability {p:.4}");
        }
    }
    println!(
        "ISHM explored {} threshold vectors",
        solution.stats.thresholds_explored
    );

    // ------------------------------------------------------------------
    // 3. Use the policy operationally: one day of realized alerts.
    // ------------------------------------------------------------------
    let alerts: Vec<RealizedAlert> = (0..6)
        .map(|i| RealizedAlert {
            alert_type: (i % 3) as usize,
            id: 100 + i,
        })
        .collect();
    let mut rng = stochastics::seeded_rng(99);
    let run = execute_policy(&solution.policy, &spec, &alerts, &mut rng);
    println!(
        "today: drew order {}, audited {} of {} alerts, spent {:.1} of {:.1}",
        run.order,
        run.n_audited(),
        alerts.len(),
        run.spent,
        spec.budget
    );
}
