//! Two-phase dense tableau simplex.
//!
//! The model from [`crate::Problem`] is brought to computational standard
//! form (minimize, equality rows, non-negative variables, non-negative
//! right-hand sides) through variable shifting/mirroring/splitting and
//! slack/surplus/artificial columns. Phase 1 minimizes the sum of the
//! artificials to find a basic feasible point; phase 2 minimizes the real
//! objective. Pricing is Dantzig's rule with an automatic switch to Bland's
//! rule after a stall budget, which guarantees finite termination on
//! degenerate instances.
//!
//! Dual values are read off the final tableau: each row carries a *reference
//! column* (its slack, or its artificial for `=`/`≥` rows) whose reduced
//! cost equals `−yᵢ`.

use crate::error::LpError;
use crate::problem::{Problem, Relation, Sense};
use crate::solution::Solution;

/// Tunable solver parameters.
#[derive(Debug, Clone)]
pub struct SimplexOptions {
    /// Hard cap on total pivots across both phases.
    pub max_iterations: usize,
    /// Switch from Dantzig to Bland pricing after this many consecutive
    /// degenerate (non-improving) pivots.
    pub bland_after_stalls: usize,
    /// Reduced-cost optimality tolerance.
    pub cost_tol: f64,
    /// Pivot-element magnitude tolerance.
    pub pivot_tol: f64,
    /// Phase-1 residual above which the model is declared infeasible.
    pub feas_tol: f64,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        Self {
            max_iterations: 100_000,
            bland_after_stalls: 256,
            cost_tol: 1e-9,
            pivot_tol: 1e-9,
            feas_tol: 1e-7,
        }
    }
}

/// How a user variable maps to standard-form columns.
#[derive(Debug, Clone, Copy)]
enum VarMap {
    /// `x = lo + col`.
    Shifted { col: usize, lo: f64 },
    /// `x = hi − col` (used for `(−∞, hi]` domains).
    Mirrored { col: usize, hi: f64 },
    /// `x = pos − neg` (free variables).
    Split { pos: usize, neg: usize },
}

struct StandardForm {
    /// Row-major `m × n` constraint matrix.
    a: Vec<f64>,
    rhs: Vec<f64>,
    /// Phase-2 cost per column (internal minimization).
    cost: Vec<f64>,
    m: usize,
    n: usize,
    /// Column index of each row's initially-basic slack/artificial.
    initial_basis: Vec<usize>,
    /// Reference column per row for dual extraction.
    ref_col: Vec<usize>,
    /// `true` for artificial columns.
    is_artificial: Vec<bool>,
    /// −1 where the user row was negated to make the rhs non-negative;
    /// only the first `n_user_rows` entries are meaningful to callers.
    row_flip: Vec<f64>,
    n_user_rows: usize,
    var_map: Vec<VarMap>,
}

/// Assemble the standard form. Rows are the user constraints followed by
/// internal upper-bound rows; columns are structural, then slack/surplus,
/// then artificial.
fn build_standard_form(p: &Problem) -> StandardForm {
    let internal_sign = match p.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };

    // --- Columns for variables -------------------------------------------
    let mut var_map = Vec::with_capacity(p.vars.len());
    let mut n_struct = 0usize;
    // Upper-bound rows to append: (column, bound).
    let mut ub_rows: Vec<(usize, f64)> = Vec::new();
    for v in &p.vars {
        if v.lo.is_finite() {
            let col = n_struct;
            n_struct += 1;
            var_map.push(VarMap::Shifted { col, lo: v.lo });
            if v.hi.is_finite() {
                ub_rows.push((col, v.hi - v.lo));
            }
        } else if v.hi.is_finite() {
            let col = n_struct;
            n_struct += 1;
            var_map.push(VarMap::Mirrored { col, hi: v.hi });
        } else {
            let pos = n_struct;
            let neg = n_struct + 1;
            n_struct += 2;
            var_map.push(VarMap::Split { pos, neg });
        }
    }

    // --- Dense rows over structural columns ------------------------------
    let n_user_rows = p.constraints.len();
    let m = n_user_rows + ub_rows.len();
    let mut rows: Vec<Vec<f64>> = vec![vec![0.0; n_struct]; m];
    let mut rhs = vec![0.0; m];
    let mut rels = vec![Relation::Le; m];

    for (i, c) in p.constraints.iter().enumerate() {
        rels[i] = c.rel;
        let mut b = c.rhs;
        for &(j, coeff) in &c.terms {
            match var_map[j] {
                VarMap::Shifted { col, lo } => {
                    rows[i][col] += coeff;
                    b -= coeff * lo;
                }
                VarMap::Mirrored { col, hi } => {
                    rows[i][col] -= coeff;
                    b -= coeff * hi;
                }
                VarMap::Split { pos, neg } => {
                    rows[i][pos] += coeff;
                    rows[i][neg] -= coeff;
                }
            }
        }
        rhs[i] = b;
    }
    for (k, &(col, bound)) in ub_rows.iter().enumerate() {
        let i = n_user_rows + k;
        rows[i][col] = 1.0;
        rhs[i] = bound;
        rels[i] = Relation::Le;
    }

    // --- Normalize signs, then attach slack/surplus/artificials ----------
    let mut row_flip = vec![1.0; m];
    for i in 0..m {
        if rhs[i] < 0.0 {
            row_flip[i] = -1.0;
            rhs[i] = -rhs[i];
            for a in &mut rows[i] {
                *a = -*a;
            }
            rels[i] = match rels[i] {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
        }
    }

    // Count auxiliary columns.
    let n_slack = rels
        .iter()
        .filter(|r| matches!(r, Relation::Le | Relation::Ge))
        .count();
    let n_art = rels
        .iter()
        .filter(|r| matches!(r, Relation::Ge | Relation::Eq))
        .count();
    let n = n_struct + n_slack + n_art;

    let mut a = vec![0.0; m * n];
    for (i, row) in rows.iter().enumerate() {
        a[i * n..i * n + n_struct].copy_from_slice(row);
    }

    let mut cost = vec![0.0; n];
    for (j, v) in p.vars.iter().enumerate() {
        let c = internal_sign * v.obj;
        match var_map[j] {
            VarMap::Shifted { col, .. } => cost[col] += c,
            VarMap::Mirrored { col, .. } => cost[col] -= c,
            VarMap::Split { pos, neg } => {
                cost[pos] += c;
                cost[neg] -= c;
            }
        }
    }

    let mut is_artificial = vec![false; n];
    let mut initial_basis = vec![usize::MAX; m];
    let mut ref_col = vec![usize::MAX; m];
    let mut next_slack = n_struct;
    let mut next_art = n_struct + n_slack;
    for i in 0..m {
        match rels[i] {
            Relation::Le => {
                a[i * n + next_slack] = 1.0;
                initial_basis[i] = next_slack;
                ref_col[i] = next_slack;
                next_slack += 1;
            }
            Relation::Ge => {
                a[i * n + next_slack] = -1.0; // surplus
                next_slack += 1;
                a[i * n + next_art] = 1.0;
                is_artificial[next_art] = true;
                initial_basis[i] = next_art;
                ref_col[i] = next_art;
                next_art += 1;
            }
            Relation::Eq => {
                a[i * n + next_art] = 1.0;
                is_artificial[next_art] = true;
                initial_basis[i] = next_art;
                ref_col[i] = next_art;
                next_art += 1;
            }
        }
    }

    StandardForm {
        a,
        rhs,
        cost,
        m,
        n,
        initial_basis,
        ref_col,
        is_artificial,
        row_flip,
        n_user_rows,
        var_map,
    }
}

/// Working state of the tableau method.
struct Tableau {
    /// `m × n` coefficient block, row-major (kept as `B⁻¹A`).
    t: Vec<f64>,
    /// Current basic values (`B⁻¹b`).
    rhs: Vec<f64>,
    /// Reduced-cost row for the active phase.
    red: Vec<f64>,
    /// Basic column per row.
    basis: Vec<usize>,
    /// Columns allowed to enter the basis.
    allowed: Vec<bool>,
    m: usize,
    n: usize,
    iterations: usize,
}

impl Tableau {
    fn new(sf: &StandardForm) -> Self {
        Self {
            t: sf.a.clone(),
            rhs: sf.rhs.clone(),
            red: vec![0.0; sf.n],
            basis: sf.initial_basis.clone(),
            allowed: vec![true; sf.n],
            m: sf.m,
            n: sf.n,
            iterations: 0,
        }
    }

    #[inline]
    fn at(&self, i: usize, j: usize) -> f64 {
        self.t[i * self.n + j]
    }

    /// Recompute the reduced-cost row `r_j = c_j − c_Bᵀ·(B⁻¹A)_j` and return
    /// the current objective `c_Bᵀ·(B⁻¹b)`.
    fn price(&mut self, cost: &[f64]) -> f64 {
        self.red.copy_from_slice(cost);
        let mut z = 0.0;
        for i in 0..self.m {
            let cb = cost[self.basis[i]];
            if cb != 0.0 {
                z += cb * self.rhs[i];
                let row = &self.t[i * self.n..(i + 1) * self.n];
                for (r, &a) in self.red.iter_mut().zip(row) {
                    *r -= cb * a;
                }
            }
        }
        z
    }

    /// Perform one pivot: column `enter` enters the basis at row `leave`.
    fn pivot(&mut self, enter: usize, leave: usize) {
        let n = self.n;
        let pivot = self.at(leave, enter);
        debug_assert!(pivot.abs() > 0.0);
        let inv = 1.0 / pivot;
        {
            let row = &mut self.t[leave * n..(leave + 1) * n];
            for a in row.iter_mut() {
                *a *= inv;
            }
            // Clean the pivot element exactly.
            row[enter] = 1.0;
        }
        self.rhs[leave] *= inv;

        // Split borrow: copy the (normalized) pivot row once, then sweep.
        let pivot_row: Vec<f64> = self.t[leave * n..(leave + 1) * n].to_vec();
        let pivot_rhs = self.rhs[leave];
        for i in 0..self.m {
            if i == leave {
                continue;
            }
            let factor = self.at(i, enter);
            if factor.abs() > 1e-14 {
                let row = &mut self.t[i * n..(i + 1) * n];
                for (a, &pr) in row.iter_mut().zip(&pivot_row) {
                    *a -= factor * pr;
                }
                row[enter] = 0.0;
                self.rhs[i] -= factor * pivot_rhs;
                if self.rhs[i].abs() < 1e-12 {
                    self.rhs[i] = 0.0;
                }
            }
        }
        let factor = self.red[enter];
        if factor.abs() > 1e-14 {
            for (r, &pr) in self.red.iter_mut().zip(&pivot_row) {
                *r -= factor * pr;
            }
            self.red[enter] = 0.0;
        }
        self.basis[leave] = enter;
        self.iterations += 1;
    }

    /// Choose the entering column: Dantzig (most negative reduced cost) or
    /// Bland (lowest index with negative reduced cost).
    fn choose_entering(&self, bland: bool, tol: f64) -> Option<usize> {
        if bland {
            (0..self.n).find(|&j| self.allowed[j] && self.red[j] < -tol)
        } else {
            let mut best = None;
            let mut best_val = -tol;
            for j in 0..self.n {
                if self.allowed[j] && self.red[j] < best_val {
                    best_val = self.red[j];
                    best = Some(j);
                }
            }
            best
        }
    }

    /// Ratio test. Returns the leaving row, or `None` (unbounded column).
    ///
    /// Rows whose basic variable is an artificial stuck at level zero are
    /// given priority whenever the entering column touches them, so
    /// artificials can never re-grow during phase 2.
    ///
    /// Tie-breaking is mode-dependent: under Bland pricing, ties resolve to
    /// the lowest basic index (required for the anti-cycling guarantee);
    /// under Dantzig pricing they resolve to the **largest pivot element**,
    /// which avoids the numerical blow-ups that near-zero pivots cause on
    /// heavily degenerate game LPs.
    fn choose_leaving(
        &self,
        enter: usize,
        is_artificial: &[bool],
        pivot_tol: f64,
        bland: bool,
    ) -> Option<usize> {
        // Artificial-guard: a zero-level artificial row intersected by the
        // entering column is pivoted out immediately (a degenerate pivot).
        let mut guard: Option<usize> = None;
        for i in 0..self.m {
            if is_artificial[self.basis[i]]
                && self.rhs[i] <= pivot_tol
                && self.at(i, enter).abs() > pivot_tol
            {
                let better = guard
                    .map(|g| self.at(i, enter).abs() > self.at(g, enter).abs())
                    .unwrap_or(true);
                if better {
                    guard = Some(i);
                }
            }
        }
        if guard.is_some() {
            return guard;
        }
        let mut best: Option<(usize, f64)> = None;
        for i in 0..self.m {
            let a = self.at(i, enter);
            if a > pivot_tol {
                let ratio = self.rhs[i] / a;
                match best {
                    None => best = Some((i, ratio)),
                    Some((bi, br)) => {
                        let tied = ratio < br + 1e-12;
                        let strictly_better = ratio < br - 1e-12;
                        let tie_break = if bland {
                            self.basis[i] < self.basis[bi]
                        } else {
                            a.abs() > self.at(bi, enter).abs()
                        };
                        if strictly_better || (tied && tie_break) {
                            best = Some((i, ratio));
                        }
                    }
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Run the pivot loop for the active phase to optimality.
    fn optimize(
        &mut self,
        is_artificial: &[bool],
        opts: &SimplexOptions,
        budget: &mut usize,
        force_bland: bool,
    ) -> Result<(), LpError> {
        let mut stalls = 0usize;
        let mut bland = force_bland;
        loop {
            let Some(enter) = self.choose_entering(bland, opts.cost_tol) else {
                return Ok(());
            };
            let Some(leave) = self.choose_leaving(enter, is_artificial, opts.pivot_tol, bland)
            else {
                return Err(LpError::Unbounded { column: enter });
            };
            let degenerate = self.rhs[leave] <= opts.pivot_tol;
            let leaving_col = self.basis[leave];
            self.pivot(enter, leave);
            // Once an artificial leaves the basis it may never return.
            if is_artificial[leaving_col] {
                self.allowed[leaving_col] = false;
            }
            if *budget == 0 {
                return Err(LpError::IterationLimit {
                    iterations: self.iterations,
                });
            }
            *budget -= 1;
            if degenerate {
                stalls += 1;
                if stalls >= opts.bland_after_stalls {
                    bland = true;
                }
            } else {
                stalls = 0;
                bland = force_bland;
            }
        }
    }
}

/// Solve the problem; called by [`Problem::solve_with`].
///
/// Runs the fast Dantzig-priced pass first; if that pass reports an
/// unbounded ray — which on heavily degenerate problems can be an artifact
/// of an ill-conditioned pivot — the solve is repeated from scratch under
/// Bland's rule, whose verdicts are trustworthy. A genuine unbounded model
/// costs one redundant pass; a false positive is corrected silently.
pub(crate) fn solve(p: &Problem, opts: &SimplexOptions) -> Result<Solution, LpError> {
    match solve_attempt(p, opts, false) {
        Err(LpError::Unbounded { .. }) => solve_attempt(p, opts, true),
        other => other,
    }
}

fn solve_attempt(
    p: &Problem,
    opts: &SimplexOptions,
    force_bland: bool,
) -> Result<Solution, LpError> {
    let sf = build_standard_form(p);
    let mut tab = Tableau::new(&sf);
    let mut budget = opts.max_iterations;

    // ---- Phase 1: minimize the sum of artificial variables --------------
    let any_artificial = sf.is_artificial.iter().any(|&b| b);
    if any_artificial {
        let phase1_cost: Vec<f64> = sf
            .is_artificial
            .iter()
            .map(|&b| if b { 1.0 } else { 0.0 })
            .collect();
        // Artificials never *enter*; they only start basic.
        for j in 0..sf.n {
            if sf.is_artificial[j] {
                tab.allowed[j] = false;
            }
        }
        let z1 = tab.price(&phase1_cost);
        debug_assert!(z1 >= -1e-9);
        tab.optimize(&sf.is_artificial, opts, &mut budget, force_bland)?;
        let residual: f64 = (0..tab.m)
            .filter(|&i| sf.is_artificial[tab.basis[i]])
            .map(|i| tab.rhs[i])
            .sum();
        if residual > opts.feas_tol {
            return Err(LpError::Infeasible { residual });
        }
        // Pivot remaining zero-level artificials out where possible; rows
        // with no eligible pivot are redundant and harmless (the guard in
        // `choose_leaving` keeps their artificials at level zero).
        for i in 0..tab.m {
            if sf.is_artificial[tab.basis[i]] {
                let swap = (0..sf.n)
                    .find(|&j| !sf.is_artificial[j] && tab.at(i, j).abs() > opts.pivot_tol);
                if let Some(j) = swap {
                    let old = tab.basis[i];
                    tab.pivot(j, i);
                    tab.allowed[old] = false;
                }
            }
        }
    }

    // ---- Phase 2: minimize the real objective ----------------------------
    tab.price(&sf.cost);
    tab.optimize(&sf.is_artificial, opts, &mut budget, force_bland)?;

    // ---- Recover the primal point in user coordinates --------------------
    let mut x_std = vec![0.0; sf.n];
    for i in 0..tab.m {
        x_std[tab.basis[i]] = tab.rhs[i];
    }
    let x: Vec<f64> = sf
        .var_map
        .iter()
        .map(|vm| match *vm {
            VarMap::Shifted { col, lo } => lo + x_std[col],
            VarMap::Mirrored { col, hi } => hi - x_std[col],
            VarMap::Split { pos, neg } => x_std[pos] - x_std[neg],
        })
        .collect();
    let objective = p.objective_at(&x);

    // ---- Duals: reduced cost of each row's reference column is −yᵢ ------
    // (phase-2 costs of slack/surplus/artificial columns are all zero).
    let sense_sign = match p.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let duals: Vec<f64> = (0..sf.n_user_rows)
        .map(|i| sense_sign * sf.row_flip[i] * -tab.red[sf.ref_col[i]])
        .collect();

    Ok(Solution::new(objective, x, duals, tab.iterations))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_form_shapes() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 1.0, 0.0, 5.0); // shift (lo=0) + ub row
        let y = p.add_free_var("y", 2.0); // split
        let z = p.add_var("z", 0.0, f64::NEG_INFINITY, 3.0); // mirror
        p.add_constraint("c1", vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        p.add_constraint("c2", vec![(y, 1.0), (z, 1.0)], Relation::Ge, -2.0);
        let sf = build_standard_form(&p);
        // Rows: 2 user + 1 ub. Structural cols: 1 (x) + 2 (y) + 1 (z).
        assert_eq!(sf.m, 3);
        assert_eq!(sf.n_user_rows, 2);
        let n_struct = 4;
        // c2 has negative rhs: flipped from Ge to Le → slack only.
        // So slacks: c1, c2(after flip), ub = 3; artificials: 0.
        assert_eq!(sf.n, n_struct + 3);
        assert!(sf.is_artificial.iter().all(|&b| !b));
        assert_eq!(sf.row_flip[1], -1.0);
    }

    #[test]
    fn equality_rows_get_artificials() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 1.0, 0.0, f64::INFINITY);
        p.add_constraint("c", vec![(x, 1.0)], Relation::Eq, 3.0);
        let sf = build_standard_form(&p);
        assert_eq!(sf.is_artificial.iter().filter(|&&b| b).count(), 1);
        assert_eq!(sf.ref_col[0], sf.initial_basis[0]);
    }
}
