//! Run every experiment back to back (the full EXPERIMENTS.md
//! regeneration), then sweep the whole scenario registry.
//!
//! ```text
//! cargo run -p audit-bench --release --bin exp_all [--quick]
//! ```
//!
//! `--quick` shrinks grids so the whole suite finishes in a few minutes on
//! one core — useful as a smoke test; drop it for the full paper grids.
//! The penultimate phase iterates `alert_audit::scenario::registry()` and
//! solves every scenario end to end (ISHM+CGGS at its suggested ε),
//! printing one loss per registry key — the quick "every workload still
//! flows" check. The final phase runs the online runtime (`exp_online`) on
//! the drifting `syn-seasonal` scenario for a short multi-epoch window and
//! prints its telemetry summary.

use audit_bench::defaults::default_threads;
use audit_bench::scenarios::{registry_sweep, render_sweep};
use std::process::Command;

fn run(bin: &str, args: &[&str]) {
    eprintln!("\n=== {bin} {} ===", args.join(" "));
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let status = Command::new(dir.join(bin))
        .args(args)
        .status()
        .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
    assert!(status.success(), "{bin} failed");
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    if quick {
        let b = "2,8,14,20";
        let e = "0.1,0.3,0.5";
        run("exp_table3", &[b]);
        run("exp_table4", &[b, e]);
        run("exp_table5", &[b, e]);
        run("exp_table6", &[b, e]);
        run("exp_table7", &[b, e]);
        run("exp_exploration", &[b, e]);
        run("exp_fig1", &["20,60,100"]);
        run("exp_fig2", &["10,130,250"]);
        run("exp_hardness", &["8"]);
    } else {
        run("exp_table3", &[]);
        run("exp_table4", &[]);
        run("exp_table5", &[]);
        run("exp_table6", &[]);
        run("exp_table7", &[]);
        run("exp_exploration", &[]);
        run("exp_fig1", &[]);
        run("exp_fig2", &[]);
        run("exp_hardness", &[]);
    }

    let samples = if quick { 60 } else { 200 };
    eprintln!("\n=== scenario registry sweep ({samples} samples) ===");
    let rows = registry_sweep(samples, default_threads()).expect("registry sweep solves");
    println!("{}", render_sweep(&rows));

    // Online runtime on the drifting scenario: a short epoch loop with
    // drift-gated warm re-solving and the cold-solve comparison.
    let online_epochs = if quick { "8" } else { "24" };
    run(
        "exp_online",
        &[
            online_epochs,
            "1",
            "--scenario",
            "syn-seasonal",
            "--compare-cold",
        ],
    );
    eprintln!("\nall experiments completed");
}
