//! The type-cluster decomposed inner evaluator and its parallel
//! best-response pricing.
//!
//! The exact inner evaluator materializes all `|T|!` order columns; CGGS
//! prices them one greedy column per master iteration. At 20–50 types
//! the former is impossible and the latter's *outer* caller (ISHM)
//! still evaluates thousands of candidate thresholds. The decomposed
//! evaluator splits the difference:
//!
//! * **Block pool** — enumerate orders *within* each workload cluster
//!   (≤ `k!` permutations each, `k` = cluster size) against the fixed
//!   canonical cross-cluster spine ([`decomposed_pool`]). For 50 types
//!   that is ~100 columns instead of `50!`, and the master LP over them
//!   is exact for the decomposition.
//! * **Memoized pool evaluation** — `evaluate` solves the master over
//!   the block pool only, memoized by the engine's canonical threshold
//!   class, exactly like [`crate::ishm::ExactEvaluator`] (same code
//!   shape, different pool). `prime` batches whole ISHM sweep frontiers
//!   through one prefix-trie pass.
//! * **Binding-cluster refinement** — `solve_full` (ISHM calls it once,
//!   at the accepted optimum) re-prices: rank clusters by their
//!   `y`-weighted detection mass, run a multi-start greedy
//!   best-response from each of the top (binding) clusters, and admit
//!   improving columns for up to [`REFINE_ROUNDS`] master re-solves.
//!   Candidate scoring fans out over [`std::thread::scope`] workers via
//!   [`parallel_map_indexed`] — pure arithmetic on already-computed
//!   `Pal` vectors, chunked by candidate index and merged back in index
//!   order, so results are bit-identical at every thread count.
//!
//! At ≤ [`EXACT_MAX_TYPES`](super::EXACT_MAX_TYPES) types the pool *is*
//! the full enumeration and refinement is skipped, making the evaluator
//! field-for-field equivalent to `ExactEvaluator` — the agreement tests
//! assert bit-identity there.

use super::{TypeClusters, DEFAULT_CLUSTER_SIZE, EXACT_MAX_TYPES};
use crate::cggs::{detection_weights, score_from_pal};
use crate::detection::{DetectionEstimator, PalEngine, PalQuery};
use crate::error::GameError;
use crate::ishm::ThresholdEvaluator;
use crate::master::{MasterSolution, MasterSolver};
use crate::model::GameSpec;
use crate::ordering::AuditOrder;
use crate::payoff::PayoffMatrix;
use std::collections::{HashMap, HashSet};

/// Master re-solve rounds the refinement may spend admitting new columns.
pub const REFINE_ROUNDS: usize = 3;

/// Binding clusters (ranked by `y`-weighted detection mass) seeding
/// greedy restarts per refinement round.
const MAX_STARTS: usize = 4;

/// A refinement column must beat the incumbent master value by this much
/// to be admitted (mirrors the CGGS reduced-cost tolerance).
const REFINE_TOL: f64 = 1e-7;

/// Deterministic parallel map: apply `f` to every item of `items`,
/// splitting the index range across at most `threads` scoped workers and
/// merging results back **by index**. `f` must be pure — given that, the
/// output is byte-identical at every thread count, because each slot is
/// computed exactly once from `(index, item)` alone and the merge is
/// positional. Runs inline (no threads spawned) when one worker suffices.
pub(crate) fn parallel_map_indexed<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        let f = &f;
        for (ci, (in_chunk, out_chunk)) in
            items.chunks(chunk).zip(out.chunks_mut(chunk)).enumerate()
        {
            s.spawn(move || {
                for (j, (x, slot)) in in_chunk.iter().zip(out_chunk.iter_mut()).enumerate() {
                    *slot = Some(f(ci * chunk + j, x));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("every index slot is covered by exactly one worker"))
        .collect()
}

/// All permutations of `items` in lexicographic position order (Heap's
/// algorithm would scramble determinism guarantees for no gain at these
/// sizes). Falls back to the `len` rotations when the slice is too long
/// to enumerate — clusters built with [`DEFAULT_CLUSTER_SIZE`] never hit
/// the fallback.
fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    const MAX_ENUMERATED: usize = 6; // 6! = 720 columns, already generous
    if items.len() > MAX_ENUMERATED {
        return (0..items.len())
            .map(|r| {
                let mut rot = items[r..].to_vec();
                rot.extend_from_slice(&items[..r]);
                rot
            })
            .collect();
    }
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(items.len());
    let mut used = vec![false; items.len()];
    fn recurse(
        items: &[usize],
        used: &mut [bool],
        current: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if current.len() == items.len() {
            out.push(current.clone());
            return;
        }
        for i in 0..items.len() {
            if !used[i] {
                used[i] = true;
                current.push(items[i]);
                recurse(items, used, current, out);
                current.pop();
                used[i] = false;
            }
        }
    }
    recurse(items, &mut used, &mut current, &mut out);
    out
}

/// The block column pool of a clustered decomposition: for every cluster,
/// every within-cluster permutation spliced in front of the remaining
/// clusters' canonical spine. The canonical order itself is the identity
/// permutation of the first cluster, so it is always present. Columns are
/// deduplicated; the pool size is `Σ_c |c|!` (minus overlaps) — ~50
/// columns at 25 types, ~100 at 50.
pub fn decomposed_pool(spec: &GameSpec, clusters: &TypeClusters) -> Vec<AuditOrder> {
    let _ = spec.n_types(); // the clusters came from this spec
    let mut pool: Vec<AuditOrder> = Vec::new();
    for (ci, cluster) in clusters.iter().enumerate() {
        let rest: Vec<usize> = clusters
            .iter()
            .enumerate()
            .filter(|(cj, _)| *cj != ci)
            .flat_map(|(_, c)| c.iter().copied())
            .collect();
        for perm in permutations(cluster) {
            let mut col = perm;
            col.extend_from_slice(&rest);
            let order = AuditOrder::new(col).expect("block column is a permutation");
            if !pool.contains(&order) {
                pool.push(order);
            }
        }
    }
    pool
}

/// Inner evaluator for wide-type games: master LP over the clustered
/// block pool, memoized per canonical threshold class, with
/// binding-cluster best-response refinement at `solve_full`. See the
/// module docs for the full contract; the headline properties are
/// (1) bit-identity with [`crate::ishm::ExactEvaluator`] at
/// ≤ [`EXACT_MAX_TYPES`] types and (2) thread-count invariance
/// everywhere.
pub struct DecomposedEvaluator<'a> {
    spec: &'a GameSpec,
    engine: PalEngine<'a>,
    clusters: TypeClusters,
    pool: Vec<AuditOrder>,
    values: HashMap<Vec<u64>, f64>,
    exhaustive: bool,
    threads: usize,
}

impl<'a> DecomposedEvaluator<'a> {
    /// Build for `spec` with `threads` workers (engine batches and
    /// refinement scoring both use them). `seed_columns` — typically a
    /// warm start's incumbent basis — are appended to the block pool when
    /// feasible and fresh; an empty seed list is bit-identical to a cold
    /// build. At ≤ [`EXACT_MAX_TYPES`] types the pool is the full order
    /// enumeration (seeds are then redundant by construction and skipped)
    /// and refinement never runs.
    pub fn new(
        spec: &'a GameSpec,
        est: DetectionEstimator<'a>,
        threads: usize,
        seed_columns: Vec<AuditOrder>,
    ) -> Self {
        let n = spec.n_types();
        let exhaustive = n <= EXACT_MAX_TYPES;
        let clusters = TypeClusters::build(spec, DEFAULT_CLUSTER_SIZE);
        let mut pool = if exhaustive {
            AuditOrder::enumerate_all(n)
        } else {
            decomposed_pool(spec, &clusters)
        };
        if !exhaustive {
            for seed in seed_columns {
                if seed.len() == n && !pool.contains(&seed) {
                    pool.push(seed);
                }
            }
        }
        Self {
            spec,
            engine: PalEngine::new(est, threads),
            clusters,
            pool,
            values: HashMap::new(),
            exhaustive,
            threads: threads.max(1),
        }
    }

    /// The engine backing this evaluator.
    pub fn engine(&self) -> &PalEngine<'a> {
        &self.engine
    }

    /// The current column pool (block columns plus admitted seeds).
    pub fn pool(&self) -> &[AuditOrder] {
        &self.pool
    }

    /// Multi-start greedy best-response columns for the refinement: one
    /// greedy construction per binding cluster (top [`MAX_STARTS`] by
    /// `y`-weighted detection mass, ties by cluster index), each forced
    /// to open with its start cluster's types before greedily completing
    /// over the rest. Per greedy step the candidate extensions are
    /// `Pal`-batched through the trie on the calling thread, then their
    /// gains are scored concurrently and arg-maxed in index order.
    fn refine_candidates(&self, w: &[f64], thresholds: &[f64]) -> Vec<AuditOrder> {
        let mut ranked: Vec<usize> = (0..self.clusters.len()).collect();
        let cluster_w: Vec<f64> = self
            .clusters
            .iter()
            .map(|c| c.iter().map(|&t| w[t]).sum())
            .collect();
        ranked.sort_by(|&a, &b| {
            cluster_w[b]
                .partial_cmp(&cluster_w[a])
                .expect("detection weights are finite")
                .then(a.cmp(&b))
        });
        ranked.truncate(MAX_STARTS);
        let mut out: Vec<AuditOrder> = Vec::new();
        for &ci in &ranked {
            let col = self.greedy_from_cluster(ci, w, thresholds);
            if !out.contains(&col) {
                out.push(col);
            }
        }
        out
    }

    /// One greedy best-response construction whose first picks are
    /// restricted to cluster `start` (until it is exhausted), mirroring
    /// the CGGS pricing oracle otherwise: each appended position
    /// maximizes the marginal weighted detection mass `w_t·Pal(o,t)`,
    /// first-wins on ties beyond `1e-15`.
    fn greedy_from_cluster(&self, start: usize, w: &[f64], thresholds: &[f64]) -> AuditOrder {
        let n = self.spec.n_types();
        let members: HashSet<usize> = self.clusters.clusters()[start].iter().copied().collect();
        let mut prefix: Vec<usize> = Vec::with_capacity(n);
        let mut placed = vec![false; n];
        let mut cluster_left = members.len();
        for _ in 0..n {
            let candidates: Vec<usize> = (0..n)
                .filter(|&t| !placed[t] && (cluster_left == 0 || members.contains(&t)))
                .collect();
            let queries: Vec<PalQuery> = candidates
                .iter()
                .map(|&t| {
                    let mut trial = Vec::with_capacity(prefix.len() + 1);
                    trial.extend_from_slice(&prefix);
                    trial.push(t);
                    PalQuery {
                        seq: trial,
                        thresholds: thresholds.to_vec(),
                    }
                })
                .collect();
            let pals = self.engine.pal_batch(&queries);
            // Pure arithmetic over the already-computed Pal vectors:
            // parallel by candidate index, merged positionally.
            let gains = parallel_map_indexed(self.threads, &candidates, |i, &t| w[t] * pals[i][t]);
            let mut best: Option<(usize, f64)> = None;
            for (&t, &gain) in candidates.iter().zip(&gains) {
                if best.map(|(_, g)| gain > g + 1e-15).unwrap_or(true) {
                    best = Some((t, gain));
                }
            }
            let (t, _) = best.expect("some type is always placeable");
            placed[t] = true;
            if members.contains(&t) {
                cluster_left -= 1;
            }
            prefix.push(t);
        }
        AuditOrder::new(prefix).expect("greedy construction yields a permutation")
    }
}

impl ThresholdEvaluator for DecomposedEvaluator<'_> {
    fn evaluate(&mut self, thresholds: &[f64]) -> Result<f64, GameError> {
        let key = self.engine.threshold_class_key(thresholds);
        if let Some(&v) = self.values.get(&key) {
            return Ok(v);
        }
        let m =
            PayoffMatrix::build_with_engine(self.spec, &self.engine, self.pool.clone(), thresholds);
        let v = MasterSolver::solve(self.spec, &m)?.value;
        self.values.insert(key, v);
        Ok(v)
    }

    fn solve_full(
        &mut self,
        thresholds: &[f64],
    ) -> Result<(MasterSolution, Vec<AuditOrder>), GameError> {
        let mut matrix =
            PayoffMatrix::build_with_engine(self.spec, &self.engine, self.pool.clone(), thresholds);
        let mut sol = MasterSolver::solve(self.spec, &matrix)?;
        if self.exhaustive {
            return Ok((sol, matrix.orders));
        }
        // Binding-cluster refinement: admit improving best-response
        // columns, re-solve, repeat while progress lasts. The admitted
        // columns only grow the pool the master optimizes over, so the
        // value is monotone non-increasing round over round.
        let spec = self.spec;
        for _ in 0..REFINE_ROUNDS {
            let w = detection_weights(spec, &sol.y_actions);
            let candidates = self.refine_candidates(&w, thresholds);
            let queries: Vec<PalQuery> = candidates
                .iter()
                .map(|o| PalQuery::full(o, thresholds))
                .collect();
            let pals = self.engine.pal_batch(&queries);
            let y = &sol.y_actions;
            let scores =
                parallel_map_indexed(self.threads, &pals, |_, pal| score_from_pal(spec, pal, y));
            let mut admitted = false;
            for (o, f) in candidates.into_iter().zip(scores) {
                if f < sol.value - REFINE_TOL && !matrix.orders.contains(&o) {
                    matrix.push_order_with_engine(spec, &self.engine, o, thresholds);
                    admitted = true;
                }
            }
            if !admitted {
                break;
            }
            sol = MasterSolver::solve(spec, &matrix)?;
        }
        Ok((sol, matrix.orders))
    }

    fn prime(&mut self, candidates: &[Vec<f64>]) -> Result<(), GameError> {
        let mut seen: HashSet<Vec<u64>> = HashSet::new();
        let fresh: Vec<Vec<f64>> = candidates
            .iter()
            .filter(|c| {
                let key = self.engine.threshold_class_key(c);
                !self.values.contains_key(&key) && seen.insert(key)
            })
            .cloned()
            .collect();
        if fresh.len() > 1 {
            let queries: Vec<PalQuery> = fresh
                .iter()
                .flat_map(|c| self.pool.iter().map(move |o| PalQuery::full(o, c)))
                .collect();
            self.engine.pal_batch(&queries);
        }
        for c in &fresh {
            self.evaluate(c)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detection::DetectionModel;
    use crate::ishm::{ExactEvaluator, Ishm, IshmConfig};
    use crate::model::{AttackAction, Attacker, GameSpecBuilder};
    use std::sync::Arc;
    use stochastics::{Constant, DiscretizedGaussian};

    fn spec_of(n_types: usize, budget: f64) -> GameSpec {
        let mut b = GameSpecBuilder::new();
        let ts: Vec<usize> = (0..n_types)
            .map(|i| {
                if i % 2 == 0 {
                    b.alert_type(
                        format!("t{i}"),
                        1.0,
                        Arc::new(DiscretizedGaussian::with_halfwidth(2.0, 1.0, 2)),
                    )
                } else {
                    b.alert_type(format!("t{i}"), 1.0, Arc::new(Constant(1 + (i % 3) as u64)))
                }
            })
            .collect();
        for (i, &t) in ts.iter().enumerate() {
            b.attacker(Attacker::new(
                format!("e{i}"),
                1.0,
                vec![AttackAction::deterministic(
                    format!("v{i}"),
                    t,
                    4.0 + i as f64,
                    0.4,
                    3.0,
                )],
            ));
        }
        b.budget(budget);
        b.build().unwrap()
    }

    #[test]
    fn parallel_map_is_identical_at_every_thread_count() {
        let items: Vec<usize> = (0..97).collect();
        let f = |i: usize, &x: &usize| (i as f64).sin() + (x as f64).sqrt();
        let base = parallel_map_indexed(1, &items, f);
        for threads in [2usize, 3, 4, 8] {
            let got = parallel_map_indexed(threads, &items, f);
            assert_eq!(base.len(), got.len());
            for (a, b) in base.iter().zip(&got) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        assert!(parallel_map_indexed(4, &[] as &[usize], f).is_empty());
    }

    #[test]
    fn permutations_enumerate_exactly() {
        assert_eq!(permutations(&[7]).len(), 1);
        assert_eq!(permutations(&[1, 2]).len(), 2);
        let p3 = permutations(&[4, 5, 6]);
        assert_eq!(p3.len(), 6);
        assert!(p3.contains(&vec![6, 4, 5]));
        // Past the enumeration cap: rotations only.
        let wide: Vec<usize> = (0..8).collect();
        assert_eq!(permutations(&wide).len(), 8);
    }

    #[test]
    fn block_pool_covers_each_cluster_permutation() {
        let spec = spec_of(7, 3.0);
        let clusters = TypeClusters::build(&spec, 3);
        let pool = decomposed_pool(&spec, &clusters);
        // 3 clusters of sizes 3/3/1 → 6 + 6 + 1 perms, canonical overlaps
        // each cluster's identity column twice.
        assert!(pool.len() >= 11 && pool.len() <= 13, "got {}", pool.len());
        for o in &pool {
            assert_eq!(o.len(), 7);
        }
        let canonical = AuditOrder::new(clusters.canonical_order()).unwrap();
        assert!(pool.contains(&canonical));
    }

    #[test]
    fn exhaustive_path_is_bit_identical_to_exact_evaluator() {
        let spec = spec_of(3, 2.0);
        let bank = spec.sample_bank(200, 5);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let mut exact = ExactEvaluator::with_threads(&spec, est, 2);
        let mut dec = DecomposedEvaluator::new(&spec, est, 2, Vec::new());
        let ishm = Ishm::new(IshmConfig::default());
        let a = ishm.solve(&spec, &mut exact).unwrap();
        let b = ishm.solve(&spec, &mut dec).unwrap();
        assert_eq!(a.value.to_bits(), b.value.to_bits());
        assert_eq!(a.thresholds, b.thresholds);
        assert_eq!(a.master.p_orders, b.master.p_orders);
        assert_eq!(a.orders, b.orders);
        assert_eq!(a.stats.thresholds_explored, b.stats.thresholds_explored);
    }

    #[test]
    fn wide_solve_is_thread_count_invariant() {
        let spec = spec_of(9, 4.0);
        let bank = spec.sample_bank(60, 3);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let ishm = Ishm::new(IshmConfig {
            epsilon: 0.5,
            max_level: Some(1),
            ..Default::default()
        });
        let mut base = DecomposedEvaluator::new(&spec, est, 1, Vec::new());
        let out1 = ishm.solve(&spec, &mut base).unwrap();
        for threads in [2usize, 4] {
            let mut eval = DecomposedEvaluator::new(&spec, est, threads, Vec::new());
            let out = ishm.solve(&spec, &mut eval).unwrap();
            assert_eq!(out1.value.to_bits(), out.value.to_bits());
            assert_eq!(out1.thresholds, out.thresholds);
            assert_eq!(out1.master.p_orders, out.master.p_orders);
            assert_eq!(out1.orders, out.orders);
        }
    }

    #[test]
    fn refinement_never_worsens_the_pool_only_value() {
        let spec = spec_of(8, 4.0);
        let bank = spec.sample_bank(60, 3);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let mut eval = DecomposedEvaluator::new(&spec, est, 2, Vec::new());
        let thresholds = spec.threshold_upper_bounds();
        let pool_only = eval.evaluate(&thresholds).unwrap();
        let (refined, orders) = eval.solve_full(&thresholds).unwrap();
        assert!(
            refined.value <= pool_only + 1e-9,
            "refined {} > pool-only {pool_only}",
            refined.value
        );
        assert!(orders.len() >= eval.pool().len());
    }

    #[test]
    fn empty_seed_pool_is_bit_identical_to_cold_build() {
        let spec = spec_of(8, 4.0);
        let bank = spec.sample_bank(50, 3);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let thresholds = spec.threshold_upper_bounds();
        let mut cold = DecomposedEvaluator::new(&spec, est, 2, Vec::new());
        let mut seeded = DecomposedEvaluator::new(&spec, est, 2, Vec::new());
        let a = cold.solve_full(&thresholds).unwrap();
        let b = seeded.solve_full(&thresholds).unwrap();
        assert_eq!(a.0.value.to_bits(), b.0.value.to_bits());
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn feasible_seeds_join_the_pool_and_infeasible_are_skipped() {
        let spec = spec_of(8, 4.0);
        let bank = spec.sample_bank(50, 3);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let cold = DecomposedEvaluator::new(&spec, est, 1, Vec::new());
        let fresh: AuditOrder = {
            // Reverse of the canonical order: certainly a valid column and
            // (given ≥2 clusters) not a block column.
            let mut rev = cold.pool()[0].types().to_vec();
            rev.reverse();
            AuditOrder::new(rev).unwrap()
        };
        let seeded = DecomposedEvaluator::new(
            &spec,
            est,
            1,
            vec![
                fresh.clone(),
                fresh.clone(),                        // duplicate
                AuditOrder::new(vec![0, 1]).unwrap(), // wrong arity
                cold.pool()[0].clone(),               // already pooled
            ],
        );
        assert_eq!(seeded.pool().len(), cold.pool().len() + 1);
        assert_eq!(
            seeded
                .pool()
                .iter()
                .filter(|o| o.types() == fresh.types())
                .count(),
            1
        );
    }
}
