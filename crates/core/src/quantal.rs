//! Boundedly rational attackers: the quantal-response (logit) model.
//!
//! The paper's discussion section flags full rationality as a limitation:
//! "adversaries may be bounded in their rationality, and an important
//! extension would be to generalize the model [to] such behavior." This
//! module provides that extension. Instead of the hard `max_v`, attacker
//! `e` picks action `v` with probability
//!
//! ```text
//! q_e(v) = exp(λ·U_a(v)) / Σ_{v'} exp(λ·U_a(v'))
//! ```
//!
//! (opting out enters as a 0-utility pseudo-action when allowed). `λ → ∞`
//! recovers the best-responding attacker; `λ = 0` attacks uniformly at
//! random. The auditor's loss under QR attackers is smooth in the policy,
//! and [`solve_qr_thresholds`] reuses the ISHM search over it.

use crate::detection::DetectionEstimator;
use crate::error::GameError;
use crate::ishm::{Ishm, IshmConfig, ThresholdEvaluator};
use crate::master::MasterSolution;
use crate::model::GameSpec;
use crate::ordering::AuditOrder;
use crate::payoff::PayoffMatrix;
use serde::{Deserialize, Serialize};

/// Quantal-response model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantalResponse {
    /// Rationality parameter λ ≥ 0.
    pub lambda: f64,
}

impl QuantalResponse {
    /// Construct; λ must be finite and non-negative.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda.is_finite() && lambda >= 0.0, "lambda must be ≥ 0");
        Self { lambda }
    }

    /// Logit choice probabilities over utilities (numerically stabilized).
    pub fn choice_probs(&self, utilities: &[f64]) -> Vec<f64> {
        assert!(!utilities.is_empty(), "need at least one action");
        let m = utilities.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = utilities
            .iter()
            .map(|&u| ((u - m) * self.lambda).exp())
            .collect();
        let total: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / total).collect()
    }

    /// Auditor's expected loss against QR attackers under an order mixture.
    ///
    /// For each attacker, expected utilities per action are computed under
    /// the mixture, turned into logit choice probabilities, and averaged.
    pub fn loss_under_mixture(&self, spec: &GameSpec, matrix: &PayoffMatrix, p: &[f64]) -> f64 {
        assert_eq!(p.len(), matrix.n_orders());
        let mut loss = 0.0;
        for (e, att) in spec.attackers.iter().enumerate() {
            if att.actions.is_empty() {
                continue;
            }
            let mut utilities: Vec<f64> = matrix
                .index
                .range(e)
                .map(|i| {
                    matrix
                        .values
                        .iter()
                        .zip(p)
                        .map(|(col, &po)| po * col[i])
                        .sum()
                })
                .collect();
            if spec.allow_opt_out {
                utilities.push(0.0); // refrain
            }
            let probs = self.choice_probs(&utilities);
            let expected: f64 = utilities.iter().zip(&probs).map(|(&u, &q)| u * q).sum();
            loss += att.attack_prob * expected;
        }
        loss
    }
}

/// Outcome of the QR threshold search.
#[derive(Debug, Clone)]
pub struct QrOutcome {
    /// Chosen thresholds.
    pub thresholds: Vec<f64>,
    /// QR loss at those thresholds.
    pub value: f64,
    /// The rational-attacker master solution at the same thresholds (for
    /// comparing the price of assuming full rationality).
    pub rational: MasterSolution,
}

/// Evaluator plugging the QR objective into ISHM. The order mixture for
/// each candidate threshold vector is the *rational* equilibrium mixture
/// (solved exactly over `orders`), against which the QR population responds
/// — the standard robust-evaluation setup.
pub struct QrEvaluator<'a> {
    spec: &'a GameSpec,
    est: DetectionEstimator<'a>,
    orders: Vec<AuditOrder>,
    qr: QuantalResponse,
}

impl<'a> QrEvaluator<'a> {
    /// Build over an explicit order set (all permutations for small `|T|`).
    pub fn new(
        spec: &'a GameSpec,
        est: DetectionEstimator<'a>,
        orders: Vec<AuditOrder>,
        qr: QuantalResponse,
    ) -> Self {
        assert!(!orders.is_empty());
        Self {
            spec,
            est,
            orders,
            qr,
        }
    }

    fn qr_value(&self, thresholds: &[f64]) -> Result<(f64, MasterSolution), GameError> {
        let matrix = PayoffMatrix::build(self.spec, &self.est, self.orders.clone(), thresholds);
        let master = crate::master::MasterSolver::solve(self.spec, &matrix)?;
        let loss = self
            .qr
            .loss_under_mixture(self.spec, &matrix, &master.p_orders);
        Ok((loss, master))
    }
}

impl ThresholdEvaluator for QrEvaluator<'_> {
    fn evaluate(&mut self, thresholds: &[f64]) -> Result<f64, GameError> {
        self.qr_value(thresholds).map(|(v, _)| v)
    }

    fn solve_full(
        &mut self,
        thresholds: &[f64],
    ) -> Result<(MasterSolution, Vec<AuditOrder>), GameError> {
        let (_, master) = self.qr_value(thresholds)?;
        Ok((master, self.orders.clone()))
    }
}

/// ISHM threshold search against a QR attacker population.
pub fn solve_qr_thresholds(
    spec: &GameSpec,
    est: &DetectionEstimator<'_>,
    qr: QuantalResponse,
    epsilon: f64,
) -> Result<QrOutcome, GameError> {
    let orders = AuditOrder::enumerate_all(spec.n_types());
    let mut eval = QrEvaluator::new(spec, *est, orders, qr);
    let outcome = Ishm::new(IshmConfig {
        epsilon,
        ..Default::default()
    })
    .solve(spec, &mut eval)?;
    let (value, rational) = eval.qr_value(&outcome.thresholds)?;
    Ok(QrOutcome {
        thresholds: outcome.thresholds,
        value,
        rational,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detection::DetectionModel;
    use crate::model::{AttackAction, Attacker, GameSpecBuilder};
    use std::sync::Arc;
    use stochastics::Constant;

    fn spec() -> GameSpec {
        let mut b = GameSpecBuilder::new();
        let t0 = b.alert_type("t0", 1.0, Arc::new(Constant(1)));
        let t1 = b.alert_type("t1", 1.0, Arc::new(Constant(1)));
        b.attacker(Attacker::new(
            "e0",
            1.0,
            vec![
                AttackAction::deterministic("v0", t0, 10.0, 0.0, 10.0),
                AttackAction::deterministic("v1", t1, 4.0, 0.0, 10.0),
            ],
        ));
        b.budget(1.0);
        b.build().unwrap()
    }

    #[test]
    fn choice_probs_limits() {
        let qr0 = QuantalResponse::new(0.0);
        let probs = qr0.choice_probs(&[5.0, -3.0, 1.0]);
        for &p in &probs {
            assert!((p - 1.0 / 3.0).abs() < 1e-12);
        }
        let qr_inf = QuantalResponse::new(200.0);
        let probs = qr_inf.choice_probs(&[5.0, -3.0, 1.0]);
        assert!(probs[0] > 0.999);
    }

    #[test]
    fn choice_probs_are_a_distribution_and_monotone() {
        let qr = QuantalResponse::new(0.7);
        let probs = qr.choice_probs(&[2.0, 1.0, -1.0, 2.5]);
        let sum: f64 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(probs[3] > probs[0]);
        assert!(probs[0] > probs[1]);
        assert!(probs[1] > probs[2]);
    }

    #[test]
    fn qr_loss_interpolates_between_uniform_and_best_response() {
        let s = spec();
        let bank = s.sample_bank(16, 0);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let matrix = PayoffMatrix::build(&s, &est, AuditOrder::enumerate_all(2), &[1.0, 1.0]);
        let p = vec![0.5, 0.5];
        let rational = matrix.loss_under_mixture(&s, &p);
        let qr_soft = QuantalResponse::new(0.0).loss_under_mixture(&s, &matrix, &p);
        let qr_sharp = QuantalResponse::new(500.0).loss_under_mixture(&s, &matrix, &p);
        // Sharp λ recovers the rational loss; λ = 0 averages both actions
        // and is weakly lower (random attackers exploit less).
        assert!((qr_sharp - rational).abs() < 1e-6);
        assert!(qr_soft <= rational + 1e-9);
    }

    #[test]
    fn qr_loss_is_monotone_in_lambda_on_a_fixed_policy() {
        // dE/dλ of a logit expectation is the variance of the utilities
        // under the choice distribution — non-negative — so the auditor's
        // QR loss at any fixed policy is non-decreasing in λ.
        let s = spec();
        let bank = s.sample_bank(32, 3);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let matrix = PayoffMatrix::build(&s, &est, AuditOrder::enumerate_all(2), &[1.0, 0.0]);
        let p = vec![0.25, 0.75];
        let mut prev = f64::NEG_INFINITY;
        for lambda in [0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 16.0, 64.0] {
            let loss = QuantalResponse::new(lambda).loss_under_mixture(&s, &matrix, &p);
            assert!(
                loss >= prev - 1e-12,
                "loss {loss} at lambda {lambda} dropped below {prev}"
            );
            prev = loss;
        }
    }

    #[test]
    fn qr_threshold_search_runs_end_to_end() {
        let s = spec();
        let bank = s.sample_bank(64, 1);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let out = solve_qr_thresholds(&s, &est, QuantalResponse::new(1.0), 0.25).unwrap();
        assert!(out.value.is_finite());
        assert_eq!(out.thresholds.len(), 2);
        // QR loss can never exceed the rational upper envelope at the same
        // policy.
        let matrix = PayoffMatrix::build(&s, &est, AuditOrder::enumerate_all(2), &out.thresholds);
        let rational_loss = matrix.loss_under_mixture(&s, &out.rational.p_orders);
        assert!(out.value <= rational_loss + 1e-6);
    }

    #[test]
    #[should_panic]
    fn negative_lambda_rejected() {
        QuantalResponse::new(-1.0);
    }
}
