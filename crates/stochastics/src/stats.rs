//! Summary statistics used by the experiment harness and tests, plus the
//! [`StreamingMoments`] accumulator behind the online runtime's
//! per-alert-type distribution tracking.

/// Single-pass (Welford) accumulator of count moments.
///
/// The online auditing runtime observes one alert-count vector per period
/// and cannot afford to re-scan history each epoch; this accumulator keeps
/// exact running moments in O(1) state. Updates are deterministic and
/// order-dependent in the usual floating-point sense — the runtime always
/// feeds observations in period order, so reruns are bit-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamingMoments {
    n: u64,
    mean: f64,
    m2: f64,
    max: u64,
}

impl StreamingMoments {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one observed count into the running moments.
    pub fn push(&mut self, x: u64) {
        self.n += 1;
        let xf = x as f64;
        let delta = xf - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (xf - self.mean);
        self.max = self.max.max(x);
    }

    /// Number of observations folded in.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample standard deviation, with the same degenerate-sample
    /// floor as [`crate::fit::sample_std`] so downstream Gaussian fits stay
    /// well-defined.
    pub fn sample_std(&self) -> f64 {
        const FLOOR: f64 = 1e-6;
        if self.n < 2 {
            return FLOOR;
        }
        (self.m2 / (self.n - 1) as f64).sqrt().max(FLOOR)
    }

    /// Largest observation seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Raw second central moment accumulator (`Σ (x−mean)²` in Welford
    /// form) — exposed for persistence so an accumulator can be restored
    /// bit-for-bit across a service restart.
    pub fn m2(&self) -> f64 {
        self.m2
    }

    /// Reassemble an accumulator from its persisted state. The inverse of
    /// reading `count()`/`mean()`/`m2()`/`max()`: subsequent `push` calls
    /// continue exactly where the saved accumulator left off.
    pub fn from_parts(n: u64, mean: f64, m2: f64, max: u64) -> Self {
        Self { n, mean, m2, max }
    }
}

/// Mean of a slice of f64 values.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty slice");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let ss: f64 = xs.iter().map(|&x| (x - m).powi(2)).sum();
    (ss / (xs.len() - 1) as f64).sqrt()
}

/// Minimum of a slice (panics on empty input or NaNs).
pub fn min(xs: &[f64]) -> f64 {
    xs.iter()
        .copied()
        .min_by(|a, b| a.partial_cmp(b).expect("NaN in min"))
        .expect("min of empty slice")
}

/// Maximum of a slice (panics on empty input or NaNs).
pub fn max(xs: &[f64]) -> f64 {
    xs.iter()
        .copied()
        .max_by(|a, b| a.partial_cmp(b).expect("NaN in max"))
        .expect("max of empty slice")
}

/// Linear-interpolation quantile (`q` in [0,1]) of an unsorted slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level out of range");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Mean absolute relative deviation `1/n Σ |approx_i − exact_i| / |exact_i|`.
///
/// This is the γ quality metric of Section IV.C (Table VI) expressed as a
/// *deviation*; the paper reports `γ = 1 − deviation` as "precision". Pairs
/// whose exact value is (numerically) zero are skipped, as relative error is
/// undefined there.
pub fn mean_relative_deviation(approx: &[f64], exact: &[f64]) -> f64 {
    assert_eq!(approx.len(), exact.len(), "length mismatch");
    let mut total = 0.0;
    let mut n = 0usize;
    for (&a, &e) in approx.iter().zip(exact) {
        if e.abs() > 1e-12 {
            total += (a - e).abs() / e.abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        let expected_sd = (5.0f64 / 3.0).sqrt();
        assert!((std_dev(&xs) - expected_sd).abs() < 1e-12);
        assert_eq!(min(&xs), 1.0);
        assert_eq!(max(&xs), 4.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert!((quantile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((quantile(&xs, 1.0) - 4.0).abs() < 1e-12);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn relative_deviation_matches_hand_computation() {
        let exact = [10.0, -5.0, 0.0];
        let approx = [11.0, -4.0, 3.0];
        // |1|/10 + |1|/5 over 2 usable pairs = (0.1 + 0.2)/2.
        let d = mean_relative_deviation(&approx, &exact);
        assert!((d - 0.15).abs() < 1e-12);
    }

    #[test]
    fn deviation_zero_for_identical() {
        let xs = [1.0, 2.0, -3.0];
        assert_eq!(mean_relative_deviation(&xs, &xs), 0.0);
    }

    #[test]
    fn std_dev_of_singleton_is_zero() {
        assert_eq!(std_dev(&[7.0]), 0.0);
    }

    #[test]
    fn streaming_moments_match_batch_statistics() {
        let obs = [2u64, 4, 4, 4, 5, 5, 7, 9];
        let mut acc = StreamingMoments::new();
        for &o in &obs {
            acc.push(o);
        }
        assert_eq!(acc.count(), 8);
        assert_eq!(acc.max(), 9);
        assert!((acc.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this sample is 32/7 (see fit.rs).
        assert!((acc.sample_std() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn streaming_moments_restore_from_parts_continues_exactly() {
        let obs = [2u64, 4, 4, 4, 5, 5, 7, 9];
        let mut whole = StreamingMoments::new();
        let mut first = StreamingMoments::new();
        for &o in &obs[..4] {
            whole.push(o);
            first.push(o);
        }
        let mut resumed =
            StreamingMoments::from_parts(first.count(), first.mean(), first.m2(), first.max());
        for &o in &obs[4..] {
            whole.push(o);
            resumed.push(o);
        }
        assert_eq!(resumed, whole);
        assert_eq!(resumed.mean().to_bits(), whole.mean().to_bits());
        assert_eq!(resumed.m2().to_bits(), whole.m2().to_bits());
    }

    #[test]
    fn streaming_moments_degenerate_floor() {
        let mut acc = StreamingMoments::new();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.mean(), 0.0);
        assert!(acc.sample_std() > 0.0);
        acc.push(5);
        assert!(acc.sample_std() > 0.0);
        acc.push(5);
        acc.push(5);
        assert!(acc.sample_std() > 0.0 && acc.sample_std() < 1e-3);
    }
}
