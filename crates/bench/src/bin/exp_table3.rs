//! Experiment E1 — paper Table III: the optimal OAP solution on Syn A for
//! budgets 2..=20, found by exhaustive threshold search + exact master LP.
//!
//! ```text
//! cargo run -p audit-bench --release --bin exp_table3 [budgets] [samples] [threads] [--scenario <key>]
//! ```
//!
//! `budgets` is a comma-separated list (default: the paper's 2..=20 grid);
//! `samples` overrides the Monte-Carlo sample count (default: 1000);
//! `threads` sets the detection-engine workers (default: `AUDIT_THREADS`
//! or 1 — thread count never changes the numbers, only the wall clock);
//! `--scenario` swaps the base game for any registry scenario (default
//! `syn-a`; brute force is only tractable for small threshold lattices).

use audit_bench::cli::{default_threads, parse_count, parse_list, take_scenario_flag};
use audit_bench::defaults::{SEED, SYN_BUDGETS, SYN_SAMPLES};
use audit_bench::report::{f4, support_str, thresholds_str, Table};
use audit_bench::scenarios::resolve_base_spec;
use audit_bench::syn_experiments::table3;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let scenario = take_scenario_flag(&mut args);
    let budgets = parse_list(args.first().cloned(), &SYN_BUDGETS);
    let samples = parse_count(args.get(1).cloned(), SYN_SAMPLES);
    let threads = parse_count(args.get(2).cloned(), default_threads());
    let (key, base) = resolve_base_spec(scenario, "syn-a", SEED);

    eprintln!(
        "Table III reproduction: {key} brute force, {samples} samples, seed {SEED}, {threads} engine thread(s)"
    );
    let t0 = std::time::Instant::now();
    let rows = table3(&base, &budgets, samples, SEED, threads).expect("brute force solves");
    let costs = base.audit_costs();

    let mut table = Table::new(vec![
        "ID",
        "Budget",
        "Optimal Objective Value",
        "Optimal Threshold",
        "Optimal Mixed Strategy (support)",
        "Explored/Lattice",
    ]);
    for (i, row) in rows.iter().enumerate() {
        table.row(vec![
            format!("{}", i + 1),
            format!("{}", row.budget),
            f4(row.value),
            thresholds_str(&row.thresholds, &costs),
            support_str(&row.orders, &row.probs, 1e-3),
            format!("{}/{}", row.explored, row.space_size),
        ]);
    }
    println!("{}", table.render());
    eprintln!("elapsed: {:.1?}", t0.elapsed());
}
