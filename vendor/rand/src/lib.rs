//! Offline shim for `rand` 0.8.
//!
//! Implements exactly the surface the workspace uses — [`RngCore`], [`Rng`]
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom`] (`choose`, `shuffle`) — with
//! the same trait shapes as the real crate so swapping it in later is
//! source-compatible. The generator behind [`rngs::StdRng`] is
//! xoshiro256++ seeded via SplitMix64; streams are deterministic per seed
//! but the exact draws differ from upstream `StdRng` (ChaCha12), which the
//! workspace never relies on.

/// Object-safe core RNG interface (mirrors `rand::RngCore`).
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction (mirrors the `seed_from_u64` entry point of
/// `rand::SeedableRng`; byte-array seeding is not needed by the workspace).
pub trait SeedableRng: Sized {
    /// Build a generator from a `u64` seed, expanding it to full state.
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`]
/// (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its "standard" distribution
    /// (uniform over the type for ints/bool, uniform in `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    ///
    /// Panics if the range is empty, like the real crate.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    ///
    /// Panics unless `0 ≤ p ≤ 1`, matching the real crate.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} outside [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Uniform `f64` in `[0, 1)` using the top 53 bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types sampleable by [`Rng::gen`] (stands in for `Standard: Distribution<T>`).
pub trait StandardSample: Sized {
    /// Draw one value from the standard distribution of `Self`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, u128 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, i128 => next_u64, isize => next_u64,
);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform sampler (stands in for
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` (`inclusive` widens to `[lo, hi]`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = hi as i128 - lo as i128 + inclusive as i128;
                assert!(span > 0, "cannot sample empty range");
                (lo as i128 + (rng.next_u64() as u128 % span as u128) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "cannot sample empty range");
                lo + (hi - lo) * unit_f64(rng) as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges usable with [`Rng::gen_range`] (stands in for
/// `rand::distributions::uniform::SampleRange`). Generic over the element
/// type so `Range<T>` determines `T` during inference, like the real crate.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// Concrete generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic workhorse RNG: xoshiro256++ (shim for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

/// Sequence-related helpers (mirrors `rand::seq`).
pub mod seq {
    use super::RngCore;

    /// Random operations on slices (shim for `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Uniformly pick one element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Shuffle only the first `amount` elements into place, returning
        /// `(shuffled_prefix, rest)` like the real crate.
        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let idx = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[idx])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let amount = amount.min(self.len());
            for i in 0..amount {
                let j = i + (rng.next_u64() % (self.len() - i) as u64) as usize;
                self.swap(i, j);
            }
            self.split_at_mut(amount)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(1);
            (0..8).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(1);
            (0..8).map(|_| r.gen()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(2);
            (0..8).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(3..9);
            assert!((3..9).contains(&x));
            let y = r.gen_range(2u64..=8);
            assert!((2..=8).contains(&y));
            let f = r.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn slice_helpers() {
        let mut r = StdRng::seed_from_u64(5);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        let items = [1, 2, 3, 4];
        assert!(items.contains(items.choose(&mut r).unwrap()));
        let mut v: Vec<u32> = (0..32).collect();
        let orig = v.clone();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
        assert_ne!(
            v, orig,
            "32-element shuffle staying identical is ~impossible"
        );
    }

    #[test]
    fn dyn_rngcore_supports_gen() {
        let mut r = StdRng::seed_from_u64(11);
        let dynr: &mut dyn super::RngCore = &mut r;
        let x: f64 = dynr.gen();
        assert!((0.0..1.0).contains(&x));
    }
}
