//! Cross-solver sharing of prefix-state work.
//!
//! A fleet of tenants often plays games over the *same* sample bank — the
//! registry scenarios build specs deterministically, and the solver
//! freezes its Monte-Carlo bank from `(spec, n_samples, seed)` alone. Two
//! tenants whose banks coincide evaluate `Pal` over identical columns, so
//! the prefix states one solve pays for are exactly the states the next
//! solve would recompute. [`SharedPalCache`] is the hand-off point: after
//! a solve, the solver publishes its engine's prefix-state snapshot under
//! a [`shared_bank_key`]; before the next solve over the same key, the
//! snapshot is adopted into the fresh engine.
//!
//! **Determinism.** Adopted states are exact computed values over an
//! identical bank/spec/model, so adoption changes which column passes run
//! — never a single result bit (see [`PalStateSeed`]). The only
//! observable differences are wall-clock time and [`CacheStats`] counters,
//! both of which are excluded from every report fingerprint. Fleet
//! results are therefore bit-identical with sharing on or off, at any
//! worker count.
//!
//! [`CacheStats`]: super::CacheStats

use super::engine::PalStateSeed;
use super::DetectionModel;
use crate::model::GameSpec;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Identity of a solver's evaluation context: the deduped spec (audit
/// costs, budget, distributions), the bank parameters that freeze the
/// Monte-Carlo draw, and the detection model the states were computed
/// under. Two solves with equal keys walk bitwise-identical columns, so
/// their prefix states are interchangeable. The spec fingerprint alone is
/// NOT sufficient — a different `n_samples` or bank seed draws a different
/// bank, and a different model consumes budget differently.
pub fn shared_bank_key(
    spec: &GameSpec,
    n_samples: usize,
    bank_seed: u64,
    model: DetectionModel,
) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    mix(spec.fingerprint());
    mix(n_samples as u64);
    mix(bank_seed);
    mix(match model {
        DetectionModel::PaperApprox => 1,
        DetectionModel::AttackInclusive => 2,
        DetectionModel::Operational => 3,
    });
    h
}

/// Counters of a [`SharedPalCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SharedCacheStats {
    /// Distinct bank keys currently holding a published snapshot.
    pub banks: usize,
    /// Snapshots published (later publishes under a key replace earlier).
    pub publishes: u64,
    /// Snapshots handed out for adoption.
    pub adoptions: u64,
}

struct Inner {
    seeds: HashMap<u64, Arc<PalStateSeed>>,
    publishes: u64,
    adoptions: u64,
}

/// A thread-safe exchange of prefix-state snapshots keyed by
/// [`shared_bank_key`]. Cloning the handle shares the underlying store;
/// tenants on different worker threads publish and adopt through the same
/// handle. Last publish wins per key — snapshots are caches of exact
/// values, so any published snapshot for a key is equally sound.
#[derive(Clone)]
pub struct SharedPalCache {
    inner: Arc<Mutex<Inner>>,
}

impl SharedPalCache {
    /// An empty exchange.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Mutex::new(Inner {
                seeds: HashMap::new(),
                publishes: 0,
                adoptions: 0,
            })),
        }
    }

    /// The snapshot most recently published under `key`, if any. Counts
    /// as an adoption when present.
    pub fn get(&self, key: u64) -> Option<Arc<PalStateSeed>> {
        let mut inner = self.inner.lock().expect("shared pal cache poisoned");
        let seed = inner.seeds.get(&key).cloned();
        if seed.is_some() {
            inner.adoptions += 1;
        }
        seed
    }

    /// Publish a snapshot under `key`, replacing any earlier one. Empty
    /// snapshots are dropped — they would displace a useful predecessor
    /// for nothing.
    pub fn publish(&self, key: u64, seed: PalStateSeed) {
        if seed.is_empty() {
            return;
        }
        let mut inner = self.inner.lock().expect("shared pal cache poisoned");
        inner.seeds.insert(key, Arc::new(seed));
        inner.publishes += 1;
    }

    /// Observability counters.
    pub fn stats(&self) -> SharedCacheStats {
        let inner = self.inner.lock().expect("shared pal cache poisoned");
        SharedCacheStats {
            banks: inner.seeds.len(),
            publishes: inner.publishes,
            adoptions: inner.adoptions,
        }
    }
}

impl Default for SharedPalCache {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SharedPalCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("SharedPalCache")
            .field("banks", &stats.banks)
            .field("publishes", &stats.publishes)
            .field("adoptions", &stats.adoptions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::super::{DetectionEstimator, PalEngine};
    use super::*;
    use crate::model::{AttackAction, Attacker, GameSpecBuilder};
    use crate::ordering::AuditOrder;
    use std::sync::Arc;
    use stochastics::UniformCount;

    fn spec() -> GameSpec {
        let mut b = GameSpecBuilder::new();
        let t0 = b.alert_type("t0", 1.0, Arc::new(UniformCount::new(0, 5)));
        let _t1 = b.alert_type("t1", 1.5, Arc::new(UniformCount::new(1, 4)));
        b.attacker(Attacker::new(
            "e",
            1.0,
            vec![AttackAction::deterministic("v", t0, 1.0, 0.0, 0.0)],
        ));
        b.budget(4.0);
        b.build().unwrap()
    }

    #[test]
    fn keys_separate_bank_parameters_and_models() {
        let s = spec();
        let base = shared_bank_key(&s, 64, 9, DetectionModel::PaperApprox);
        assert_eq!(
            base,
            shared_bank_key(&s, 64, 9, DetectionModel::PaperApprox)
        );
        assert_ne!(
            base,
            shared_bank_key(&s, 65, 9, DetectionModel::PaperApprox)
        );
        assert_ne!(
            base,
            shared_bank_key(&s, 64, 10, DetectionModel::PaperApprox)
        );
        assert_ne!(
            base,
            shared_bank_key(&s, 64, 9, DetectionModel::Operational)
        );
    }

    #[test]
    fn publish_then_adopt_round_trips_and_counts() {
        let s = spec();
        let bank = s.sample_bank(64, 9);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let donor = PalEngine::new(est, 1);
        for order in AuditOrder::enumerate_all(2) {
            donor.pal(&order, &[2.0, 3.0]);
        }

        let cache = SharedPalCache::new();
        let key = shared_bank_key(&s, 64, 9, DetectionModel::PaperApprox);
        assert!(cache.get(key).is_none());
        cache.publish(key, donor.export_states());

        let shared = cache.clone(); // handles share the store
        let seed = shared.get(key).expect("published snapshot");
        let warm = PalEngine::new(est, 1);
        warm.adopt_states(&seed);
        assert_eq!(
            warm.pal(&AuditOrder::identity(2), &[2.0, 3.0]),
            donor.pal(&AuditOrder::identity(2), &[2.0, 3.0])
        );
        assert!(warm.cache_stats().state_hits > 0);

        let stats = cache.stats();
        assert_eq!(stats.banks, 1);
        assert_eq!(stats.publishes, 1);
        assert_eq!(stats.adoptions, 1);
    }

    #[test]
    fn empty_snapshots_are_not_published() {
        let s = spec();
        let bank = s.sample_bank(8, 1);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let idle = PalEngine::new(est, 1);
        let cache = SharedPalCache::new();
        cache.publish(7, idle.export_states());
        assert_eq!(cache.stats().publishes, 0);
        assert!(cache.get(7).is_none());
    }
}
