//! Audit orders: permutations over alert types, their enumeration, and
//! organizational precedence constraints (the feasible set `O` of the
//! paper, which "may be a subset of all possible orders over types").

use crate::error::GameError;
use serde::{Deserialize, Serialize};

/// A complete prioritization of the alert types: `order.types()[i]` is the
/// alert type audited in position `i`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AuditOrder(Vec<usize>);

impl AuditOrder {
    /// Construct from a permutation of `0..n`.
    pub fn new(perm: Vec<usize>) -> Result<Self, GameError> {
        let n = perm.len();
        let mut seen = vec![false; n];
        for &t in &perm {
            if t >= n || seen[t] {
                return Err(GameError::InvalidSpec(format!(
                    "{perm:?} is not a permutation of 0..{n}"
                )));
            }
            seen[t] = true;
        }
        Ok(Self(perm))
    }

    /// The identity order `0, 1, …, n−1`.
    pub fn identity(n: usize) -> Self {
        Self((0..n).collect())
    }

    /// Types in audit order (`o_1, o_2, …`).
    pub fn types(&self) -> &[usize] {
        &self.0
    }

    /// Number of alert types.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the order is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// `o(t)`: zero-based position of alert type `t` in this order.
    pub fn position(&self, t: usize) -> usize {
        self.0
            .iter()
            .position(|&x| x == t)
            .expect("type not present in order")
    }

    /// Enumerate **all** `n!` orders over `n` types, in lexicographic order
    /// of the underlying permutation. Intended for small `n` (the exact
    /// solver); the column-generation path never materializes this set.
    pub fn enumerate_all(n: usize) -> Vec<AuditOrder> {
        assert!(n <= 10, "refusing to materialize {n}! orderings");
        let mut out = Vec::new();
        let mut current = Vec::with_capacity(n);
        let mut used = vec![false; n];
        fn rec(
            n: usize,
            current: &mut Vec<usize>,
            used: &mut Vec<bool>,
            out: &mut Vec<AuditOrder>,
        ) {
            if current.len() == n {
                out.push(AuditOrder(current.clone()));
                return;
            }
            for t in 0..n {
                if !used[t] {
                    used[t] = true;
                    current.push(t);
                    rec(n, current, used, out);
                    current.pop();
                    used[t] = false;
                }
            }
        }
        rec(n, &mut current, &mut used, &mut out);
        out
    }

    /// Enumerate the orders satisfying the given precedence constraints.
    pub fn enumerate_feasible(n: usize, cons: &PrecedenceConstraints) -> Vec<AuditOrder> {
        Self::enumerate_all(n)
            .into_iter()
            .filter(|o| cons.is_satisfied(o))
            .collect()
    }
}

impl std::fmt::Display for AuditOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, t) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            // Display 1-based to match the paper's tables.
            write!(f, "{}", t + 1)?;
        }
        write!(f, "]")
    }
}

/// Organizational constraints on feasible orders: pairs `(a, b)` meaning
/// "alert type `a` must be audited before alert type `b`".
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PrecedenceConstraints {
    pairs: Vec<(usize, usize)>,
}

impl PrecedenceConstraints {
    /// No constraints: every permutation is feasible.
    pub fn none() -> Self {
        Self::default()
    }

    /// Build from explicit precedence pairs; rejects self-precedences and
    /// (via a cycle check) unsatisfiable constraint sets.
    pub fn new(pairs: Vec<(usize, usize)>, n_types: usize) -> Result<Self, GameError> {
        for &(a, b) in &pairs {
            if a == b {
                return Err(GameError::InvalidSpec(format!(
                    "precedence ({a}, {b}) is self-referential"
                )));
            }
            if a >= n_types || b >= n_types {
                return Err(GameError::InvalidSpec(format!(
                    "precedence ({a}, {b}) references a type outside 0..{n_types}"
                )));
            }
        }
        let cons = Self { pairs };
        if cons.has_cycle(n_types) {
            return Err(GameError::InvalidSpec(
                "precedence constraints contain a cycle; no feasible order exists".into(),
            ));
        }
        Ok(cons)
    }

    /// The precedence pairs.
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }

    /// Whether there are no constraints.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Does `order` satisfy every precedence?
    pub fn is_satisfied(&self, order: &AuditOrder) -> bool {
        self.pairs
            .iter()
            .all(|&(a, b)| order.position(a) < order.position(b))
    }

    /// Restrict a greedy construction: given the set of already-placed
    /// types, may `t` be placed next?
    pub fn can_place_next(&self, t: usize, placed: &[bool]) -> bool {
        self.pairs.iter().all(|&(a, b)| b != t || placed[a])
    }

    fn has_cycle(&self, n: usize) -> bool {
        // Kahn's algorithm: constraints are a DAG iff a topological order
        // exists.
        let mut indeg = vec![0usize; n];
        for &(_, b) in &self.pairs {
            indeg[b] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0usize;
        while let Some(u) = queue.pop() {
            seen += 1;
            for &(a, b) in &self.pairs {
                if a == u {
                    indeg[b] -= 1;
                    if indeg[b] == 0 {
                        queue.push(b);
                    }
                }
            }
        }
        seen != n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_validation() {
        assert!(AuditOrder::new(vec![2, 0, 1]).is_ok());
        assert!(AuditOrder::new(vec![0, 0, 1]).is_err());
        assert!(AuditOrder::new(vec![0, 3]).is_err());
    }

    #[test]
    fn position_lookup() {
        let o = AuditOrder::new(vec![2, 0, 1]).unwrap();
        assert_eq!(o.position(2), 0);
        assert_eq!(o.position(0), 1);
        assert_eq!(o.position(1), 2);
    }

    #[test]
    fn enumerate_counts_factorial() {
        assert_eq!(AuditOrder::enumerate_all(1).len(), 1);
        assert_eq!(AuditOrder::enumerate_all(3).len(), 6);
        assert_eq!(AuditOrder::enumerate_all(4).len(), 24);
        // All distinct.
        let all = AuditOrder::enumerate_all(4);
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), 24);
    }

    #[test]
    fn display_is_one_based() {
        let o = AuditOrder::new(vec![1, 0, 3, 2]).unwrap();
        assert_eq!(o.to_string(), "[2,1,4,3]");
    }

    #[test]
    fn precedence_filters_enumeration() {
        let cons = PrecedenceConstraints::new(vec![(0, 1)], 3).unwrap();
        let feas = AuditOrder::enumerate_feasible(3, &cons);
        assert_eq!(feas.len(), 3); // half of 6
        assert!(feas.iter().all(|o| o.position(0) < o.position(1)));
    }

    #[test]
    fn precedence_rejects_cycles_and_self() {
        assert!(PrecedenceConstraints::new(vec![(0, 0)], 2).is_err());
        assert!(PrecedenceConstraints::new(vec![(0, 1), (1, 0)], 2).is_err());
        assert!(PrecedenceConstraints::new(vec![(0, 1), (1, 2)], 3).is_ok());
    }

    #[test]
    fn can_place_next_respects_pairs() {
        let cons = PrecedenceConstraints::new(vec![(0, 1)], 3).unwrap();
        assert!(!cons.can_place_next(1, &[false, false, false]));
        assert!(cons.can_place_next(1, &[true, false, false]));
        assert!(cons.can_place_next(0, &[false, false, false]));
        assert!(cons.can_place_next(2, &[false, false, false]));
    }

    #[test]
    fn identity_round_trip() {
        let o = AuditOrder::identity(4);
        assert_eq!(o.types(), &[0, 1, 2, 3]);
        assert_eq!(o.len(), 4);
        assert!(!o.is_empty());
    }
}
