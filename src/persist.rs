//! One-stop facade over the persistence stack.
//!
//! The snapshot layer spans three crates, each owning the codec for the
//! state it defines:
//!
//! * [`stochastics::snapshot`] — the binary container (checksummed
//!   versioned header, 8-byte-aligned tagged sections), the sample-bank
//!   columns, and the distribution constructor parameters;
//! * `audit_game::persist` — the game-layer payloads: [`GameSpec`]
//!   by constructor parameters with fingerprint verification, audit
//!   policies, ISHM warm starts, and the scenario snapshot
//!   (provenance + spec + bank in one `KIND_SCENARIO_BANK` file);
//! * [`audit_runtime::checkpoint`] — the full service checkpoint
//!   (`bank.snap` + `state.snap`) behind
//!   [`AuditService::checkpoint`](audit_runtime::AuditService::checkpoint)
//!   / [`AuditService::restore`](audit_runtime::AuditService::restore).
//!
//! This module re-exports all three under `alert_audit::persist` so
//! downstream code (and the `exp_restart` / `exp_online` drivers) can
//! name the whole stack from one path. The scenario-side seam is
//! [`BankSource`]: drivers resolve `(spec, bank)` either by regeneration
//! from a seed or by verified snapshot load.
//!
//! [`GameSpec`]: audit_game::model::GameSpec

pub use stochastics::snapshot::{
    fnv1a, fnv1a_words, read_bank, write_bank, BankReadOptions, DistParams, JointParams,
    SectionReader, SectionWriter, Snapshot, SnapshotError, FORMAT_VERSION, HEADER_LEN, MAGIC,
};

pub use audit_game::persist::{
    decode_policy, decode_spec, decode_warm_start, encode_policy, encode_spec, encode_warm_start,
    instantiate_joint, load_scenario_snapshot, save_scenario_snapshot, scenario_snapshot_bytes,
    scenario_snapshot_from_bytes, PersistError, ScenarioSnapshot, KIND_RUNTIME_STATE,
    KIND_SCENARIO_BANK, TAG_POLICY, TAG_PROVENANCE, TAG_SPEC_ATTACKERS, TAG_SPEC_JOINT,
    TAG_SPEC_META, TAG_SPEC_TYPES, TAG_WARM_START,
};

pub use audit_game::scenario::{BankSource, SnapshotVerify};

pub use audit_runtime::checkpoint::{load_checkpoint, save_checkpoint, LoadedCheckpoint};
