//! Ground-truth validation: the solved Syn A policy's analytic loss must
//! agree with long-run empirical simulation within Monte-Carlo error.

use alert_audit::game::datasets::syn_a_with_budget;
use alert_audit::game::detection::{DetectionEstimator, DetectionModel};
use alert_audit::game::execute::AuditPolicy;
use alert_audit::game::simulation::simulate_policy;
use alert_audit::prelude::*;

#[test]
fn solved_syn_a_policy_survives_simulation() {
    let spec = syn_a_with_budget(10.0);
    let solution = OapSolver::new(SolverConfig {
        epsilon: 0.2,
        n_samples: 500,
        seed: 3,
        ..Default::default()
    })
    .solve(&spec)
    .unwrap();

    let bank = spec.sample_bank(500, 3);
    let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
    let policy = AuditPolicy::new(
        solution.policy.thresholds.clone(),
        solution.policy.orders.clone(),
        solution.policy.probs.clone(),
    );
    let report = simulate_policy(&spec, &policy, &est, 8000, 17);

    // Syn A counts are moderate (means 4–6), so the rare-attack
    // approximation carries visible bias; the simulated loss must still
    // land in the same band and never below the analytic value by much
    // more than the known bias direction allows.
    let gap = (report.mean_loss - solution.loss).abs();
    assert!(
        gap < 2.5,
        "simulated {} vs analytic {} (gap {gap})",
        report.mean_loss,
        solution.loss
    );
    // Spend discipline and accounting invariants.
    assert!(report.mean_spent <= spec.budget + 1e-9);
    assert!(report.caught <= report.attacks);
    assert!(report.silent <= report.attacks);
}

#[test]
fn simulation_is_deterministic_given_seed() {
    let spec = syn_a_with_budget(6.0);
    let bank = spec.sample_bank(100, 1);
    let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
    let policy = AuditPolicy::pure(
        vec![2.0, 2.0, 2.0, 2.0],
        alert_audit::game::ordering::AuditOrder::identity(4),
    );
    let a = simulate_policy(&spec, &policy, &est, 200, 42);
    let b = simulate_policy(&spec, &policy, &est, 200, 42);
    assert_eq!(a.mean_loss, b.mean_loss);
    assert_eq!(a.caught, b.caught);
    assert_eq!(a.attacks, b.attacks);
}
