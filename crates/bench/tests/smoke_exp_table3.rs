//! End-to-end smoke test: the `exp_table3` experiment binary must run on a
//! tiny configuration (one budget, few Monte-Carlo samples) without
//! panicking and emit a well-formed table.

use std::process::Command;

#[test]
fn exp_table3_runs_end_to_end_on_tiny_config() {
    let exe = env!("CARGO_BIN_EXE_exp_table3");
    let out = Command::new(exe)
        .args(["2", "40"]) // budget grid {2}, 40 samples
        .output()
        .expect("exp_table3 spawns");
    assert!(
        out.status.success(),
        "exp_table3 exited with {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("Optimal Objective Value"),
        "missing table header in output:\n{stdout}"
    );
    // One data row for the single requested budget, with a plausible
    // positive objective (paper's B=2 optimum is ~12.29).
    let row = stdout
        .lines()
        .find(|l| l.starts_with("| 1 "))
        .expect("data row for budget 2");
    assert!(row.contains("| 2"), "row should echo budget 2: {row}");
}
