//! Solved-LP result type.

use crate::problem::{ConstrId, VarId};
use serde::{Deserialize, Serialize};

/// The result of a successful LP solve.
///
/// Carries the optimal objective, the primal point in user variable order,
/// and one dual value (shadow price) per constraint in user constraint
/// order. Duals follow the *shadow price* convention: `duals[i]` is the
/// rate of change of the optimal objective as the right-hand side of
/// constraint `i` increases, for the problem **as stated** (minimization or
/// maximization alike).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Solution {
    /// Optimal objective value of the stated problem.
    pub objective: f64,
    /// Primal values, indexed by [`VarId::index`].
    pub x: Vec<f64>,
    /// Dual values, indexed by [`ConstrId::index`].
    pub duals: Vec<f64>,
    /// Total simplex pivots across both phases.
    pub iterations: usize,
}

impl Solution {
    pub(crate) fn new(objective: f64, x: Vec<f64>, duals: Vec<f64>, iterations: usize) -> Self {
        Self {
            objective,
            x,
            duals,
            iterations,
        }
    }

    /// Primal value of a variable.
    pub fn value(&self, v: VarId) -> f64 {
        self.x[v.0]
    }

    /// Dual value (shadow price) of a constraint.
    pub fn dual(&self, c: ConstrId) -> f64 {
        self.duals[c.0]
    }

    /// Reduced cost `c_j − yᵀA_j` of a *candidate* column that is not in the
    /// model, given its objective coefficient and its coefficients in the
    /// existing constraints. This is the column-generation pricing primitive.
    pub fn reduced_cost_of_column(&self, obj_coeff: f64, coeffs: &[(ConstrId, f64)]) -> f64 {
        let mut rc = obj_coeff;
        for &(c, a) in coeffs {
            rc -= self.duals[c.0] * a;
        }
        rc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let s = Solution::new(5.0, vec![1.0, 2.0], vec![0.5], 3);
        assert_eq!(s.value(VarId(1)), 2.0);
        assert_eq!(s.dual(ConstrId(0)), 0.5);
        assert_eq!(s.iterations, 3);
    }

    #[test]
    fn reduced_cost_formula() {
        let s = Solution::new(0.0, vec![], vec![2.0, -1.0], 0);
        // rc = 3 − (2·1 + (−1)·4) = 3 − (−2) = 5.
        let rc = s.reduced_cost_of_column(3.0, &[(ConstrId(0), 1.0), (ConstrId(1), 4.0)]);
        assert!((rc - 5.0).abs() < 1e-12);
    }
}
