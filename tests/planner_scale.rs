//! Scale-out net for the planner subsystem: the wide-type registry
//! families (20–50 alert types) must solve end-to-end through the
//! hardness-aware planner — facade and runtime epoch loop alike — while
//! the decomposition stays provably conservative where the exact inner
//! is still tractable:
//!
//! * on every registry scenario at or below `EXACT_MAX_TYPES`, the forced
//!   decomposed inner is **bit-identical** to the exact inner (the
//!   decomposed evaluator switches to exhaustive enumeration there);
//! * wide solves are bit-identical across 1/2/4 worker threads (the
//!   parallel pricing merge is deterministic by index);
//! * the runtime epoch loop runs a full-scale 25-type scenario with a
//!   rerun-stable telemetry fingerprint.

use alert_audit::prelude::*;
use alert_audit::runtime::{AuditService, DriftConfig, RuntimeConfig};
use alert_audit::scenario::registry;

fn wide_solver(threads: usize) -> OapSolver {
    OapSolver::new(SolverConfig {
        epsilon: 0.5,
        n_samples: 40,
        seed: 5,
        inner: InnerKind::Auto,
        threads,
        ..Default::default()
    })
}

#[test]
fn wide_scenarios_solve_end_to_end_through_the_planner() {
    let reg = registry();
    for key in ["syn-wide25", "syn-wide50"] {
        let sc = reg.get(key).unwrap();
        let spec = sc.build_small(sc.default_seed()).unwrap();
        assert!(spec.n_types() > ISHM_FULL_MAX_TYPES, "{key} is not wide");
        let sol = wide_solver(1).solve(&spec).unwrap();
        assert!(
            matches!(sol.strategy, SolveStrategy::Decomposed { .. }),
            "{key}: planner picked {:?} past the full-ISHM gate",
            sol.strategy
        );
        assert_eq!(sol.policy.thresholds.len(), spec.n_types(), "{key}");
        assert!(!sol.policy.orders.is_empty(), "{key}");
        assert!(
            sol.loss.is_finite() && sol.loss >= 0.0,
            "{key}: loss {}",
            sol.loss
        );
        // Every order in the support covers all types exactly once.
        for o in &sol.policy.orders {
            let mut seen: Vec<usize> = o.types().to_vec();
            seen.sort_unstable();
            assert_eq!(seen, (0..spec.n_types()).collect::<Vec<_>>(), "{key}");
        }
    }
}

/// Wherever the exact inner is still tractable, forcing the decomposed
/// inner must change nothing: the planner's scale-out path degrades to
/// the exact enumeration below `EXACT_MAX_TYPES`, bit for bit.
#[test]
fn decomposed_inner_is_bit_identical_to_exact_on_all_small_registry_scenarios() {
    let reg = registry();
    let mut covered = 0usize;
    for sc in reg.iter() {
        let spec = sc.build_small(sc.default_seed()).unwrap();
        if spec.n_types() > EXACT_MAX_TYPES {
            continue;
        }
        covered += 1;
        let solve = |inner: InnerKind| {
            OapSolver::new(SolverConfig {
                epsilon: sc.suggested_epsilon(),
                n_samples: 40,
                seed: sc.default_seed(),
                inner,
                ..Default::default()
            })
            .solve(&spec)
            .unwrap()
        };
        let exact = solve(InnerKind::Exact);
        let dec = solve(InnerKind::Decomposed);
        assert_eq!(
            exact.loss.to_bits(),
            dec.loss.to_bits(),
            "{}: decomposed diverged from exact",
            sc.key()
        );
        assert_eq!(
            exact.policy.thresholds,
            dec.policy.thresholds,
            "{}",
            sc.key()
        );
        assert_eq!(exact.policy.orders, dec.policy.orders, "{}", sc.key());
        assert_eq!(exact.policy.probs, dec.policy.probs, "{}", sc.key());
        assert_eq!(
            exact.stats.thresholds_explored,
            dec.stats.thresholds_explored,
            "{}",
            sc.key()
        );
    }
    assert!(covered >= 3, "only {covered} small scenarios exercised");
}

#[test]
fn wide_solves_are_bit_identical_across_thread_counts() {
    let reg = registry();
    let sc = reg.get("syn-wide25").unwrap();
    let spec = sc.build_small(sc.default_seed()).unwrap();
    let base = wide_solver(1).solve(&spec).unwrap();
    for threads in [2usize, 4] {
        let multi = wide_solver(threads).solve(&spec).unwrap();
        assert_eq!(
            base.loss.to_bits(),
            multi.loss.to_bits(),
            "{threads} threads changed the wide objective"
        );
        assert_eq!(base.policy.thresholds, multi.policy.thresholds);
        assert_eq!(base.policy.orders, multi.policy.orders);
        assert_eq!(base.policy.probs, multi.policy.probs);
    }
}

fn wide_runtime_config(seed: u64) -> RuntimeConfig {
    RuntimeConfig {
        epochs: 3,
        periods_per_epoch: 3,
        seed,
        solver: SolverConfig {
            epsilon: 0.5,
            n_samples: 40,
            seed,
            inner: InnerKind::Auto,
            ..Default::default()
        },
        drift: DriftConfig {
            window_periods: 6,
            max_stale_epochs: Some(1),
            ..Default::default()
        },
        warm_start: true,
        compare_cold: false,
    }
}

/// The full-scale 25-type family must run through the service epoch loop
/// (streaming fits, staleness-forced re-solves, telemetry) with a
/// rerun-stable fingerprint — the planner is a first-class citizen of the
/// runtime, not a facade-only path.
#[test]
fn runtime_epoch_loop_handles_a_25_type_scenario() {
    let reg = registry();
    let sc = reg.get("syn-wide25").unwrap().clone();
    let spec = sc.build(7).unwrap();
    assert_eq!(spec.n_types(), 25);
    let run = |seed| {
        AuditService::new(sc.clone(), wide_runtime_config(seed))
            .run()
            .unwrap()
    };
    let report = run(7);
    assert_eq!(report.epochs.len(), 3);
    assert!(report.initial_objective.is_finite());
    for e in &report.epochs {
        assert_eq!(e.thresholds.len(), 25, "epoch {}", e.epoch);
    }
    // Staleness forcing guarantees at least one warm re-solve through the
    // planner's decomposed tier inside the loop.
    assert!(report.resolves() >= 1, "no re-solve in 3 epochs");
    assert_eq!(report.fingerprint(), run(7).fingerprint());
}
