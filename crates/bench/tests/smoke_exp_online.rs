//! End-to-end smoke test: the `exp_online` driver (online runtime loop)
//! must run a short simulation, emit the telemetry table, fingerprint,
//! and summary counters, produce identical fingerprints across reruns
//! and thread counts, and reject unknown scenarios.

use std::process::Command;

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_exp_online"))
        .args(args)
        .output()
        .expect("exp_online spawns")
}

fn fingerprint_of(stdout: &str) -> String {
    stdout
        .lines()
        .find_map(|l| l.strip_prefix("telemetry fingerprint: "))
        .unwrap_or_else(|| panic!("missing fingerprint line:\n{stdout}"))
        .to_string()
}

#[test]
fn exp_online_runs_a_short_simulation_end_to_end() {
    let out = run(&["4", "1", "--scenario", "syn-seasonal"]);
    assert!(
        out.status.success(),
        "exp_online exited with {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in ["epoch", "maxKS", "resolves:", "periods/sec:"] {
        assert!(stdout.contains(needle), "missing {needle}:\n{stdout}");
    }
    // Four epoch rows.
    for e in 0..4 {
        assert!(
            stdout.lines().any(|l| l.starts_with(&format!("| {e} "))),
            "missing epoch row {e}:\n{stdout}"
        );
    }
    fingerprint_of(&stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("scenario syn-seasonal"),
        "stderr should echo the resolved scenario:\n{stderr}"
    );
}

#[test]
fn exp_online_fingerprint_is_rerun_and_thread_invariant() {
    let base = run(&["3", "1", "--scenario", "syn-seasonal"]);
    assert!(base.status.success());
    let fp = fingerprint_of(&String::from_utf8_lossy(&base.stdout));
    for args in [
        ["3", "1", "--scenario", "syn-seasonal"],
        ["3", "4", "--scenario", "syn-seasonal"],
    ] {
        let again = run(&args);
        assert!(again.status.success());
        assert_eq!(
            fp,
            fingerprint_of(&String::from_utf8_lossy(&again.stdout)),
            "fingerprint changed for args {args:?}"
        );
    }
}

#[test]
fn exp_online_json_mode_emits_a_parseable_document() {
    let out = run(&["3", "1", "--json", "--compare-cold"]);
    assert!(out.status.success());
    // In --json mode the whole of stdout is one document (the summary
    // lines move to stderr), so `--json > file.json` yields valid JSON.
    let stdout = String::from_utf8_lossy(&out.stdout);
    let doc = alert_audit::json::Value::parse(stdout.trim()).expect("valid JSON");
    assert_eq!(
        doc.get("scenario").unwrap().as_str().unwrap(),
        "syn-seasonal"
    );
    assert_eq!(doc.get("epochs").unwrap().as_f64().unwrap(), 3.0);
    assert_eq!(doc.get("epoch_log").unwrap().as_arr().unwrap().len(), 3);
}

#[test]
fn exp_online_rejects_unknown_scenario_with_key_list() {
    let out = run(&["3", "1", "--scenario", "no-such-scenario"]);
    assert!(!out.status.success(), "unknown scenario must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("no-such-scenario") && stderr.contains("syn-seasonal"),
        "error should name the bad key and list known keys:\n{stderr}"
    );
}

#[test]
fn exp_online_cache_stats_flag_reports_engine_counters() {
    let out = run(&["3", "1", "--scenario", "syn-seasonal", "--cache-stats"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("engine cache: hits=") && stdout.contains("engine trie:"),
        "missing engine counters:\n{stdout}"
    );
    // The counters are deterministic (they count evaluation structure, not
    // wall clock), so a rerun reports the same lines.
    let again = run(&["3", "1", "--scenario", "syn-seasonal", "--cache-stats"]);
    let a: Vec<&str> = stdout
        .lines()
        .filter(|l| l.starts_with("engine "))
        .collect();
    let bs = String::from_utf8_lossy(&again.stdout).to_string();
    let b: Vec<&str> = bs.lines().filter(|l| l.starts_with("engine ")).collect();
    assert_eq!(a, b, "engine counters must be deterministic");
    // Without the flag they are absent.
    let plain = run(&["3", "1", "--scenario", "syn-seasonal"]);
    assert!(!String::from_utf8_lossy(&plain.stdout).contains("engine cache:"));
}
