//! Budget-sweep runners for the real-data-shaped experiments
//! (Figures 1 and 2 of the paper).
//!
//! The runners are dataset-agnostic: they take any [`GameSpec`] (Rea A from
//! `emrsim`, Rea B from `creditsim`, or anything else) and sweep the audit
//! budget, producing the proposed-model series for several ISHM step sizes
//! alongside the three baseline series.

use audit_game::baselines::{greedy_by_benefit_loss, random_orders_loss, random_thresholds_loss};
use audit_game::cggs::{Cggs, CggsConfig};
use audit_game::detection::{DetectionEstimator, DetectionModel};
use audit_game::error::GameError;
use audit_game::ishm::{CggsEvaluator, Ishm, IshmConfig};
use audit_game::model::GameSpec;
use serde::{Deserialize, Serialize};

/// All series of one figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureData {
    /// The swept budgets.
    pub budgets: Vec<f64>,
    /// ε values of the proposed-model series.
    pub epsilons: Vec<f64>,
    /// `proposed[k][i]`: loss of the proposed model with ε = `epsilons[k]`
    /// at budget `budgets[i]`.
    pub proposed: Vec<Vec<f64>>,
    /// Audit-with-random-orders baseline per budget.
    pub random_orders: Vec<f64>,
    /// Audit-with-random-thresholds baseline per budget.
    pub random_thresholds: Vec<f64>,
    /// Audit-based-on-benefit baseline per budget.
    pub greedy_benefit: Vec<f64>,
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// ISHM step sizes for the proposed-model series.
    pub epsilons: Vec<f64>,
    /// Monte-Carlo samples for `Pal`.
    pub n_samples: usize,
    /// Seed for sample banks and baseline randomness.
    pub seed: u64,
    /// Orders drawn by the random-order baseline (when `|T|!` is large).
    pub random_order_samples: usize,
    /// Repetitions of the random-threshold baseline.
    pub random_threshold_repeats: usize,
    /// Merge identical actions before solving (harmless, much faster).
    pub dedup_actions: bool,
    /// Worker threads for batched `Pal` evaluation inside each solve
    /// (orthogonal to the per-budget thread fan-out; results are
    /// thread-count invariant).
    pub threads: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            epsilons: vec![0.1, 0.2, 0.3],
            n_samples: 400,
            seed: 0,
            random_order_samples: 2000,
            random_threshold_repeats: 100,
            dedup_actions: true,
            threads: 1,
        }
    }
}

/// Per-budget result bundle (all series at one budget).
#[derive(Debug, Clone)]
struct BudgetPoint {
    proposed: Vec<f64>,
    reference_thresholds: Vec<f64>,
    random_thresholds: f64,
    greedy_benefit: f64,
}

/// Run the full sweep of one figure. Budgets are processed in parallel.
pub fn budget_sweep(
    base: &GameSpec,
    budgets: &[f64],
    config: &SweepConfig,
) -> Result<FigureData, GameError> {
    let spec0 = if config.dedup_actions {
        base.dedup_actions()
    } else {
        base.clone()
    };

    let points: Vec<Result<BudgetPoint, GameError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = budgets
            .iter()
            .map(|&b| {
                let spec0 = &spec0;
                scope.spawn(move || one_budget(spec0, b, config))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep thread panicked"))
            .collect()
    });
    let points: Vec<BudgetPoint> = points.into_iter().collect::<Result<_, _>>()?;

    // Random-order baseline uses the ε = first-epsilon thresholds, as in the
    // paper ("we adopt the thresholds out of the proposed model with ε=0.1").
    let mut random_orders = Vec::with_capacity(budgets.len());
    for (i, &b) in budgets.iter().enumerate() {
        let mut spec = spec0.clone();
        spec.budget = b;
        let bank = spec.sample_bank(config.n_samples, config.seed);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        random_orders.push(random_orders_loss(
            &spec,
            &est,
            &points[i].reference_thresholds,
            config.random_order_samples,
            config.seed ^ 0x5EED,
        )?);
    }

    Ok(FigureData {
        budgets: budgets.to_vec(),
        epsilons: config.epsilons.clone(),
        proposed: (0..config.epsilons.len())
            .map(|k| points.iter().map(|p| p.proposed[k]).collect())
            .collect(),
        random_orders,
        random_thresholds: points.iter().map(|p| p.random_thresholds).collect(),
        greedy_benefit: points.iter().map(|p| p.greedy_benefit).collect(),
    })
}

fn one_budget(
    spec0: &GameSpec,
    budget: f64,
    config: &SweepConfig,
) -> Result<BudgetPoint, GameError> {
    let mut spec = spec0.clone();
    spec.budget = budget;
    let bank = spec.sample_bank(config.n_samples, config.seed);
    let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);

    let cggs_config = CggsConfig {
        threads: config.threads,
        ..Default::default()
    };
    let mut proposed = Vec::with_capacity(config.epsilons.len());
    let mut reference_thresholds: Option<Vec<f64>> = None;
    for &eps in &config.epsilons {
        let ishm = Ishm::new(IshmConfig {
            epsilon: eps,
            ..Default::default()
        });
        let mut eval = CggsEvaluator::new(&spec, est, cggs_config.clone());
        let out = ishm.solve(&spec, &mut eval)?;
        if reference_thresholds.is_none() {
            reference_thresholds = Some(out.thresholds.clone());
        }
        proposed.push(out.value);
    }

    let random_thresholds = random_thresholds_loss(
        &spec,
        &est,
        &Cggs::new(cggs_config),
        config.random_threshold_repeats,
        config.seed ^ 0xA11E,
    )?;
    let greedy_benefit = greedy_by_benefit_loss(&spec, &est)?;

    Ok(BudgetPoint {
        proposed,
        reference_thresholds: reference_thresholds.expect("at least one epsilon"),
        random_thresholds,
        greedy_benefit,
    })
}

/// Render a figure as one table: budget column plus one column per series.
pub fn render_figure(data: &FigureData) -> String {
    let mut header: Vec<String> = vec!["B".into()];
    for &e in &data.epsilons {
        header.push(format!("proposed(eps={e})"));
    }
    header.push("random-thresholds".into());
    header.push("random-orders".into());
    header.push("greedy-benefit".into());
    let mut t = crate::report::Table::new(header);
    for (i, &b) in data.budgets.iter().enumerate() {
        let mut row: Vec<String> = vec![format!("{b}")];
        for series in &data.proposed {
            row.push(crate::report::f4(series[i]));
        }
        row.push(crate::report::f4(data.random_thresholds[i]));
        row.push(crate::report::f4(data.random_orders[i]));
        row.push(crate::report::f4(data.greedy_benefit[i]));
        t.row(row);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use audit_game::datasets::{random_game, RandomGameConfig};

    #[test]
    fn sweep_produces_dominating_proposed_series() {
        let cfg = RandomGameConfig {
            allow_opt_out: true,
            budget: 0.0, // overridden by the sweep
            ..Default::default()
        };
        let spec = random_game(&cfg, 2);
        let sweep = SweepConfig {
            epsilons: vec![0.2],
            n_samples: 60,
            random_order_samples: 100,
            random_threshold_repeats: 8,
            ..Default::default()
        };
        let budgets = [2.0, 8.0];
        let data = budget_sweep(&spec, &budgets, &sweep).unwrap();

        for i in 0..budgets.len() {
            let p = data.proposed[0][i];
            assert!(
                p <= data.random_orders[i] + 1e-6,
                "budget {i}: proposed {p} > random orders {}",
                data.random_orders[i]
            );
            assert!(p <= data.random_thresholds[i] + 1e-6);
            assert!(p <= data.greedy_benefit[i] + 1e-6);
        }
        // More budget can't hurt the proposed auditor.
        assert!(data.proposed[0][1] <= data.proposed[0][0] + 1e-6);
        // Rendering includes every series column.
        let s = render_figure(&data);
        assert!(s.contains("greedy-benefit"));
        assert!(s.lines().count() == 2 + budgets.len());
    }
}
