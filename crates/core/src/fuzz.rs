//! Seeded scenario fuzzer: random-but-reproducible [`GameSpec`]s for
//! property testing far beyond the hand-built registry families.
//!
//! [`fuzz_game`] maps `(config, seed)` deterministically onto a valid
//! game: a mixed zoo of count distributions (constant, discretized
//! Gaussian, Poisson, Zipf), heterogeneous audit costs, stochastic
//! two-type attack footprints, benign accesses, and randomized budgets
//! and opt-out flags. Every draw comes from the same nonce-separated
//! stream RNG the scenario generators use, so a failing seed reproduces
//! bit-identically anywhere.
//!
//! The integration suite `tests/scenario_fuzz.rs` drives this through
//! the solver-independent game properties (budget monotonicity, λ→∞
//! quantal-response convergence, general-sum/zero-sum agreement,
//! CGGS-vs-brute-force at small scale); CI runs it in release mode with
//! a fixed seed range.

use crate::model::{AttackAction, Attacker, GameSpec, GameSpecBuilder};
use rand::Rng;
use std::sync::Arc;
use stochastics::rng::stream_rng;
use stochastics::{Constant, CountDistribution, DiscretizedGaussian, Poisson, Zipf};

/// Size and shape bounds for [`fuzz_game`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FuzzConfig {
    /// Minimum number of alert types (≥ 2; the draw is uniform in
    /// `min..=max`).
    pub min_types: usize,
    /// Maximum number of alert types (≥ 2 drawn uniformly in `min..=max`).
    pub max_types: usize,
    /// Maximum number of attackers (≥ 1).
    pub max_attackers: usize,
    /// Maximum number of victims per attacker (≥ 1).
    pub max_victims: usize,
    /// Whether actions may carry stochastic two-type footprints.
    pub stochastic_footprints: bool,
    /// Upper bound on every count distribution's support maximum — keeps
    /// brute-force threshold lattices tractable when a property needs the
    /// exact baseline.
    pub max_support: u64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self {
            min_types: 2,
            max_types: 4,
            max_attackers: 4,
            max_victims: 5,
            stochastic_footprints: true,
            max_support: 12,
        }
    }
}

impl FuzzConfig {
    /// The wide-type profile exercising the planner's decomposed tier:
    /// 16–32 alert types (always past [`crate::planner::ISHM_FULL_MAX_TYPES`])
    /// with small count supports so the Monte-Carlo banks and payoff
    /// matrices stay cheap at that width.
    pub fn wide() -> Self {
        Self {
            min_types: 16,
            max_types: 32,
            max_attackers: 5,
            max_victims: 5,
            stochastic_footprints: true,
            max_support: 8,
        }
    }
}

/// Nonce separating the fuzzer's RNG stream from the scenario generators.
const FUZZ_NONCE: u64 = 0xF022;

fn fuzz_distribution<R: Rng>(rng: &mut R, max_support: u64) -> Arc<dyn CountDistribution> {
    let cap = max_support.max(2);
    match rng.gen_range(0..4u32) {
        0 => Arc::new(Constant(rng.gen_range(1..=cap.min(4)))),
        1 => {
            let mean = rng.gen_range(1.5..(cap as f64 * 0.6).max(2.0));
            let std = rng.gen_range(0.6..1.8);
            let half = rng.gen_range(1..=(cap / 2).max(1));
            let half = half.min(cap.saturating_sub(mean.ceil() as u64).max(1));
            Arc::new(DiscretizedGaussian::with_halfwidth(mean, std, half))
        }
        2 => {
            // Poisson's support cap is the 1 - 1e-9 quantile; keep the
            // mean low enough that the cap stays within max_support.
            let mean = rng.gen_range(0.5..(cap as f64 / 3.0).max(0.8));
            Arc::new(Poisson::new(mean))
        }
        _ => {
            let s = rng.gen_range(1.5..2.8);
            Arc::new(Zipf::new(s, rng.gen_range(2..=cap)))
        }
    }
}

/// Generate a random valid game from `(config, seed)`, deterministically.
pub fn fuzz_game(config: &FuzzConfig, seed: u64) -> GameSpec {
    assert!(config.max_types >= 2, "need at least two alert types");
    assert!(
        (2..=config.max_types).contains(&config.min_types),
        "min_types must lie in 2..=max_types"
    );
    assert!(config.max_attackers >= 1 && config.max_victims >= 1);
    let mut rng = stream_rng(seed, FUZZ_NONCE);
    let n_types = rng.gen_range(config.min_types..=config.max_types);
    let n_attackers = rng.gen_range(1..=config.max_attackers);
    let n_victims = rng.gen_range(1..=config.max_victims);

    let mut b = GameSpecBuilder::new();
    for t in 0..n_types {
        let cost = 0.5 * rng.gen_range(1..=3u32) as f64;
        b.alert_type(
            format!("F{t}"),
            cost,
            fuzz_distribution(&mut rng, config.max_support),
        );
    }
    for e in 0..n_attackers {
        let attack_prob = rng.gen_range(0.3..1.0);
        let actions: Vec<AttackAction> = (0..n_victims)
            .map(|v| {
                if rng.gen_bool(0.1) {
                    return AttackAction::benign(format!("v{v}"), rng.gen_range(0.0..0.5));
                }
                let t = rng.gen_range(0..n_types);
                let reward = rng.gen_range(2.0..8.0);
                let cost = rng.gen_range(0.0..1.0);
                let penalty = rng.gen_range(2.0..6.0);
                if config.stochastic_footprints && rng.gen_bool(0.4) {
                    let spill = rng.gen_range(0.1..0.4);
                    let other = (t + 1) % n_types;
                    AttackAction {
                        victim: format!("v{v}"),
                        alert_probs: vec![(t, 1.0 - spill), (other, spill)],
                        reward,
                        attack_cost: cost,
                        penalty,
                    }
                } else {
                    AttackAction::deterministic(format!("v{v}"), t, reward, cost, penalty)
                }
            })
            .collect();
        b.attacker(Attacker::new(format!("e{e}"), attack_prob, actions));
    }
    b.budget(rng.gen_range(1.0..(1.5 * n_types as f64 + 1.0)));
    b.allow_opt_out(rng.gen_bool(0.5));
    b.build().expect("fuzzed game is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzz_is_deterministic_in_the_seed() {
        let cfg = FuzzConfig::default();
        for seed in 0..8 {
            let a = fuzz_game(&cfg, seed);
            let b = fuzz_game(&cfg, seed);
            assert_eq!(a.fingerprint(), b.fingerprint(), "seed {seed}");
        }
    }

    #[test]
    fn fuzz_responds_to_the_seed() {
        let cfg = FuzzConfig::default();
        let prints: Vec<u64> = (0..16).map(|s| fuzz_game(&cfg, s).fingerprint()).collect();
        let mut unique = prints.clone();
        unique.sort_unstable();
        unique.dedup();
        assert!(unique.len() >= 12, "only {} distinct games", unique.len());
    }

    #[test]
    fn fuzzed_games_validate_and_respect_bounds() {
        let cfg = FuzzConfig::default();
        for seed in 0..50 {
            let g = fuzz_game(&cfg, seed);
            g.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(g.n_types() >= 2 && g.n_types() <= cfg.max_types);
            assert!(g.n_attackers() >= 1 && g.n_attackers() <= cfg.max_attackers);
            assert!(g.budget > 0.0);
        }
    }

    #[test]
    fn wide_profile_always_lands_in_the_decomposed_tier() {
        let cfg = FuzzConfig::wide();
        for seed in 0..12 {
            let g = fuzz_game(&cfg, seed);
            g.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(
                g.n_types() >= 16 && g.n_types() <= 32,
                "seed {seed}: {} types",
                g.n_types()
            );
            assert!(g.n_types() > crate::planner::ISHM_FULL_MAX_TYPES);
        }
    }

    #[test]
    fn small_profile_keeps_brute_force_tractable() {
        let cfg = FuzzConfig {
            max_types: 2,
            max_attackers: 3,
            max_victims: 3,
            max_support: 4,
            ..Default::default()
        };
        for seed in 0..20 {
            let g = fuzz_game(&cfg, seed);
            let bounds = g.threshold_upper_bounds();
            assert_eq!(bounds.len(), g.n_types());
            // Poisson tails may stretch past the nominal cap, but the
            // lattice must stay small enough to enumerate.
            let cells: f64 = bounds.iter().map(|&b| b + 1.0).product();
            assert!(cells <= 900.0, "seed {seed}: lattice {cells} too large");
        }
    }
}
