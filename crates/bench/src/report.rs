//! Table rendering for experiment binaries: fixed-width plain text that
//! doubles as valid Markdown.

/// A simple column-aligned table builder.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given header.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render as a Markdown-compatible aligned table.
    pub fn render(&self) -> String {
        let n = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, &w) in cells.iter().zip(widths) {
                line.push(' ');
                line.push_str(cell);
                line.extend(std::iter::repeat_n(' ', w - cell.chars().count() + 1));
                line.push('|');
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('|');
        for &w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('|');
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        let _ = n;
        out
    }
}

/// Format a float with 4 decimals (the paper's table precision).
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Format a threshold vector as the paper does: integer audit capacities.
pub fn thresholds_str(thresholds: &[f64], costs: &[f64]) -> String {
    let caps: Vec<String> = thresholds
        .iter()
        .zip(costs)
        .map(|(&b, &c)| format!("{}", (b / c).floor() as i64))
        .collect();
    format!("[{}]", caps.join(","))
}

/// Format a mixed strategy's support: orders with probability ≥ `min_prob`.
pub fn support_str(
    orders: &[audit_game::ordering::AuditOrder],
    probs: &[f64],
    min_prob: f64,
) -> String {
    let mut parts: Vec<(f64, String)> = orders
        .iter()
        .zip(probs)
        .filter(|(_, &p)| p >= min_prob)
        .map(|(o, &p)| (p, format!("{o}:{p:.4}")))
        .collect();
    parts.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite probabilities"));
    parts
        .into_iter()
        .map(|(_, s)| s)
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use audit_game::ordering::AuditOrder;

    #[test]
    fn table_renders_aligned_markdown() {
        let mut t = Table::new(vec!["B", "value"]);
        t.row(vec!["2", "12.29"]);
        t.row(vec!["20", "-8.15"]);
        let s = t.render();
        assert!(s.starts_with("| B"));
        assert!(s.contains("|---"));
        assert_eq!(s.lines().count(), 4);
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    #[should_panic]
    fn row_arity_is_enforced() {
        Table::new(vec!["a", "b"]).row(vec!["only one"]);
    }

    #[test]
    fn threshold_formatting_uses_capacities() {
        assert_eq!(
            thresholds_str(&[2.0, 3.5, 0.0], &[1.0, 1.0, 1.0]),
            "[2,3,0]"
        );
        assert_eq!(thresholds_str(&[4.0], &[2.0]), "[2]");
    }

    #[test]
    fn support_sorted_by_probability() {
        let orders = vec![
            AuditOrder::new(vec![0, 1]).unwrap(),
            AuditOrder::new(vec![1, 0]).unwrap(),
        ];
        let s = support_str(&orders, &[0.3, 0.7], 0.01);
        assert!(s.starts_with("[2,1]:0.7000"));
        let s = support_str(&orders, &[0.995, 0.005], 0.01);
        assert!(!s.contains("[2,1]"));
    }
}
