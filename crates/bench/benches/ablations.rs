//! A1–A3 — design-choice ablations called out in DESIGN.md:
//!
//! * detection model variants (paper approximation vs attack-inclusive vs
//!   operational recourse);
//! * greedy vs exhaustive CGGS pricing oracle;
//! * action deduplication on/off for the Rea-A-shaped master;
//! * common-random-numbers: cost of regenerating banks per evaluation.

use audit_game::cggs::{Cggs, CggsConfig, OracleKind};
use audit_game::datasets::{random_game, syn_a_with_budget, RandomGameConfig};
use audit_game::detection::{DetectionEstimator, DetectionModel};
use audit_game::master::MasterSolver;
use audit_game::ordering::AuditOrder;
use audit_game::payoff::PayoffMatrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const SAMPLES: usize = 200;

fn bench_detection_models(c: &mut Criterion) {
    let spec = syn_a_with_budget(6.0);
    let bank = spec.sample_bank(SAMPLES, 0);
    let order = AuditOrder::identity(4);
    let thresholds = vec![2.0, 2.0, 2.0, 2.0];

    let mut group = c.benchmark_group("ablation_detection");
    for (name, model) in [
        ("paper_approx", DetectionModel::PaperApprox),
        ("attack_inclusive", DetectionModel::AttackInclusive),
        ("operational", DetectionModel::Operational),
    ] {
        let est = DetectionEstimator::new(&spec, &bank, model);
        group.bench_function(name, |b| b.iter(|| est.pal(&order, &thresholds)));
    }
    group.finish();
}

fn bench_oracle_kinds(c: &mut Criterion) {
    let spec = syn_a_with_budget(6.0);
    let bank = spec.sample_bank(SAMPLES, 0);
    let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
    let thresholds = vec![2.0, 2.0, 2.0, 2.0];

    let mut group = c.benchmark_group("ablation_oracle");
    group.sample_size(20);
    for (name, oracle) in [
        ("greedy", OracleKind::Greedy),
        ("exhaustive", OracleKind::Exhaustive),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &oracle, |b, &oracle| {
            b.iter(|| {
                Cggs::new(CggsConfig {
                    oracle,
                    ..Default::default()
                })
                .solve(&spec, &est, &thresholds)
                .expect("solves")
            })
        });
    }
    group.finish();
}

fn bench_dedup_actions(c: &mut Criterion) {
    // Rea-A-shaped: many victims per attacker sharing few alert signatures.
    let cfg = RandomGameConfig {
        n_types: 5,
        n_attackers: 20,
        n_victims: 40,
        budget: 10.0,
        allow_opt_out: true,
        benign_prob: 0.2,
    };
    let raw = random_game(&cfg, 3);
    let deduped = raw.dedup_actions();

    let mut group = c.benchmark_group("ablation_dedup");
    group.sample_size(10);
    for (name, spec) in [("raw_800_actions", &raw), ("deduped", &deduped)] {
        let bank = spec.sample_bank(SAMPLES, 0);
        let est = DetectionEstimator::new(spec, &bank, DetectionModel::PaperApprox);
        let thresholds = spec.threshold_upper_bounds();
        group.bench_function(name, |b| {
            b.iter(|| {
                let m = PayoffMatrix::build(spec, &est, AuditOrder::enumerate_all(5), &thresholds);
                MasterSolver::solve(spec, &m).expect("solves")
            })
        });
    }
    group.finish();
}

fn bench_crn_bank_reuse(c: &mut Criterion) {
    let spec = syn_a_with_budget(6.0);
    let order = AuditOrder::identity(4);
    let thresholds = vec![2.0, 2.0, 2.0, 2.0];

    let mut group = c.benchmark_group("ablation_crn");
    let bank = spec.sample_bank(SAMPLES, 0);
    group.bench_function("frozen_bank_eval", |b| {
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        b.iter(|| est.pal(&order, &thresholds))
    });
    group.bench_function("fresh_bank_per_eval", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let bank = spec.sample_bank(SAMPLES, seed);
            let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
            est.pal(&order, &thresholds)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_detection_models,
    bench_oracle_kinds,
    bench_dedup_actions,
    bench_crn_bank_reuse
);
criterion_main!(benches);
