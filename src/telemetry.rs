//! JSON rendering of the online runtime's telemetry.
//!
//! `audit-runtime` emits plain structs (it sits below the umbrella in the
//! crate graph and the offline serde shim has no data format); this module
//! projects a [`RuntimeReport`] onto the [`crate::json`] value tree so the
//! `exp_online` driver, the CI soak step, and the `BENCH_runtime.json`
//! artifact all share one canonical wire shape. Numbers render with
//! shortest-roundtrip formatting, so the JSON is as deterministic as the
//! report itself (wall-clock latency fields are the only nondeterministic
//! content; the embedded `fingerprint` ignores them by construction).

use crate::json::Value;
use audit_runtime::{EpochTelemetry, FleetReport, RuntimeReport, TenantFailure, TenantHealth};

/// Render one epoch record.
fn epoch_to_json(e: &EpochTelemetry) -> Value {
    let mut pairs: Vec<(&'static str, Value)> = vec![
        ("epoch", Value::Num(e.epoch as f64)),
        ("periods", Value::Num(e.periods as f64)),
        (
            "alerts_seen",
            Value::nums(e.alerts_seen.iter().map(|&z| z as f64)),
        ),
        (
            "alerts_audited",
            Value::nums(e.alerts_audited.iter().map(|&z| z as f64)),
        ),
        ("mean_spent", Value::Num(e.mean_spent)),
        (
            "realized_rate",
            Value::nums(e.realized_rate.iter().copied()),
        ),
        (
            "predicted_pal",
            Value::nums(e.predicted_pal.iter().copied()),
        ),
        ("pal_gap", Value::Num(e.pal_gap)),
        ("max_ks", Value::Num(e.max_ks)),
        ("drift", Value::Bool(e.drift)),
        ("resolved", Value::Bool(e.resolved)),
        (
            "epochs_since_resolve",
            Value::Num(e.epochs_since_resolve as f64),
        ),
        ("objective", Value::Num(e.objective)),
        ("thresholds", Value::nums(e.thresholds.iter().copied())),
        ("attacks_launched", Value::Num(e.attacks_launched as f64)),
        ("attacks_detected", Value::Num(e.attacks_detected as f64)),
        ("attacker_utility", Value::Num(e.attacker_utility)),
        ("auditor_damage", Value::Num(e.auditor_damage)),
    ];
    let opt_num = |x: Option<f64>| x.map(Value::Num).unwrap_or(Value::Null);
    pairs.push((
        "solve_explored",
        opt_num(e.solve_explored.map(|n| n as f64)),
    ));
    pairs.push(("solve_millis", opt_num(e.solve_millis)));
    pairs.push(("cold_objective", opt_num(e.cold_objective)));
    pairs.push(("cold_explored", opt_num(e.cold_explored.map(|n| n as f64))));
    pairs.push(("cold_millis", opt_num(e.cold_millis)));
    pairs.push((
        "degrade",
        e.degrade
            .map(|d| Value::Str(d.key()))
            .unwrap_or(Value::Null),
    ));
    pairs.push(("ks_degenerate", Value::Bool(e.ks_degenerate)));
    Value::obj(pairs)
}

/// Render one recorded tenant failure.
fn failure_to_json(f: &TenantFailure) -> Value {
    Value::obj([
        ("round", Value::Num(f.round as f64)),
        ("cause", Value::Str(f.cause.clone())),
        (
            "resume_round",
            f.resume_round
                .map(|r| Value::Num(r as f64))
                .unwrap_or(Value::Null),
        ),
    ])
}

/// Render a tenant's supervisor verdict: its status key plus, for
/// non-healthy tenants, the failure log (and the terminal round/cause
/// for failed ones).
fn health_to_json(h: &TenantHealth) -> Value {
    let mut pairs: Vec<(&'static str, Value)> = vec![("status", Value::Str(h.key().into()))];
    if let TenantHealth::Failed { round, cause, .. } = h {
        pairs.push(("round", Value::Num(*round as f64)));
        pairs.push(("cause", Value::Str(cause.clone())));
    }
    if !h.failures().is_empty() {
        pairs.push((
            "failures",
            Value::Arr(h.failures().iter().map(failure_to_json).collect()),
        ));
    }
    Value::obj(pairs)
}

/// Render the full report: run header, per-epoch records, aggregate
/// resolve statistics, and the deterministic fingerprint (as a hex
/// string — JSON numbers cannot carry 64 bits exactly).
pub fn report_to_json(report: &RuntimeReport) -> Value {
    let opt_num = |x: Option<f64>| x.map(Value::Num).unwrap_or(Value::Null);
    let resolve_stats = match report.resolve_stats() {
        None => Value::Null,
        Some(s) => Value::obj([
            ("resolves", Value::Num(s.resolves as f64)),
            ("mean_solve_millis", Value::Num(s.mean_solve_millis)),
            ("mean_cold_millis", opt_num(s.mean_cold_millis)),
            ("speedup", opt_num(s.speedup)),
            ("max_objective_gap", opt_num(s.max_objective_gap)),
        ]),
    };
    Value::obj([
        ("scenario", Value::Str(report.scenario.clone())),
        ("seed", Value::Num(report.seed as f64)),
        ("epochs", Value::Num(report.epochs.len() as f64)),
        (
            "periods_per_epoch",
            Value::Num(report.periods_per_epoch as f64),
        ),
        ("total_periods", Value::Num(report.total_periods() as f64)),
        ("initial_objective", Value::Num(report.initial_objective)),
        (
            "initial_solve_millis",
            Value::Num(report.initial_solve_millis),
        ),
        ("resolves", Value::Num(report.resolves() as f64)),
        ("drift_epochs", Value::Num(report.drift_epochs() as f64)),
        ("resolve_stats", resolve_stats),
        (
            "engine_cache",
            Value::obj([
                ("hits", Value::Num(report.engine_cache.hits as f64)),
                ("misses", Value::Num(report.engine_cache.misses as f64)),
                (
                    "evictions",
                    Value::Num(report.engine_cache.evictions as f64),
                ),
                (
                    "state_hits",
                    Value::Num(report.engine_cache.state_hits as f64),
                ),
                (
                    "state_evictions",
                    Value::Num(report.engine_cache.state_evictions as f64),
                ),
                (
                    "columns_evaluated",
                    Value::Num(report.engine_cache.columns_evaluated as f64),
                ),
                (
                    "columns_saved",
                    Value::Num(report.engine_cache.columns_saved as f64),
                ),
            ]),
        ),
        (
            "fingerprint",
            Value::Str(format!("{:016x}", report.fingerprint())),
        ),
        (
            "epoch_log",
            Value::Arr(report.epochs.iter().map(epoch_to_json).collect()),
        ),
    ])
}

/// Render a fleet run: aggregate header (throughput, latency
/// percentiles, shared-cache counters, fleet fingerprint) plus the full
/// per-tenant reports. Per-tenant fingerprints ride inside each embedded
/// [`report_to_json`]; the fleet fingerprint folds them in tenant order.
pub fn fleet_report_to_json(report: &FleetReport) -> Value {
    Value::obj([
        ("tenants", Value::Num(report.tenants.len() as f64)),
        ("workers", Value::Num(report.workers as f64)),
        ("shared_caches", Value::Bool(report.shared)),
        ("total_periods", Value::Num(report.total_periods as f64)),
        ("total_resolves", Value::Num(report.total_resolves() as f64)),
        ("wall_millis", Value::Num(report.wall_millis)),
        ("periods_per_sec", Value::Num(report.periods_per_sec)),
        ("latency_p50_millis", Value::Num(report.latency_p50_millis)),
        ("latency_p95_millis", Value::Num(report.latency_p95_millis)),
        ("latency_p99_millis", Value::Num(report.latency_p99_millis)),
        (
            "shared_cache",
            Value::obj([
                ("banks", Value::Num(report.shared_cache.banks as f64)),
                (
                    "publishes",
                    Value::Num(report.shared_cache.publishes as f64),
                ),
                (
                    "adoptions",
                    Value::Num(report.shared_cache.adoptions as f64),
                ),
            ]),
        ),
        (
            "fingerprint",
            Value::Str(format!("{:016x}", report.fingerprint())),
        ),
        (
            "healthy_fingerprint",
            Value::Str(format!("{:016x}", report.healthy_fingerprint())),
        ),
        ("health_counts", {
            let (healthy, recovered, failed) = report.health_counts();
            Value::obj([
                ("healthy", Value::Num(healthy as f64)),
                ("recovered", Value::Num(recovered as f64)),
                ("failed", Value::Num(failed as f64)),
            ])
        }),
        (
            "tenant_log",
            Value::Arr(
                report
                    .tenants
                    .iter()
                    .map(|t| {
                        Value::obj([
                            ("tenant", Value::Str(t.tenant.clone())),
                            ("start_millis", Value::Num(t.start_millis)),
                            ("health", health_to_json(&t.health)),
                            ("report", report_to_json(&t.report)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use audit_game::scenario::registry;
    use audit_game::solver::{InnerKind, SolverConfig};
    use audit_runtime::{AuditService, DriftConfig, RuntimeConfig};

    fn tiny_report() -> RuntimeReport {
        let reg = registry();
        let sc = reg.get("syn-seasonal").unwrap().clone();
        AuditService::new(
            sc,
            RuntimeConfig {
                epochs: 3,
                periods_per_epoch: 4,
                seed: 1,
                solver: SolverConfig {
                    inner: InnerKind::Cggs,
                    n_samples: 40,
                    epsilon: 0.5,
                    ..Default::default()
                },
                drift: DriftConfig::default(),
                warm_start: true,
                compare_cold: false,
            },
        )
        .run()
        .unwrap()
    }

    #[test]
    fn report_json_roundtrips_and_carries_the_fingerprint() {
        let report = tiny_report();
        let v = report_to_json(&report);
        let text = v.render();
        let back = Value::parse(&text).unwrap();
        assert_eq!(v, back);
        assert_eq!(
            back.get("fingerprint").unwrap().as_str().unwrap(),
            format!("{:016x}", report.fingerprint())
        );
        assert_eq!(
            back.get("epoch_log").unwrap().as_arr().unwrap().len(),
            report.epochs.len()
        );
        assert_eq!(back.get("total_periods").unwrap().as_f64().unwrap(), 12.0);
    }

    #[test]
    fn fleet_json_roundtrips_and_carries_both_fingerprint_levels() {
        use audit_runtime::{FleetConfig, FleetService, TenantSpec};
        let reg = registry();
        let sc = reg.get("syn-a").unwrap().clone();
        let config = RuntimeConfig {
            epochs: 2,
            periods_per_epoch: 3,
            seed: 5,
            solver: SolverConfig {
                inner: InnerKind::Cggs,
                n_samples: 40,
                epsilon: 0.5,
                ..Default::default()
            },
            drift: DriftConfig::default(),
            warm_start: true,
            compare_cold: false,
        };
        let tenants = (0..2)
            .map(|i| TenantSpec {
                name: format!("syn-a#{i}"),
                scenario: sc.clone(),
                config: RuntimeConfig {
                    seed: 5 + i,
                    ..config.clone()
                },
            })
            .collect();
        let fleet = FleetService::new(tenants, FleetConfig::default());
        let report = fleet.run().unwrap();
        let v = fleet_report_to_json(&report);
        let back = Value::parse(&v.render()).unwrap();
        assert_eq!(v, back);
        assert_eq!(
            back.get("fingerprint").unwrap().as_str().unwrap(),
            format!("{:016x}", report.fingerprint())
        );
        let log = back.get("tenant_log").unwrap().as_arr().unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(
            log[0]
                .get("report")
                .unwrap()
                .get("fingerprint")
                .unwrap()
                .as_str()
                .unwrap(),
            format!("{:016x}", report.tenants[0].report.fingerprint())
        );
        assert_eq!(back.get("total_periods").unwrap().as_f64().unwrap(), 12.0);
    }

    #[test]
    fn latency_fields_do_not_perturb_the_embedded_fingerprint() {
        let a = tiny_report();
        let mut b = a.clone();
        b.initial_solve_millis = 1e6;
        let fa = report_to_json(&a);
        let fb = report_to_json(&b);
        assert_eq!(
            fa.get("fingerprint").unwrap(),
            fb.get("fingerprint").unwrap()
        );
        // ... while the rendered latency itself of course differs.
        assert_ne!(fa.render(), fb.render());
    }
}
