//! End-to-end smoke test: the `exp_table6` experiment binary (precision γ
//! against the brute-force optimum) must run on a tiny configuration with
//! the `--scenario` flag and report both γ rows.

use std::process::Command;

#[test]
fn exp_table6_runs_end_to_end_on_tiny_config() {
    let exe = env!("CARGO_BIN_EXE_exp_table6");
    let out = Command::new(exe)
        .args(["--scenario", "syn-a", "2", "0.3", "40", "2"])
        .output()
        .expect("exp_table6 spawns");
    assert!(
        out.status.success(),
        "exp_table6 exited with {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("gamma1 (ISHM)") && stdout.contains("gamma2 (ISHM+CGGS)"),
        "missing gamma rows:\n{stdout}"
    );
    // Precision on the tiny grid must parse as a number close to 1 (the
    // heuristics track the optimum on Syn A's B=2 cell).
    let gamma_line = stdout
        .lines()
        .find(|l| l.contains("gamma1"))
        .expect("gamma1 row");
    let value: f64 = gamma_line
        .split('|')
        .filter(|c| !c.trim().is_empty())
        .nth(1)
        .expect("gamma value cell")
        .trim()
        .parse()
        .expect("gamma parses");
    assert!((0.5..=1.0).contains(&value), "gamma1 {value} out of range");
}
