//! Online service: run the epoch-based auditing runtime over a drifting
//! workload and watch it re-solve itself.
//!
//! The solvers answer "what policy to commit"; `alert_audit::runtime`
//! answers "how to operate it". Each **period** the committed policy is
//! executed on the next alert vector of the scenario's stream; each
//! **epoch** the recent window is tested against the committed count
//! model and, only when the fit has broken down, the distributions are
//! refit and the game re-solved — **warm-started** from the incumbent
//! solution, so the interruption is as short as possible.
//!
//! ```text
//! cargo run --release --example online_service
//! ```

use alert_audit::runtime::{AuditService, DriftConfig, RuntimeConfig};
use alert_audit::telemetry::report_to_json;
use audit_game::solver::{InnerKind, SolverConfig};

fn main() {
    // ------------------------------------------------------------------
    // Pick the drifting scenario: a weekly busy/quiet cycle over three
    // Poisson alert types. Any registry scenario works — the service only
    // needs `build` (the game) and `alert_stream` (the workload).
    // ------------------------------------------------------------------
    let registry = alert_audit::scenario::registry();
    let scenario = registry
        .resolve("syn-seasonal")
        .expect("registered")
        .clone();
    println!("scenario: {}", scenario.describe());

    // ------------------------------------------------------------------
    // Configure the runtime: one epoch per work week, a two-week drift
    // window, and a KS gate. `compare_cold` also times a shadow cold
    // solve at every re-solve so we can see what warm-starting buys.
    // ------------------------------------------------------------------
    let config = RuntimeConfig {
        epochs: 12,
        periods_per_epoch: 5,
        seed: 7,
        solver: SolverConfig {
            inner: InnerKind::Cggs,
            n_samples: 200,
            epsilon: 0.25,
            ..Default::default()
        },
        drift: DriftConfig {
            window_periods: 10,
            ks_threshold: 0.25,
            ..Default::default()
        },
        warm_start: true,
        compare_cold: true,
    };

    let report = AuditService::new(scenario, config)
        .run()
        .expect("service loop runs");

    // ------------------------------------------------------------------
    // Read the telemetry: when did the gate trip, what did re-solving
    // cost, and how well did the committed model predict reality?
    // ------------------------------------------------------------------
    println!(
        "initial solve: loss {:.4} in {:.1} ms",
        report.initial_objective, report.initial_solve_millis
    );
    for e in &report.epochs {
        let event = match (e.drift, e.resolved) {
            (_, true) => "re-solved",
            (true, false) => "drift (cooldown)",
            _ => "steady",
        };
        println!(
            "epoch {:2}: {:3} alerts, audited {:3}, KS {:.3}, loss {:.4}  [{event}]",
            e.epoch,
            e.alerts_seen.iter().sum::<u64>(),
            e.alerts_audited.iter().sum::<u64>(),
            e.max_ks,
            e.objective,
        );
    }
    if let Some(stats) = report.resolve_stats() {
        println!(
            "{} re-solves: warm {:.1} ms vs cold {:.1} ms (speedup {:.2}x)",
            stats.resolves,
            stats.mean_solve_millis,
            stats.mean_cold_millis.unwrap_or(f64::NAN),
            stats.speedup.unwrap_or(f64::NAN),
        );
    }
    println!(
        "telemetry fingerprint: {:016x} (identical on every rerun and thread count)",
        report.fingerprint()
    );

    // The full log is one `report_to_json` call away — the same document
    // `exp_online --json` emits and `BENCH_runtime.json` snapshots.
    let doc = report_to_json(&report);
    println!(
        "JSON telemetry: {} bytes across {} epochs",
        doc.render().len(),
        report.epochs.len()
    );
}
