//! Experiment E11 — persistence bench: cold bank build vs snapshot load
//! (the numbers behind `BENCH_persist.json`).
//!
//! ```text
//! cargo run -p audit-bench --release --bin exp_restart [samples-list] \
//!     [--scenario <key>] [--dir <dir>] [--repeat <r>] [--json]
//! ```
//!
//! For each sample count in the comma-separated list (default
//! `1000,100000,1000000`) the driver measures, as the best of `--repeat`
//! rounds (default 3, after one untimed warm-up — steady-state numbers,
//! not first-touch page-fault noise):
//!
//! * **cold** — `scenario.build(seed)` + `spec.sample_bank(n, seed)`,
//!   the regeneration path every solver run pays when no snapshot exists
//!   ([`BankSource::Regenerate`]);
//! * **save** — writing the scenario snapshot (provenance + spec + bank)
//!   to `<dir>/bank_<n>.snap`;
//! * **load** — [`BankSource::Snapshot`] with the default
//!   [`SnapshotVerify::Rebuild`] provenance check (container checksum,
//!   internal spec fingerprint, key/shape, and a spec rebuild);
//! * **fast load** — the same with [`SnapshotVerify::Fingerprint`],
//!   skipping the scenario rebuild — the warm-restart path.
//!
//! After timing, the loaded bank is cross-checked bit-for-bit against
//! the cold build, so the speedups reported are for *verified-identical*
//! data. The default scenario is `emr-reaa` — the paper's Rea A workload,
//! whose alert-type distributions are the most expensive in the registry
//! to sample and therefore the case snapshot restarts exist for.
//!
//! The table reports latencies plus the fast-load speedup over the cold
//! build; `--json` emits the same rows as a JSON array.

use alert_audit::persist::{save_scenario_snapshot, BankSource, SnapshotVerify};
use audit_bench::cli::{parse_count, parse_list, take_scenario_flag, take_value_flag};
use audit_bench::report::{f4, Table};
use std::time::Instant;

/// Best-of-`repeat` wall-clock of `f` in milliseconds, after one untimed
/// warm-up round.
fn best_ms<T>(repeat: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut out = f();
    let mut best = f64::MAX;
    for _ in 0..repeat {
        let t = Instant::now();
        out = f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    (out, best)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let scenario_key = take_scenario_flag(&mut args).unwrap_or_else(|| "emr-reaa".into());
    let json = audit_bench::cli::take_flag(&mut args, "--json");
    let repeat = take_value_flag(&mut args, "--repeat")
        .map(|s| parse_count(Some(s), 3))
        .unwrap_or(3);
    let dir = take_value_flag(&mut args, "--dir")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("audit-restart-{}", std::process::id()))
        });
    let sizes: Vec<usize> = parse_list(args.first().cloned(), &[1e3, 1e5, 1e6])
        .into_iter()
        .map(|x| {
            assert!(x >= 1.0 && x.fract() == 0.0, "sample counts are integers");
            x as usize
        })
        .collect();

    let reg = alert_audit::scenario::registry();
    let scenario = reg
        .resolve(&scenario_key)
        .unwrap_or_else(|e| panic!("{e}"))
        .clone();
    let seed = scenario.default_seed();
    std::fs::create_dir_all(&dir).expect("snapshot directory is writable");
    eprintln!(
        "restart bench on scenario {} (seed {seed}, best of {repeat}), snapshots in {}",
        scenario.key(),
        dir.display()
    );

    let mut table = Table::new(vec![
        "samples", "cold ms", "save ms", "load ms", "fast ms", "speedup", "bytes",
    ]);
    let mut rows = Vec::new();
    for &n in &sizes {
        let ((spec, bank), cold_ms) = best_ms(repeat, || {
            BankSource::Regenerate { seed }
                .resolve(scenario.as_ref(), n)
                .expect("cold build succeeds")
        });

        let path = dir.join(format!("bank_{n}.snap"));
        let (_, save_ms) = best_ms(repeat, || {
            save_scenario_snapshot(&path, scenario.key(), seed, &spec, &bank)
                .expect("snapshot saves")
        });
        let bytes = std::fs::metadata(&path).expect("snapshot exists").len();

        let ((loaded_spec, loaded_bank), load_ms) = best_ms(repeat, || {
            BankSource::Snapshot {
                path: path.clone(),
                verify: SnapshotVerify::Rebuild,
            }
            .resolve(scenario.as_ref(), n)
            .expect("snapshot loads and verifies")
        });
        let ((fast_spec, fast_bank), fast_ms) = best_ms(repeat, || {
            BankSource::Snapshot {
                path: path.clone(),
                verify: SnapshotVerify::Fingerprint,
            }
            .resolve(scenario.as_ref(), n)
            .expect("snapshot loads")
        });

        for (label, s, b) in [
            ("verified load", &loaded_spec, &loaded_bank),
            ("fast load", &fast_spec, &fast_bank),
        ] {
            assert_eq!(s.fingerprint(), spec.fingerprint(), "{label}: spec drifted");
            assert_eq!(
                b.columns_flat(),
                bank.columns_flat(),
                "{label}: bank drifted from the cold build at {n} samples"
            );
        }

        let speedup = cold_ms / fast_ms;
        table.row(vec![
            format!("{n}"),
            f4(cold_ms),
            f4(save_ms),
            f4(load_ms),
            f4(fast_ms),
            format!("{speedup:.1}x"),
            format!("{bytes}"),
        ]);
        rows.push(format!(
            "    {{\"samples\": {n}, \"cold_build_ms\": {cold_ms:.3}, \
             \"save_ms\": {save_ms:.3}, \"verified_load_ms\": {load_ms:.3}, \
             \"fast_load_ms\": {fast_ms:.3}, \
             \"speedup_fast_load_vs_cold\": {speedup:.1}, \"snapshot_bytes\": {bytes}}}"
        ));
        eprintln!(
            "  {n} samples: cold {cold_ms:.1}ms, load {load_ms:.1}ms, \
             fast {fast_ms:.1}ms ({speedup:.1}x)"
        );
    }

    if json {
        println!(
            "{{\n  \"scenario\": \"{}\",\n  \"seed\": {seed},\n  \"repeat\": {repeat},\n  \"rows\": [\n{}\n  ]\n}}",
            scenario.key(),
            rows.join(",\n")
        );
    } else {
        println!("{}", table.render());
    }
}
