//! emrsim — a synthetic EMR access-log workload (the Rea A substitute).
//!
//! The paper's Rea A dataset is 28 days of proprietary VUMC EMR access
//! logs. This crate synthesizes a statistically matched replacement:
//!
//! * a hospital [`world::Hospital`] of employees (surname, department,
//!   residence) and patients, some of whom are employees;
//! * the four base alert predicates of Section V.A (same last name,
//!   department co-worker, same address, neighbor ≤ 0.5 miles) and the
//!   seven **combination alert types** of Table VIII;
//! * a [`workload::WorkloadGenerator`] that emits daily access events whose
//!   per-type alert counts follow Table VIII's means/stds, plus benign bulk
//!   traffic and same-day repeats (the paper filters 79.5% repeats);
//! * [`reaa::build_game`] — the full Rea A game: 50 employees × 50
//!   patients, benefit vector `[10,12,12,24,25,25,27]`, penalty 15, unit
//!   costs, `p_e = 1`, with `F_t` fitted from the simulated log.
//!
//! Fidelity note (see `DESIGN.md`): the game solvers consume only `F_t`,
//! `P^t_ev`, and the payoff parameters. All of these are fully specified by
//! the paper's published statistics, which this simulator matches; the raw
//! event text it fills in around them is synthetic.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod reaa;
pub mod scenario;
pub mod workload;
pub mod world;

pub use reaa::{build_game, ReaAConfig};
pub use scenario::ReaAScenario;
pub use workload::WorkloadGenerator;
pub use world::{Hospital, HospitalConfig, PairProfile};

/// Table VIII: per-type daily alert-count means.
pub const TABLE8_MEANS: [f64; 7] = [183.21, 32.18, 113.89, 15.43, 23.75, 20.07, 32.07];
/// Table VIII: per-type daily alert-count standard deviations.
pub const TABLE8_STDS: [f64; 7] = [46.40, 23.14, 80.44, 14.61, 11.07, 11.49, 16.54];
/// Table VIII alert-type names.
pub const TABLE8_NAMES: [&str; 7] = [
    "Same Last Name",
    "Department Co-worker",
    "Neighbor (<=0.5mi)",
    "Last Name; Same address",
    "Last Name; Neighbor",
    "Same address; Neighbor",
    "Last Name; Same address; Neighbor",
];
/// Base-rule subsets per combination type (0 = last name, 1 = department,
/// 2 = address, 3 = neighbor).
pub const TABLE8_SUBSETS: [&[usize]; 7] = [&[0], &[1], &[3], &[0, 2], &[0, 3], &[2, 3], &[0, 2, 3]];
/// Section V.A: adversary benefit per alert type (1–7).
pub const REA_A_BENEFITS: [f64; 7] = [10.0, 12.0, 12.0, 24.0, 25.0, 25.0, 27.0];
/// Section V.A: penalty for capture.
pub const REA_A_PENALTY: f64 = 15.0;
/// Section V.A: cost of an attack and of an audit (both 1).
pub const REA_A_UNIT_COST: f64 = 1.0;
