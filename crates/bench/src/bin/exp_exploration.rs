//! Experiment E6 — Section IV.C exploration summary: the `T` vector (mean
//! thresholds explored per ε over the budget grid) and the `T'` ratio
//! against the exhaustive lattice of 7680 vectors.
//!
//! ```text
//! cargo run -p audit-bench --release --bin exp_exploration [budgets] [epsilons] [samples] [threads] [--scenario <key>]
//! ```

use audit_bench::cli::{default_threads, parse_count, parse_list, take_scenario_flag};
use audit_bench::defaults::{SEED, SYN_BUDGETS, SYN_EPSILONS, SYN_SAMPLES};
use audit_bench::report::Table;
use audit_bench::scenarios::resolve_base_spec;
use audit_bench::syn_experiments::{exploration_summary, ishm_grid};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let scenario = take_scenario_flag(&mut args);
    let budgets = parse_list(args.first().cloned(), &SYN_BUDGETS);
    let epsilons = parse_list(args.get(1).cloned(), &SYN_EPSILONS);
    let samples = parse_count(args.get(2).cloned(), SYN_SAMPLES);
    let threads = parse_count(args.get(3).cloned(), default_threads());
    let (key, base) = resolve_base_spec(scenario, "syn-a", SEED);
    eprintln!("Section IV.C exploration vectors T and T' on {key}");
    let t0 = std::time::Instant::now();
    let grid = ishm_grid(&base, &budgets, &epsilons, false, samples, SEED, threads).expect("grid");
    let summary = exploration_summary(&base, &grid);

    let mut table = Table::new(vec!["eps", "T (mean explored)", "T' (ratio of lattice)"]);
    for (eps, mean, ratio) in summary {
        table.row(vec![
            format!("{eps}"),
            format!("{mean:.0}"),
            format!("{ratio:.4}"),
        ]);
    }
    println!("{}", table.render());
    eprintln!("elapsed: {:.1?}", t0.elapsed());
}
