//! The deterministic epoch loop: execute, observe, gate, re-solve.
//!
//! [`AuditService`] turns a registry scenario into a long-running
//! operational auditor. Per **period** it executes the committed
//! [`AuditPolicy`] on the next alert vector of the scenario's stream; per
//! **epoch** (a fixed number of periods) it evaluates the drift gate and,
//! only when the committed count model no longer explains the recent
//! window, refits the per-type distributions and re-solves the game —
//! **warm-started** from the incumbent solution so the service interrupts
//! itself as briefly as possible. Telemetry is recorded every epoch.
//!
//! Determinism: given the same [`RuntimeConfig`], the run is bit-identical
//! across reruns and solver thread counts (the engine guarantees
//! thread-invariant solves; execution randomness comes from a dedicated
//! seed stream). Wall-clock latencies are measured but excluded from the
//! telemetry fingerprint.

use crate::online::{DriftConfig, OnlineFit};
use crate::telemetry::{EpochTelemetry, RuntimeReport};
use audit_game::detection::{DetectionEstimator, PalEngine};
use audit_game::error::GameError;
use audit_game::execute::{execute_policy, AuditPolicy, RealizedAlert};
use audit_game::model::GameSpec;
use audit_game::scenario::Scenario;
use audit_game::solver::{AuditSolution, InnerKind, OapSolver, SolverConfig, WarmStart};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;
use stochastics::rng::stream_rng;

/// Configuration of one service run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Epochs to simulate.
    pub epochs: usize,
    /// Periods per epoch (the drift gate runs at epoch boundaries).
    pub periods_per_epoch: usize,
    /// Master seed: drives the scenario build, the alert stream, the
    /// execution randomness, and the solver sample banks.
    pub seed: u64,
    /// Solver configuration for the initial solve and every re-solve.
    pub solver: SolverConfig,
    /// Drift gate configuration.
    pub drift: DriftConfig,
    /// Warm-start re-solves from the incumbent solution (`false` forces
    /// cold re-solves; results may differ within the heuristic's
    /// tolerance, only the search path is guaranteed cheaper warm).
    pub warm_start: bool,
    /// Additionally run a shadow **cold** solve at every re-solve and
    /// record its objective/latency next to the committed warm one — the
    /// built-in cold-vs-warm comparison behind `BENCH_runtime.json`.
    pub compare_cold: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            epochs: 24,
            periods_per_epoch: 5,
            seed: 0,
            solver: SolverConfig {
                // Column generation by default: the online path exercises
                // both warm-start seams (ISHM start + CGGS seed columns).
                inner: InnerKind::Cggs,
                n_samples: 200,
                epsilon: 0.25,
                ..Default::default()
            },
            drift: DriftConfig::default(),
            warm_start: true,
            compare_cold: false,
        }
    }
}

/// Warm-start state for re-solving `new` after a drift away from `old`.
///
/// The incumbent's support orders seed the CGGS column pool, and the ISHM
/// search starts from a vector **bracketing the incumbent from above**:
/// per type, the larger of
///
/// * the incumbent threshold rescaled by the growth of that type's
///   full-coverage bound (ISHM only ever shrinks, so an upward drift must
///   raise the starting point for the new optimum to stay reachable), and
/// * the **budget-saturation point** `B` — a per-type threshold at or
///   above the whole period budget can never bind (audits of one type
///   cannot outspend the total budget), so starting there is
///   value-equivalent to the cold full-coverage start while keeping the
///   ε-shrink lattice dense over the range where thresholds actually
///   matter. This is what makes the warm re-solve safe: its starting
///   objective equals the cold start's, and the search can only improve
///   from there.
///
/// rounded up to the audit-cost lattice and clamped to the new coverage
/// bounds.
pub fn warm_start_rescaled(policy: &AuditPolicy, old: &GameSpec, new: &GameSpec) -> WarmStart {
    let old_ub = old.threshold_upper_bounds();
    let new_ub = new.threshold_upper_bounds();
    let costs = new.audit_costs();
    let thresholds = policy
        .thresholds
        .iter()
        .enumerate()
        .map(|(t, &b)| {
            let scale = if old_ub[t] > 0.0 {
                (new_ub[t] / old_ub[t]).max(1.0)
            } else {
                1.0
            };
            let bracket = (b * scale).max(new.budget);
            let lattice = (bracket / costs[t]).ceil() * costs[t];
            lattice.min(new_ub[t])
        })
        .collect();
    WarmStart {
        thresholds: Some(thresholds),
        orders: policy.orders.clone(),
    }
}

/// The long-running epoch-based auditing service over one scenario.
pub struct AuditService {
    scenario: Arc<dyn Scenario>,
    config: RuntimeConfig,
}

impl AuditService {
    /// Build a service over `scenario`.
    pub fn new(scenario: Arc<dyn Scenario>, config: RuntimeConfig) -> Self {
        assert!(config.epochs > 0, "need at least one epoch");
        assert!(config.periods_per_epoch > 0, "need at least one period");
        Self { scenario, config }
    }

    /// Run the full epoch loop and return the telemetry report.
    pub fn run(&self) -> Result<RuntimeReport, GameError> {
        let cfg = &self.config;
        let mut spec = self.scenario.build(cfg.seed)?;
        spec.validate()?;
        let n = spec.n_types();
        let solver = OapSolver::new(cfg.solver.clone());

        let t0 = Instant::now();
        let mut solution = solver.solve(&spec)?;
        let initial_solve_millis = millis_since(t0);
        let mut engine_cache = solution.cache;
        let initial_objective = solution.loss;
        let mut predicted = predicted_pal(&spec, &solution, &cfg.solver);

        let total_periods = cfg.epochs * cfg.periods_per_epoch;
        let stream = self.scenario.alert_stream(cfg.seed, total_periods)?;
        let mut fit = OnlineFit::new(n, cfg.drift.window_periods);
        let mut exec_rng = stream_rng(cfg.seed, 0x0E0C);
        let mut next_alert_id = 0u64;
        let mut epochs_since_resolve = 0usize;
        let mut records = Vec::with_capacity(cfg.epochs);

        for epoch in 0..cfg.epochs {
            // --- execute the committed policy, one period at a time ---
            let mut seen = vec![0u64; n];
            let mut audited = vec![0u64; n];
            let mut spent = 0.0f64;
            for period in 0..cfg.periods_per_epoch {
                let row = &stream[epoch * cfg.periods_per_epoch + period];
                let mut alerts = Vec::with_capacity(row.iter().map(|&z| z as usize).sum());
                for (t, &z) in row.iter().enumerate() {
                    seen[t] += z;
                    for _ in 0..z {
                        alerts.push(RealizedAlert {
                            alert_type: t,
                            id: next_alert_id,
                        });
                        next_alert_id += 1;
                    }
                }
                let run = execute_policy(&solution.policy, &spec, &alerts, &mut exec_rng);
                for (t, ids) in run.audited.iter().enumerate() {
                    audited[t] += ids.len() as u64;
                }
                spent += run.spent;
                fit.observe(row);
            }
            let realized_rate: Vec<f64> = seen
                .iter()
                .zip(&audited)
                .map(|(&s, &a)| if s == 0 { 0.0 } else { a as f64 / s as f64 })
                .collect();
            let pal_gap = predicted
                .iter()
                .zip(&realized_rate)
                .map(|(&p, &r)| (p - r).abs())
                .sum::<f64>()
                / n as f64;
            // The record carries the prediction of the policy that was
            // actually executed this epoch — the vector `pal_gap` was
            // computed against — even if a re-solve below replaces it.
            let predicted_executed = predicted.clone();

            // --- drift gate ---
            let max_ks = fit.max_ks(&spec.distributions);
            let drift = fit.window_full() && max_ks > cfg.drift.ks_threshold;
            let stale = cfg
                .drift
                .max_stale_epochs
                .is_some_and(|m| epochs_since_resolve >= m);
            let gate_age = epochs_since_resolve;
            let resolve = (drift && epochs_since_resolve >= cfg.drift.cooldown_epochs) || stale;

            let mut solve_explored = None;
            let mut solve_millis = None;
            let mut cold_objective = None;
            let mut cold_explored = None;
            let mut cold_millis = None;
            if resolve {
                let mut new_spec = spec.clone();
                // Drift reacts to the recent window; a pure staleness
                // refresh (gate quiet) recalibrates to the lifetime
                // streaming moments instead.
                new_spec.distributions = if drift {
                    fit.refit(cfg.drift.fit_coverage)
                } else {
                    fit.refit_lifetime(cfg.drift.fit_coverage)
                };
                // The service's committed model is the refit marginals; a
                // stale correlated sampler would contradict them.
                new_spec.joint_counts = None;

                if cfg.compare_cold {
                    let t = Instant::now();
                    let shadow = solver.solve(&new_spec)?;
                    cold_millis = Some(millis_since(t));
                    cold_objective = Some(shadow.loss);
                    cold_explored = Some(shadow.stats.thresholds_explored);
                }
                let warm = warm_start_rescaled(&solution.policy, &spec, &new_spec);
                let t = Instant::now();
                let committed = if cfg.warm_start {
                    solver.solve_warm(&new_spec, Some(&warm))?
                } else {
                    solver.solve(&new_spec)?
                };
                solve_millis = Some(millis_since(t));
                solve_explored = Some(committed.stats.thresholds_explored);
                engine_cache.absorb(&committed.cache);
                spec = new_spec;
                solution = committed;
                predicted = predicted_pal(&spec, &solution, &cfg.solver);
                epochs_since_resolve = 0;
            } else {
                epochs_since_resolve += 1;
            }

            records.push(EpochTelemetry {
                epoch,
                periods: cfg.periods_per_epoch,
                alerts_seen: seen,
                alerts_audited: audited,
                mean_spent: spent / cfg.periods_per_epoch as f64,
                realized_rate,
                predicted_pal: predicted_executed,
                pal_gap,
                max_ks,
                drift,
                resolved: resolve,
                epochs_since_resolve: gate_age,
                objective: solution.loss,
                thresholds: solution.policy.thresholds.clone(),
                solve_explored,
                solve_millis,
                cold_objective,
                cold_explored,
                cold_millis,
            });
        }

        Ok(RuntimeReport {
            scenario: self.scenario.key().to_string(),
            seed: cfg.seed,
            periods_per_epoch: cfg.periods_per_epoch,
            initial_objective,
            initial_solve_millis,
            engine_cache,
            epochs: records,
        })
    }
}

/// The committed policy's predicted mixture `Pal` under the spec it was
/// solved against (evaluated on the same sample bank the solver used).
fn predicted_pal(spec: &GameSpec, solution: &AuditSolution, cfg: &SolverConfig) -> Vec<f64> {
    let bank = spec.sample_bank(cfg.n_samples, cfg.seed);
    let est = DetectionEstimator::new(spec, &bank, cfg.detection);
    let engine = PalEngine::new(est, cfg.threads);
    solution.policy.expected_pal(&engine)
}

fn millis_since(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}
