//! Substrate throughput: EMR world/workload simulation, credit batch
//! synthesis, TDMT labelling, and sample-bank generation.

use criterion::{criterion_group, criterion_main, Criterion};
use emrsim::workload::{WorkloadConfig, WorkloadGenerator};
use emrsim::world::{Hospital, HospitalConfig};
use stochastics::{DiscretizedGaussian, SampleBank};

fn bench_emr_world(c: &mut Criterion) {
    let mut group = c.benchmark_group("emr_world");
    group.sample_size(10);
    group.bench_function("generate_200x800", |b| {
        b.iter(|| {
            Hospital::generate(
                HospitalConfig {
                    n_employees: 200,
                    n_patients: 800,
                    pool_size: 300,
                    benign_pool_size: 500,
                    ..Default::default()
                },
                7,
            )
        })
    });
    group.finish();
}

fn bench_emr_workload(c: &mut Criterion) {
    let hospital = Hospital::generate(
        HospitalConfig {
            n_employees: 200,
            n_patients: 800,
            pool_size: 500,
            benign_pool_size: 1000,
            ..Default::default()
        },
        7,
    );
    let engine = Hospital::rule_engine();
    let generator = WorkloadGenerator::new(
        &hospital,
        WorkloadConfig {
            n_days: 7,
            benign_per_day: 1000,
            repeat_fraction: 0.5,
        },
    );

    let mut group = c.benchmark_group("emr_workload");
    group.sample_size(10);
    group.bench_function("simulate_week", |b| b.iter(|| generator.generate(11)));
    let mut log = generator.generate(11);
    log.dedup_daily();
    group.bench_function("label_week", |b| {
        b.iter(|| log.daily_alert_counts(&engine, |_, _| {}))
    });
    group.finish();
}

fn bench_credit_batch(c: &mut Criterion) {
    let cfg = creditsim::synth::SynthConfig::default();
    let mut group = c.benchmark_group("credit_batch");
    group.bench_function("generate_1000_apps", |b| {
        b.iter(|| creditsim::synth::generate_applications(&cfg, 3))
    });
    group.finish();
}

fn bench_sample_bank(c: &mut Criterion) {
    let dists: Vec<Box<dyn stochastics::CountDistribution>> = (0..7)
        .map(|t| {
            let d: Box<dyn stochastics::CountDistribution> = Box::new(
                DiscretizedGaussian::with_halfwidth(20.0 + t as f64 * 10.0, 5.0, 15),
            );
            d
        })
        .collect();
    let mut group = c.benchmark_group("sample_bank");
    group.bench_function("bank_400x7", |b| {
        b.iter(|| SampleBank::generate(&dists, 400, 9))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_emr_world,
    bench_emr_workload,
    bench_credit_batch,
    bench_sample_bank
);
criterion_main!(benches);
