//! Standard-normal primitives implemented from scratch (no external math
//! crates are permitted in this workspace).
//!
//! The discretized-Gaussian alert-count model needs Φ, the standard normal
//! CDF, and its inverse for quantile queries. We implement `erf` with the
//! Abramowitz & Stegun 7.1.26 rational approximation (|ε| ≤ 1.5e-7, ample
//! for probability mass bucketing) and Φ⁻¹ with the Acklam-style rational
//! approximation refined by one Halley step.

/// Error function approximation (Abramowitz & Stegun 7.1.26).
///
/// Maximum absolute error ≈ 1.5e-7 over the real line.
pub fn erf(x: f64) -> f64 {
    // erf is odd; work on |x| and restore the sign at the end.
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();

    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    const P: f64 = 0.327_591_1;

    let t = 1.0 / (1.0 + P * x);
    let poly = ((((A5 * t + A4) * t + A3) * t + A2) * t + A1) * t;
    let y = 1.0 - poly * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function Φ(x).
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal probability density function φ(x).
pub fn std_normal_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// CDF of a N(mean, std²) Gaussian.
pub fn normal_cdf(x: f64, mean: f64, std: f64) -> f64 {
    assert!(std > 0.0, "normal_cdf requires std > 0, got {std}");
    std_normal_cdf((x - mean) / std)
}

/// Inverse standard normal CDF (quantile function) Φ⁻¹(p).
///
/// Rational approximation (Acklam) with one Halley refinement step; relative
/// error below 1e-9 for p ∈ (1e-300, 1 − 1e-16).
///
/// # Panics
/// Panics if `p` is outside `(0, 1)`.
pub fn std_normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "std_normal_quantile requires p in (0,1), got {p}"
    );

    // Coefficients for the central and tail rational approximations.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step against the high-accuracy CDF.
    let e = std_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Quantile of a N(mean, std²) Gaussian.
pub fn normal_quantile(p: f64, mean: f64, std: f64) -> f64 {
    assert!(std > 0.0, "normal_quantile requires std > 0, got {std}");
    mean + std * std_normal_quantile(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn erf_known_values() {
        // The rational approximation carries a ~1e-9 residual at the origin.
        assert_close(erf(0.0), 0.0, 1e-8);
        assert_close(erf(1.0), 0.842_700_792_949_715, 1e-6);
        assert_close(erf(2.0), 0.995_322_265_018_953, 1e-6);
        assert_close(erf(-1.0), -0.842_700_792_949_715, 1e-6);
        assert_close(erf(3.5), 0.999_999_256_9, 1e-6);
    }

    #[test]
    fn erf_is_odd() {
        for i in 0..100 {
            let x = i as f64 * 0.07;
            assert_close(erf(x), -erf(-x), 1e-8);
        }
    }

    #[test]
    fn cdf_known_values() {
        assert_close(std_normal_cdf(0.0), 0.5, 1e-9);
        assert_close(std_normal_cdf(1.0), 0.841_344_746_068_543, 1e-6);
        assert_close(std_normal_cdf(-1.96), 0.024_997_895_148_220, 1e-6);
        assert_close(std_normal_cdf(2.575_829), 0.995, 1e-5);
    }

    #[test]
    fn cdf_monotone() {
        let mut prev = 0.0;
        for i in -500..=500 {
            let x = i as f64 / 50.0;
            let c = std_normal_cdf(x);
            assert!(c >= prev - 1e-12, "CDF not monotone at {x}");
            prev = c;
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        for i in 1..200 {
            let p = i as f64 / 200.0;
            let x = std_normal_quantile(p);
            assert_close(std_normal_cdf(x), p, 2e-7);
        }
    }

    #[test]
    fn quantile_tails() {
        assert!(std_normal_quantile(1e-10) < -6.0);
        assert!(std_normal_quantile(1.0 - 1e-10) > 6.0);
        assert_close(std_normal_quantile(0.5), 0.0, 1e-8);
    }

    #[test]
    fn scaled_normal_helpers() {
        assert_close(normal_cdf(6.0, 6.0, 2.0), 0.5, 1e-9);
        assert_close(normal_quantile(0.5, 6.0, 2.0), 6.0, 1e-7);
        // 97.5% quantile of N(0,1) is ~1.96.
        assert_close(normal_quantile(0.975, 0.0, 1.0), 1.959_964, 1e-4);
    }

    #[test]
    #[should_panic]
    fn quantile_rejects_zero() {
        std_normal_quantile(0.0);
    }

    #[test]
    #[should_panic]
    fn cdf_rejects_nonpositive_std() {
        normal_cdf(0.0, 0.0, 0.0);
    }
}
