//! The attacker-model seam: which behavioural model drives the adversary.
//!
//! The paper's evaluation assumes a fully rational, zero-sum attacker. Its
//! discussion section flags both assumptions as limitations, and the crate
//! ships the corresponding extensions ([`crate::quantal`] for bounded
//! rationality, [`crate::general_sum`] for decoupled auditor damage). This
//! module ties them together behind one enum so *scenarios* can declare
//! which adversary they model and downstream layers — the conformance
//! matrix, the online runtime's epoch loop — can branch on it uniformly:
//!
//! ```text
//!   Scenario::attacker_model()
//!        │
//!        ├─ Rational            → solvers unchanged, no simulated attacks
//!        ├─ Quantal(λ)          → conformance adds ishm-qr cells;
//!        │                        runtime samples logit responses
//!        ├─ GeneralSum(damage)  → conformance adds ishm-gsum cells;
//!        │                        runtime scores auditor damage
//!        └─ Adaptive(lr)        → runtime attackers best-respond to an
//!                                 EWMA belief of *published* policies
//! ```
//!
//! The adaptive model is the repeated-game attacker of the audit-games
//! line of work: the auditor commits to a policy each epoch, the attacker
//! observes past commitments (not the current realization) and
//! best-responds to an exponentially-weighted belief over per-type alert
//! detection probabilities. With learning rate 1 the belief is simply the
//! previous epoch's published `Pal` vector.

use crate::general_sum::DamageModel;
use crate::quantal::QuantalResponse;
use rand::Rng;

/// Parameters of the adaptive (repeated-game) attacker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// EWMA learning rate in `(0, 1]`: the weight of the newest published
    /// policy in the attacker's belief. `1.0` means the attacker fully
    /// trusts the latest epoch's policy.
    pub learning_rate: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self { learning_rate: 1.0 }
    }
}

/// Which behavioural model the adversary follows.
///
/// Scenarios expose this via
/// [`Scenario::attacker_model`](crate::scenario::Scenario::attacker_model);
/// the default is [`AttackerModel::Rational`], which leaves every existing
/// code path bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum AttackerModel {
    /// The paper's attacker: best-responds exactly to the committed
    /// policy, zero-sum payoffs.
    #[default]
    Rational,
    /// Quantal-response (logit) attacker with rationality λ.
    Quantal(QuantalResponse),
    /// Rational attacker, but the auditor scores policies by decoupled
    /// organizational damage.
    GeneralSum(DamageModel),
    /// Repeated-game attacker best-responding to an EWMA belief over the
    /// auditor's published policies.
    Adaptive(AdaptiveConfig),
}

impl AttackerModel {
    /// Stable short key (used in telemetry and docs).
    pub fn key(&self) -> &'static str {
        match self {
            AttackerModel::Rational => "rational",
            AttackerModel::Quantal(_) => "quantal",
            AttackerModel::GeneralSum(_) => "general-sum",
            AttackerModel::Adaptive(_) => "adaptive",
        }
    }

    /// One-line human description.
    pub fn describe(&self) -> String {
        match self {
            AttackerModel::Rational => "fully rational best-responder (paper baseline)".into(),
            AttackerModel::Quantal(qr) => {
                format!("quantal-response attacker, lambda = {}", qr.lambda)
            }
            AttackerModel::GeneralSum(dm) => format!(
                "rational attacker, general-sum damage (reward x{}, recovery x{})",
                dm.damage_per_reward, dm.recovery_per_penalty
            ),
            AttackerModel::Adaptive(cfg) => format!(
                "adaptive repeated-game attacker, learning rate {}",
                cfg.learning_rate
            ),
        }
    }

    /// Whether this is the paper's baseline model (no simulated attack
    /// traffic in the runtime, no extra conformance cells).
    pub fn is_rational(&self) -> bool {
        matches!(self, AttackerModel::Rational)
    }

    /// The damage model the auditor scores outcomes with: the general-sum
    /// model's own, or the zero-sum-compatible default otherwise.
    pub fn damage_model(&self) -> DamageModel {
        match self {
            AttackerModel::GeneralSum(dm) => *dm,
            _ => DamageModel::default(),
        }
    }

    /// EWMA learning rate for the runtime's attacker belief: the adaptive
    /// model's rate, or `1.0` (belief = latest published policy) otherwise.
    pub fn belief_learning_rate(&self) -> f64 {
        match self {
            AttackerModel::Adaptive(cfg) => cfg.learning_rate,
            _ => 1.0,
        }
    }

    /// Pick an action index given per-action expected utilities.
    ///
    /// Non-quantal models best-respond: first argmax, or `None` (refrain)
    /// when opting out is allowed and every action has negative utility.
    /// The quantal model samples from the logit distribution (with the
    /// 0-utility refrain pseudo-action appended when allowed); `None`
    /// means the sampled choice was the pseudo-action.
    pub fn choose_action<R: Rng + ?Sized>(
        &self,
        utilities: &[f64],
        allow_opt_out: bool,
        rng: &mut R,
    ) -> Option<usize> {
        if utilities.is_empty() {
            return None;
        }
        match self {
            AttackerModel::Quantal(qr) => {
                let mut us = utilities.to_vec();
                if allow_opt_out {
                    us.push(0.0); // refrain
                }
                let probs = qr.choice_probs(&us);
                let u: f64 = rng.gen();
                let mut acc = 0.0;
                let mut pick = probs.len() - 1;
                for (i, &p) in probs.iter().enumerate() {
                    acc += p;
                    if u <= acc {
                        pick = i;
                        break;
                    }
                }
                if pick >= utilities.len() {
                    None
                } else {
                    Some(pick)
                }
            }
            _ => {
                let (best, &best_u) = utilities
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
                    .unwrap();
                // First argmax, matching `PayoffMatrix::best_responses`.
                let first = utilities.iter().position(|&x| x == best_u).unwrap_or(best);
                if allow_opt_out && best_u < 0.0 {
                    None
                } else {
                    Some(first)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stochastics::rng::stream_rng;

    #[test]
    fn keys_and_descriptions_are_stable() {
        assert_eq!(AttackerModel::Rational.key(), "rational");
        assert_eq!(
            AttackerModel::Quantal(QuantalResponse::new(1.5)).key(),
            "quantal"
        );
        assert_eq!(
            AttackerModel::GeneralSum(DamageModel::default()).key(),
            "general-sum"
        );
        assert_eq!(
            AttackerModel::Adaptive(AdaptiveConfig::default()).key(),
            "adaptive"
        );
        for m in [
            AttackerModel::Rational,
            AttackerModel::Quantal(QuantalResponse::new(0.5)),
            AttackerModel::GeneralSum(DamageModel::default()),
            AttackerModel::Adaptive(AdaptiveConfig { learning_rate: 0.5 }),
        ] {
            assert!(!m.describe().is_empty());
        }
        assert!(AttackerModel::Rational.is_rational());
        assert!(!AttackerModel::Adaptive(AdaptiveConfig::default()).is_rational());
        assert_eq!(AttackerModel::default(), AttackerModel::Rational);
    }

    #[test]
    fn damage_model_and_learning_rate_defaults() {
        let dm = DamageModel {
            damage_per_reward: 3.0,
            recovery_per_penalty: 0.5,
        };
        assert_eq!(AttackerModel::GeneralSum(dm).damage_model(), dm);
        assert_eq!(
            AttackerModel::Rational.damage_model(),
            DamageModel::default()
        );
        let ac = AdaptiveConfig { learning_rate: 0.3 };
        assert_eq!(AttackerModel::Adaptive(ac).belief_learning_rate(), 0.3);
        assert_eq!(AttackerModel::Rational.belief_learning_rate(), 1.0);
    }

    #[test]
    fn rational_choice_is_first_argmax_with_deterrence() {
        let mut rng = stream_rng(0, 1);
        let m = AttackerModel::Rational;
        assert_eq!(m.choose_action(&[1.0, 3.0, 3.0], false, &mut rng), Some(1));
        assert_eq!(m.choose_action(&[-1.0, -2.0], true, &mut rng), None);
        // Without opt-out, even a losing action is taken.
        assert_eq!(m.choose_action(&[-1.0, -2.0], false, &mut rng), Some(0));
        assert_eq!(m.choose_action(&[], true, &mut rng), None);
    }

    #[test]
    fn quantal_choice_tracks_lambda_limits() {
        // Sharp lambda: almost always the argmax.
        let sharp = AttackerModel::Quantal(QuantalResponse::new(200.0));
        let mut rng = stream_rng(7, 2);
        let picks: Vec<Option<usize>> = (0..200)
            .map(|_| sharp.choose_action(&[0.5, 5.0, 1.0], false, &mut rng))
            .collect();
        assert!(picks.iter().filter(|p| **p == Some(1)).count() >= 199);
        // Lambda 0 with opt-out: uniform over 3 actions + refrain.
        let soft = AttackerModel::Quantal(QuantalResponse::new(0.0));
        let mut rng = stream_rng(7, 3);
        let n_refrain = (0..4000)
            .filter(|_| {
                soft.choose_action(&[0.5, 5.0, 1.0], true, &mut rng)
                    .is_none()
            })
            .count();
        let frac = n_refrain as f64 / 4000.0;
        assert!((frac - 0.25).abs() < 0.05, "refrain fraction {frac}");
    }
}
