//! Game specification: alert types, count distributions, attackers and
//! their candidate attacks (Section II of the paper; notation of Table I).

use crate::error::GameError;
use std::sync::Arc;
use stochastics::{CountDistribution, JointCountModel};

/// One alert category `t ∈ T`.
#[derive(Debug, Clone)]
pub struct AlertType {
    /// Human-readable label, e.g. `"Same Last Name"`.
    pub name: String,
    /// `C_t`: cost (e.g. investigator time) of auditing one alert.
    pub audit_cost: f64,
}

impl AlertType {
    /// Construct an alert type.
    pub fn new(name: impl Into<String>, audit_cost: f64) -> Self {
        Self {
            name: name.into(),
            audit_cost,
        }
    }
}

/// One candidate attack `⟨e, v⟩` available to an attacker: the victim, the
/// stochastic alert footprint `P^t_ev`, and the payoff parameters.
#[derive(Debug, Clone)]
pub struct AttackAction {
    /// Victim label (a record, patient, application purpose, …).
    pub victim: String,
    /// `P^t_ev`: probability that the attack raises an alert of each type.
    /// Entries are `(type index, probability)`; the probabilities must sum
    /// to at most 1 (with the residual meaning "no alert raised").
    pub alert_probs: Vec<(usize, f64)>,
    /// `R(⟨e,v⟩)`: attacker's gain when the attack goes undetected.
    pub reward: f64,
    /// `K(⟨e,v⟩)`: cost of mounting the attack.
    pub attack_cost: f64,
    /// `M(⟨e,v⟩)`: penalty when caught. Stored as a non-negative magnitude;
    /// it enters the utility **negatively** (see [`crate::payoff`] and the
    /// sign discussion in `DESIGN.md`).
    pub penalty: f64,
}

impl AttackAction {
    /// An attack that deterministically raises one alert of type `t`.
    pub fn deterministic(
        victim: impl Into<String>,
        alert_type: usize,
        reward: f64,
        attack_cost: f64,
        penalty: f64,
    ) -> Self {
        Self {
            victim: victim.into(),
            alert_probs: vec![(alert_type, 1.0)],
            reward,
            attack_cost,
            penalty,
        }
    }

    /// A benign action: raises no alert, yields no reward, but still incurs
    /// the action cost (used to model accesses the TDMT never flags).
    pub fn benign(victim: impl Into<String>, attack_cost: f64) -> Self {
        Self {
            victim: victim.into(),
            alert_probs: Vec::new(),
            reward: 0.0,
            attack_cost,
            penalty: 0.0,
        }
    }

    /// A structural fingerprint used to merge strategically identical
    /// actions (same alert footprint and payoffs). Two actions with equal
    /// keys induce identical LP rows.
    fn dedup_key(&self) -> ActionKey {
        let mut probs: Vec<(usize, u64)> = self
            .alert_probs
            .iter()
            .map(|&(t, p)| (t, p.to_bits()))
            .collect();
        probs.sort_unstable();
        (
            probs,
            self.reward.to_bits(),
            self.attack_cost.to_bits(),
            self.penalty.to_bits(),
        )
    }
}

/// Structural fingerprint of an attack action: sorted alert footprint plus
/// bit-exact payoff parameters.
type ActionKey = (Vec<(usize, u64)>, u64, u64, u64);

/// One potential adversary `e ∈ E`.
#[derive(Debug, Clone)]
pub struct Attacker {
    /// Label (employee id, applicant id, …).
    pub name: String,
    /// `p_e`: probability that this adversary considers attacking at all.
    pub attack_prob: f64,
    /// The victims this adversary can target.
    pub actions: Vec<AttackAction>,
}

impl Attacker {
    /// Construct an attacker.
    pub fn new(name: impl Into<String>, attack_prob: f64, actions: Vec<AttackAction>) -> Self {
        Self {
            name: name.into(),
            attack_prob,
            actions,
        }
    }
}

/// Full specification of one alert-prioritization game instance.
#[derive(Clone)]
pub struct GameSpec {
    /// The alert vocabulary `T`.
    pub alert_types: Vec<AlertType>,
    /// `F_t`: benign per-period count distribution per alert type.
    pub distributions: Vec<Arc<dyn CountDistribution>>,
    /// The adversary population `E` with their candidate attacks.
    pub attackers: Vec<Attacker>,
    /// `B`: total auditing budget per period.
    pub budget: f64,
    /// Whether adversaries may refrain from attacking (utility 0). The real
    /// datasets allow this (deterrence); Syn A does not (see `DESIGN.md`).
    pub allow_opt_out: bool,
    /// Optional correlated benign-count sampler. When set,
    /// [`GameSpec::sample_bank`] draws joint rows from it instead of
    /// sampling the marginals independently; `distributions` must then hold
    /// the matching per-type *marginal* laws (they still drive threshold
    /// bounds and reporting).
    pub joint_counts: Option<Arc<dyn JointCountModel>>,
}

impl std::fmt::Debug for GameSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GameSpec")
            .field("alert_types", &self.alert_types)
            .field("n_distributions", &self.distributions.len())
            .field("n_attackers", &self.attackers.len())
            .field("budget", &self.budget)
            .field("allow_opt_out", &self.allow_opt_out)
            .field("correlated_counts", &self.joint_counts.is_some())
            .finish()
    }
}

impl GameSpec {
    /// Number of alert types `|T|`.
    pub fn n_types(&self) -> usize {
        self.alert_types.len()
    }

    /// Number of potential adversaries `|E|`.
    pub fn n_attackers(&self) -> usize {
        self.attackers.len()
    }

    /// Total number of attack actions across all adversaries.
    pub fn n_actions(&self) -> usize {
        self.attackers.iter().map(|a| a.actions.len()).sum()
    }

    /// Audit costs `C_t` as a vector.
    pub fn audit_costs(&self) -> Vec<f64> {
        self.alert_types.iter().map(|t| t.audit_cost).collect()
    }

    /// Per-type threshold upper bounds `b̄_t = C_t · max supp(F_t)`:
    /// thresholds above the full-coverage point cannot improve the policy
    /// because `F_t(b̄_t / C_t) ≈ 1` (Section III-B).
    pub fn threshold_upper_bounds(&self) -> Vec<f64> {
        self.alert_types
            .iter()
            .zip(&self.distributions)
            .map(|(t, d)| t.audit_cost * d.support_max() as f64)
            .collect()
    }

    /// Draw a common-random-number sample bank of benign count vectors:
    /// joint rows from [`GameSpec::joint_counts`] when a correlated model is
    /// attached, otherwise independent draws from the per-type marginals.
    pub fn sample_bank(&self, n_samples: usize, seed: u64) -> stochastics::SampleBank {
        match &self.joint_counts {
            Some(joint) => stochastics::SampleBank::generate_joint(joint.as_ref(), n_samples, seed),
            None => stochastics::SampleBank::generate_from(
                self.distributions
                    .iter()
                    .map(|d| d.as_ref() as &dyn CountDistribution),
                n_samples,
                seed,
            ),
        }
    }

    /// Validate structural soundness. All solvers call this first.
    pub fn validate(&self) -> Result<(), GameError> {
        if self.alert_types.is_empty() {
            return Err(GameError::InvalidSpec("no alert types".into()));
        }
        if self.distributions.len() != self.alert_types.len() {
            return Err(GameError::InvalidSpec(format!(
                "{} alert types but {} count distributions",
                self.alert_types.len(),
                self.distributions.len()
            )));
        }
        if let Some(joint) = &self.joint_counts {
            if joint.n_types() != self.alert_types.len() {
                return Err(GameError::InvalidSpec(format!(
                    "joint count model covers {} types but the game has {}",
                    joint.n_types(),
                    self.alert_types.len()
                )));
            }
        }
        if !(self.budget.is_finite() && self.budget >= 0.0) {
            return Err(GameError::InvalidSpec(format!(
                "budget must be finite and non-negative, got {}",
                self.budget
            )));
        }
        for (i, t) in self.alert_types.iter().enumerate() {
            if !(t.audit_cost.is_finite() && t.audit_cost > 0.0) {
                return Err(GameError::InvalidSpec(format!(
                    "alert type #{i} ({}) has non-positive audit cost {}",
                    t.name, t.audit_cost
                )));
            }
        }
        for (e, att) in self.attackers.iter().enumerate() {
            if !(0.0..=1.0).contains(&att.attack_prob) {
                return Err(GameError::InvalidSpec(format!(
                    "attacker #{e} ({}) has attack probability {} outside [0,1]",
                    att.name, att.attack_prob
                )));
            }
            for (a, act) in att.actions.iter().enumerate() {
                let mut total = 0.0;
                for &(t, p) in &act.alert_probs {
                    if t >= self.alert_types.len() {
                        return Err(GameError::InvalidSpec(format!(
                            "attacker #{e} action #{a} references alert type {t} \
                             but only {} exist",
                            self.alert_types.len()
                        )));
                    }
                    if !(0.0..=1.0).contains(&p) {
                        return Err(GameError::InvalidSpec(format!(
                            "attacker #{e} action #{a} has alert probability {p}"
                        )));
                    }
                    total += p;
                }
                if total > 1.0 + 1e-9 {
                    return Err(GameError::InvalidSpec(format!(
                        "attacker #{e} action #{a} alert probabilities sum to {total} > 1"
                    )));
                }
                for (label, v) in [
                    ("reward", act.reward),
                    ("attack cost", act.attack_cost),
                    ("penalty", act.penalty),
                ] {
                    if !v.is_finite() {
                        return Err(GameError::InvalidSpec(format!(
                            "attacker #{e} action #{a} has non-finite {label}"
                        )));
                    }
                }
                if act.penalty < 0.0 {
                    return Err(GameError::InvalidSpec(format!(
                        "attacker #{e} action #{a} has negative penalty {}; penalties \
                         are magnitudes and enter the utility negatively",
                        act.penalty
                    )));
                }
            }
        }
        Ok(())
    }

    /// Merge strategically identical actions within each attacker.
    ///
    /// Attacks that share the same alert footprint and payoff parameters
    /// induce identical rows in the master LP; on the EMR dataset this
    /// collapses 50 × 50 victim actions to at most one per (type-signature,
    /// payoff) class, an order-of-magnitude LP shrink with bitwise-identical
    /// solutions. Victim labels of merged actions are concatenated.
    pub fn dedup_actions(&self) -> GameSpec {
        let mut out = self.clone();
        for att in &mut out.attackers {
            let mut seen: Vec<ActionKey> = Vec::new();
            let mut kept: Vec<AttackAction> = Vec::new();
            for act in &att.actions {
                let key = act.dedup_key();
                if let Some(pos) = seen.iter().position(|k| *k == key) {
                    let label = format!("{}+{}", kept[pos].victim, act.victim);
                    // Keep merged labels bounded: long lists add no insight.
                    if kept[pos].victim.len() < 64 {
                        kept[pos].victim = label;
                    }
                } else {
                    seen.push(key);
                    kept.push(act.clone());
                }
            }
            att.actions = kept;
        }
        out
    }

    /// A structural fingerprint of the full specification, bit-exact in
    /// every float.
    ///
    /// Covers the alert vocabulary (names, audit costs), the complete pmf
    /// of every count distribution over its support, the attacker/action
    /// table (labels, footprints, payoffs), budget, opt-out, and — through
    /// a fixed-seed probe bank — the joint count model when one is
    /// attached. Two specs with equal fingerprints are interchangeable for
    /// every solver in this workspace; the scenario property suite uses
    /// this to pin "same seed ⇒ bit-identical game" across reruns and
    /// thread counts.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over a canonical byte serialization.
        struct Fnv(u64);
        impl Fnv {
            fn bytes(&mut self, bytes: &[u8]) {
                for &b in bytes {
                    self.0 ^= b as u64;
                    self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
            fn word(&mut self, x: u64) {
                self.bytes(&x.to_le_bytes());
            }
        }
        let mut h = Fnv(0xcbf2_9ce4_8422_2325);
        h.word(self.alert_types.len() as u64);
        for (t, d) in self.alert_types.iter().zip(&self.distributions) {
            h.bytes(t.name.as_bytes());
            h.word(t.audit_cost.to_bits());
            h.word(d.support_min());
            h.word(d.support_max());
            for n in d.support_min()..=d.support_max() {
                h.word(d.pmf(n).to_bits());
            }
        }
        h.word(self.attackers.len() as u64);
        for att in &self.attackers {
            h.bytes(att.name.as_bytes());
            h.word(att.attack_prob.to_bits());
            h.word(att.actions.len() as u64);
            for act in &att.actions {
                h.bytes(act.victim.as_bytes());
                for &(t, p) in &act.alert_probs {
                    h.word(t as u64);
                    h.word(p.to_bits());
                }
                h.word(act.reward.to_bits());
                h.word(act.attack_cost.to_bits());
                h.word(act.penalty.to_bits());
            }
        }
        h.word(self.budget.to_bits());
        h.word(self.allow_opt_out as u64);
        if self.joint_counts.is_some() {
            // Probe the joint sampler with a small fixed-seed bank so two
            // specs differing only in correlation structure hash apart.
            let probe = self.sample_bank(8, 0xF1D0);
            for row in probe.rows() {
                for &z in row {
                    h.word(z);
                }
            }
        }
        h.0
    }

    /// Sum over attackers of their single best undetected-attack utility —
    /// a finite upper bound on the auditor's loss, used for sanity checks.
    pub fn max_possible_loss(&self) -> f64 {
        self.attackers
            .iter()
            .map(|att| {
                let best = att
                    .actions
                    .iter()
                    .map(|a| a.reward - a.attack_cost)
                    .fold(f64::NEG_INFINITY, f64::max);
                let best = if self.allow_opt_out {
                    best.max(0.0)
                } else {
                    best
                };
                if best.is_finite() {
                    att.attack_prob * best
                } else {
                    0.0
                }
            })
            .sum()
    }
}

/// Builder-style construction of a [`GameSpec`].
#[derive(Default)]
pub struct GameSpecBuilder {
    alert_types: Vec<AlertType>,
    distributions: Vec<Arc<dyn CountDistribution>>,
    attackers: Vec<Attacker>,
    budget: f64,
    allow_opt_out: bool,
    joint_counts: Option<Arc<dyn JointCountModel>>,
}

impl GameSpecBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an alert type together with its benign count distribution.
    /// Returns the type index usable in [`AttackAction::alert_probs`].
    pub fn alert_type(
        &mut self,
        name: impl Into<String>,
        audit_cost: f64,
        dist: Arc<dyn CountDistribution>,
    ) -> usize {
        self.alert_types.push(AlertType::new(name, audit_cost));
        self.distributions.push(dist);
        self.alert_types.len() - 1
    }

    /// Register an attacker.
    pub fn attacker(&mut self, attacker: Attacker) -> &mut Self {
        self.attackers.push(attacker);
        self
    }

    /// Set the audit budget `B`.
    pub fn budget(&mut self, budget: f64) -> &mut Self {
        self.budget = budget;
        self
    }

    /// Allow adversaries to refrain from attacking.
    pub fn allow_opt_out(&mut self, allow: bool) -> &mut Self {
        self.allow_opt_out = allow;
        self
    }

    /// Attach a correlated benign-count sampler. The per-type distributions
    /// registered via [`GameSpecBuilder::alert_type`] must be the matching
    /// marginals.
    pub fn joint_counts(&mut self, model: Arc<dyn JointCountModel>) -> &mut Self {
        self.joint_counts = Some(model);
        self
    }

    /// Finalize and validate.
    pub fn build(self) -> Result<GameSpec, GameError> {
        let spec = GameSpec {
            alert_types: self.alert_types,
            distributions: self.distributions,
            attackers: self.attackers,
            budget: self.budget,
            allow_opt_out: self.allow_opt_out,
            joint_counts: self.joint_counts,
        };
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stochastics::Constant;

    fn tiny_spec() -> GameSpec {
        let mut b = GameSpecBuilder::new();
        let t0 = b.alert_type("t0", 1.0, Arc::new(Constant(2)));
        let t1 = b.alert_type("t1", 2.0, Arc::new(Constant(3)));
        b.attacker(Attacker::new(
            "e0",
            1.0,
            vec![
                AttackAction::deterministic("v0", t0, 5.0, 1.0, 4.0),
                AttackAction::deterministic("v1", t1, 6.0, 1.0, 4.0),
            ],
        ));
        b.budget(3.0);
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_valid_spec() {
        let s = tiny_spec();
        assert_eq!(s.n_types(), 2);
        assert_eq!(s.n_attackers(), 1);
        assert_eq!(s.n_actions(), 2);
        assert_eq!(s.audit_costs(), vec![1.0, 2.0]);
        assert_eq!(s.threshold_upper_bounds(), vec![2.0, 6.0]);
    }

    #[test]
    fn max_possible_loss_is_best_undetected_gain() {
        let s = tiny_spec();
        assert!((s.max_possible_loss() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_bad_type_reference() {
        let mut s = tiny_spec();
        s.attackers[0].actions[0].alert_probs = vec![(9, 1.0)];
        assert!(matches!(s.validate(), Err(GameError::InvalidSpec(_))));
    }

    #[test]
    fn validate_rejects_probability_overflow() {
        let mut s = tiny_spec();
        s.attackers[0].actions[0].alert_probs = vec![(0, 0.7), (1, 0.7)];
        assert!(matches!(s.validate(), Err(GameError::InvalidSpec(_))));
    }

    #[test]
    fn validate_rejects_negative_penalty() {
        let mut s = tiny_spec();
        s.attackers[0].actions[0].penalty = -1.0;
        assert!(matches!(s.validate(), Err(GameError::InvalidSpec(_))));
    }

    #[test]
    fn validate_rejects_bad_attack_prob() {
        let mut s = tiny_spec();
        s.attackers[0].attack_prob = 1.5;
        assert!(matches!(s.validate(), Err(GameError::InvalidSpec(_))));
    }

    #[test]
    fn validate_rejects_zero_audit_cost() {
        let mut s = tiny_spec();
        s.alert_types[0].audit_cost = 0.0;
        assert!(matches!(s.validate(), Err(GameError::InvalidSpec(_))));
    }

    #[test]
    fn dedup_merges_identical_actions() {
        let mut s = tiny_spec();
        let dup = s.attackers[0].actions[0].clone();
        s.attackers[0].actions.push(dup);
        assert_eq!(s.n_actions(), 3);
        let d = s.dedup_actions();
        assert_eq!(d.n_actions(), 2);
        assert!(d.attackers[0].actions[0].victim.contains('+'));
    }

    #[test]
    fn benign_action_has_no_alerts() {
        let a = AttackAction::benign("v", 0.4);
        assert!(a.alert_probs.is_empty());
        assert_eq!(a.reward, 0.0);
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let a = tiny_spec();
        let b = tiny_spec();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = tiny_spec();
        c.budget += 1.0;
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = tiny_spec();
        d.attackers[0].actions[0].reward += 1e-12;
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    struct LockstepCounts;

    impl stochastics::JointCountModel for LockstepCounts {
        fn n_types(&self) -> usize {
            2
        }

        fn sample_row(&self, _i: usize, rng: &mut dyn rand::RngCore) -> Vec<u64> {
            // Perfectly correlated: both types share one draw.
            let z = stochastics::UniformCount::new(0, 3).sample(rng);
            vec![z, z]
        }
    }

    #[test]
    fn joint_model_drives_the_sample_bank() {
        let mut s = tiny_spec();
        s.joint_counts = Some(Arc::new(LockstepCounts));
        s.validate().unwrap();
        let bank = s.sample_bank(64, 9);
        assert!(bank.rows().all(|r| r[0] == r[1]), "correlation lost");
        // Same spec without the joint model samples independently.
        let indep = tiny_spec().sample_bank(64, 9);
        assert!(indep.rows().any(|r| r[0] != r[1]));
    }

    #[test]
    fn joint_model_arity_is_validated() {
        let mut s = tiny_spec();
        s.alert_types.push(AlertType::new("t2", 1.0));
        s.distributions.push(Arc::new(Constant(1)));
        s.joint_counts = Some(Arc::new(LockstepCounts)); // 2 types vs 3
        assert!(matches!(s.validate(), Err(GameError::InvalidSpec(_))));
    }
}
