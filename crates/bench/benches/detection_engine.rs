//! P4 — the batched `Pal` engine vs the scalar reference path:
//!
//! * `pal_frontier`: evaluating a 24-order candidate frontier one call at a
//!   time (scalar) vs one prefix-trie batch (engine, 1 and 4 workers);
//! * `pal_sweep`: ISHM-shaped single-coordinate threshold sweeps — the
//!   per-candidate loop vs the sorted sweep kernel;
//! * `ishm_engine`: a full ISHM run with the memoizing engine vs the same
//!   run with caching disabled — isolating what the estimate cache buys
//!   the shrinking search;
//! * `cggs_engine`: one CGGS solve, cached vs uncached engine, on the B=6
//!   and B=20 Syn A games (the latter is the `syn-a-b20` registry fixture
//!   tracked by `BENCH_detection.json` for best-response cost).
//!
//! Engine results are bit-identical to the scalar path at every thread
//! count (enforced by `tests/detection_equivalence.rs`), so these compare
//! equal outputs at different speeds.

use audit_game::cggs::{Cggs, CggsConfig};
use audit_game::datasets::syn_a_with_budget;
use audit_game::detection::{DetectionEstimator, DetectionModel, PalEngine, PalQuery};
use audit_game::error::GameError;
use audit_game::ishm::{ExactEvaluator, Ishm, IshmConfig, ThresholdEvaluator};
use audit_game::master::{MasterSolution, MasterSolver};
use audit_game::model::GameSpec;
use audit_game::ordering::AuditOrder;
use audit_game::payoff::PayoffMatrix;
use criterion::{criterion_group, criterion_main, Criterion};

const SAMPLES: usize = 1000;

/// The pre-engine exact evaluator, reconstructed through the public API:
/// scalar row-major `Pal` walks, no estimate cache, no objective memo —
/// the baseline the batched engine is measured against.
struct LegacyExactEvaluator<'a> {
    spec: &'a GameSpec,
    est: DetectionEstimator<'a>,
    orders: Vec<AuditOrder>,
}

impl ThresholdEvaluator for LegacyExactEvaluator<'_> {
    fn evaluate(&mut self, thresholds: &[f64]) -> Result<f64, GameError> {
        let m = PayoffMatrix::build(self.spec, &self.est, self.orders.clone(), thresholds);
        Ok(MasterSolver::solve(self.spec, &m)?.value)
    }

    fn solve_full(
        &mut self,
        thresholds: &[f64],
    ) -> Result<(MasterSolution, Vec<AuditOrder>), GameError> {
        let m = PayoffMatrix::build(self.spec, &self.est, self.orders.clone(), thresholds);
        let sol = MasterSolver::solve(self.spec, &m)?;
        Ok((sol, m.orders))
    }
}

fn bench_pal_frontier(c: &mut Criterion) {
    let spec = syn_a_with_budget(6.0);
    let bank = spec.sample_bank(SAMPLES, 0);
    let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
    let thresholds = vec![2.0, 2.0, 2.0, 2.0];
    let orders = AuditOrder::enumerate_all(4);
    let queries: Vec<PalQuery> = orders
        .iter()
        .map(|o| PalQuery::full(o, &thresholds))
        .collect();

    let mut group = c.benchmark_group("pal_frontier_24_orders");
    group.bench_function("scalar_one_by_one", |b| {
        b.iter(|| {
            orders
                .iter()
                .map(|o| est.pal(o, &thresholds))
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("engine_batch_1_thread", |b| {
        let engine = PalEngine::uncached(est, 1);
        b.iter(|| engine.pal_batch(&queries))
    });
    group.bench_function("engine_batch_4_threads", |b| {
        let engine = PalEngine::uncached(est, 4);
        b.iter(|| engine.pal_batch(&queries))
    });
    group.finish();
}

fn bench_pal_sweep(c: &mut Criterion) {
    let spec = syn_a_with_budget(6.0);
    let bank = spec.sample_bank(SAMPLES, 0);
    let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
    let base = vec![2.0, 2.0, 2.0, 2.0];
    let coord = 2usize;
    // ISHM's ratio ladder for one coordinate (ε = 0.1 from h = 7).
    let candidates: Vec<f64> = (1..=10)
        .map(|i| (7.0 * (1.0 - i as f64 * 0.1)).floor())
        .collect();
    let order = AuditOrder::identity(4);

    let mut group = c.benchmark_group("pal_sweep_coord2_10_candidates");
    group.bench_function("per_candidate_scalar", |b| {
        b.iter(|| {
            candidates
                .iter()
                .map(|&v| {
                    let mut th = base.clone();
                    th[coord] = v;
                    est.pal(&order, &th)
                })
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("per_candidate_engine", |b| {
        b.iter(|| {
            let engine = PalEngine::uncached(est, 1);
            candidates
                .iter()
                .map(|&v| {
                    let mut th = base.clone();
                    th[coord] = v;
                    engine.pal(&order, &th)
                })
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("sweep_kernel", |b| {
        b.iter(|| {
            let engine = PalEngine::uncached(est, 1);
            engine.pal_sweep(order.types(), &base, coord, &candidates)
        })
    });
    group.finish();
}

fn bench_ishm_engine(c: &mut Criterion) {
    let spec = syn_a_with_budget(6.0);
    let bank = spec.sample_bank(SAMPLES, 0);
    let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
    let ishm = Ishm::new(IshmConfig {
        epsilon: 0.1,
        ..Default::default()
    });
    let orders = AuditOrder::enumerate_all(4);

    let mut group = c.benchmark_group("ishm_syn_a_b6");
    group.sample_size(10);
    group.bench_function("legacy_scalar_no_memo", |b| {
        b.iter(|| {
            let mut eval = LegacyExactEvaluator {
                spec: &spec,
                est,
                orders: orders.clone(),
            };
            ishm.solve(&spec, &mut eval).expect("solves")
        })
    });
    group.bench_function("uncached_engine", |b| {
        b.iter(|| {
            let mut eval =
                ExactEvaluator::from_engine(&spec, PalEngine::uncached(est, 1), orders.clone());
            ishm.solve(&spec, &mut eval).expect("solves")
        })
    });
    group.bench_function("cached_engine", |b| {
        b.iter(|| {
            let mut eval = ExactEvaluator::new(&spec, est);
            ishm.solve(&spec, &mut eval).expect("solves")
        })
    });
    group.bench_function("cached_engine_4_threads", |b| {
        b.iter(|| {
            let mut eval = ExactEvaluator::with_threads(&spec, est, 4);
            ishm.solve(&spec, &mut eval).expect("solves")
        })
    });
    group.finish();
}

fn bench_cggs_engine(c: &mut Criterion) {
    let spec = syn_a_with_budget(6.0);
    let bank = spec.sample_bank(SAMPLES, 0);
    let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
    let thresholds = vec![2.0, 2.0, 2.0, 2.0];

    let mut group = c.benchmark_group("cggs_syn_a_b6");
    group.sample_size(20);
    group.bench_function("uncached_engine", |b| {
        let cggs = Cggs::default();
        b.iter(|| {
            let engine = PalEngine::uncached(est, 1);
            cggs.solve_with_engine(&spec, &engine, &thresholds)
                .expect("solves")
        })
    });
    group.bench_function("cached_engine", |b| {
        let cggs = Cggs::default();
        b.iter(|| {
            let engine = PalEngine::new(est, 1);
            cggs.solve_with_engine(&spec, &engine, &thresholds)
                .expect("solves")
        })
    });
    group.bench_function("cached_engine_4_threads", |b| {
        let cggs = Cggs::new(CggsConfig {
            threads: 4,
            ..Default::default()
        });
        b.iter(|| {
            let engine = PalEngine::new(est, 4);
            cggs.solve_with_engine(&spec, &engine, &thresholds)
                .expect("solves")
        })
    });
    group.finish();
}

fn bench_cggs_b20(c: &mut Criterion) {
    // The `syn-a-b20` registry fixture: Table II's game at budget 20. The
    // best-response (greedy pricing) batches are prefix-trie fan-outs and
    // the prefix-state cache carries each accepted extension into the next
    // greedy step, so the cached engine's advantage here is the measured
    // "CGGS best-response improvement" tracked by BENCH_detection.json.
    let spec = syn_a_with_budget(20.0);
    let bank = spec.sample_bank(SAMPLES, 0);
    let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
    let thresholds = vec![5.0, 5.0, 5.0, 5.0];

    let mut group = c.benchmark_group("cggs_syn_a_b20");
    group.sample_size(20);
    group.bench_function("uncached_engine", |b| {
        let cggs = Cggs::default();
        b.iter(|| {
            let engine = PalEngine::uncached(est, 1);
            cggs.solve_with_engine(&spec, &engine, &thresholds)
                .expect("solves")
        })
    });
    group.bench_function("cached_engine", |b| {
        let cggs = Cggs::default();
        b.iter(|| {
            let engine = PalEngine::new(est, 1);
            cggs.solve_with_engine(&spec, &engine, &thresholds)
                .expect("solves")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pal_frontier,
    bench_pal_sweep,
    bench_ishm_engine,
    bench_cggs_engine,
    bench_cggs_b20
);
criterion_main!(benches);
