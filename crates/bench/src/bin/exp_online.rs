//! Experiment E10 — the online auditing runtime: a multi-epoch service
//! loop over a registry scenario's alert stream with drift-gated,
//! warm-started re-solving, printing the per-epoch telemetry and the
//! deterministic run fingerprint.
//!
//! ```text
//! cargo run -p audit-bench --release --bin exp_online [epochs] [threads] \
//!     [--scenario <key>] [--compare-cold] [--json] [--cache-stats] \
//!     [--checkpoint-dir <dir> [--checkpoint-epoch <k>]] [--restore]
//! ```
//!
//! `--compare-cold` additionally runs a shadow cold solve at every
//! re-solve and reports the cold-vs-warm latency and objective gap (the
//! numbers behind `BENCH_runtime.json`); `--json` emits the full
//! telemetry log as JSON instead of the table; `--cache-stats` prints the
//! detection engine's counters summed over the committed solves.
//!
//! `--checkpoint-dir <dir>` runs the loop only up to `--checkpoint-epoch`
//! (default: half the horizon), persists the full service state to the
//! directory, and exits; a later invocation with `--checkpoint-dir <dir>
//! --restore` reloads it (the run configuration is carried by the
//! checkpoint, so `[epochs]`/`[threads]` are ignored then), finishes the
//! remaining epochs, and prints the ordinary report — whose telemetry
//! fingerprint is bit-identical to an uninterrupted run (the CI restart
//! gate asserts exactly that).

use alert_audit::telemetry::report_to_json;
use audit_bench::cli::{
    default_threads, parse_count, render_cache_stats, take_flag, take_scenario_flag,
    take_value_flag,
};
use audit_bench::report::{f4, Table};
use audit_game::solver::SolverConfig;
use audit_runtime::{AuditService, RuntimeConfig};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let scenario_key = take_scenario_flag(&mut args).unwrap_or_else(|| "syn-seasonal".into());
    let compare_cold = take_flag(&mut args, "--compare-cold");
    let json = take_flag(&mut args, "--json");
    let cache_stats = take_flag(&mut args, "--cache-stats");
    let checkpoint_dir =
        take_value_flag(&mut args, "--checkpoint-dir").map(std::path::PathBuf::from);
    let checkpoint_epoch =
        take_value_flag(&mut args, "--checkpoint-epoch").map(|s| parse_count(Some(s), 0));
    let restore = take_flag(&mut args, "--restore");
    let epochs = parse_count(args.first().cloned(), 24);
    let threads = parse_count(args.get(1).cloned(), default_threads());

    let reg = alert_audit::scenario::registry();
    let scenario = reg
        .resolve(&scenario_key)
        .unwrap_or_else(|e| panic!("{e}"))
        .clone();
    eprintln!(
        "online runtime on scenario {}: {}",
        scenario.key(),
        scenario.describe()
    );

    let defaults = RuntimeConfig::default();
    let cfg = RuntimeConfig {
        epochs,
        compare_cold,
        solver: SolverConfig {
            threads,
            ..defaults.solver
        },
        ..defaults
    };
    eprintln!(
        "{epochs} epochs x {} periods, drift gate: window {} / KS > {} ({} engine thread(s))",
        cfg.periods_per_epoch, cfg.drift.window_periods, cfg.drift.ks_threshold, threads
    );

    let t0 = std::time::Instant::now();
    let report = if restore {
        let dir = checkpoint_dir.expect("--restore needs --checkpoint-dir <dir>");
        let (service, state) = AuditService::restore(scenario, &dir).expect("checkpoint loads");
        eprintln!(
            "restored checkpoint at epoch {}/{} from {} (config carried by the checkpoint)",
            state.epoch,
            service.config().epochs,
            dir.display()
        );
        service.resume(state).expect("service loop resumes")
    } else if let Some(dir) = checkpoint_dir {
        let service = AuditService::new(scenario, cfg);
        let stop = checkpoint_epoch.unwrap_or(epochs / 2).max(1);
        let state = service.run_until(stop).expect("service loop runs");
        service.checkpoint(&state, &dir).expect("checkpoint saves");
        println!(
            "checkpoint: epoch {} of {} written to {}",
            state.epoch,
            epochs,
            dir.display()
        );
        eprintln!("elapsed: {:.1?}", t0.elapsed());
        return;
    } else {
        AuditService::new(scenario, cfg)
            .run()
            .expect("service loop runs")
    };
    let elapsed = t0.elapsed();

    if json {
        println!("{}", report_to_json(&report).render());
    } else {
        let mut table = Table::new(vec![
            "epoch", "seen", "audited", "gap", "maxKS", "drift", "resolve", "age", "loss",
            "solve ms",
        ]);
        for e in &report.epochs {
            table.row(vec![
                format!("{}", e.epoch),
                format!("{}", e.alerts_seen.iter().sum::<u64>()),
                format!("{}", e.alerts_audited.iter().sum::<u64>()),
                format!("{:.3}", e.pal_gap),
                format!("{:.3}", e.max_ks),
                if e.drift { "yes" } else { "" }.into(),
                if e.resolved { "yes" } else { "" }.into(),
                format!("{}", e.epochs_since_resolve),
                f4(e.objective),
                e.solve_millis
                    .map(|m| format!("{m:.1}"))
                    .unwrap_or_default(),
            ]);
        }
        println!("{}", table.render());
    }

    // In --json mode stdout must stay a single parseable document (the
    // summary is embedded in it anyway), so the human-readable summary
    // moves to stderr there.
    let summary = |line: String| {
        if json {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    summary(format!(
        "resolves: {} (drift epochs: {})",
        report.resolves(),
        report.drift_epochs()
    ));
    summary(format!(
        "telemetry fingerprint: {:016x}",
        report.fingerprint()
    ));
    let launched: u64 = report.epochs.iter().map(|e| e.attacks_launched).sum();
    if launched > 0 {
        let detected: u64 = report.epochs.iter().map(|e| e.attacks_detected).sum();
        let utility: f64 = report.epochs.iter().map(|e| e.attacker_utility).sum();
        let damage: f64 = report.epochs.iter().map(|e| e.auditor_damage).sum();
        summary(format!(
            "attacks: launched={launched} detected={detected} attacker-utility={} auditor-damage={}",
            f4(utility),
            f4(damage)
        ));
    }
    if let Some(stats) = report.resolve_stats() {
        summary(match (stats.mean_cold_millis, stats.speedup) {
            (Some(cold), Some(speedup)) => format!(
                "re-solve latency: warm {:.1} ms vs cold {:.1} ms ({:.2}x), max objective gap {}",
                stats.mean_solve_millis,
                cold,
                speedup,
                f4(stats.max_objective_gap.unwrap_or(0.0)),
            ),
            _ => format!("re-solve latency: warm {:.1} ms", stats.mean_solve_millis),
        });
    }
    if cache_stats {
        for line in render_cache_stats(&report.engine_cache).lines() {
            summary(line.to_string());
        }
    }
    summary(format!(
        "periods/sec: {:.1}",
        report.total_periods() as f64 / elapsed.as_secs_f64()
    ));
    eprintln!("elapsed: {:.1?}", elapsed);
}
