//! Column Generation Greedy Search (paper Algorithm 1).
//!
//! The master LP over all `|T|!` orderings is intractable to materialize,
//! but only a small basis of orderings carries probability at the optimum.
//! CGGS iterates:
//!
//! 1. solve the master restricted to the current column set `Q` and read
//!    the attacker mixture `π_Q = y` off it (Algorithm 1, line 3);
//! 2. search for a new ordering with negative reduced cost — i.e. one whose
//!    attacker utility against `y` is *below* the current value `μ`;
//! 3. the pricing subproblem is itself hard, so a **greedy** oracle builds
//!    the ordering one type at a time, each step appending the type that
//!    most increases the `y`-weighted detection mass (line 6);
//! 4. stop when the best candidate no longer improves (reduced cost ≥ 0).
//!
//! Because `U_a` is affine in the detection probabilities, the candidate
//! score decomposes as `f(o) = const − Σ_t w_t·Pal(o,b,t)` with
//! `w_t = Σ_ev y_ev·(M+R)_ev·P^t_ev ≥ 0`, so the greedy step only needs the
//! *marginal* detection mass of the appended type — and a type's `Pal`
//! depends only on its predecessors, making the extension incremental.

use crate::detection::{DetectionEstimator, PalEngine, PalQuery};
use crate::error::GameError;
use crate::master::{MasterSolution, MasterSolver};
use crate::model::GameSpec;
use crate::ordering::{AuditOrder, PrecedenceConstraints};
use crate::payoff::{action_utility, PayoffMatrix};
use serde::{Deserialize, Serialize};

/// Which pricing oracle generates candidate columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum OracleKind {
    /// The paper's greedy construction (Algorithm 1, lines 4–7).
    #[default]
    Greedy,
    /// Exhaustive enumeration of all feasible orderings — exponential, for
    /// small `|T|` only; used by the `ablation_oracle` benchmark to measure
    /// how much the greedy heuristic gives up.
    Exhaustive,
}

/// CGGS configuration.
#[derive(Debug, Clone)]
pub struct CggsConfig {
    /// Upper bound on generated columns (safety valve; the algorithm
    /// normally converges in far fewer).
    pub max_columns: usize,
    /// Reduced-cost tolerance for convergence.
    pub tol: f64,
    /// Pricing oracle.
    pub oracle: OracleKind,
    /// Organizational constraints restricting the feasible order set `O`.
    pub precedence: PrecedenceConstraints,
    /// Worker threads for batched `Pal` evaluation (results are identical
    /// at every thread count; see [`PalEngine`]).
    pub threads: usize,
    /// Warm-start column pool: orderings seeded into the restricted master
    /// before the first pricing iteration (typically the incumbent basis of
    /// a previous solve, so an online re-solve restarts from the old
    /// optimum instead of rediscovering it column by column). Seeds that
    /// are infeasible for the current game (wrong arity, precedence
    /// violation) or duplicates are silently skipped. An **empty** pool is
    /// bit-identical to a cold solve.
    pub seed_columns: Vec<AuditOrder>,
}

impl Default for CggsConfig {
    fn default() -> Self {
        Self {
            max_columns: 256,
            tol: 1e-7,
            oracle: OracleKind::Greedy,
            precedence: PrecedenceConstraints::none(),
            threads: 1,
            seed_columns: Vec::new(),
        }
    }
}

/// Result of a CGGS run.
#[derive(Debug, Clone)]
pub struct CggsOutcome {
    /// Final master solution over the generated columns.
    pub master: MasterSolution,
    /// The generated order columns (aligned with `master.p_orders`).
    pub orders: Vec<AuditOrder>,
    /// Number of master LPs solved.
    pub iterations: usize,
    /// `true` when the oracle proved no improving column exists (within
    /// its heuristic power); `false` when `max_columns` was hit.
    pub converged: bool,
}

/// Column Generation Greedy Search solver.
#[derive(Debug, Clone, Default)]
pub struct Cggs {
    /// Configuration.
    pub config: CggsConfig,
}

impl Cggs {
    /// Construct with a configuration.
    pub fn new(config: CggsConfig) -> Self {
        Self { config }
    }

    /// Run CGGS for a fixed threshold vector.
    ///
    /// Builds a fresh [`PalEngine`] with `config.threads` workers for this
    /// one solve; callers that re-solve over the same sample bank *and*
    /// revisit threshold vectors (ISHM does both) should hold an engine
    /// and use [`Cggs::solve_with_engine`] so `Pal` estimates carry over.
    pub fn solve(
        &self,
        spec: &GameSpec,
        est: &DetectionEstimator<'_>,
        thresholds: &[f64],
    ) -> Result<CggsOutcome, GameError> {
        let engine = PalEngine::new(*est, self.config.threads);
        self.solve_with_engine(spec, &engine, thresholds)
    }

    /// Run CGGS against a caller-owned engine (Algorithm 1). All `Pal`
    /// evaluations — matrix columns, greedy trials, candidate scoring — go
    /// through the engine's batch path and its cache.
    pub fn solve_with_engine(
        &self,
        spec: &GameSpec,
        engine: &PalEngine<'_>,
        thresholds: &[f64],
    ) -> Result<CggsOutcome, GameError> {
        spec.validate()?;
        let n = spec.n_types();
        assert_eq!(thresholds.len(), n);

        // Seed Q with one feasible pure strategy (Algorithm 1 input), plus
        // any warm-start columns carried over from a previous solve. The
        // whole seed pool is built as ONE engine batch: warm-start columns
        // overwhelmingly share prefixes (they came out of one incumbent
        // basis), so the trie pays each shared prefix once.
        let initial = self.initial_order(n)?;
        let mut pool = vec![initial];
        for seed in &self.config.seed_columns {
            if pool.len() >= self.config.max_columns {
                break;
            }
            let feasible = seed.len() == n
                && self.config.precedence.is_satisfied(seed)
                && !pool.contains(seed);
            if feasible {
                pool.push(seed.clone());
            }
        }
        let mut matrix = PayoffMatrix::build_with_engine(spec, engine, pool, thresholds);
        let mut iterations = 0usize;
        let mut converged = false;

        while matrix.n_orders() < self.config.max_columns {
            let master = MasterSolver::solve(spec, &matrix)?;
            iterations += 1;

            let candidate = match self.config.oracle {
                OracleKind::Greedy => {
                    self.greedy_column(spec, engine, thresholds, &master.y_actions)
                }
                OracleKind::Exhaustive => {
                    self.exhaustive_column(spec, engine, thresholds, &master.y_actions)
                }
            };

            // Reduced cost: f(o') − μ. Negative ⇒ the new column lets the
            // auditor push the value below the current μ.
            let pal = engine.pal(&candidate, thresholds);
            let f = score_from_pal(spec, &pal, &master.y_actions);
            let improving = f < master.value - self.config.tol;
            let fresh = !matrix.orders.contains(&candidate);
            if improving && fresh {
                matrix.push_order_with_engine(spec, engine, candidate, thresholds);
            } else {
                converged = true;
                return Ok(CggsOutcome {
                    master,
                    orders: matrix.orders.clone(),
                    iterations,
                    converged,
                });
            }
        }

        // Column budget exhausted: return the best master found.
        let master = MasterSolver::solve(spec, &matrix)?;
        Ok(CggsOutcome {
            master,
            orders: matrix.orders,
            iterations,
            converged,
        })
    }

    /// A deterministic feasible initial order (identity filtered through a
    /// precedence-respecting topological placement).
    fn initial_order(&self, n: usize) -> Result<AuditOrder, GameError> {
        if self.config.precedence.is_empty() {
            return Ok(AuditOrder::identity(n));
        }
        let mut placed = vec![false; n];
        let mut order = Vec::with_capacity(n);
        for _ in 0..n {
            let next = (0..n)
                .find(|&t| !placed[t] && self.config.precedence.can_place_next(t, &placed))
                .ok_or_else(|| {
                    GameError::InvalidSpec("precedence constraints are unsatisfiable".into())
                })?;
            placed[next] = true;
            order.push(next);
        }
        AuditOrder::new(order)
    }

    /// Greedy pricing oracle (Algorithm 1, lines 4–7): repeatedly append the
    /// feasible type maximizing the marginal weighted detection mass. Each
    /// greedy step evaluates *all* candidate extensions in one batch — one
    /// engine call per appended position instead of one per trial — and the
    /// batch is exactly a prefix-trie fan-out: every trial extends the same
    /// shared prefix by one type, so the engine pays one column pass per
    /// trial plus (at most) one for the prefix extension, which the
    /// prefix-state cache usually answers from the previous step. Whole
    /// best-response constructions are thereby linear in trials instead of
    /// quadratic in sequence length.
    fn greedy_column(
        &self,
        spec: &GameSpec,
        engine: &PalEngine<'_>,
        thresholds: &[f64],
        y: &[f64],
    ) -> AuditOrder {
        let n = spec.n_types();
        let w = detection_weights(spec, y);
        let mut prefix: Vec<usize> = Vec::with_capacity(n);
        let mut placed = vec![false; n];
        for _ in 0..n {
            let candidates: Vec<usize> = (0..n)
                .filter(|&t| !placed[t] && self.config.precedence.can_place_next(t, &placed))
                .collect();
            let queries: Vec<PalQuery> = candidates
                .iter()
                .map(|&t| {
                    let mut trial = Vec::with_capacity(prefix.len() + 1);
                    trial.extend_from_slice(&prefix);
                    trial.push(t);
                    PalQuery {
                        seq: trial,
                        thresholds: thresholds.to_vec(),
                    }
                })
                .collect();
            let pals = engine.pal_batch(&queries);
            let mut best: Option<(usize, f64)> = None;
            for (&t, pal) in candidates.iter().zip(&pals) {
                let gain = w[t] * pal[t];
                if best.map(|(_, g)| gain > g + 1e-15).unwrap_or(true) {
                    best = Some((t, gain));
                }
            }
            let (t, _) = best.expect("some type must be placeable (DAG precedence)");
            placed[t] = true;
            prefix.push(t);
        }
        AuditOrder::new(prefix).expect("greedy construction yields a permutation")
    }

    /// Exhaustive pricing oracle: globally minimize `f(o)`, with every
    /// feasible order's `Pal` evaluated in one batch.
    fn exhaustive_column(
        &self,
        spec: &GameSpec,
        engine: &PalEngine<'_>,
        thresholds: &[f64],
        y: &[f64],
    ) -> AuditOrder {
        let all = if self.config.precedence.is_empty() {
            AuditOrder::enumerate_all(spec.n_types())
        } else {
            AuditOrder::enumerate_feasible(spec.n_types(), &self.config.precedence)
        };
        let queries: Vec<PalQuery> = all.iter().map(|o| PalQuery::full(o, thresholds)).collect();
        let pals = engine.pal_batch(&queries);
        all.into_iter()
            .zip(pals)
            .map(|(o, pal)| {
                let f = score_from_pal(spec, &pal, y);
                (o, f)
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("scores are finite"))
            .map(|(o, _)| o)
            .expect("at least one feasible order")
    }
}

/// Per-type detection weights `w_t = Σ_ev y_ev·(M+R)_ev·P^t_ev` — the
/// marginal value of detecting one more type-`t` attack under the
/// attacker mixture `y`. Shared by the CGGS greedy oracle and the
/// planner's decomposed refinement pricing.
pub(crate) fn detection_weights(spec: &GameSpec, y: &[f64]) -> Vec<f64> {
    let mut w = vec![0.0; spec.n_types()];
    let mut i = 0usize;
    for att in &spec.attackers {
        for act in &att.actions {
            let mass = y[i] * (act.penalty + act.reward);
            if mass != 0.0 {
                for &(t, p) in &act.alert_probs {
                    w[t] += mass * p;
                }
            }
            i += 1;
        }
    }
    w
}

/// `f(o) = Σ_ev y_ev·U_a(o,b,⟨e,v⟩)` — the attacker mixture's payoff if the
/// auditor played the pure order whose detection vector is `pal`.
pub(crate) fn score_from_pal(spec: &GameSpec, pal: &[f64], y: &[f64]) -> f64 {
    let mut f = 0.0;
    let mut i = 0usize;
    for att in &spec.attackers {
        for act in &att.actions {
            if y[i] != 0.0 {
                f += y[i] * action_utility(act, pal);
            }
            i += 1;
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detection::DetectionModel;
    use crate::model::{AttackAction, Attacker, GameSpecBuilder};
    use std::sync::Arc;
    use stochastics::Constant;

    fn three_type_spec() -> GameSpec {
        let mut b = GameSpecBuilder::new();
        let t0 = b.alert_type("t0", 1.0, Arc::new(Constant(1)));
        let t1 = b.alert_type("t1", 1.0, Arc::new(Constant(1)));
        let t2 = b.alert_type("t2", 1.0, Arc::new(Constant(1)));
        for (i, &(t, r)) in [(t0, 9.0), (t1, 7.0), (t2, 5.0)].iter().enumerate() {
            b.attacker(Attacker::new(
                format!("e{i}"),
                1.0,
                vec![AttackAction::deterministic(format!("v{t}"), t, r, 0.5, 6.0)],
            ));
        }
        b.budget(1.0);
        b.build().unwrap()
    }

    #[test]
    fn cggs_matches_exact_master_on_small_game() {
        let spec = three_type_spec();
        let bank = spec.sample_bank(8, 3);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let thresholds = vec![1.0, 1.0, 1.0];

        let cggs = Cggs::default().solve(&spec, &est, &thresholds).unwrap();

        let all = AuditOrder::enumerate_all(3);
        let m = PayoffMatrix::build(&spec, &est, all, &thresholds);
        let exact = MasterSolver::solve(&spec, &m).unwrap();

        assert!(cggs.converged);
        assert!(
            cggs.master.value >= exact.value - 1e-6,
            "CGGS value {} below exact optimum {}",
            cggs.master.value,
            exact.value
        );
        // On this small symmetric instance greedy pricing is exact.
        assert!(
            (cggs.master.value - exact.value).abs() < 1e-5,
            "CGGS {} vs exact {}",
            cggs.master.value,
            exact.value
        );
        // And it should need far fewer columns than 3! = 6.
        assert!(cggs.orders.len() <= 6);
    }

    #[test]
    fn exhaustive_oracle_never_worse_than_greedy() {
        let spec = three_type_spec();
        let bank = spec.sample_bank(8, 3);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let thresholds = vec![1.0, 1.0, 1.0];

        let greedy = Cggs::default().solve(&spec, &est, &thresholds).unwrap();
        let exhaustive = Cggs::new(CggsConfig {
            oracle: OracleKind::Exhaustive,
            ..Default::default()
        })
        .solve(&spec, &est, &thresholds)
        .unwrap();
        assert!(exhaustive.master.value <= greedy.master.value + 1e-7);
    }

    #[test]
    fn detection_weights_aggregate_reward_and_penalty() {
        let spec = three_type_spec();
        // y puts mass 1 on attacker 0's only action (type 0, R=9, M=6).
        let y = vec![1.0, 0.0, 0.0];
        let w = detection_weights(&spec, &y);
        assert!((w[0] - 15.0).abs() < 1e-12);
        assert_eq!(w[1], 0.0);
        assert_eq!(w[2], 0.0);
    }

    #[test]
    fn greedy_orders_by_weighted_mass() {
        let spec = three_type_spec();
        let bank = spec.sample_bank(8, 3);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let cggs = Cggs::default();
        // All mass on attacker 2 (type 2): greedy must front-load type 2.
        let y = vec![0.0, 0.0, 1.0];
        let engine = PalEngine::new(est, 1);
        let o = cggs.greedy_column(&spec, &engine, &[1.0, 1.0, 1.0], &y);
        assert_eq!(o.types()[0], 2);
    }

    #[test]
    fn engine_solve_is_thread_count_invariant() {
        let spec = three_type_spec();
        let bank = spec.sample_bank(64, 3);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let thresholds = vec![1.0, 1.0, 1.0];
        let baseline = Cggs::default().solve(&spec, &est, &thresholds).unwrap();
        for threads in [2usize, 4] {
            let cggs = Cggs::new(CggsConfig {
                threads,
                ..Default::default()
            });
            let out = cggs.solve(&spec, &est, &thresholds).unwrap();
            assert_eq!(out.master.value, baseline.master.value);
            assert_eq!(out.orders, baseline.orders);
            assert_eq!(out.iterations, baseline.iterations);
            assert_eq!(out.master.p_orders, baseline.master.p_orders);
        }
    }

    #[test]
    fn precedence_respected_in_generated_columns() {
        let spec = three_type_spec();
        let bank = spec.sample_bank(8, 3);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let precedence = PrecedenceConstraints::new(vec![(1, 0)], 3).unwrap();
        let cggs = Cggs::new(CggsConfig {
            precedence: precedence.clone(),
            ..Default::default()
        });
        let out = cggs.solve(&spec, &est, &[1.0, 1.0, 1.0]).unwrap();
        for o in &out.orders {
            assert!(precedence.is_satisfied(o), "order {o} violates precedence");
        }
    }

    #[test]
    fn empty_seed_pool_is_bit_identical_to_cold_solve() {
        let spec = three_type_spec();
        let bank = spec.sample_bank(32, 3);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let thresholds = vec![1.0, 1.0, 1.0];
        let cold = Cggs::default().solve(&spec, &est, &thresholds).unwrap();
        let warm = Cggs::new(CggsConfig {
            seed_columns: Vec::new(),
            ..Default::default()
        })
        .solve(&spec, &est, &thresholds)
        .unwrap();
        assert_eq!(cold.master.value.to_bits(), warm.master.value.to_bits());
        assert_eq!(cold.orders, warm.orders);
        assert_eq!(cold.iterations, warm.iterations);
        assert_eq!(cold.master.p_orders, warm.master.p_orders);
    }

    #[test]
    fn seeded_resolve_skips_pricing_work_and_matches_cold_value() {
        let spec = three_type_spec();
        let bank = spec.sample_bank(32, 3);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let thresholds = vec![1.0, 1.0, 1.0];
        let cold = Cggs::default().solve(&spec, &est, &thresholds).unwrap();
        // Re-solve seeded with the cold incumbent basis: same optimum, and
        // the pricing loop must not need more master iterations than cold.
        let warm = Cggs::new(CggsConfig {
            seed_columns: cold.orders.clone(),
            ..Default::default()
        })
        .solve(&spec, &est, &thresholds)
        .unwrap();
        assert!(warm.converged);
        assert!((warm.master.value - cold.master.value).abs() < 1e-9);
        assert!(warm.iterations <= cold.iterations);
    }

    #[test]
    fn infeasible_and_duplicate_seeds_are_skipped() {
        let spec = three_type_spec();
        let bank = spec.sample_bank(8, 3);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let precedence = PrecedenceConstraints::new(vec![(1, 0)], 3).unwrap();
        let cggs = Cggs::new(CggsConfig {
            precedence: precedence.clone(),
            seed_columns: vec![
                AuditOrder::new(vec![0, 1, 2]).unwrap(), // violates 1-before-0
                AuditOrder::new(vec![0, 1]).unwrap(),    // wrong arity
                AuditOrder::new(vec![1, 0, 2]).unwrap(), // feasible
                AuditOrder::new(vec![1, 0, 2]).unwrap(), // duplicate
            ],
            ..Default::default()
        });
        let out = cggs.solve(&spec, &est, &[1.0, 1.0, 1.0]).unwrap();
        for o in &out.orders {
            assert_eq!(o.len(), 3);
            assert!(precedence.is_satisfied(o), "order {o} violates precedence");
        }
        assert_eq!(
            out.orders.iter().filter(|o| o.types() == [1, 0, 2]).count(),
            1
        );
    }

    #[test]
    fn column_budget_is_respected() {
        let spec = three_type_spec();
        let bank = spec.sample_bank(8, 3);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let cggs = Cggs::new(CggsConfig {
            max_columns: 2,
            ..Default::default()
        });
        let out = cggs.solve(&spec, &est, &[1.0, 1.0, 1.0]).unwrap();
        assert!(out.orders.len() <= 2);
    }
}
