//! Differential tests of the batched `PalEngine` against the legacy scalar
//! `pal` path.
//!
//! The engine promises more than statistical agreement: because work is
//! split by policy (never by sample row) and each policy accumulates in a
//! fixed order through the shared per-sample kernel, its results are
//! **bit-identical** to `DetectionEstimator::pal` / `pal_prefix` for every
//! query, at every thread count. These tests enforce exact `==` on the
//! returned `f64` vectors — no tolerances anywhere.

use alert_audit::game::datasets::{random_game, RandomGameConfig};
use alert_audit::game::detection::{DetectionEstimator, DetectionModel, PalEngine, PalQuery};
use alert_audit::game::ordering::AuditOrder;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
const MODELS: [DetectionModel; 3] = [
    DetectionModel::PaperApprox,
    DetectionModel::AttackInclusive,
    DetectionModel::Operational,
];

fn cfg(n_types: usize, budget: f64) -> RandomGameConfig {
    RandomGameConfig {
        n_types,
        n_attackers: 3,
        n_victims: 5,
        budget,
        allow_opt_out: false,
        benign_prob: 0.15,
    }
}

/// Deterministic threshold grids for a seed: integral, fractional, zero,
/// and oversized entries — every code path of the recourse formula.
fn threshold_grids(n_types: usize, seed: u64) -> Vec<Vec<f64>> {
    let base = (seed % 5) as f64;
    vec![
        vec![base + 1.0; n_types],
        (0..n_types).map(|t| t as f64 * 0.5).collect(),
        (0..n_types)
            .map(|t| if t % 2 == 0 { 0.0 } else { 10.0 + base })
            .collect(),
        (0..n_types).map(|t| 1.5 + t as f64 * 0.25).collect(),
    ]
}

/// Every policy the solvers can ask about on a small game: all full
/// orders plus every prefix of each, for each threshold grid.
fn all_queries(n_types: usize, seed: u64) -> Vec<PalQuery> {
    let mut queries = Vec::new();
    for thresholds in threshold_grids(n_types, seed) {
        for order in AuditOrder::enumerate_all(n_types) {
            for len in 0..=n_types {
                queries.push(PalQuery::prefix(&order.types()[..len], &thresholds));
            }
        }
    }
    queries
}

#[test]
fn engine_is_bit_identical_to_scalar_path_on_random_games() {
    for seed in 0..8u64 {
        let n_types = 2 + (seed % 3) as usize; // 2, 3, or 4 types
        let spec = random_game(&cfg(n_types, 3.0 + seed as f64), seed);
        let bank = spec.sample_bank(64, seed ^ 0xC0FFEE);
        let queries = all_queries(n_types, seed);
        for model in MODELS {
            let est = DetectionEstimator::new(&spec, &bank, model);
            for threads in THREAD_COUNTS {
                let engine = PalEngine::new(est, threads);
                let batch = engine.pal_batch(&queries);
                for (q, got) in queries.iter().zip(&batch) {
                    let want = est.pal_prefix(&q.seq, &q.thresholds);
                    assert_eq!(
                        got, &want,
                        "seed {seed}, model {model:?}, threads {threads}, query {q:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn full_order_queries_match_legacy_pal_exactly() {
    for seed in 0..6u64 {
        let spec = random_game(&cfg(3, 4.0), seed);
        let bank = spec.sample_bank(100, seed);
        for model in MODELS {
            let est = DetectionEstimator::new(&spec, &bank, model);
            for threads in THREAD_COUNTS {
                let engine = PalEngine::new(est, threads);
                for order in AuditOrder::enumerate_all(3) {
                    for thresholds in threshold_grids(3, seed) {
                        assert_eq!(
                            engine.pal(&order, &thresholds),
                            est.pal(&order, &thresholds),
                            "seed {seed}, model {model:?}, threads {threads}, order {order}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn batch_results_are_independent_of_thread_count() {
    let spec = random_game(&cfg(4, 6.0), 99);
    let bank = spec.sample_bank(256, 7);
    let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
    let queries = all_queries(4, 99);
    let reference = PalEngine::new(est, 1).pal_batch(&queries);
    for threads in [2usize, 3, 4, 8] {
        let engine = PalEngine::new(est, threads);
        assert_eq!(
            engine.pal_batch(&queries),
            reference,
            "threads {threads} diverged"
        );
    }
}

#[test]
fn cache_hits_replay_the_exact_first_answer() {
    let spec = random_game(&cfg(3, 5.0), 11);
    let bank = spec.sample_bank(128, 3);
    let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
    let engine = PalEngine::new(est, 2);
    let queries = all_queries(3, 11);
    let cold = engine.pal_batch(&queries);
    let warm = engine.pal_batch(&queries);
    assert_eq!(cold, warm);
    let stats = engine.cache_stats();
    assert_eq!(stats.hits as usize, queries.len());
    assert_eq!(stats.misses as usize, queries.len());
    // Not every query is distinct (prefixes repeat across orders), so the
    // cache holds fewer entries than the batch had queries.
    assert!(stats.entries < queries.len());
}
