//! Assembly of the Rea A game (Section V.A).
//!
//! Pipeline: simulate the observation window → filter repeats → fit `F_t`
//! from the labelled log → pick 50 employees and 50 patients that generate
//! at least one alert → build the 2500-action attack grid with the paper's
//! payoff parameters.

use crate::workload::{WorkloadConfig, WorkloadGenerator};
use crate::world::{Hospital, HospitalConfig};
use audit_game::error::GameError;
use audit_game::model::{AttackAction, Attacker, GameSpec, GameSpecBuilder};
use rand::seq::SliceRandom;
use stochastics::rng::stream_rng;
use tdmt::profile::{AlertProfile, FitKind};

/// Rea A assembly parameters.
#[derive(Debug, Clone)]
pub struct ReaAConfig {
    /// World generation.
    pub hospital: HospitalConfig,
    /// Workload simulation.
    pub workload: WorkloadConfig,
    /// Employees in the attack grid (paper: 50).
    pub n_attack_employees: usize,
    /// Patients in the attack grid (paper: 50).
    pub n_attack_patients: usize,
    /// Audit budget `B`.
    pub budget: f64,
    /// Count-model fit.
    pub fit: FitKind,
    /// Master seed.
    pub seed: u64,
}

impl Default for ReaAConfig {
    fn default() -> Self {
        Self {
            hospital: HospitalConfig::default(),
            workload: WorkloadConfig::default(),
            n_attack_employees: 50,
            n_attack_patients: 50,
            budget: 10.0,
            fit: FitKind::Gaussian,
            seed: 0,
        }
    }
}

/// Build the Rea A game. Returns the spec together with the fitted alert
/// profile (useful for reporting the simulated Table VIII statistics).
pub fn build_game_with_profile(config: &ReaAConfig) -> Result<(GameSpec, AlertProfile), GameError> {
    let hospital = Hospital::generate(config.hospital.clone(), config.seed);
    let engine = Hospital::rule_engine();

    // Simulate and fit F_t.
    let generator = WorkloadGenerator::new(&hospital, config.workload.clone());
    let mut log = generator.generate(config.seed);
    log.dedup_daily();
    let profile = AlertProfile::fit(&log, &engine, config.fit);

    // Attack grid: employees/patients drawn from the planted pools so that
    // "each employee and patient generates at least one alert".
    let mut rng = stream_rng(config.seed, 77);
    let mut employees: Vec<u32> = Vec::new();
    let mut patients: Vec<u32> = Vec::new();
    // Round-robin the seven pools for coverage of every alert type.
    let mut cursor = [0usize; 7];
    'outer: loop {
        for t in 0..7 {
            let pool = hospital.pool(t);
            while cursor[t] < pool.len() {
                let (e, p) = pool[cursor[t]];
                cursor[t] += 1;
                let fresh_e = !employees.contains(&e);
                let fresh_p = !patients.contains(&p);
                if employees.len() < config.n_attack_employees && fresh_e {
                    employees.push(e);
                }
                if patients.len() < config.n_attack_patients && fresh_p {
                    patients.push(p);
                }
                if employees.len() == config.n_attack_employees
                    && patients.len() == config.n_attack_patients
                {
                    break 'outer;
                }
                if fresh_e || fresh_p {
                    break;
                }
            }
        }
    }
    employees.shuffle(&mut rng);
    patients.shuffle(&mut rng);

    // Game spec.
    let mut b = GameSpecBuilder::new();
    for t in 0..profile.n_types() {
        b.alert_type(
            profile.type_names[t].clone(),
            crate::REA_A_UNIT_COST,
            profile.distributions[t].clone(),
        );
    }
    for &e in &employees {
        let actions: Vec<AttackAction> = patients
            .iter()
            .map(|&p| {
                let pair = hospital.profile(e, p);
                let firing = pair.firing();
                match resolve_alert_type(&firing) {
                    None => AttackAction::benign(format!("p{p}"), crate::REA_A_UNIT_COST),
                    Some(t) => AttackAction::deterministic(
                        format!("p{p}"),
                        t,
                        crate::REA_A_BENEFITS[t],
                        crate::REA_A_UNIT_COST,
                        crate::REA_A_PENALTY,
                    ),
                }
            })
            .collect();
        b.attacker(Attacker::new(format!("emp{e}"), 1.0, actions));
    }
    b.budget(config.budget);
    b.allow_opt_out(true);
    Ok((b.build()?, profile))
}

/// Map a firing base-rule set to a Table VIII alert type: the exact match
/// when registered, otherwise the **most specific registered subset**
/// (largest cardinality, ties broken by higher adversary benefit) — how a
/// deployed TDMT labels an event whose exact signal combination was never
/// enumerated. Returns `None` when no registered subset fires (a
/// vocabulary gap; the access goes unlabelled).
pub fn resolve_alert_type(firing: &[usize]) -> Option<usize> {
    if firing.is_empty() {
        return None;
    }
    let mut best: Option<(usize, usize, f64)> = None; // (type, size, benefit)
    for (t, subset) in crate::TABLE8_SUBSETS.iter().enumerate() {
        if subset.iter().all(|r| firing.contains(r)) {
            let size = subset.len();
            let benefit = crate::REA_A_BENEFITS[t];
            let better = best
                .map(|(_, bs, bb)| size > bs || (size == bs && benefit > bb))
                .unwrap_or(true);
            if better {
                best = Some((t, size, benefit));
            }
        }
    }
    best.map(|(t, _, _)| t)
}

/// Build the Rea A game spec only.
pub fn build_game(config: &ReaAConfig) -> Result<GameSpec, GameError> {
    build_game_with_profile(config).map(|(spec, _)| spec)
}

/// A laptop-scale Rea A configuration used by tests, examples, and CI: a
/// smaller hospital and shorter window, same statistical structure.
pub fn small_config(seed: u64) -> ReaAConfig {
    ReaAConfig {
        hospital: HospitalConfig {
            n_employees: 200,
            n_patients: 800,
            pool_size: 500,
            benign_pool_size: 1000,
            ..Default::default()
        },
        workload: WorkloadConfig {
            n_days: 28,
            benign_per_day: 400,
            repeat_fraction: 0.4,
        },
        seed,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_exact_and_fallback() {
        // Exact registered subsets map to themselves.
        for (t, subset) in crate::TABLE8_SUBSETS.iter().enumerate() {
            assert_eq!(resolve_alert_type(subset), Some(t));
        }
        // [0,1]: most specific registered subset is [0] or [1]; benefit
        // tie-break picks type 2 (department, benefit 12) over type 1 (10).
        assert_eq!(resolve_alert_type(&[0, 1]), Some(1));
        // Full house resolves to the triple (type 7, index 6).
        assert_eq!(resolve_alert_type(&[0, 1, 2, 3]), Some(6));
        // Address alone is a vocabulary gap.
        assert_eq!(resolve_alert_type(&[2]), None);
        assert_eq!(resolve_alert_type(&[]), None);
    }

    #[test]
    fn rea_a_game_has_paper_shape() {
        let (spec, profile) = build_game_with_profile(&small_config(5)).unwrap();
        assert_eq!(spec.n_types(), 7);
        assert_eq!(spec.n_attackers(), 50);
        assert_eq!(spec.n_actions(), 2500);
        assert!(spec.allow_opt_out);
        assert_eq!(profile.n_types(), 7);
        spec.validate().unwrap();
    }

    #[test]
    fn every_attacker_has_an_alert_action() {
        let spec = build_game(&small_config(5)).unwrap();
        for att in &spec.attackers {
            assert!(
                att.actions.iter().any(|a| !a.alert_probs.is_empty()),
                "attacker {} has no alert-bearing action",
                att.name
            );
        }
    }

    #[test]
    fn rewards_follow_benefit_vector() {
        let spec = build_game(&small_config(5)).unwrap();
        for att in &spec.attackers {
            for act in &att.actions {
                if let Some(&(t, _)) = act.alert_probs.first() {
                    assert_eq!(act.reward, crate::REA_A_BENEFITS[t]);
                    assert_eq!(act.penalty, crate::REA_A_PENALTY);
                }
                assert_eq!(act.attack_cost, crate::REA_A_UNIT_COST);
            }
        }
    }

    #[test]
    fn fitted_means_track_table8() {
        let (_, profile) = build_game_with_profile(&small_config(5)).unwrap();
        for t in 0..7 {
            let target = crate::TABLE8_MEANS[t].min(500.0);
            let tol = crate::TABLE8_STDS[t] * 0.75 + 8.0;
            assert!(
                (profile.means[t] - target).abs() < tol,
                "type {t}: fitted mean {} vs target {target}",
                profile.means[t]
            );
        }
    }

    #[test]
    fn dedup_collapses_attack_grid_rows() {
        let spec = build_game(&small_config(5)).unwrap();
        let deduped = spec.dedup_actions();
        // 50 patients per attacker collapse to at most 8 distinct action
        // classes (7 alert types + benign).
        assert!(deduped.n_actions() <= 50 * 8);
        assert!(deduped.n_actions() < spec.n_actions());
    }

    #[test]
    fn build_is_deterministic() {
        let a = build_game(&small_config(9)).unwrap();
        let b = build_game(&small_config(9)).unwrap();
        assert_eq!(a.n_actions(), b.n_actions());
        for (x, y) in a.attackers.iter().zip(&b.attackers) {
            assert_eq!(x.name, y.name);
            for (ax, ay) in x.actions.iter().zip(&y.actions) {
                assert_eq!(ax.alert_probs, ay.alert_probs);
            }
        }
    }
}
