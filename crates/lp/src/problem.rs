//! LP model builder: variables, bounds, constraints, objective sense.

use crate::error::LpError;
use crate::simplex::{self, SimplexOptions};
use crate::solution::Solution;
use serde::{Deserialize, Serialize};

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Relation {
    /// `Σ aᵢxᵢ ≤ rhs`
    Le,
    /// `Σ aᵢxᵢ = rhs`
    Eq,
    /// `Σ aᵢxᵢ ≥ rhs`
    Ge,
}

/// Handle to a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Positional index of the variable in insertion order.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Handle to a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConstrId(pub(crate) usize);

impl ConstrId {
    /// Positional index of the constraint in insertion order.
    pub fn index(&self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Var {
    pub name: String,
    pub obj: f64,
    pub lo: f64,
    pub hi: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub name: String,
    pub terms: Vec<(usize, f64)>,
    pub rel: Relation,
    pub rhs: f64,
}

/// A linear program under construction.
///
/// Variables and constraints are appended; [`Problem::solve`] runs the
/// two-phase simplex and returns a [`Solution`] carrying primal values,
/// the objective, and dual values (shadow prices) per constraint.
#[derive(Debug, Clone)]
pub struct Problem {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<Var>,
    pub(crate) constraints: Vec<Constraint>,
}

impl Problem {
    /// Start an empty model with the given objective sense.
    pub fn new(sense: Sense) -> Self {
        Self {
            sense,
            vars: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Convenience constructor for a minimization model.
    pub fn minimize() -> Self {
        Self::new(Sense::Minimize)
    }

    /// Convenience constructor for a maximization model.
    pub fn maximize() -> Self {
        Self::new(Sense::Maximize)
    }

    /// The optimization direction of the model.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Add a decision variable.
    ///
    /// * `obj` — objective coefficient;
    /// * `lo` — lower bound (may be `f64::NEG_INFINITY` for a free variable);
    /// * `hi` — upper bound (may be `f64::INFINITY`).
    pub fn add_var(&mut self, name: impl Into<String>, obj: f64, lo: f64, hi: f64) -> VarId {
        let id = VarId(self.vars.len());
        self.vars.push(Var {
            name: name.into(),
            obj,
            lo,
            hi,
        });
        id
    }

    /// Add a free (unbounded both ways) variable.
    pub fn add_free_var(&mut self, name: impl Into<String>, obj: f64) -> VarId {
        self.add_var(name, obj, f64::NEG_INFINITY, f64::INFINITY)
    }

    /// Add a linear constraint `Σ coeff·var (rel) rhs`.
    ///
    /// Duplicate variable references in `terms` are summed.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        terms: Vec<(VarId, f64)>,
        rel: Relation,
        rhs: f64,
    ) -> ConstrId {
        let id = ConstrId(self.constraints.len());
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(terms.len());
        for (v, c) in terms {
            debug_assert!(v.0 < self.vars.len(), "variable from another model");
            if let Some(slot) = merged.iter_mut().find(|(idx, _)| *idx == v.0) {
                slot.1 += c;
            } else {
                merged.push((v.0, c));
            }
        }
        self.constraints.push(Constraint {
            name: name.into(),
            terms: merged,
            rel,
            rhs,
        });
        id
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn n_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.0].name
    }

    /// Name of a constraint.
    pub fn constraint_name(&self, c: ConstrId) -> &str {
        &self.constraints[c.0].name
    }

    /// Relation of constraint `i` (insertion order).
    pub fn constraint_relation(&self, i: usize) -> Relation {
        self.constraints[i].rel
    }

    /// Right-hand side of constraint `i`.
    pub fn constraint_rhs(&self, i: usize) -> f64 {
        self.constraints[i].rhs
    }

    /// Terms `(variable index, coefficient)` of constraint `i`.
    pub fn constraint_terms(&self, i: usize) -> &[(usize, f64)] {
        &self.constraints[i].terms
    }

    /// Objective coefficient of variable `j` (insertion order).
    pub fn var_objective(&self, j: usize) -> f64 {
        self.vars[j].obj
    }

    /// Bounds `(lo, hi)` of variable `j`.
    pub fn var_bounds(&self, j: usize) -> (f64, f64) {
        (self.vars[j].lo, self.vars[j].hi)
    }

    /// Validate structural soundness (finite coefficients, consistent
    /// bounds). Called by [`Problem::solve`]; exposed for early checking.
    pub fn validate(&self) -> Result<(), LpError> {
        for (i, v) in self.vars.iter().enumerate() {
            if !v.obj.is_finite() {
                return Err(LpError::InvalidModel(format!(
                    "objective coefficient of variable #{i} ({}) is not finite",
                    v.name
                )));
            }
            if v.lo.is_nan() || v.hi.is_nan() || v.lo > v.hi {
                return Err(LpError::InvalidModel(format!(
                    "variable #{i} ({}) has contradictory bounds [{}, {}]",
                    v.name, v.lo, v.hi
                )));
            }
            if v.lo == f64::INFINITY || v.hi == f64::NEG_INFINITY {
                return Err(LpError::InvalidModel(format!(
                    "variable #{i} ({}) has an empty domain",
                    v.name
                )));
            }
        }
        for (i, c) in self.constraints.iter().enumerate() {
            if !c.rhs.is_finite() {
                return Err(LpError::InvalidModel(format!(
                    "constraint #{i} ({}) has non-finite rhs",
                    c.name
                )));
            }
            for &(_, coeff) in &c.terms {
                if !coeff.is_finite() {
                    return Err(LpError::InvalidModel(format!(
                        "constraint #{i} ({}) has non-finite coefficient",
                        c.name
                    )));
                }
            }
        }
        Ok(())
    }

    /// Solve with default options.
    pub fn solve(&self) -> Result<Solution, LpError> {
        self.solve_with(&SimplexOptions::default())
    }

    /// Solve with explicit simplex options.
    pub fn solve_with(&self, opts: &SimplexOptions) -> Result<Solution, LpError> {
        self.validate()?;
        simplex::solve(self, opts)
    }

    /// Evaluate the objective at a candidate point (for verification).
    pub fn objective_at(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.vars.len());
        self.vars.iter().zip(x).map(|(v, &xi)| v.obj * xi).sum()
    }

    /// Maximum constraint/bound violation at a candidate point.
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.vars.len());
        let mut worst: f64 = 0.0;
        for (v, &xi) in self.vars.iter().zip(x) {
            if v.lo.is_finite() {
                worst = worst.max(v.lo - xi);
            }
            if v.hi.is_finite() {
                worst = worst.max(xi - v.hi);
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(j, a)| a * x[j]).sum();
            let viol = match c.rel {
                Relation::Le => lhs - c.rhs,
                Relation::Ge => c.rhs - lhs,
                Relation::Eq => (lhs - c.rhs).abs(),
            };
            worst = worst.max(viol);
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_sizes_and_names() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 1.0, 0.0, 10.0);
        let y = p.add_free_var("y", -1.0);
        let c = p.add_constraint("cap", vec![(x, 1.0), (y, 2.0)], Relation::Le, 5.0);
        assert_eq!(p.n_vars(), 2);
        assert_eq!(p.n_constraints(), 1);
        assert_eq!(p.var_name(x), "x");
        assert_eq!(p.var_name(y), "y");
        assert_eq!(p.constraint_name(c), "cap");
        assert_eq!(x.index(), 0);
        assert_eq!(c.index(), 0);
    }

    #[test]
    fn duplicate_terms_are_merged() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 1.0, 0.0, f64::INFINITY);
        p.add_constraint("c", vec![(x, 1.0), (x, 2.0)], Relation::Eq, 6.0);
        assert_eq!(p.constraints[0].terms, vec![(0, 3.0)]);
    }

    #[test]
    fn validate_rejects_bad_bounds() {
        let mut p = Problem::minimize();
        p.add_var("x", 1.0, 2.0, 1.0);
        assert!(matches!(p.validate(), Err(LpError::InvalidModel(_))));
    }

    #[test]
    fn validate_rejects_nan_rhs() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 1.0, 0.0, 1.0);
        p.add_constraint("c", vec![(x, 1.0)], Relation::Le, f64::NAN);
        assert!(matches!(p.validate(), Err(LpError::InvalidModel(_))));
    }

    #[test]
    fn violation_and_objective_evaluators() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", 2.0, 0.0, 4.0);
        let y = p.add_var("y", 3.0, 0.0, f64::INFINITY);
        p.add_constraint("c", vec![(x, 1.0), (y, 1.0)], Relation::Le, 5.0);
        assert_eq!(p.objective_at(&[1.0, 2.0]), 8.0);
        assert!(p.max_violation(&[1.0, 2.0]) <= 0.0);
        assert!((p.max_violation(&[5.0, 2.0]) - 2.0).abs() < 1e-12);
    }
}
