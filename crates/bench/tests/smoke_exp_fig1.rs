//! End-to-end smoke test: the `exp_fig1` experiment binary (Rea A budget
//! sweep with baselines) must run on a tiny configuration — one budget, few
//! Monte-Carlo samples, two random-threshold repetitions — and emit every
//! series column.

use std::process::Command;

#[test]
fn exp_fig1_runs_end_to_end_on_tiny_config() {
    let exe = env!("CARGO_BIN_EXE_exp_fig1");
    let out = Command::new(exe)
        .args(["20", "30", "2", "2"]) // budgets={20}, 30 samples, 2 repeats, 2 threads
        .output()
        .expect("exp_fig1 spawns");
    assert!(
        out.status.success(),
        "exp_fig1 exited with {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for column in [
        "proposed(eps=0.1)",
        "proposed(eps=0.2)",
        "proposed(eps=0.3)",
        "random-thresholds",
        "random-orders",
        "greedy-benefit",
    ] {
        assert!(
            stdout.contains(column),
            "missing column {column}:\n{stdout}"
        );
    }
    // One data row for the single requested budget.
    assert!(
        stdout.lines().any(|l| l.starts_with("| 20 ")),
        "missing data row for budget 20:\n{stdout}"
    );
}
