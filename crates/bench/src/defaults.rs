//! Shared experiment parameters: the paper's grids plus reproducible seeds.

/// Budget grid of Tables III–VII (Section IV.B).
pub const SYN_BUDGETS: [f64; 10] = [2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0, 20.0];

/// Step-size grid of Tables IV–VI.
pub const SYN_EPSILONS: [f64; 10] = [0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50];

/// Step-size subset reported in Table VII.
pub const SYN_EPSILONS_T7: [f64; 5] = [0.10, 0.20, 0.30, 0.40, 0.50];

/// Budget grid of Figure 1 (Rea A): 10..=100 step 10.
pub fn fig1_budgets() -> Vec<f64> {
    (1..=10).map(|i| (i * 10) as f64).collect()
}

/// Budget grid of Figure 2 (Rea B): 10..=250 step 20.
pub fn fig2_budgets() -> Vec<f64> {
    (0..=12).map(|i| (10 + i * 20) as f64).collect()
}

/// ISHM step sizes plotted in Figures 1–2.
pub const FIG_EPSILONS: [f64; 3] = [0.1, 0.2, 0.3];

/// Monte-Carlo sample count for `Pal` estimation in the Syn A experiments.
pub const SYN_SAMPLES: usize = 1000;

/// Monte-Carlo sample count for the (larger) real-data experiments.
pub const REAL_SAMPLES: usize = 400;

/// Master seed for all experiment randomness.
pub const SEED: u64 = 20180422; // the paper's arXiv date

/// Random-order baseline: sampled orders (paper: 2000).
pub const RANDOM_ORDER_SAMPLES: usize = 2000;

/// Random-threshold baseline repetitions (paper: 5000; we default lower —
/// each repetition is a full CGGS solve — and report the count used).
pub const RANDOM_THRESHOLD_REPEATS: usize = 120;

/// Parse an optional comma-separated CLI argument into a numeric grid,
/// falling back to `default`. Shared by the `exp_*` binaries.
pub fn parse_list(arg: Option<String>, default: &[f64]) -> Vec<f64> {
    arg.map(|s| {
        s.split(',')
            .map(|x| x.parse().expect("numeric list"))
            .collect()
    })
    .unwrap_or_else(|| default.to_vec())
}

/// Parse an optional CLI argument into a positive count, falling back to
/// `default`. Shared by the `exp_*` binaries for `[samples]`/`[threads]`.
pub fn parse_count(arg: Option<String>, default: usize) -> usize {
    let n = arg
        .map(|s| s.parse().expect("count is a positive integer"))
        .unwrap_or(default);
    assert!(n >= 1, "count must be at least 1");
    n
}

/// Remove a boolean `--flag` from the CLI argument list, reporting whether
/// it was present. Shared by the `exp_*` binaries.
pub fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

/// Render the detection-engine counters for `--cache-stats` output: one
/// line for the estimate cache, one for the prefix-state cache and trie
/// evaluator. The `columns_saved` field is the headline — it counts the
/// column passes the prefix-trie/sweep machinery avoided relative to
/// per-query scalar evaluation, so a nonzero value proves the incremental
/// batch path is engaged (the CI perf smoke greps for exactly that).
pub fn render_cache_stats(stats: &audit_game::detection::CacheStats) -> String {
    format!(
        "engine cache: hits={} misses={} entries={} evictions={}\n\
         engine trie: state_hits={} state_entries={} state_evictions={} \
         columns_evaluated={} columns_saved={}",
        stats.hits,
        stats.misses,
        stats.entries,
        stats.evictions,
        stats.state_hits,
        stats.state_entries,
        stats.state_evictions,
        stats.columns_evaluated,
        stats.columns_saved,
    )
}

/// Worker threads for batched `Pal` evaluation in the experiment drivers:
/// the `AUDIT_THREADS` environment variable when set (and ≥ 1), else 1.
/// Binaries that expose a `[threads]` CLI argument let it take precedence.
/// Thread count never changes results — only wall-clock time.
pub fn default_threads() -> usize {
    std::env::var("AUDIT_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_match_paper() {
        assert_eq!(SYN_BUDGETS.len(), 10);
        assert_eq!(SYN_EPSILONS.len(), 10);
        assert_eq!(
            fig1_budgets(),
            vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0]
        );
        let f2 = fig2_budgets();
        assert_eq!(f2.first(), Some(&10.0));
        assert_eq!(f2.last(), Some(&250.0));
        assert_eq!(f2.len(), 13);
    }

    #[test]
    fn parse_count_prefers_argument() {
        assert_eq!(parse_count(Some("7".into()), 3), 7);
        assert_eq!(parse_count(None, 3), 3);
    }

    #[test]
    #[should_panic]
    fn parse_count_rejects_zero() {
        parse_count(Some("0".into()), 1);
    }
}
