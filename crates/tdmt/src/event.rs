//! Access events: who touched what, when, with which contextual attributes.

use serde::{Deserialize, Serialize};

/// Identifier of an acting entity (employee, applicant, service account).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EntityId(pub u32);

/// Identifier of an accessed record (patient chart, application, row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RecordId(pub u32);

/// Attribute value attached to an event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    /// Boolean flag.
    Bool(bool),
    /// Integer quantity.
    Int(i64),
    /// Floating-point quantity (e.g. a distance in miles).
    Float(f64),
    /// Categorical/text value.
    Text(String),
}

impl AttrValue {
    /// Boolean view (`None` when the variant differs).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AttrValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AttrValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Float view (integers coerce).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            AttrValue::Float(f) => Some(*f),
            AttrValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Text view.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            AttrValue::Text(s) => Some(s),
            _ => None,
        }
    }
}

/// One database access event `⟨e, v⟩` at a given day, with contextual
/// attributes the rule engine predicates over (e.g. `"same_last_name"`,
/// `"distance_miles"`, `"purpose"`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessEvent {
    /// Acting entity.
    pub entity: EntityId,
    /// Accessed record.
    pub record: RecordId,
    /// Day index within the observation window.
    pub day: u32,
    /// Contextual attributes, sorted by key for deterministic iteration.
    attributes: Vec<(String, AttrValue)>,
}

impl AccessEvent {
    /// Construct a bare event.
    pub fn new(entity: EntityId, record: RecordId, day: u32) -> Self {
        Self {
            entity,
            record,
            day,
            attributes: Vec::new(),
        }
    }

    /// Attach (or replace) an attribute; builder style.
    pub fn with_attr(mut self, key: impl Into<String>, value: AttrValue) -> Self {
        self.set_attr(key, value);
        self
    }

    /// Attach (or replace) an attribute.
    pub fn set_attr(&mut self, key: impl Into<String>, value: AttrValue) {
        let key = key.into();
        match self
            .attributes
            .binary_search_by(|(k, _)| k.as_str().cmp(&key))
        {
            Ok(i) => self.attributes[i].1 = value,
            Err(i) => self.attributes.insert(i, (key, value)),
        }
    }

    /// Look up an attribute.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attributes
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| &self.attributes[i].1)
    }

    /// Boolean attribute with a default of `false`.
    pub fn flag(&self, key: &str) -> bool {
        self.attr(key).and_then(AttrValue::as_bool).unwrap_or(false)
    }

    /// Number of attributes.
    pub fn n_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// Key identifying a unique daily entity→record relationship; the
    /// paper's "repeated access" filter deduplicates on this.
    pub fn daily_key(&self) -> (u32, EntityId, RecordId) {
        (self.day, self.entity, self.record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_roundtrip_and_overwrite() {
        let mut ev = AccessEvent::new(EntityId(1), RecordId(2), 0)
            .with_attr("same_last_name", AttrValue::Bool(true))
            .with_attr("distance_miles", AttrValue::Float(0.3));
        assert!(ev.flag("same_last_name"));
        assert_eq!(ev.attr("distance_miles").unwrap().as_float(), Some(0.3));
        assert_eq!(ev.n_attributes(), 2);
        ev.set_attr("same_last_name", AttrValue::Bool(false));
        assert!(!ev.flag("same_last_name"));
        assert_eq!(ev.n_attributes(), 2);
    }

    #[test]
    fn missing_attributes_default_sanely() {
        let ev = AccessEvent::new(EntityId(1), RecordId(2), 0);
        assert!(ev.attr("absent").is_none());
        assert!(!ev.flag("absent"));
    }

    #[test]
    fn attr_value_coercions() {
        assert_eq!(AttrValue::Int(3).as_float(), Some(3.0));
        assert_eq!(AttrValue::Bool(true).as_int(), None);
        assert_eq!(AttrValue::Text("x".into()).as_text(), Some("x"));
        assert_eq!(AttrValue::Float(1.5).as_bool(), None);
    }

    #[test]
    fn daily_key_distinguishes_days_not_repeats() {
        let a = AccessEvent::new(EntityId(1), RecordId(2), 3);
        let b = AccessEvent::new(EntityId(1), RecordId(2), 3).with_attr("x", AttrValue::Int(1));
        let c = AccessEvent::new(EntityId(1), RecordId(2), 4);
        assert_eq!(a.daily_key(), b.daily_key());
        assert_ne!(a.daily_key(), c.daily_key());
    }
}
