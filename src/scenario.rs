//! The cross-crate scenario registry.
//!
//! `audit_game::scenario` defines the [`Scenario`] trait and the core
//! synthetic scenarios; the simulator crates each contribute their own
//! implementations. This module assembles them into the one registry the
//! experiment drivers (`--scenario <key>`), the examples, and the golden
//! conformance suite all share. Adding a workload to the whole toolchain
//! is therefore: implement [`Scenario`] in the crate that owns the data,
//! and register it in [`registry`] (one line).

pub use audit_game::scenario::{Registry, Scenario};

/// Every scenario in the workspace, keyed by string:
///
/// | key | source | setting |
/// |---|---|---|
/// | `syn-a` | core | paper Table II game, budget 2 |
/// | `syn-a-b6` | core | Table II game, budget 6 |
/// | `syn-a-b20` | core | Table II game, budget 20 |
/// | `syn-heavy-tail` | core | Zipf (heavy-tail) benign counts |
/// | `syn-correlated` | core | calm/storm regime-correlated counts |
/// | `syn-seasonal` | core | weekly seasonal arrival drift |
/// | `syn-quantal` | core | quantal-response (boundedly rational) attacker |
/// | `syn-general-sum` | core | general-sum damage-model attacker |
/// | `syn-adaptive` | core | adaptive attacker best-responding across epochs |
/// | `syn-wide25` | core | 25 alert types, planner decomposed tier |
/// | `syn-wide50` | core | 50 alert types, planner decomposed tier |
/// | `emr-reaa` | emrsim | Rea A EMR access alerts (Gaussian fit) |
/// | `emr-reaa-empirical` | emrsim | Rea A with empirical count fit |
/// | `credit-reab` | creditsim | Rea B credit applications |
/// | `tdmt-insider` | tdmt | rule-engine insider threat |
pub fn registry() -> Registry {
    let mut r = audit_game::scenario::registry();
    for s in emrsim::scenario::scenarios() {
        r.register(s);
    }
    for s in creditsim::scenario::scenarios() {
        r.register(s);
    }
    for s in tdmt::scenario::scenarios() {
        r.register(s);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_registry_spans_all_four_substrates() {
        let r = registry();
        assert!(r.len() >= 8, "only {} scenarios registered", r.len());
        let sources: std::collections::BTreeSet<String> =
            r.iter().map(|s| s.source().to_string()).collect();
        for expected in ["core", "emrsim", "creditsim", "tdmt"] {
            assert!(sources.contains(expected), "missing substrate {expected}");
        }
    }

    #[test]
    fn keys_are_stable() {
        let r = registry();
        assert_eq!(
            r.keys(),
            vec![
                "syn-a",
                "syn-a-b6",
                "syn-a-b20",
                "syn-heavy-tail",
                "syn-correlated",
                "syn-seasonal",
                "syn-quantal",
                "syn-general-sum",
                "syn-adaptive",
                "syn-wide25",
                "syn-wide50",
                "emr-reaa",
                "emr-reaa-empirical",
                "credit-reab",
                "tdmt-insider",
            ]
        );
    }
}
