//! EMR privacy-audit scenario (the paper's Rea A use case, end to end):
//! simulate a hospital's access logs, fit alert-count models, solve the
//! audit game, and compare the policy against the naive baselines.
//!
//! ```text
//! cargo run --release --example emr_audit
//! ```

use alert_audit::game::baselines::{greedy_by_benefit_loss, random_orders_loss};
use alert_audit::game::cggs::CggsConfig;
use alert_audit::game::detection::{DetectionEstimator, DetectionModel};
use alert_audit::game::ishm::{CggsEvaluator, Ishm, IshmConfig};
use emrsim::reaa::{build_game_with_profile, small_config};

fn main() {
    // 1. Simulate the hospital + 28 days of access logs and assemble the
    //    game (50 employees × 50 patients; see emrsim::reaa).
    let mut config = small_config(42);
    config.budget = 40.0;
    let (spec, profile) = build_game_with_profile(&config).expect("Rea A builds");

    println!("fitted alert-count statistics (cf. paper Table VIII):");
    for t in 0..profile.n_types() {
        println!(
            "  {:<38} mean {:>7.2}  std {:>6.2}",
            profile.type_names[t], profile.means[t], profile.stds[t]
        );
    }

    // 2. Solve with ISHM + CGGS (7 types → 5040 orderings, so column
    //    generation is the only viable inner solver).
    let working = spec.dedup_actions();
    let bank = working.sample_bank(400, 1);
    let est = DetectionEstimator::new(&working, &bank, DetectionModel::PaperApprox);
    let ishm = Ishm::new(IshmConfig {
        epsilon: 0.2,
        ..Default::default()
    });
    let mut eval = CggsEvaluator::new(&working, est, CggsConfig::default());
    let outcome = ishm.solve(&working, &mut eval).expect("ISHM solves");

    println!("\ngame-theoretic audit policy @ budget {}:", working.budget);
    println!("  auditor loss: {:.2}", outcome.value);
    for (t, b) in outcome.thresholds.iter().enumerate() {
        println!("  {:<38} threshold {:>4.0}", working.alert_types[t].name, b);
    }
    println!(
        "  mixture support: {} orders",
        outcome
            .master
            .p_orders
            .iter()
            .filter(|&&p| p > 1e-4)
            .count()
    );

    // 3. Baselines for context (Figure 1's comparison).
    let rnd_orders =
        random_orders_loss(&working, &est, &outcome.thresholds, 500, 3).expect("baseline");
    let greedy = greedy_by_benefit_loss(&working, &est).expect("baseline");
    println!("\nbaseline losses:");
    println!("  random audit order:      {rnd_orders:.2}");
    println!("  greedy by benefit:       {greedy:.2}");
    println!(
        "  game-theoretic policy:   {:.2}  (lower is better)",
        outcome.value
    );

    // 4. How many attackers are deterred outright?
    let deterred = outcome
        .master
        .u_attackers
        .iter()
        .filter(|&&u| u <= 1e-6)
        .count();
    println!(
        "\n{deterred} of {} potential attackers are fully deterred",
        working.n_attackers()
    );
}
