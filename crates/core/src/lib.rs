//! # audit-game — game-theoretic prioritization of database auditing
//!
//! A faithful, production-grade implementation of the alert-prioritization
//! Stackelberg game of *Yan, Li, Vorobeychik, Laszka, Fabbri & Malin, "Get
//! Your Workload in Order: Game Theoretic Prioritization of Database
//! Auditing", ICDE 2018* (arXiv:1801.07215).
//!
//! ## The game
//!
//! A database deploys a threat-detection module (TDMT) that tags suspicious
//! accesses with **alert types** `t ∈ T`. Benign workload produces random
//! per-period alert counts `Z_t ~ F_t`; auditing one type-`t` alert costs
//! `C_t` out of a total budget `B`. The **auditor** (defender) commits to
//!
//! 1. a randomized **prioritization** `p_o` over orderings `o` of the alert
//!    types, and
//! 2. a deterministic vector of per-type **budget thresholds** `b`,
//!
//! after which each **potential attacker** `e` (probability `p_e` of being
//! active) observes the policy and picks a victim `v` — or refrains. The
//! attack raises an alert of type `t` with probability `P^t_ev` and is
//! caught if that alert is among those audited under the realized benign
//! workload. The game is zero-sum: the auditor minimizes the total expected
//! attacker utility (the *Optimal Auditing Problem*, OAP), which the paper
//! proves NP-hard (Theorem 1; see [`hardness`]).
//!
//! ## What this crate provides
//!
//! * [`model`] — [`model::GameSpec`]: alert types, count distributions,
//!   attacker/victim payoff structure;
//! * [`ordering`] — audit orders, enumeration, precedence constraints;
//! * [`detection`] — the recourse budget math `B_t(o,b,Z)`, `n_t(o,b,Z)`
//!   and Monte-Carlo estimation of `Pal(o,b,t)` (paper eq. 1), both as a
//!   scalar reference and as the batched/parallel/memoizing
//!   [`detection::PalEngine`] all solvers run on;
//! * [`payoff`] — attacker utilities `U_a` (paper eq. 3) and payoff
//!   matrices;
//! * [`master`] — the zero-sum master LP (paper eq. 5) solved in its
//!   attacker-mixture orientation with dual recovery of `p_o`;
//! * [`cggs`] — Column Generation Greedy Search (paper Algorithm 1);
//! * [`ishm`] — Iterative Shrink Heuristic Method (paper Algorithm 2);
//! * [`brute_force`] — exhaustive threshold search (the paper's optimal
//!   baseline for Table III);
//! * [`baselines`] — the three alternative auditors of Section V.B;
//! * [`hardness`] — 0-1 knapsack and the executable Theorem 1 reduction;
//! * [`execute`] — an operational auditor that applies a solved policy to a
//!   realized stream of alerts;
//! * [`solver`] — a one-call facade combining ISHM + CGGS;
//! * [`planner`] — hardness-aware strategy selection, type-cluster
//!   decomposition, and parallel best-response pricing that scale the
//!   facade past the paper's ≤ 5-type exact ceiling to 20–50 types;
//! * [`datasets`] — the Syn A synthetic game (paper Table II) and random
//!   game generators for tests and benchmarks;
//! * [`scenario`] — the scenario substrate: a [`scenario::Scenario`]
//!   trait mapping a seed to a solvable game, with a string-keyed
//!   [`scenario::Registry`] of built-in settings (Syn A variants plus
//!   heavy-tail / correlated / seasonal / strategic-attacker families);
//! * [`attacker`] — the [`attacker::AttackerModel`] seam declaring which
//!   behavioural model (rational, quantal, general-sum, adaptive) a
//!   scenario's adversary follows;
//! * [`fuzz`] — a seeded random-game generator for property fuzzing
//!   beyond the hand-built scenario families.
//!
//! ## Quick start
//!
//! ```
//! use audit_game::prelude::*;
//!
//! let spec = audit_game::datasets::syn_a();
//! let config = SolverConfig { n_samples: 200, epsilon: 0.25, seed: 7, ..Default::default() };
//! let solution = OapSolver::new(config).solve(&spec).unwrap();
//! // The auditor's loss decreases with budget; at B = 2 it is positive.
//! assert!(solution.loss > 0.0);
//! assert!(!solution.policy.orders.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod attacker;
pub mod baselines;
pub mod brute_force;
pub mod cggs;
pub mod datasets;
pub mod detection;
pub mod error;
pub mod execute;
pub mod fuzz;
pub mod general_sum;
pub mod hardness;
pub mod ishm;
pub mod master;
pub mod model;
pub mod ordering;
pub mod payoff;
pub mod persist;
pub mod planner;
pub mod quantal;
pub mod scenario;
pub mod sensitivity;
pub mod simulation;
pub mod solver;

/// Convenient re-exports of the main public types.
pub mod prelude {
    pub use crate::attacker::{AdaptiveConfig, AttackerModel};
    pub use crate::baselines::{
        greedy_by_benefit_loss, random_orders_loss, random_thresholds_loss,
    };
    pub use crate::cggs::{Cggs, CggsConfig, CggsOutcome};
    pub use crate::detection::{
        CacheStats, DetectionEstimator, DetectionModel, PalEngine, PalQuery,
    };
    pub use crate::error::GameError;
    pub use crate::execute::{AuditPolicy, AuditRun};
    pub use crate::fuzz::{fuzz_game, FuzzConfig};
    pub use crate::general_sum::DamageModel;
    pub use crate::ishm::{Ishm, IshmConfig, IshmOutcome};
    pub use crate::master::{MasterSolution, MasterSolver};
    pub use crate::model::{AlertType, AttackAction, Attacker, GameSpec};
    pub use crate::ordering::{AuditOrder, PrecedenceConstraints};
    pub use crate::persist::PersistError;
    pub use crate::planner::{
        plan, DecomposedEvaluator, InstanceFeatures, SolveStrategy, TypeClusters, EXACT_MAX_TYPES,
        ISHM_FULL_MAX_TYPES,
    };
    pub use crate::quantal::QuantalResponse;
    pub use crate::scenario::{BankSource, Registry, Scenario, SnapshotVerify};
    pub use crate::simulation::{simulate_policy, SimulationReport};
    pub use crate::solver::{
        AuditSolution, DegradeReason, InnerKind, OapSolver, SolverConfig, WarmStart,
    };
}
