//! End-to-end smoke test: the `exp_scale` experiment binary must sweep a
//! tiny types-vs-latency curve through the planner, print the `strategy:`
//! and `latency:` grep lines CI pins, reject unknown scenario keys and
//! malformed type lists, and emit a parseable single-document JSON curve.

use std::process::Command;

#[test]
fn exp_scale_sweeps_a_tiny_curve_with_grep_lines() {
    let exe = env!("CARGO_BIN_EXE_exp_scale");
    let out = Command::new(exe)
        .args(["4,14", "24", "2"])
        .output()
        .expect("exp_scale spawns");
    assert!(
        out.status.success(),
        "exp_scale exited with {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // One strategy and one latency line per instance, and the planner
    // must have picked the exact tier at 4 types and a decomposition at
    // 14 (past the full-ISHM gate).
    assert!(stdout.contains("strategy: n=4 exact"), "{stdout}");
    assert!(
        stdout.contains("strategy: n=14 decomposed(clusters="),
        "{stdout}"
    );
    assert_eq!(stdout.matches("latency: n=").count(), 2, "{stdout}");
    assert!(stdout.contains("solve_ms="), "{stdout}");
}

#[test]
fn exp_scale_runs_a_registry_scenario_instead_of_the_sweep() {
    let exe = env!("CARGO_BIN_EXE_exp_scale");
    let out = Command::new(exe)
        .args(["--scenario", "syn-a", "5,10", "24"])
        .output()
        .expect("exp_scale spawns");
    assert!(
        out.status.success(),
        "stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // --scenario replaces the sweep: exactly one instance, at syn-a's
    // conformance width.
    assert_eq!(stdout.matches("latency: n=").count(), 1, "{stdout}");
    assert!(stdout.contains("strategy: n=4 exact"), "{stdout}");
    assert!(stdout.contains("syn-a"), "{stdout}");
}

#[test]
fn exp_scale_rejects_an_unknown_scenario_key() {
    let exe = env!("CARGO_BIN_EXE_exp_scale");
    let out = Command::new(exe)
        .args(["--scenario", "no-such-scenario"])
        .output()
        .expect("exp_scale spawns");
    assert!(!out.status.success(), "unknown scenario must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("no-such-scenario"),
        "error should name the bad key:\n{stderr}"
    );
}

#[test]
fn exp_scale_rejects_a_malformed_types_list() {
    let exe = env!("CARGO_BIN_EXE_exp_scale");
    let out = Command::new(exe)
        .args(["4.5,10"])
        .output()
        .expect("exp_scale spawns");
    assert!(!out.status.success(), "fractional type count must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("integers"),
        "error should explain the constraint:\n{stderr}"
    );
}

#[test]
fn exp_scale_json_is_a_single_parseable_curve_document() {
    let exe = env!("CARGO_BIN_EXE_exp_scale");
    let out = Command::new(exe)
        .args(["4,14", "24", "1", "--json"])
        .output()
        .expect("exp_scale spawns");
    assert!(
        out.status.success(),
        "stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let doc = alert_audit::json::Value::parse(&stdout).expect("stdout is one JSON document");
    let curve = doc
        .get("curve")
        .and_then(alert_audit::json::Value::as_arr)
        .expect("curve array");
    assert_eq!(curve.len(), 2);
    for point in curve {
        for field in ["n_types", "loss", "thresholds_explored", "solve_ms"] {
            assert!(
                point
                    .get(field)
                    .and_then(alert_audit::json::Value::as_f64)
                    .is_some(),
                "point lacks numeric {field}: {stdout}"
            );
        }
        assert!(point
            .get("strategy")
            .and_then(alert_audit::json::Value::as_str)
            .is_some());
    }
    // The grep lines stay on stderr in JSON mode, keeping stdout pure.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("strategy: n="), "{stderr}");
}
