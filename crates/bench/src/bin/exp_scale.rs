//! Experiment E12 — the scale-out curve: alert-type count vs planner
//! strategy and solve latency, through the hardness-aware planner
//! (`InnerKind::Auto`) from the paper's ≤ 5-type exact regime up to
//! 50-type instances.
//!
//! ```text
//! cargo run -p audit-bench --release --bin exp_scale [types-list] [samples] [threads] \
//!     [--scenario <key>] [--seed <n>] [--budget-per-type <b>] [--json]
//! ```
//!
//! By default the driver sweeps `wide_game` instances at the listed type
//! counts (`5,10,15,20,25,30,40,50`), with the budget scaling as
//! `--budget-per-type` (default 0.25) audit units per type; `--scenario`
//! replaces the sweep with one registry scenario at conformance scale.
//! Each instance is solved once through `OapSolver` with the planner
//! choosing the strategy; the run prints one `strategy:` and one
//! `latency:` grep line per instance (the CI scale smoke pins both) and,
//! with `--json`, a single JSON document of the whole curve on stdout
//! (the table and grep lines move to stderr). The curve is captured in
//! `BENCH_scale.json`.

use alert_audit::json::Value;
use audit_bench::cli::{
    default_threads, parse_count, parse_list, take_flag, take_scenario_flag, take_value_flag,
};
use audit_bench::report::Table;
use audit_game::model::GameSpec;
use audit_game::scenario::wide_game;
use audit_game::solver::{InnerKind, OapSolver, SolverConfig};

const DEFAULT_SIZES: [f64; 8] = [5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 40.0, 50.0];

/// One point of the curve.
struct Point {
    label: String,
    n_types: usize,
    strategy: String,
    loss: f64,
    explored: usize,
    solve_ms: f64,
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let scenario_key = take_scenario_flag(&mut args);
    let seed: u64 = take_value_flag(&mut args, "--seed")
        .map(|s| s.parse().expect("--seed is a u64"))
        .unwrap_or(7);
    let budget_per_type: f64 = take_value_flag(&mut args, "--budget-per-type")
        .map(|s| s.parse().expect("--budget-per-type is a number"))
        .unwrap_or(0.25);
    let json = take_flag(&mut args, "--json");
    let sizes: Vec<usize> = parse_list(args.first().cloned(), &DEFAULT_SIZES)
        .into_iter()
        .map(|x| {
            assert!(
                x >= 2.0 && x.fract() == 0.0,
                "type counts must be integers >= 2, got {x}"
            );
            x as usize
        })
        .collect();
    let samples = parse_count(args.get(1).cloned(), 60);
    let threads = parse_count(args.get(2).cloned(), default_threads());

    // The instance list: either the wide_game sweep or one registry
    // scenario at its conformance (small) scale.
    let instances: Vec<(String, GameSpec)> = match &scenario_key {
        Some(key) => {
            let reg = alert_audit::scenario::registry();
            let sc = reg.resolve(key).unwrap_or_else(|e| panic!("{e}"));
            let spec = sc.build_small(seed).expect("scenario builds");
            vec![(key.clone(), spec)]
        }
        None => sizes
            .iter()
            .map(|&n| {
                let budget = (budget_per_type * n as f64).max(2.0);
                let spec = wide_game(seed, n, 6, 6, budget).expect("wide game builds");
                (format!("wide{n}"), spec)
            })
            .collect(),
    };

    eprintln!(
        "scale: {} instance(s), {samples} sample(s), {threads} thread(s), seed {seed}",
        instances.len()
    );

    let mut points: Vec<Point> = Vec::new();
    for (label, spec) in &instances {
        let solver = OapSolver::new(SolverConfig {
            epsilon: 0.5,
            n_samples: samples,
            seed,
            inner: InnerKind::Auto,
            threads,
            ..Default::default()
        });
        let t0 = std::time::Instant::now();
        let sol = solver
            .solve(spec)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        let solve_ms = t0.elapsed().as_secs_f64() * 1e3;
        points.push(Point {
            label: label.clone(),
            n_types: spec.n_types(),
            strategy: sol.strategy.describe(),
            loss: sol.loss,
            explored: sol.stats.thresholds_explored,
            solve_ms,
        });
    }

    // In --json mode stdout must stay a single parseable document, so the
    // table and grep lines move to stderr there.
    let out = |line: String| {
        if json {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };

    let mut table = Table::new(vec![
        "instance", "types", "strategy", "loss", "explored", "solve ms",
    ]);
    for p in &points {
        table.row(vec![
            p.label.clone(),
            format!("{}", p.n_types),
            p.strategy.clone(),
            format!("{:.6}", p.loss),
            format!("{}", p.explored),
            format!("{:.1}", p.solve_ms),
        ]);
    }
    out(table.render());
    for p in &points {
        out(format!("strategy: n={} {}", p.n_types, p.strategy));
        out(format!(
            "latency: n={} solve_ms={:.1} explored={}",
            p.n_types, p.solve_ms, p.explored
        ));
    }

    if json {
        let doc = Value::obj([
            ("seed", Value::Num(seed as f64)),
            ("samples", Value::Num(samples as f64)),
            ("threads", Value::Num(threads as f64)),
            (
                "curve",
                Value::Arr(
                    points
                        .iter()
                        .map(|p| {
                            Value::obj([
                                ("instance", Value::Str(p.label.clone())),
                                ("n_types", Value::Num(p.n_types as f64)),
                                ("strategy", Value::Str(p.strategy.clone())),
                                ("loss", Value::Num(p.loss)),
                                ("thresholds_explored", Value::Num(p.explored as f64)),
                                ("solve_ms", Value::Num(p.solve_ms)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        println!("{}", doc.render());
    }
}
