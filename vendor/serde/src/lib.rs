//! Offline shim for `serde`.
//!
//! Mirrors the subset of serde's surface the workspace touches: the
//! `Serialize` / `Deserialize` trait names and the derive macros re-exported
//! under the same names (serde's `derive` feature). The traits are markers —
//! the workspace never calls a serializer, it only tags types as
//! serializable for future wire formats. Replacing this with real serde is a
//! drop-in swap in the root `[workspace.dependencies]`.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

// Every type is trivially "serializable" under the shim, so manual bounds
// like `T: Serialize` keep compiling if they appear later.
impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
