//! Rule-based alert generation with combination alert types.
//!
//! Base rules are named predicates over [`AccessEvent`]s. Because one event
//! may satisfy several base rules (the paper's example: a husband accessing
//! his wife's record fires both *same last name* and *same address*), the
//! engine maps each **set** of co-firing base rules to a single combination
//! alert type — exactly how Table VIII's seven Rea A types arise from four
//! base rules.

use crate::event::AccessEvent;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A named predicate over events.
#[derive(Clone)]
pub struct Rule {
    name: String,
    predicate: Arc<dyn Fn(&AccessEvent) -> bool + Send + Sync>,
}

impl Rule {
    /// Build a rule from a closure.
    pub fn new(
        name: impl Into<String>,
        predicate: impl Fn(&AccessEvent) -> bool + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            predicate: Arc::new(predicate),
        }
    }

    /// Convenience: rule that fires when a boolean attribute is set.
    pub fn flag(name: impl Into<String>, attr: impl Into<String>) -> Self {
        let attr = attr.into();
        Self::new(name, move |ev| ev.flag(&attr))
    }

    /// The rule's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Evaluate the rule.
    pub fn matches(&self, ev: &AccessEvent) -> bool {
        (self.predicate)(ev)
    }
}

impl fmt::Debug for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Rule").field("name", &self.name).finish()
    }
}

/// How co-firing base rules combine into alert types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CombinationPolicy {
    /// Every observed non-empty subset of base rules becomes (or maps to) a
    /// registered combination type; unregistered subsets are an error at
    /// labelling time. This is the Rea A setting, where the seven types of
    /// Table VIII enumerate the subsets that actually occur.
    #[default]
    Registered,
    /// Only the lowest-indexed firing base rule labels the event (a common
    /// simplification for rule lists with priorities).
    FirstMatch,
}

/// Maps events to alert types through base rules + combination table.
pub struct RuleEngine {
    rules: Vec<Rule>,
    policy: CombinationPolicy,
    /// Registered combinations: sorted base-rule index set → alert type.
    combos: HashMap<Vec<usize>, usize>,
    /// Human-readable name per alert type.
    type_names: Vec<String>,
}

impl fmt::Debug for RuleEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RuleEngine")
            .field("rules", &self.rules)
            .field("policy", &self.policy)
            .field("n_types", &self.type_names.len())
            .finish()
    }
}

impl RuleEngine {
    /// Start an engine with the given base rules and combination policy.
    pub fn new(rules: Vec<Rule>, policy: CombinationPolicy) -> Self {
        let mut engine = Self {
            rules,
            policy,
            combos: HashMap::new(),
            type_names: Vec::new(),
        };
        if engine.policy == CombinationPolicy::FirstMatch {
            // Under first-match, type k ≡ base rule k.
            for i in 0..engine.rules.len() {
                let name = engine.rules[i].name().to_string();
                engine.type_names.push(name);
                engine.combos.insert(vec![i], i);
            }
        }
        engine
    }

    /// Register a combination alert type (Registered policy). `base_rules`
    /// are indices into the rule list; returns the new alert-type index.
    pub fn register_combination(
        &mut self,
        name: impl Into<String>,
        mut base_rules: Vec<usize>,
    ) -> usize {
        assert_eq!(
            self.policy,
            CombinationPolicy::Registered,
            "combinations are only registered under the Registered policy"
        );
        base_rules.sort_unstable();
        base_rules.dedup();
        assert!(
            !base_rules.is_empty(),
            "a combination needs at least one rule"
        );
        assert!(
            base_rules.iter().all(|&r| r < self.rules.len()),
            "combination references unknown base rule"
        );
        assert!(
            !self.combos.contains_key(&base_rules),
            "combination {base_rules:?} already registered"
        );
        let id = self.type_names.len();
        self.type_names.push(name.into());
        self.combos.insert(base_rules, id);
        id
    }

    /// Number of alert types.
    pub fn n_types(&self) -> usize {
        self.type_names.len()
    }

    /// Name of an alert type.
    pub fn type_name(&self, t: usize) -> &str {
        &self.type_names[t]
    }

    /// The base rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Indices of the base rules firing on an event.
    pub fn firing_rules(&self, ev: &AccessEvent) -> Vec<usize> {
        self.rules
            .iter()
            .enumerate()
            .filter(|(_, r)| r.matches(ev))
            .map(|(i, _)| i)
            .collect()
    }

    /// Label an event: `Ok(None)` for benign, `Ok(Some(type))` for an
    /// alert, `Err` for an unregistered combination (Registered policy),
    /// which signals a gap in the alert vocabulary.
    pub fn label(&self, ev: &AccessEvent) -> Result<Option<usize>, Vec<usize>> {
        let firing = self.firing_rules(ev);
        if firing.is_empty() {
            return Ok(None);
        }
        match self.policy {
            CombinationPolicy::FirstMatch => Ok(Some(firing[0])),
            CombinationPolicy::Registered => {
                self.combos.get(&firing).map(|&t| Some(t)).ok_or(firing)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AttrValue, EntityId, RecordId};

    fn ev(flags: &[&str]) -> AccessEvent {
        let mut e = AccessEvent::new(EntityId(1), RecordId(2), 0);
        for f in flags {
            e.set_attr(*f, AttrValue::Bool(true));
        }
        e
    }

    fn base_rules() -> Vec<Rule> {
        vec![
            Rule::flag("last-name", "same_last_name"),
            Rule::flag("department", "same_department"),
            Rule::flag("address", "same_address"),
            Rule::new("neighbor", |e: &AccessEvent| {
                e.attr("distance_miles")
                    .and_then(AttrValue::as_float)
                    .map(|d| d <= 0.5)
                    .unwrap_or(false)
            }),
        ]
    }

    #[test]
    fn first_match_labels_by_priority() {
        let engine = RuleEngine::new(base_rules(), CombinationPolicy::FirstMatch);
        assert_eq!(engine.n_types(), 4);
        assert_eq!(engine.label(&ev(&["same_department"])), Ok(Some(1)));
        // Both last-name and department fire: priority picks last-name.
        assert_eq!(
            engine.label(&ev(&["same_last_name", "same_department"])),
            Ok(Some(0))
        );
        assert_eq!(engine.label(&ev(&[])), Ok(None));
    }

    #[test]
    fn registered_combinations_mirror_table_viii() {
        let mut engine = RuleEngine::new(base_rules(), CombinationPolicy::Registered);
        let t_name = engine.register_combination("Same Last Name", vec![0]);
        let t_dept = engine.register_combination("Department Co-worker", vec![1]);
        let t_both = engine.register_combination("Last Name; Same address", vec![0, 2]);
        assert_eq!((t_name, t_dept, t_both), (0, 1, 2));
        assert_eq!(engine.label(&ev(&["same_last_name"])), Ok(Some(0)));
        assert_eq!(engine.label(&ev(&["same_department"])), Ok(Some(1)));
        assert_eq!(
            engine.label(&ev(&["same_last_name", "same_address"])),
            Ok(Some(2))
        );
        assert_eq!(engine.type_name(2), "Last Name; Same address");
    }

    #[test]
    fn unregistered_combination_is_reported() {
        let mut engine = RuleEngine::new(base_rules(), CombinationPolicy::Registered);
        engine.register_combination("Same Last Name", vec![0]);
        // address alone was never registered.
        assert_eq!(engine.label(&ev(&["same_address"])), Err(vec![2]));
    }

    #[test]
    fn numeric_predicate_rule() {
        let engine = RuleEngine::new(base_rules(), CombinationPolicy::FirstMatch);
        let near = AccessEvent::new(EntityId(1), RecordId(1), 0)
            .with_attr("distance_miles", AttrValue::Float(0.4));
        let far = AccessEvent::new(EntityId(1), RecordId(1), 0)
            .with_attr("distance_miles", AttrValue::Float(2.0));
        assert_eq!(engine.label(&near), Ok(Some(3)));
        assert_eq!(engine.label(&far), Ok(None));
    }

    #[test]
    fn firing_rules_are_sorted_and_deduplicated_by_construction() {
        let mut engine = RuleEngine::new(base_rules(), CombinationPolicy::Registered);
        engine.register_combination("triple", vec![2, 0, 0, 2]); // normalized
        assert_eq!(
            engine.label(&ev(&["same_last_name", "same_address"])),
            Ok(Some(0))
        );
    }

    #[test]
    #[should_panic]
    fn duplicate_combination_rejected() {
        let mut engine = RuleEngine::new(base_rules(), CombinationPolicy::Registered);
        engine.register_combination("a", vec![0]);
        engine.register_combination("b", vec![0]);
    }
}
