//! Experiment E11 — strategic attacker models beyond full rationality.
//!
//! Sweeps the quantal-response rationality parameter λ and reports, at
//! each λ, the ISHM-solved QR policy's loss next to the rational
//! best-response loss at the same thresholds (the "price of assuming
//! rationality"). Then solves the general-sum damage objective and
//! compares the damage-optimal policy with the zero-sum equilibrium's
//! damage under the scenario's damage model.
//!
//! ```text
//! cargo run -p audit-bench --release --bin exp_attacker \
//!     [--scenario <key>] [--samples <n>]
//! ```
//!
//! Both analyses enumerate the full `|T|!` order set, so the scenario's
//! game must have at most 5 alert types (the registry's conformance gate).

use audit_bench::cli::{parse_count, take_scenario_flag, take_value_flag};
use audit_bench::report::{f4, Table};
use audit_game::attacker::AttackerModel;
use audit_game::detection::{DetectionEstimator, DetectionModel};
use audit_game::general_sum::{damage_under_mixture, DamageModel, GeneralSumEvaluator};
use audit_game::ishm::{Ishm, IshmConfig};
use audit_game::master::MasterSolver;
use audit_game::ordering::AuditOrder;
use audit_game::payoff::PayoffMatrix;
use audit_game::quantal::{solve_qr_thresholds, QuantalResponse};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let scenario_key = take_scenario_flag(&mut args).unwrap_or_else(|| "syn-quantal".into());
    let n_samples = parse_count(take_value_flag(&mut args, "--samples"), 120);

    let reg = alert_audit::scenario::registry();
    let scenario = reg
        .resolve(&scenario_key)
        .unwrap_or_else(|e| panic!("{e}"))
        .clone();
    let seed = scenario.default_seed();
    let spec = scenario.build_small(seed).expect("scenario builds");
    assert!(
        spec.n_types() <= 5,
        "{}: {} alert types — exact order enumeration needs at most 5",
        scenario.key(),
        spec.n_types()
    );
    eprintln!(
        "attacker models on scenario {}: {} ({} types, declared model: {})",
        scenario.key(),
        scenario.describe(),
        spec.n_types(),
        scenario.attacker_model().describe()
    );

    let bank = spec.sample_bank(n_samples, seed);
    let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
    let orders = AuditOrder::enumerate_all(spec.n_types());

    let mut table = Table::new(vec!["lambda", "qr loss", "rational loss", "delta"]);
    for lambda in [0.0, 0.5, 1.0, 1.5, 2.0, 4.0, 16.0] {
        let out = solve_qr_thresholds(&spec, &est, QuantalResponse::new(lambda), 0.3)
            .expect("QR search solves");
        let matrix = PayoffMatrix::build(&spec, &est, orders.clone(), &out.thresholds);
        let rational = matrix.loss_under_mixture(&spec, &out.rational.p_orders);
        table.row(vec![
            format!("{lambda:.1}"),
            f4(out.value),
            f4(rational),
            f4(rational - out.value),
        ]);
    }
    println!("{}", table.render());

    let model = match scenario.attacker_model() {
        AttackerModel::GeneralSum(m) => m,
        _ => DamageModel::default(),
    };
    let mut eval = GeneralSumEvaluator::new(&spec, est, orders.clone(), model);
    let outcome = Ishm::new(IshmConfig {
        epsilon: 0.3,
        ..Default::default()
    })
    .solve(&spec, &mut eval)
    .expect("general-sum search solves");
    let matrix = PayoffMatrix::build(&spec, &est, orders, &outcome.thresholds);
    let zero_sum = MasterSolver::solve(&spec, &matrix).expect("master solves");
    let damage_at_eq = damage_under_mixture(&spec, &matrix, &zero_sum.p_orders, &model);
    println!(
        "general-sum damage (R x {}, M x {}): damage-optimal {} vs zero-sum policy {}",
        f4(model.damage_per_reward),
        f4(model.recovery_per_penalty),
        f4(outcome.value),
        f4(damage_at_eq)
    );
}
