//! End-to-end smoke test: the `exp_table5` experiment binary (ISHM+CGGS
//! grid) must run on a tiny configuration with an explicit `--scenario`
//! selection and emit a well-formed grid.

use std::process::Command;

#[test]
fn exp_table5_runs_end_to_end_with_scenario_flag() {
    let exe = env!("CARGO_BIN_EXE_exp_table5");
    let out = Command::new(exe)
        .args(["2", "0.3", "40", "1", "--scenario", "syn-a"])
        .output()
        .expect("exp_table5 spawns");
    assert!(
        out.status.success(),
        "exp_table5 exited with {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("eps=0.3"),
        "missing epsilon column in output:\n{stdout}"
    );
    let row = stdout
        .lines()
        .find(|l| l.starts_with("| 2 "))
        .expect("data row for budget 2");
    assert!(row.contains('['), "row should carry thresholds: {row}");
    // The scenario resolution must be echoed on stderr.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("scenario syn-a"),
        "stderr should echo the resolved scenario:\n{stderr}"
    );
}

#[test]
fn exp_table5_rejects_unknown_scenario_with_key_list() {
    let exe = env!("CARGO_BIN_EXE_exp_table5");
    let out = Command::new(exe)
        .args(["2", "0.3", "40", "1", "--scenario", "no-such-scenario"])
        .output()
        .expect("exp_table5 spawns");
    assert!(!out.status.success(), "unknown scenario must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("no-such-scenario") && stderr.contains("syn-a"),
        "error should name the bad key and list known keys:\n{stderr}"
    );
}
