//! Prefix trie over a batch of `Pal` queries.
//!
//! A batch of `(sequence, thresholds)` queries is grouped into a trie whose
//! edges are `(type, canonical threshold bits)` pairs: two queries share a
//! node exactly when they audit the same types in the same order under
//! thresholds that are detection-equivalent on those types. The per-sample
//! evaluation state after an audit prefix (the consumed-budget vector and
//! the detection-mass sum of the last type) is a pure function of that
//! node, so a batch of `k` sequences sharing an `l`-long prefix pays for
//! the prefix once instead of `k` times. CGGS best-response expansion
//! generates exactly such batches (every greedy trial extends one shared
//! prefix), and ISHM's shrink candidates share every prefix that avoids
//! the shrunk coordinate.
//!
//! **Commutative prefix folding:** for the detection models whose per-type
//! budget consumption does not depend on the budget already consumed
//! (paper-approx and attack-inclusive: `spent = min(b_t, Z_t·C_t)`), the
//! consumed vector after a prefix is a *left-associated sum*
//! `(s₁ + s₂) + s₃ + …` whose first two addends commute bitwise under
//! IEEE 754. A node whose path swaps the first two elements of another
//! node's path therefore carries the **identical** consumed vector and
//! the identical last-type sum — so paths are canonicalized (first two
//! elements sorted once the path has a strict successor, i.e. length ≥ 3)
//! and such nodes merge outright. On a full `|T|!`-order frontier this
//! halves the deep trie levels. The operational model's consumption *is*
//! state-dependent, so folding is disabled there.
//!
//! Nodes are created parent-before-child, so ascending node id is a valid
//! topological order — the engine relies on this when it assembles results
//! and inserts prefix states deterministically.

use super::PalQuery;
use std::collections::HashMap;

/// Cache key of an audit prefix: the types in audit order plus the
/// canonical bit pattern of each one's threshold (first two elements
/// sorted when folding applies). Thresholds of types *outside* the
/// sequence cannot influence the evaluation, so they are excluded —
/// queries differing only there share keys, nodes, and cached results.
pub(super) type PalKey = (Vec<u16>, Vec<u64>);

/// One trie node; node 0 is the root (empty prefix).
pub(super) struct Node {
    /// Alert type on the edge from the parent (unused for the root).
    pub t: usize,
    /// Representative raw threshold for the edge. All thresholds mapping
    /// to the same canonical bits are detection-equivalent, so any
    /// representative yields bit-identical results.
    pub b: f64,
    /// Prefix length.
    pub depth: usize,
    /// Child node ids, in first-insertion order (a folded node is listed
    /// only under its first parent, so the trie stays a tree).
    pub children: Vec<usize>,
    /// Canonical path key (doubles as the prefix-state cache key).
    pub key: PalKey,
}

/// The trie over one batch's cache misses.
pub(super) struct QueryTrie {
    pub nodes: Vec<Node>,
    /// Per miss query (aligned with the `miss_idx` passed to `build`): the
    /// node id of every position of its sequence. Result assembly reads
    /// each position's detection-mass sum off its node.
    pub chains: Vec<Vec<usize>>,
}

impl QueryTrie {
    /// Group `queries[miss_idx]` into a trie. `canon` maps `(type, raw
    /// threshold)` to the canonical bit pattern identifying the edge;
    /// `fold_commutative` enables the first-two-swap merge (sound for the
    /// consumption-order-independent detection models only).
    pub fn build(
        queries: &[PalQuery],
        miss_idx: &[usize],
        fold_commutative: bool,
        canon: &dyn Fn(usize, f64) -> u64,
    ) -> Self {
        let mut nodes = vec![Node {
            t: usize::MAX,
            b: f64::NAN,
            depth: 0,
            children: Vec::new(),
            key: (Vec::new(), Vec::new()),
        }];
        let mut by_key: HashMap<PalKey, usize> = HashMap::new();
        let mut chains = Vec::with_capacity(miss_idx.len());
        for &qi in miss_idx {
            let q = &queries[qi];
            let mut cur = 0usize;
            let mut chain = Vec::with_capacity(q.seq.len());
            for &t in &q.seq {
                let bits = canon(t, q.thresholds[t]);
                let mut key = nodes[cur].key.clone();
                key.0.push(t as u16);
                key.1.push(bits);
                // Canonicalize: the first two path elements commute once
                // the path extends beyond them. The parent's key is
                // already canonical, so one conditional swap suffices.
                if fold_commutative
                    && key.0.len() >= 3
                    && (key.0[0], key.1[0]) > (key.0[1], key.1[1])
                {
                    key.0.swap(0, 1);
                    key.1.swap(0, 1);
                }
                cur = match by_key.get(&key) {
                    Some(&id) => id,
                    None => {
                        let id = nodes.len();
                        nodes.push(Node {
                            t,
                            b: q.thresholds[t],
                            depth: nodes[cur].depth + 1,
                            children: Vec::new(),
                            key: key.clone(),
                        });
                        nodes[cur].children.push(id);
                        by_key.insert(key, id);
                        id
                    }
                };
                chain.push(cur);
            }
            chains.push(chain);
        }
        Self { nodes, chains }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(_t: usize, b: f64) -> u64 {
        b.to_bits()
    }

    fn trie_of(seqs: &[&[usize]], thresholds: &[f64], fold: bool) -> QueryTrie {
        let queries: Vec<PalQuery> = seqs
            .iter()
            .map(|s| PalQuery::prefix(s, thresholds))
            .collect();
        let idx: Vec<usize> = (0..queries.len()).collect();
        QueryTrie::build(&queries, &idx, fold, &raw)
    }

    #[test]
    fn shared_prefixes_share_nodes() {
        let trie = trie_of(&[&[0, 1, 2], &[0, 1], &[0, 2, 1]], &[1.0, 2.0, 3.0], false);
        // Root + prefixes {0, 01, 012, 02, 021} = 6 nodes, not 1 + 3+2+3.
        assert_eq!(trie.nodes.len(), 6);
        // Query 1 ends on the depth-2 node of query 0's path.
        assert_eq!(trie.chains[1], trie.chains[0][..2].to_vec());
    }

    #[test]
    fn thresholds_outside_the_sequence_do_not_split_nodes() {
        let a = PalQuery::prefix(&[0], &[1.0, 5.0]);
        let b = PalQuery::prefix(&[0], &[1.0, 9.0]);
        let trie = QueryTrie::build(&[a, b], &[0, 1], false, &raw);
        assert_eq!(trie.nodes.len(), 2);
        assert_eq!(trie.chains[0], trie.chains[1]);
    }

    #[test]
    fn differing_thresholds_on_the_path_split_nodes() {
        let a = PalQuery::prefix(&[0, 1], &[1.0, 5.0]);
        let b = PalQuery::prefix(&[0, 1], &[1.0, 9.0]);
        let trie = QueryTrie::build(&[a, b], &[0, 1], false, &raw);
        // Shared node for type 0, split children for type 1.
        assert_eq!(trie.nodes.len(), 4);
    }

    #[test]
    fn commutative_folding_merges_first_two_swaps() {
        let th = [1.0, 2.0, 3.0];
        // Without folding: two full depth-3 paths (7 nodes with root).
        let plain = trie_of(&[&[0, 1, 2], &[1, 0, 2]], &th, false);
        assert_eq!(plain.nodes.len(), 7);
        // With folding: [0,1,2] and [1,0,2] share their depth-3 node; the
        // depth-1/2 nodes stay distinct (their own sums differ).
        let folded = trie_of(&[&[0, 1, 2], &[1, 0, 2]], &th, true);
        assert_eq!(folded.nodes.len(), 6);
        assert_eq!(folded.chains[0][2], folded.chains[1][2]);
        assert_ne!(folded.chains[0][1], folded.chains[1][1]);
        // Swapping a *later* pair does not fold: [0,1,2] and [0,2,1] share
        // only their [0] prefix (5 non-root nodes), exactly as unfolded.
        let other = trie_of(&[&[0, 1, 2], &[0, 2, 1]], &th, true);
        assert_eq!(other.nodes.len(), 6);
        assert_eq!(
            trie_of(&[&[0, 1, 2], &[0, 2, 1]], &th, false).nodes.len(),
            6
        );
        assert_ne!(other.chains[0][2], other.chains[1][2]);
    }

    #[test]
    fn folding_respects_thresholds_of_the_swapped_pair() {
        // Same types, different threshold on a swapped element: no merge.
        let a = PalQuery::prefix(&[0, 1, 2], &[1.0, 2.0, 3.0]);
        let b = PalQuery::prefix(&[1, 0, 2], &[1.0, 9.0, 3.0]);
        let trie = QueryTrie::build(&[a, b], &[0, 1], true, &raw);
        assert_eq!(trie.nodes.len(), 7);
    }

    #[test]
    fn node_ids_are_topologically_ordered() {
        let th = [1.0, 2.0, 3.0, 4.0];
        let trie = trie_of(&[&[3, 2, 1, 0], &[0, 1, 2, 3], &[3, 1]], &th, true);
        for (id, node) in trie.nodes.iter().enumerate() {
            for &c in &node.children {
                assert!(c > id, "child {c} of node {id} created before parent");
            }
        }
    }
}
