//! Theorem 1 end to end: random knapsack instances, mapped to OAP games and
//! solved exactly, must satisfy `OAP* = |E| − knapsack*`.

use alert_audit::game::hardness::{
    knapsack_to_oap, solve_knapsack, verify_reduction, KnapsackInstance,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn reduction_identity_holds(
        weights in proptest::collection::vec(1u64..=5, 2..=6),
        values in proptest::collection::vec(0u64..=4, 2..=6),
        cap_frac in 0.1f64..0.9,
    ) {
        let n = weights.len().min(values.len());
        let weights = weights[..n].to_vec();
        let values = values[..n].to_vec();
        let total: u64 = weights.iter().sum();
        let capacity = ((total as f64 * cap_frac) as u64).max(1);
        let inst = KnapsackInstance::new(weights, values, capacity);
        let (oap, expected) = verify_reduction(&inst);
        prop_assert!((oap - expected).abs() < 1e-6,
            "OAP {oap} vs |E|−OPT {expected} on {inst:?}");
    }

    #[test]
    fn knapsack_dp_respects_capacity_and_dominance(
        weights in proptest::collection::vec(1u64..=8, 1..=10),
        values in proptest::collection::vec(0u64..=9, 1..=10),
        capacity in 0u64..=30,
    ) {
        let n = weights.len().min(values.len());
        let inst = KnapsackInstance::new(
            weights[..n].to_vec(),
            values[..n].to_vec(),
            capacity,
        );
        let sol = solve_knapsack(&inst);
        let w: u64 = sol.items.iter().map(|&i| inst.weights[i]).sum();
        prop_assert!(w <= capacity);
        let v: u64 = sol.items.iter().map(|&i| inst.values[i]).sum();
        prop_assert_eq!(v, sol.value);
        // Greedy single-item lower bound.
        for i in 0..n {
            if inst.weights[i] <= capacity {
                prop_assert!(sol.value >= inst.values[i]);
            }
        }
        prop_assert!(sol.value <= inst.total_value());
    }
}

#[test]
fn reduction_spec_is_the_theorem_construction() {
    let inst = KnapsackInstance::new(vec![3, 2], vec![2, 3], 4);
    let spec = knapsack_to_oap(&inst);
    // Z_t = 1 deterministic.
    for d in &spec.distributions {
        assert_eq!(d.support_min(), 1);
        assert_eq!(d.support_max(), 1);
    }
    // M = K = 0 and rewards are 0/1 indicators of the bound type.
    for (i, att) in spec.attackers.iter().enumerate() {
        let own_type = if i < inst.values[0] as usize { 0 } else { 1 };
        for act in &att.actions {
            assert_eq!(act.penalty, 0.0);
            assert_eq!(act.attack_cost, 0.0);
            let (t, _) = act.alert_probs[0];
            assert_eq!(act.reward, if t == own_type { 1.0 } else { 0.0 });
        }
    }
}
