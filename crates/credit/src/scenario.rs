//! Registry scenario for the Rea B (credit-application) workload:
//! `credit-reab` compiles the synthetic Statlog stand-in — historical
//! batches for `F_t`, 100 labelled applicant-attackers × 8 purposes —
//! into a [`GameSpec`] through the existing [`crate::reab`] machinery.

use crate::reab::{build_game, ReaBConfig};
use crate::synth::{alert_counts, generate_applications};
use audit_game::error::GameError;
use audit_game::model::GameSpec;
use audit_game::scenario::Scenario;
use std::sync::Arc;

/// A conformance-scale Rea B configuration: 20 applicant-attackers and a
/// shorter alert history, same five Table IX types.
pub fn conformance_config(seed: u64) -> ReaBConfig {
    ReaBConfig {
        n_history_batches: 12,
        n_attackers: 20,
        budget: 6.0,
        seed,
        ..Default::default()
    }
}

/// Rea B as a registry scenario.
pub struct ReaBScenario;

impl Scenario for ReaBScenario {
    fn key(&self) -> &str {
        "credit-reab"
    }

    fn source(&self) -> &str {
        "creditsim"
    }

    fn describe(&self) -> String {
        "Rea B credit-application screening (paper Section V.A): 5 Table IX attribute-rule \
         types, 100 applicants x 8 purposes"
            .into()
    }

    fn suggested_epsilon(&self) -> f64 {
        0.2
    }

    fn build(&self, seed: u64) -> Result<GameSpec, GameError> {
        build_game(&ReaBConfig {
            seed,
            ..Default::default()
        })
    }

    fn build_small(&self, seed: u64) -> Result<GameSpec, GameError> {
        build_game(&conformance_config(seed))
    }

    fn alert_stream(&self, seed: u64, n_periods: usize) -> Result<Vec<Vec<u64>>, GameError> {
        // Native stream: one period = one application batch, counted by
        // the same rules the fitting pipeline uses. Period seeds are
        // derived streams (not seed + b) so that streams at adjacent
        // seeds share no batches.
        let synth = ReaBConfig::default().synth;
        Ok((0..n_periods)
            .map(|b| {
                let batch_seed = stochastics::rng::derive_seed(seed, 0xB10C ^ b as u64);
                let apps = generate_applications(&synth, batch_seed);
                alert_counts(&apps).to_vec()
            })
            .collect())
    }
}

/// The scenarios this crate contributes to the cross-crate registry.
pub fn scenarios() -> Vec<Arc<dyn Scenario>> {
    vec![Arc::new(ReaBScenario)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conformance_build_has_paper_structure_at_reduced_scale() {
        let spec = ReaBScenario.build_small(3).unwrap();
        assert_eq!(spec.n_types(), 5);
        assert_eq!(spec.n_attackers(), 20);
        assert_eq!(spec.n_actions(), 160);
        assert!(spec.allow_opt_out);
        spec.validate().unwrap();
    }

    #[test]
    fn build_is_deterministic_and_seeded() {
        let sc = ReaBScenario;
        assert_eq!(
            sc.build_small(7).unwrap().fingerprint(),
            sc.build_small(7).unwrap().fingerprint()
        );
        assert_ne!(
            sc.build_small(7).unwrap().fingerprint(),
            sc.build_small(8).unwrap().fingerprint()
        );
    }

    #[test]
    fn native_alert_stream_tracks_table9_rates() {
        let stream = ReaBScenario.alert_stream(1, 8).unwrap();
        assert_eq!(stream.len(), 8);
        assert!(stream.iter().all(|row| row.len() == 5));
        let mean0: f64 = stream.iter().map(|r| r[0] as f64).sum::<f64>() / stream.len() as f64;
        assert!(
            (mean0 - crate::TABLE9_MEANS[0]).abs() < crate::TABLE9_STDS[0] * 3.0,
            "type 0 batch mean {mean0} far from Table IX"
        );
    }
}
