//! Experiment E8 — paper Figure 2: auditor's loss on Rea B (credit-card
//! applications) across budgets 10..=250 for the proposed model and the
//! three baselines.
//!
//! ```text
//! cargo run -p audit-bench --release --bin exp_fig2 [budgets] [samples] [repeats] [threads] [--scenario <key>]
//! ```

use audit_bench::cli::{default_threads, parse_count, parse_list, take_scenario_flag};
use audit_bench::defaults::{
    FIG_EPSILONS, RANDOM_ORDER_SAMPLES, RANDOM_THRESHOLD_REPEATS, REAL_SAMPLES, SEED,
};
use audit_bench::real_experiments::{budget_sweep, render_figure, SweepConfig};
use audit_bench::scenarios::resolve_base_spec;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let scenario = take_scenario_flag(&mut args);
    let budgets = parse_list(
        args.first().cloned(),
        &audit_bench::defaults::fig2_budgets(),
    );
    let samples = parse_count(args.get(1).cloned(), REAL_SAMPLES);
    let repeats = parse_count(args.get(2).cloned(), RANDOM_THRESHOLD_REPEATS);
    let threads = parse_count(args.get(3).cloned(), default_threads());

    eprintln!("Figure 2 reproduction (Rea B budget sweep with baselines)");
    let t0 = std::time::Instant::now();
    let (_, spec) = resolve_base_spec(scenario, "credit-reab", SEED);
    eprintln!(
        "per-type count-model means: {:?}",
        spec.distributions
            .iter()
            .map(|d| (d.mean() * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    let sweep = SweepConfig {
        epsilons: FIG_EPSILONS.to_vec(),
        n_samples: samples,
        seed: SEED,
        random_order_samples: RANDOM_ORDER_SAMPLES,
        random_threshold_repeats: repeats,
        dedup_actions: true,
        threads,
    };
    let data = budget_sweep(&spec, &budgets, &sweep).expect("sweep solves");
    println!("{}", render_figure(&data));
    eprintln!("elapsed: {:.1?}", t0.elapsed());
}
