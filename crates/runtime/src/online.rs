//! Streaming per-type distribution tracking and the drift gate.
//!
//! The service cannot afford to re-scan history each epoch, so it keeps
//! two views of the observed workload per alert type: exact lifetime
//! moments in O(1) state ([`StreamingMoments`]) and a sliding window of
//! the most recent periods. The window drives the drift gate (KS distance
//! of recent observations against the committed count model) and the
//! drift refit (a fresh moment-fit Gaussian, the paper's "from historical
//! alert logs" path applied online); the lifetime moments drive the
//! staleness-refresh refit ([`OnlineFit::refit_lifetime`]).

use serde::{Deserialize, Serialize};
use std::sync::Arc;
use stochastics::gof::ks_statistic;
use stochastics::{fit_discretized_gaussian, CountDistribution, StreamingMoments};

/// Configuration of the drift gate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Sliding-window length in periods. Short windows react to drift
    /// within a seasonal cycle; long windows average it away. The gate
    /// stays closed until the window is full.
    pub window_periods: usize,
    /// KS distance above which the committed model is declared broken.
    pub ks_threshold: f64,
    /// Minimum epochs between re-solves (the gate result is ignored while
    /// the incumbent is younger than this).
    pub cooldown_epochs: usize,
    /// Force a refit + re-solve once the incumbent policy is this many
    /// epochs old, even without drift (a max-staleness refresh,
    /// recalibrating to the lifetime moments rather than the recent
    /// window — see [`OnlineFit::refit_lifetime`]). `None` disables the
    /// staleness path.
    pub max_stale_epochs: Option<usize>,
    /// Truncation coverage of the refit Gaussians (the paper uses 99.5%).
    pub fit_coverage: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            window_periods: 10,
            ks_threshold: 0.25,
            cooldown_epochs: 1,
            max_stale_epochs: None,
            fit_coverage: 0.995,
        }
    }
}

/// Per-type online distribution tracker: lifetime moments plus a sliding
/// window of recent per-period counts.
#[derive(Debug, Clone)]
pub struct OnlineFit {
    window_cap: usize,
    /// Per type, oldest first, at most `window_cap` entries.
    windows: Vec<Vec<u64>>,
    lifetime: Vec<StreamingMoments>,
    periods: usize,
}

impl OnlineFit {
    /// A tracker over `n_types` alert types with a `window_cap`-period
    /// sliding window.
    pub fn new(n_types: usize, window_cap: usize) -> Self {
        assert!(n_types > 0, "need at least one alert type");
        assert!(window_cap > 0, "window must hold at least one period");
        Self {
            window_cap,
            windows: vec![Vec::with_capacity(window_cap); n_types],
            lifetime: vec![StreamingMoments::new(); n_types],
            periods: 0,
        }
    }

    /// Fold one period's alert-count vector into the tracker.
    pub fn observe(&mut self, row: &[u64]) {
        assert_eq!(row.len(), self.windows.len(), "arity mismatch");
        for (t, &z) in row.iter().enumerate() {
            self.lifetime[t].push(z);
            if self.windows[t].len() == self.window_cap {
                self.windows[t].remove(0);
            }
            self.windows[t].push(z);
        }
        self.periods += 1;
    }

    /// Rebuild a tracker from persisted parts: the window capacity, the
    /// total period count, the per-type recent windows (oldest first) and
    /// the per-type lifetime moments. The inverse of walking
    /// [`OnlineFit::window`] / [`OnlineFit::lifetime`] — a tracker
    /// restored this way continues bit-identically to one that observed
    /// the same history live (see the checkpoint/restore path in
    /// [`crate::checkpoint`]).
    pub fn from_parts(
        window_cap: usize,
        periods: usize,
        windows: Vec<Vec<u64>>,
        lifetime: Vec<StreamingMoments>,
    ) -> Self {
        assert!(!windows.is_empty(), "need at least one alert type");
        assert!(window_cap > 0, "window must hold at least one period");
        assert_eq!(windows.len(), lifetime.len(), "arity mismatch");
        assert!(
            windows.iter().all(|w| w.len() <= window_cap.min(periods)),
            "window longer than its capacity or the observed history"
        );
        Self {
            window_cap,
            windows,
            lifetime,
            periods,
        }
    }

    /// Number of alert types tracked.
    pub fn n_types(&self) -> usize {
        self.windows.len()
    }

    /// Sliding-window capacity in periods.
    pub fn window_cap(&self) -> usize {
        self.window_cap
    }

    /// Total periods observed.
    pub fn periods(&self) -> usize {
        self.periods
    }

    /// Whether the sliding window has filled up (the drift gate arms only
    /// then — KS on a half-empty window is mostly noise).
    pub fn window_full(&self) -> bool {
        self.periods >= self.window_cap
    }

    /// The recent-period window of type `t`, oldest first.
    pub fn window(&self, t: usize) -> &[u64] {
        &self.windows[t]
    }

    /// Lifetime moments of type `t`.
    pub fn lifetime(&self, t: usize) -> &StreamingMoments {
        &self.lifetime[t]
    }

    /// Worst-type KS distance of the recent windows against the committed
    /// count models — the drift statistic the gate thresholds.
    pub fn max_ks(&self, models: &[Arc<dyn CountDistribution>]) -> f64 {
        self.max_ks_guarded(models).0
    }

    /// [`OnlineFit::max_ks`] with a degeneracy guard: a per-type statistic
    /// poisoned by non-finite model mass (e.g. a count model whose fit
    /// collapsed to NaN parameters under a degenerate window or an
    /// all-zero epoch) is clamped to 0.0 ("no evidence of drift") instead
    /// of leaking NaN into the gate, and the returned flag records that
    /// the clamp fired so telemetry can surface it. The mass check is
    /// explicit because [`ks_statistic`]'s `f64::max` fold silently
    /// *swallows* NaN distances — without it a degenerate model would
    /// masquerade as a perfect fit. An empty window contributes 0.0
    /// without raising the flag (no data is not degeneracy).
    pub fn max_ks_guarded(&self, models: &[Arc<dyn CountDistribution>]) -> (f64, bool) {
        assert_eq!(models.len(), self.windows.len(), "arity mismatch");
        let mut degenerate = false;
        let max = self
            .windows
            .iter()
            .zip(models)
            .map(|(w, m)| {
                if w.is_empty() {
                    return 0.0;
                }
                let ks = ks_statistic(w, m.as_ref());
                let total_mass = m.cdf(m.support_max());
                if ks.is_finite() && total_mass.is_finite() {
                    ks
                } else {
                    degenerate = true;
                    0.0
                }
            })
            .fold(0.0, f64::max);
        (max, degenerate)
    }

    /// Refit one count model per type from the recent window (moment-fit
    /// discretized Gaussians at `coverage`, the paper's synthetic-model
    /// family) — the **drift** path: react to what just changed.
    pub fn refit(&self, coverage: f64) -> Vec<Arc<dyn CountDistribution>> {
        self.windows
            .iter()
            .map(|w| {
                assert!(!w.is_empty(), "cannot refit before any observation");
                Arc::new(fit_discretized_gaussian(w, coverage)) as Arc<dyn CountDistribution>
            })
            .collect()
    }

    /// Refit one count model per type from the **lifetime** streaming
    /// moments ([`stochastics::fit_gaussian_from_moments`]) — the
    /// **staleness-refresh** path: no drift was detected, so recalibrate
    /// to the long-run workload rather than chase the last window.
    pub fn refit_lifetime(&self, coverage: f64) -> Vec<Arc<dyn CountDistribution>> {
        self.lifetime
            .iter()
            .map(|m| {
                assert!(m.count() > 0, "cannot refit before any observation");
                Arc::new(stochastics::fit_gaussian_from_moments(m, coverage))
                    as Arc<dyn CountDistribution>
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stochastics::{DiscretizedGaussian, Poisson};

    #[test]
    fn window_slides_and_lifetime_accumulates() {
        let mut fit = OnlineFit::new(2, 3);
        for i in 0..5u64 {
            fit.observe(&[i, 10 + i]);
        }
        assert_eq!(fit.periods(), 5);
        assert!(fit.window_full());
        assert_eq!(fit.window(0), &[2, 3, 4]);
        assert_eq!(fit.window(1), &[12, 13, 14]);
        assert_eq!(fit.lifetime(0).count(), 5);
        assert!((fit.lifetime(0).mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ks_flags_a_shifted_workload() {
        let calm: Arc<dyn CountDistribution> = Arc::new(Poisson::new(3.0));
        let mut fit = OnlineFit::new(1, 8);
        // Feed counts from a much busier regime than the committed model.
        for z in [9u64, 11, 10, 12, 9, 10, 11, 13] {
            fit.observe(&[z]);
        }
        assert!(fit.max_ks(std::slice::from_ref(&calm)) > 0.5);
        // A matching model scores low.
        let busy: Arc<dyn CountDistribution> =
            Arc::new(DiscretizedGaussian::with_halfwidth(10.6, 1.4, 4));
        assert!(fit.max_ks(std::slice::from_ref(&busy)) < 0.4);
    }

    #[test]
    fn refit_tracks_the_window_not_the_lifetime() {
        let mut fit = OnlineFit::new(1, 4);
        for _ in 0..20 {
            fit.observe(&[2]);
        }
        for _ in 0..4 {
            fit.observe(&[12]);
        }
        let models = fit.refit(0.995);
        assert!((models[0].mean() - 12.0).abs() < 1.0);
        // Lifetime still remembers the calm past.
        assert!(fit.lifetime(0).mean() < 5.0);
    }

    #[test]
    fn lifetime_refit_tracks_the_full_history() {
        let mut fit = OnlineFit::new(1, 4);
        for _ in 0..20 {
            fit.observe(&[2]);
        }
        for _ in 0..4 {
            fit.observe(&[12]);
        }
        // Window refit chases the burst; lifetime refit stays anchored to
        // the long-run mean (20·2 + 4·12)/24 ≈ 3.67.
        let windowed = fit.refit(0.995);
        let lifetime = fit.refit_lifetime(0.995);
        assert!(windowed[0].mean() > lifetime[0].mean() + 4.0);
        assert!((lifetime[0].mean() - 88.0 / 24.0).abs() < 1.0);
    }

    #[test]
    fn from_parts_continues_exactly_like_the_live_tracker() {
        let mut live = OnlineFit::new(2, 3);
        let history: Vec<[u64; 2]> = (0..7).map(|i| [i, 2 * i + 1]).collect();
        for row in &history[..4] {
            live.observe(row);
        }
        // Snapshot the tracker after 4 periods and rebuild it from parts.
        let mut restored = OnlineFit::from_parts(
            live.window_cap(),
            live.periods(),
            (0..live.n_types())
                .map(|t| live.window(t).to_vec())
                .collect(),
            (0..live.n_types()).map(|t| *live.lifetime(t)).collect(),
        );
        for row in &history[4..] {
            live.observe(row);
            restored.observe(row);
        }
        for t in 0..2 {
            assert_eq!(live.window(t), restored.window(t));
            assert_eq!(live.lifetime(t).count(), restored.lifetime(t).count());
            assert_eq!(
                live.lifetime(t).mean().to_bits(),
                restored.lifetime(t).mean().to_bits()
            );
        }
        assert_eq!(live.periods(), restored.periods());
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_is_rejected() {
        let mut fit = OnlineFit::new(2, 4);
        fit.observe(&[1, 2, 3]);
    }

    /// A committed model whose mass is NaN: the KS statistic against any
    /// window is non-finite, which must clamp to "no drift" + flag, not
    /// leak NaN into the gate comparison (NaN > threshold is always
    /// false, which would silently disable max-staleness accounting in
    /// telemetry and poison fingerprints).
    struct NanModel;
    impl CountDistribution for NanModel {
        fn pmf(&self, _n: u64) -> f64 {
            f64::NAN
        }
        fn support_max(&self) -> u64 {
            4
        }
    }

    #[test]
    fn degenerate_ks_clamps_to_no_drift_and_flags() {
        let mut fit = OnlineFit::new(2, 4);
        for _ in 0..4 {
            fit.observe(&[0, 3]);
        }
        let models: Vec<Arc<dyn CountDistribution>> =
            vec![Arc::new(NanModel), Arc::new(Poisson::new(3.0))];
        let (ks, degenerate) = fit.max_ks_guarded(&models);
        assert!(degenerate, "NaN KS must raise the degeneracy flag");
        assert!(ks.is_finite(), "clamped statistic stays finite");
        // The healthy type still contributes its real statistic.
        let healthy_only: Vec<Arc<dyn CountDistribution>> =
            vec![Arc::new(Poisson::new(1.0)), Arc::new(Poisson::new(3.0))];
        let (ks2, flag2) = fit.max_ks_guarded(&healthy_only);
        assert!(!flag2);
        assert!(ks2 > 0.0);
        assert_eq!(fit.max_ks(&healthy_only).to_bits(), ks2.to_bits());
        // Empty windows report 0.0 without claiming degeneracy.
        let empty = OnlineFit::new(2, 4);
        let (ks3, flag3) = empty.max_ks_guarded(&models);
        assert_eq!(ks3, 0.0);
        assert!(!flag3, "no data is not degeneracy");
    }
}
