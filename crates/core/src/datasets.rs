//! Built-in game instances: the paper's Syn A synthetic dataset (Table II)
//! and parameterized random game generators for tests and benchmarks.

use crate::model::{AttackAction, Attacker, GameSpec, GameSpecBuilder};
use rand::Rng;
use std::sync::Arc;
use stochastics::{seeded_rng, DiscretizedGaussian};

/// Syn A alert-type parameters (paper Table IIa).
///
/// Four alert types with Gaussian benign counts, truncated at the tabulated
/// 99.5% coverage half-widths; unit audit costs; per-type attacker benefit;
/// uniform attack cost 0.4 and capture penalty 4.
pub const SYN_A_MEANS: [f64; 4] = [6.0, 5.0, 4.0, 4.0];
/// Standard deviations of the four Syn A alert types.
pub const SYN_A_STDS: [f64; 4] = [2.0, 1.6, 1.3, 1.0];
/// Truncation half-widths ("99.5% coverage") of the Syn A types.
pub const SYN_A_COVERAGE: [u64; 4] = [5, 4, 3, 3];
/// Attacker benefit per alert type.
pub const SYN_A_BENEFIT: [f64; 4] = [3.4, 3.7, 4.0, 4.3];
/// Attack cost (uniform across types).
pub const SYN_A_ATTACK_COST: f64 = 0.4;
/// Capture penalty (uniform).
pub const SYN_A_PENALTY: f64 = 4.0;

/// Syn A access rules (paper Table IIb): `SYN_A_RULES[e][r]` is the alert
/// type (1-based) triggered when employee `e` accesses record `r`, with `0`
/// meaning a benign access.
pub const SYN_A_RULES: [[u8; 8]; 5] = [
    [0, 3, 2, 2, 3, 4, 3, 1],
    [1, 0, 1, 1, 1, 2, 1, 1],
    [1, 3, 4, 0, 1, 3, 1, 4],
    [2, 1, 3, 1, 4, 4, 2, 2],
    [2, 3, 1, 4, 2, 1, 3, 2],
];

/// Build the Syn A game (Section IV.A) with the default budget of 2.
///
/// * 5 employees × 8 records; alerts triggered deterministically per
///   Table IIb;
/// * `p_e = 1` (the footnoted "artificially high incidence" that permits
///   brute-force comparison);
/// * no opt-out: Table III's negative optima require attackers that always
///   pick their best available attack (see `DESIGN.md`).
pub fn syn_a() -> GameSpec {
    syn_a_with_budget(2.0)
}

/// Syn A with an explicit audit budget `B` (the paper sweeps 2..=20).
pub fn syn_a_with_budget(budget: f64) -> GameSpec {
    let mut b = GameSpecBuilder::new();
    for t in 0..4 {
        b.alert_type(
            format!("Type {}", t + 1),
            1.0,
            Arc::new(DiscretizedGaussian::with_halfwidth(
                SYN_A_MEANS[t],
                SYN_A_STDS[t],
                SYN_A_COVERAGE[t],
            )),
        );
    }
    for (e, row) in SYN_A_RULES.iter().enumerate() {
        let actions: Vec<AttackAction> = row
            .iter()
            .enumerate()
            .map(|(r, &cell)| {
                if cell == 0 {
                    AttackAction::benign(format!("r{}", r + 1), SYN_A_ATTACK_COST)
                } else {
                    let t = cell as usize - 1;
                    AttackAction::deterministic(
                        format!("r{}", r + 1),
                        t,
                        SYN_A_BENEFIT[t],
                        SYN_A_ATTACK_COST,
                        SYN_A_PENALTY,
                    )
                }
            })
            .collect();
        b.attacker(Attacker::new(format!("e{}", e + 1), 1.0, actions));
    }
    b.budget(budget);
    b.allow_opt_out(false);
    b.build().expect("Syn A table data is valid")
}

/// Parameters for the random game generator.
#[derive(Debug, Clone)]
pub struct RandomGameConfig {
    /// Number of alert types.
    pub n_types: usize,
    /// Number of attackers.
    pub n_attackers: usize,
    /// Number of victims per attacker.
    pub n_victims: usize,
    /// Audit budget.
    pub budget: f64,
    /// Whether attackers may refrain.
    pub allow_opt_out: bool,
    /// Probability that an (attacker, victim) access is benign.
    pub benign_prob: f64,
}

impl Default for RandomGameConfig {
    fn default() -> Self {
        Self {
            n_types: 4,
            n_attackers: 5,
            n_victims: 8,
            budget: 4.0,
            allow_opt_out: false,
            benign_prob: 0.1,
        }
    }
}

/// Generate a random Syn-A-shaped game: Gaussian count models with means in
/// `[3, 10]`, unit audit costs, benefits increasing in type index, and a
/// deterministic rule table drawn from the seed. Used by property tests and
/// scaling benchmarks.
pub fn random_game(config: &RandomGameConfig, seed: u64) -> GameSpec {
    assert!(config.n_types >= 1);
    let mut rng = seeded_rng(seed);
    let mut b = GameSpecBuilder::new();
    let mut benefits = Vec::with_capacity(config.n_types);
    for t in 0..config.n_types {
        let mean: f64 = rng.gen_range(3.0..10.0);
        let std: f64 = rng.gen_range(0.8..2.5);
        let half = (2.81 * std).ceil() as u64; // ≈99.5% coverage
        b.alert_type(
            format!("T{t}"),
            1.0,
            Arc::new(DiscretizedGaussian::with_halfwidth(mean, std, half.max(1))),
        );
        benefits.push(3.0 + 0.4 * t as f64 + rng.gen_range(0.0..0.4));
    }
    for e in 0..config.n_attackers {
        let actions: Vec<AttackAction> = (0..config.n_victims)
            .map(|v| {
                if rng.gen_bool(config.benign_prob) {
                    AttackAction::benign(format!("v{v}"), 0.4)
                } else {
                    let t = rng.gen_range(0..config.n_types);
                    AttackAction::deterministic(format!("v{v}"), t, benefits[t], 0.4, 4.0)
                }
            })
            .collect();
        b.attacker(Attacker::new(format!("e{e}"), 1.0, actions));
    }
    b.budget(config.budget);
    b.allow_opt_out(config.allow_opt_out);
    b.build().expect("generated game is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syn_a_shape_matches_table_ii() {
        let s = syn_a();
        assert_eq!(s.n_types(), 4);
        assert_eq!(s.n_attackers(), 5);
        assert_eq!(s.n_actions(), 40);
        assert_eq!(s.budget, 2.0);
        assert!(!s.allow_opt_out);
        // Full-coverage bounds J = mean + halfwidth: [11, 9, 7, 7].
        assert_eq!(s.threshold_upper_bounds(), vec![11.0, 9.0, 7.0, 7.0]);
    }

    #[test]
    fn syn_a_benign_cells_match_table() {
        let s = syn_a();
        // e1 accesses r1 benignly; e4 and e5 have no benign access.
        assert!(s.attackers[0].actions[0].alert_probs.is_empty());
        assert!(s.attackers[3]
            .actions
            .iter()
            .all(|a| !a.alert_probs.is_empty()));
        assert!(s.attackers[4]
            .actions
            .iter()
            .all(|a| !a.alert_probs.is_empty()));
    }

    #[test]
    fn syn_a_rewards_follow_benefit_vector() {
        let s = syn_a();
        // e1 → r8 triggers type 1 (index 0): reward 3.4.
        let act = &s.attackers[0].actions[7];
        assert_eq!(act.alert_probs, vec![(0, 1.0)]);
        assert!((act.reward - 3.4).abs() < 1e-12);
        // e5 → r4 triggers type 4 (index 3): reward 4.3.
        let act = &s.attackers[4].actions[3];
        assert_eq!(act.alert_probs, vec![(3, 1.0)]);
        assert!((act.reward - 4.3).abs() < 1e-12);
    }

    #[test]
    fn syn_a_count_distributions_match_moments() {
        let s = syn_a();
        for (t, d) in s.distributions.iter().enumerate() {
            assert!(
                (d.mean() - SYN_A_MEANS[t]).abs() < 0.2,
                "type {t} mean {} vs table {}",
                d.mean(),
                SYN_A_MEANS[t]
            );
        }
    }

    #[test]
    fn random_game_is_valid_and_deterministic() {
        let cfg = RandomGameConfig::default();
        let a = random_game(&cfg, 42);
        let b = random_game(&cfg, 42);
        assert_eq!(a.n_actions(), b.n_actions());
        assert_eq!(a.n_types(), cfg.n_types);
        assert_eq!(a.n_attackers(), cfg.n_attackers);
        a.validate().unwrap();
        // Action tables agree cell by cell.
        for (x, y) in a.attackers.iter().zip(&b.attackers) {
            for (ax, ay) in x.actions.iter().zip(&y.actions) {
                assert_eq!(ax.alert_probs, ay.alert_probs);
                assert_eq!(ax.reward, ay.reward);
            }
        }
    }

    #[test]
    fn random_game_respects_dimensions() {
        let cfg = RandomGameConfig {
            n_types: 6,
            n_attackers: 3,
            n_victims: 4,
            ..Default::default()
        };
        let g = random_game(&cfg, 7);
        assert_eq!(g.n_types(), 6);
        assert_eq!(g.n_attackers(), 3);
        assert_eq!(g.n_actions(), 12);
    }
}
