//! General-sum auditing: dropping the zero-sum assumption.
//!
//! The paper's discussion notes that "an auditor is likely to be concerned
//! less about the cost incurred by an adversary for executing an attack and
//! more concerned about the losses that arise from successful violations."
//! This module implements that refinement: the auditor's **damage** from an
//! undetected attack is decoupled from the attacker's utility,
//!
//! ```text
//! attacker:  U_a = Pat·(−M) + (1 − Pat)·R − K          (unchanged, eq. 3)
//! auditor:   D   = (1 − Pat)·damage − Pat·recovery
//! ```
//!
//! Attackers still best-respond to the (zero-sum-solved or any other)
//! mixture; the auditor evaluates policies by expected damage. Because
//! attacker behaviour only depends on `U_a`, any mixture can be *scored*
//! under general-sum payoffs, and the threshold search can optimize damage
//! directly via [`GeneralSumEvaluator`].

use crate::detection::DetectionEstimator;
use crate::error::GameError;
use crate::ishm::ThresholdEvaluator;
use crate::master::{MasterSolution, MasterSolver};
use crate::model::GameSpec;
use crate::ordering::AuditOrder;
use crate::payoff::{detection_prob, PayoffMatrix};
use serde::{Deserialize, Serialize};

/// Auditor-side damage parameters per attack action, defaulting to a
/// transformation of the attacker payoffs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DamageModel {
    /// Multiplier mapping attacker reward `R` to organizational damage
    /// (e.g. regulatory fines dwarfing the insider's gain).
    pub damage_per_reward: f64,
    /// Value recovered (deterrence signal, restitution) when an attack is
    /// caught, per unit of attacker penalty `M`.
    pub recovery_per_penalty: f64,
}

impl Default for DamageModel {
    fn default() -> Self {
        // Zero-sum-compatible default: damage = R, recovery = M, which
        // makes general-sum scoring coincide with the attacker's utility up
        // to the (auditor-irrelevant) attack cost K.
        Self {
            damage_per_reward: 1.0,
            recovery_per_penalty: 1.0,
        }
    }
}

/// Expected auditor damage if the auditor plays `p` over `matrix.orders`
/// and every attacker best-responds **to their own utility**.
pub fn damage_under_mixture(
    spec: &GameSpec,
    matrix: &PayoffMatrix,
    p: &[f64],
    model: &DamageModel,
) -> f64 {
    assert_eq!(p.len(), matrix.n_orders());
    let responses = matrix.best_responses(spec, p);
    // Mixture-weighted Pal per type.
    let n_types = spec.n_types();
    let mut pal_mix = vec![0.0f64; n_types];
    for (pal, &po) in matrix.pals.iter().zip(p) {
        for t in 0..n_types {
            pal_mix[t] += po * pal[t];
        }
    }
    let mut damage = 0.0;
    for (e, att) in spec.attackers.iter().enumerate() {
        let Some(flat) = responses[e] else { continue };
        let local = flat - matrix.index.range(e).start;
        let action = &att.actions[local];
        let pat = detection_prob(action, &pal_mix);
        let d = (1.0 - pat) * model.damage_per_reward * action.reward
            - pat * model.recovery_per_penalty * action.penalty;
        damage += att.attack_prob * d;
    }
    damage
}

/// Evaluator optimizing auditor damage: for each candidate threshold
/// vector, the order mixture is the zero-sum equilibrium (the policy an
/// attacker-pessimistic auditor would deploy) and the candidate is scored
/// by general-sum damage. Plugs into [`crate::ishm::Ishm`].
pub struct GeneralSumEvaluator<'a> {
    spec: &'a GameSpec,
    est: DetectionEstimator<'a>,
    orders: Vec<AuditOrder>,
    model: DamageModel,
}

impl<'a> GeneralSumEvaluator<'a> {
    /// Build over an explicit order set.
    pub fn new(
        spec: &'a GameSpec,
        est: DetectionEstimator<'a>,
        orders: Vec<AuditOrder>,
        model: DamageModel,
    ) -> Self {
        assert!(!orders.is_empty());
        Self {
            spec,
            est,
            orders,
            model,
        }
    }

    fn score(&self, thresholds: &[f64]) -> Result<(f64, MasterSolution), GameError> {
        let matrix = PayoffMatrix::build(self.spec, &self.est, self.orders.clone(), thresholds);
        let master = MasterSolver::solve(self.spec, &matrix)?;
        let damage = damage_under_mixture(self.spec, &matrix, &master.p_orders, &self.model);
        Ok((damage, master))
    }
}

impl ThresholdEvaluator for GeneralSumEvaluator<'_> {
    fn evaluate(&mut self, thresholds: &[f64]) -> Result<f64, GameError> {
        self.score(thresholds).map(|(d, _)| d)
    }

    fn solve_full(
        &mut self,
        thresholds: &[f64],
    ) -> Result<(MasterSolution, Vec<AuditOrder>), GameError> {
        let (_, master) = self.score(thresholds)?;
        Ok((master, self.orders.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detection::DetectionModel;
    use crate::ishm::{Ishm, IshmConfig};
    use crate::model::{AttackAction, Attacker, GameSpecBuilder};
    use std::sync::Arc;
    use stochastics::Constant;

    fn spec() -> GameSpec {
        let mut b = GameSpecBuilder::new();
        let t0 = b.alert_type("t0", 1.0, Arc::new(Constant(2)));
        let t1 = b.alert_type("t1", 1.0, Arc::new(Constant(2)));
        b.attacker(Attacker::new(
            "e0",
            1.0,
            vec![
                AttackAction::deterministic("v0", t0, 8.0, 0.5, 4.0),
                AttackAction::deterministic("v1", t1, 6.0, 0.5, 4.0),
            ],
        ));
        b.budget(2.0);
        b.build().unwrap()
    }

    #[test]
    fn default_model_tracks_zero_sum_up_to_attack_cost() {
        let s = spec();
        let bank = s.sample_bank(32, 0);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let matrix = PayoffMatrix::build(&s, &est, AuditOrder::enumerate_all(2), &[2.0, 2.0]);
        let master = MasterSolver::solve(&s, &matrix).unwrap();
        let zero_sum = matrix.loss_under_mixture(&s, &master.p_orders);
        let general = damage_under_mixture(&s, &matrix, &master.p_orders, &DamageModel::default());
        // Difference is exactly the attack cost K = 0.5 of the chosen action.
        assert!(
            (general - (zero_sum + 0.5)).abs() < 1e-6,
            "general {general} vs zero-sum {zero_sum}"
        );
    }

    #[test]
    fn identity_model_equals_zero_sum_loss_when_attacks_are_free() {
        // With K = 0 the per-action damage under the identity DamageModel
        // is literally the attacker utility (detection_prob is linear in
        // pal, and both sides evaluate at the mixture-weighted pal), so
        // general-sum scoring coincides with the zero-sum loss exactly.
        let mut s = spec();
        for att in &mut s.attackers {
            for a in &mut att.actions {
                a.attack_cost = 0.0;
            }
        }
        let bank = s.sample_bank(32, 0);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let matrix = PayoffMatrix::build(&s, &est, AuditOrder::enumerate_all(2), &[1.0, 2.0]);
        let master = MasterSolver::solve(&s, &matrix).unwrap();
        for p in [master.p_orders.clone(), vec![0.5, 0.5]] {
            let zero_sum = matrix.loss_under_mixture(&s, &p);
            let general = damage_under_mixture(&s, &matrix, &p, &DamageModel::default());
            assert!(
                (general - zero_sum).abs() <= 1e-9 * zero_sum.abs().max(1.0),
                "general {general} vs zero-sum {zero_sum}"
            );
        }
    }

    #[test]
    fn damage_scales_with_multiplier() {
        let s = spec();
        let bank = s.sample_bank(32, 0);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let matrix = PayoffMatrix::build(&s, &est, AuditOrder::enumerate_all(2), &[2.0, 2.0]);
        let p = vec![0.5, 0.5];
        let base = damage_under_mixture(&s, &matrix, &p, &DamageModel::default());
        let amplified = damage_under_mixture(
            &s,
            &matrix,
            &p,
            &DamageModel {
                damage_per_reward: 3.0,
                recovery_per_penalty: 1.0,
            },
        );
        assert!(amplified > base);
    }

    #[test]
    fn general_sum_ishm_runs_and_is_finite() {
        let s = spec();
        let bank = s.sample_bank(64, 1);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let mut eval = GeneralSumEvaluator::new(
            &s,
            est,
            AuditOrder::enumerate_all(2),
            DamageModel {
                damage_per_reward: 2.0,
                recovery_per_penalty: 0.5,
            },
        );
        let out = Ishm::new(IshmConfig {
            epsilon: 0.25,
            ..Default::default()
        })
        .solve(&s, &mut eval)
        .unwrap();
        assert!(out.value.is_finite());
        assert_eq!(out.thresholds.len(), 2);
    }

    #[test]
    fn deterred_attackers_cause_no_damage() {
        let mut s = spec();
        s.allow_opt_out = true;
        s.budget = 10.0;
        let bank = s.sample_bank(32, 0);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let matrix = PayoffMatrix::build(&s, &est, AuditOrder::enumerate_all(2), &[10.0, 10.0]);
        // Full coverage: every attack is caught, so attacking pays −4.5 and
        // the attacker opts out → zero damage.
        let d = damage_under_mixture(&s, &matrix, &[0.5, 0.5], &DamageModel::default());
        assert_eq!(d, 0.0);
    }
}
