//! Scale-out solver planning: hardness-aware strategy selection,
//! type-cluster decomposition, and parallel best-response pricing for
//! games far past the paper's exact-solve ceiling.
//!
//! The paper caps ISHM's exact inner LP at ≤ 5 alert types (`|T|!` order
//! enumeration) and its outer shrink search is itself exponential in
//! `|T|` (level `lh` sweeps all `C(|T|, lh)` subsets, and termination
//! requires a full no-improvement pass at *every* level). Real audit
//! deployments have 20–50 rule types, so this module adds a planning
//! layer in front of the solver:
//!
//! * [`InstanceFeatures`] — cheap, deterministic hardness features of one
//!   instance (type count, budget coverage via the Theorem 1 knapsack
//!   machinery of [`crate::hardness`], action dedup ratio, bank size);
//! * [`SolveStrategy`] / [`plan`] — the policy mapping features to an
//!   inner evaluator (exact / CGGS / decomposed) plus an outer search
//!   level cap, replacing the hard-coded `n_types() <= 5` gate that
//!   [`crate::solver::InnerKind::Auto`] used to carry;
//! * [`TypeClusters`] — workload-similarity clustering of alert types,
//!   the decomposition substrate;
//! * [`DecomposedEvaluator`] — an inner evaluator solving the master LP
//!   over a cluster-blocked order pool (per-cluster subproblems solved
//!   exactly by within-cluster enumeration), then refining only the
//!   *binding* clusters with multi-start greedy best-response pricing
//!   whose candidate scoring fans out over [`std::thread::scope`]
//!   workers with a deterministic merge by candidate index.
//!
//! Everything here is bit-deterministic: the same instance plans the
//! same strategy, the decomposed evaluator returns identical results at
//! every thread count, and at ≤ [`EXACT_MAX_TYPES`] types the decomposed
//! path degenerates to the exact enumeration pool — provably (and
//! test-enforced) bit-identical to [`crate::ishm::ExactEvaluator`].

mod cluster;
mod decomposed;

pub use cluster::{TypeClusters, DEFAULT_CLUSTER_SIZE};
pub use decomposed::{decomposed_pool, DecomposedEvaluator};

use crate::hardness::{solve_knapsack, KnapsackInstance};
use crate::model::GameSpec;
use serde::{Deserialize, Serialize};

/// Exact inner enumeration materializes `|T|!` audit orders; beyond this
/// many types (120 orders) the exact path is off the table. This is the
/// single source of truth for the gate — the solver facade and the
/// conformance harness both consume it.
pub const EXACT_MAX_TYPES: usize = 5;

/// Upper type count for running ISHM's *uncapped* outer search (with the
/// CGGS inner solver). Past this, the `C(|T|, lh)` level sweeps explode
/// and the planner switches to the decomposed evaluator with a level cap.
pub const ISHM_FULL_MAX_TYPES: usize = 12;

/// Cheap, deterministic hardness features of one solve instance — the
/// inputs of [`plan`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceFeatures {
    /// Alert types of the working (deduped) game.
    pub n_types: usize,
    /// Attack actions of the working game.
    pub n_actions: usize,
    /// Audit budget `B`.
    pub budget: f64,
    /// Monte-Carlo bank rows the solve will draw.
    pub bank_samples: usize,
    /// `working actions / raw actions` — below 1.0 when action dedup
    /// merged strategically identical attacks (redundant instances are
    /// easier than their raw size suggests).
    pub dedup_ratio: f64,
    /// Fraction of the total attack value that a budget-feasible type
    /// subset can cover, computed by the Theorem 1 knapsack reduction
    /// machinery ([`crate::hardness::solve_knapsack`]): weight = a type's
    /// full-coverage threshold, value = its aggregate attack mass. High
    /// coverage means the budget can blanket most of the threat — an
    /// easier instance that affords a deeper outer search.
    pub knapsack_coverage: f64,
}

impl InstanceFeatures {
    /// Measure `working` (the deduped spec the solve runs on), given the
    /// raw spec it came from and the sample count of the bank.
    pub fn of(raw: &GameSpec, working: &GameSpec, bank_samples: usize) -> Self {
        let raw_actions = raw.n_actions().max(1);
        Self {
            n_types: working.n_types(),
            n_actions: working.n_actions(),
            budget: working.budget,
            bank_samples,
            dedup_ratio: working.n_actions() as f64 / raw_actions as f64,
            knapsack_coverage: knapsack_coverage(working),
        }
    }
}

/// The per-type aggregate attack mass `Σ_⟨e,v⟩ (M+R)·P^t` — how much
/// detection utility auditing type `t` can move. The clustering and the
/// pricing refinement both rank types by it.
pub(crate) fn attack_mass(spec: &GameSpec) -> Vec<f64> {
    let mut mass = vec![0.0; spec.n_types()];
    for att in &spec.attackers {
        for act in &att.actions {
            for &(t, p) in &act.alert_probs {
                mass[t] += (act.penalty + act.reward) * p;
            }
        }
    }
    mass
}

/// Budget coverage of the instance via the knapsack DP: pack types
/// (weight = full-coverage threshold, value = attack mass) into the
/// budget and report the coverable value fraction. `1.0` when the game
/// carries no attack mass at all (trivially covered).
fn knapsack_coverage(spec: &GameSpec) -> f64 {
    const VALUE_SCALE: f64 = 64.0;
    let mass = attack_mass(spec);
    let upper = spec.threshold_upper_bounds();
    let weights: Vec<u64> = upper.iter().map(|&b| (b.ceil() as u64).max(1)).collect();
    let values: Vec<u64> = mass
        .iter()
        .map(|&m| (m * VALUE_SCALE).round() as u64)
        .collect();
    let inst = KnapsackInstance::new(weights, values, spec.budget.floor().max(0.0) as u64);
    let total = inst.total_value();
    if total == 0 {
        return 1.0;
    }
    solve_knapsack(&inst).value as f64 / total as f64
}

/// The inner-evaluator strategy (plus outer search cap) the planner picks
/// for one instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStrategy {
    /// ISHM over the exact `|T|!` order enumeration, uncapped outer
    /// search — the paper's Table IV path, tractable only at
    /// ≤ [`EXACT_MAX_TYPES`] types.
    Exact,
    /// ISHM over CGGS column generation, uncapped outer search — the
    /// paper's Table V path, tractable up to [`ISHM_FULL_MAX_TYPES`]
    /// types.
    Cggs,
    /// ISHM over the type-cluster [`DecomposedEvaluator`], with the outer
    /// shrink search capped at `max_level` subset levels (`None` = the
    /// full search, used when decomposition is forced on a small game).
    Decomposed {
        /// Workload-similarity clusters the evaluator decomposes into.
        clusters: usize,
        /// Outer ISHM level cap (see [`crate::ishm::IshmConfig::max_level`]).
        max_level: Option<usize>,
    },
}

impl SolveStrategy {
    /// Stable key for telemetry and bench output.
    pub fn key(&self) -> &'static str {
        match self {
            SolveStrategy::Exact => "exact",
            SolveStrategy::Cggs => "cggs",
            SolveStrategy::Decomposed { .. } => "decomposed",
        }
    }

    /// One-line human rendering, e.g. `decomposed(clusters=9, max_level=1)`.
    pub fn describe(&self) -> String {
        match self {
            SolveStrategy::Exact => "exact".into(),
            SolveStrategy::Cggs => "cggs".into(),
            SolveStrategy::Decomposed {
                clusters,
                max_level,
            } => match max_level {
                Some(cap) => format!("decomposed(clusters={clusters}, max_level={cap})"),
                None => format!("decomposed(clusters={clusters}, max_level=full)"),
            },
        }
    }

    /// The ISHM outer level cap this strategy imposes (`None` = full
    /// search).
    pub fn level_cap(&self) -> Option<usize> {
        match self {
            SolveStrategy::Decomposed { max_level, .. } => *max_level,
            _ => None,
        }
    }
}

/// The hardness-aware strategy policy: exact enumeration while the order
/// factorial is tiny, uncapped CGGS while the outer subset sweeps stay
/// tractable, and the capped decomposed evaluator beyond — with the cap
/// loosened to two levels on moderately wide instances whose budget
/// covers most of the attack mass (the knapsack says they are easy, so a
/// deeper search is affordable).
pub fn plan(features: &InstanceFeatures) -> SolveStrategy {
    if features.n_types <= EXACT_MAX_TYPES {
        return SolveStrategy::Exact;
    }
    if features.n_types <= ISHM_FULL_MAX_TYPES {
        return SolveStrategy::Cggs;
    }
    let deep = features.n_types <= 2 * ISHM_FULL_MAX_TYPES && features.knapsack_coverage >= 0.5;
    SolveStrategy::Decomposed {
        clusters: TypeClusters::cluster_count(features.n_types, DEFAULT_CLUSTER_SIZE),
        max_level: Some(if deep { 2 } else { 1 }),
    }
}

/// The strategy for a *forced* decomposed solve
/// ([`crate::solver::InnerKind::Decomposed`]): always the decomposed
/// evaluator, with the outer search left uncapped while the subset sweeps
/// are tractable — so small-game forced-decomposed solves are directly
/// comparable (bit-identical, in fact) to the exact path.
pub fn decomposed_strategy(features: &InstanceFeatures) -> SolveStrategy {
    let cap = match plan(features) {
        SolveStrategy::Decomposed { max_level, .. } => max_level,
        _ => None,
    };
    SolveStrategy::Decomposed {
        clusters: TypeClusters::cluster_count(features.n_types, DEFAULT_CLUSTER_SIZE),
        max_level: cap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{random_game, syn_a, RandomGameConfig};
    use crate::fuzz::{fuzz_game, FuzzConfig};

    #[test]
    fn constants_are_ordered() {
        const { assert!(EXACT_MAX_TYPES < ISHM_FULL_MAX_TYPES) }
    }

    #[test]
    fn features_are_deterministic_and_sane() {
        let spec = syn_a();
        let working = spec.dedup_actions();
        let a = InstanceFeatures::of(&spec, &working, 100);
        let b = InstanceFeatures::of(&spec, &working, 100);
        assert_eq!(a, b);
        assert_eq!(a.n_types, spec.n_types());
        assert!(a.dedup_ratio > 0.0 && a.dedup_ratio <= 1.0);
        assert!((0.0..=1.0).contains(&a.knapsack_coverage));
    }

    #[test]
    fn small_games_plan_exact() {
        let spec = syn_a();
        let f = InstanceFeatures::of(&spec, &spec, 50);
        assert_eq!(plan(&f), SolveStrategy::Exact);
        assert_eq!(plan(&f).key(), "exact");
        assert_eq!(plan(&f).level_cap(), None);
    }

    #[test]
    fn medium_games_plan_cggs() {
        let spec = random_game(
            &RandomGameConfig {
                n_types: 8,
                ..Default::default()
            },
            7,
        );
        let f = InstanceFeatures::of(&spec, &spec, 50);
        assert_eq!(plan(&f), SolveStrategy::Cggs);
    }

    #[test]
    fn wide_games_plan_capped_decomposition() {
        let spec = fuzz_game(&FuzzConfig::wide(), 3);
        assert!(spec.n_types() > 2, "wide profile generated a tiny game");
        let mut f = InstanceFeatures::of(&spec, &spec, 50);
        f.n_types = 30; // force the wide tier regardless of the draw
        match plan(&f) {
            SolveStrategy::Decomposed {
                clusters,
                max_level,
            } => {
                assert_eq!(
                    clusters,
                    TypeClusters::cluster_count(30, DEFAULT_CLUSTER_SIZE)
                );
                assert_eq!(max_level, Some(1), "30 types is past the deep-search tier");
            }
            other => panic!("expected decomposed, got {other:?}"),
        }
        // Moderately wide + high coverage earns the deeper cap.
        f.n_types = 16;
        f.knapsack_coverage = 0.9;
        assert_eq!(plan(&f).level_cap(), Some(2));
        f.knapsack_coverage = 0.1;
        assert_eq!(plan(&f).level_cap(), Some(1));
    }

    #[test]
    fn forced_decomposition_keeps_small_games_uncapped() {
        let spec = syn_a();
        let f = InstanceFeatures::of(&spec, &spec, 50);
        match decomposed_strategy(&f) {
            SolveStrategy::Decomposed { max_level, .. } => assert_eq!(max_level, None),
            other => panic!("expected decomposed, got {other:?}"),
        }
        let mut wide = f;
        wide.n_types = 40;
        assert_eq!(decomposed_strategy(&wide).level_cap(), Some(1));
    }

    #[test]
    fn describe_names_the_decomposition_shape() {
        let s = SolveStrategy::Decomposed {
            clusters: 9,
            max_level: Some(1),
        };
        assert_eq!(s.describe(), "decomposed(clusters=9, max_level=1)");
        assert_eq!(SolveStrategy::Exact.describe(), "exact");
    }
}
