//! Registry scenarios for the Rea A (EMR access-log) workload.
//!
//! `emr-reaa` compiles the full laptop-scale Rea A pipeline — hospital
//! world, 28-day simulated workload, repeat filtering, `F_t` fitting, and
//! the 50×50 attack grid — into a [`GameSpec`] through the existing
//! [`crate::reaa`] machinery. `emr-reaa-empirical` is the same world with
//! the raw empirical count fit instead of the moment-matched Gaussian,
//! exercising the alternative `F_t` path end to end.

use crate::reaa::{build_game, small_config, ReaAConfig};
use crate::workload::{WorkloadConfig, WorkloadGenerator};
use crate::world::{Hospital, HospitalConfig};
use audit_game::error::GameError;
use audit_game::model::GameSpec;
use audit_game::scenario::Scenario;
use std::sync::Arc;
use tdmt::profile::FitKind;

/// A conformance-scale Rea A configuration: the same seven alert types
/// and statistical structure as [`small_config`], but a much smaller
/// world and a 10×10 attack grid, sized for golden-snapshot CI cells.
pub fn conformance_config(seed: u64) -> ReaAConfig {
    ReaAConfig {
        hospital: HospitalConfig {
            n_employees: 80,
            n_patients: 300,
            pool_size: 150,
            benign_pool_size: 300,
            ..Default::default()
        },
        workload: WorkloadConfig {
            n_days: 12,
            benign_per_day: 150,
            repeat_fraction: 0.3,
        },
        n_attack_employees: 10,
        n_attack_patients: 10,
        budget: 6.0,
        seed,
        ..Default::default()
    }
}

/// Rea A as a registry scenario, parameterized by the count-model fit.
pub struct ReaAScenario {
    key: &'static str,
    fit: FitKind,
}

impl Scenario for ReaAScenario {
    fn key(&self) -> &str {
        self.key
    }

    fn source(&self) -> &str {
        "emrsim"
    }

    fn describe(&self) -> String {
        format!(
            "Rea A EMR access alerts (paper Section V.A): 7 Table VIII combination types, \
             50x50 attack grid, {} count fit",
            match self.fit {
                FitKind::Gaussian => "Gaussian",
                FitKind::Empirical => "empirical",
            }
        )
    }

    fn suggested_epsilon(&self) -> f64 {
        0.2
    }

    fn build(&self, seed: u64) -> Result<GameSpec, GameError> {
        build_game(&ReaAConfig {
            fit: self.fit,
            ..small_config(seed)
        })
    }

    fn build_small(&self, seed: u64) -> Result<GameSpec, GameError> {
        build_game(&ReaAConfig {
            fit: self.fit,
            ..conformance_config(seed)
        })
    }

    fn alert_stream(&self, seed: u64, n_periods: usize) -> Result<Vec<Vec<u64>>, GameError> {
        // Native stream: simulate the hospital workload for the requested
        // window and count labelled alerts per day, exactly as the fitting
        // pipeline does.
        let base = small_config(seed);
        let hospital = Hospital::generate(base.hospital, seed);
        let generator = WorkloadGenerator::new(
            &hospital,
            WorkloadConfig {
                n_days: n_periods as u32,
                ..base.workload
            },
        );
        let mut log = generator.generate(seed);
        log.dedup_daily();
        let engine = Hospital::rule_engine();
        let series = log.per_type_series(&engine, |_, _| {});
        Ok(tdmt::scenario::transpose_series(&series, n_periods))
    }
}

/// The scenarios this crate contributes to the cross-crate registry.
pub fn scenarios() -> Vec<Arc<dyn Scenario>> {
    vec![
        Arc::new(ReaAScenario {
            key: "emr-reaa",
            fit: FitKind::Gaussian,
        }),
        Arc::new(ReaAScenario {
            key: "emr-reaa-empirical",
            fit: FitKind::Empirical,
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conformance_build_has_paper_structure_at_reduced_scale() {
        for sc in scenarios() {
            let spec = sc.build_small(3).unwrap();
            assert_eq!(spec.n_types(), 7, "{}", sc.key());
            assert_eq!(spec.n_attackers(), 10);
            assert_eq!(spec.n_actions(), 100);
            assert!(spec.allow_opt_out);
            spec.validate().unwrap();
        }
    }

    #[test]
    fn conformance_build_is_deterministic_and_seeded() {
        let sc = &scenarios()[0];
        assert_eq!(
            sc.build_small(7).unwrap().fingerprint(),
            sc.build_small(7).unwrap().fingerprint()
        );
        assert_ne!(
            sc.build_small(7).unwrap().fingerprint(),
            sc.build_small(8).unwrap().fingerprint()
        );
    }

    #[test]
    fn gaussian_and_empirical_fits_differ() {
        let all = scenarios();
        assert_ne!(
            all[0].build_small(3).unwrap().fingerprint(),
            all[1].build_small(3).unwrap().fingerprint()
        );
    }

    #[test]
    fn native_alert_stream_counts_labelled_days() {
        let sc = &scenarios()[0];
        let stream = sc.alert_stream(1, 5).unwrap();
        assert_eq!(stream.len(), 5);
        assert!(stream.iter().all(|row| row.len() == 7));
        // The busy Table VIII types must actually fire.
        assert!(stream.iter().any(|row| row[0] > 0));
        assert_eq!(stream, sc.alert_stream(1, 5).unwrap());
    }
}
