//! Deterministic RNG construction helpers.
//!
//! Every stochastic component in the workspace takes an explicit `u64` seed
//! and derives its generator through these helpers, so experiments are
//! reproducible bit-for-bit across runs and machines.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Build a [`StdRng`] from a `u64` seed.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive an independent sub-seed from a parent seed and a stream label.
///
/// Uses the SplitMix64 output function, which is a bijective mixer with good
/// avalanche behaviour; distinct `(seed, stream)` pairs yield uncorrelated
/// generators for all practical purposes.
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a sub-RNG for a named stream of a parent seed.
pub fn stream_rng(seed: u64, stream: u64) -> StdRng {
    seeded_rng(derive_seed(seed, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream_is_deterministic() {
        let a: Vec<u32> = (0..16).map(|_| seeded_rng(42).gen()).collect();
        let b: Vec<u32> = (0..16).map(|_| seeded_rng(42).gen()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_streams_differ() {
        let mut a = stream_rng(7, 0);
        let mut b = stream_rng(7, 1);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn derive_seed_is_injective_on_small_ranges() {
        let mut seen = std::collections::HashSet::new();
        for s in 0..64u64 {
            for st in 0..64u64 {
                seen.insert(derive_seed(s, st));
            }
        }
        assert_eq!(seen.len(), 64 * 64);
    }
}
