//! Experiment E5 — paper Table VII: number of threshold vectors ISHM
//! explores per (B, ε).
//!
//! ```text
//! cargo run -p audit-bench --release --bin exp_table7 [budgets] [epsilons] [samples] [threads] [--scenario <key>]
//! ```

use audit_bench::cli::{default_threads, parse_count, parse_list, take_scenario_flag};
use audit_bench::defaults::{SEED, SYN_BUDGETS, SYN_EPSILONS_T7, SYN_SAMPLES};
use audit_bench::report::Table;
use audit_bench::scenarios::resolve_base_spec;
use audit_bench::syn_experiments::ishm_grid;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let scenario = take_scenario_flag(&mut args);
    let budgets = parse_list(args.first().cloned(), &SYN_BUDGETS);
    let epsilons = parse_list(args.get(1).cloned(), &SYN_EPSILONS_T7);
    let samples = parse_count(args.get(2).cloned(), SYN_SAMPLES);
    let threads = parse_count(args.get(3).cloned(), default_threads());
    let (key, base) = resolve_base_spec(scenario, "syn-a", SEED);
    eprintln!("Table VII reproduction on {key}: ISHM exploration counters");
    let t0 = std::time::Instant::now();
    let grid = ishm_grid(&base, &budgets, &epsilons, false, samples, SEED, threads).expect("grid");

    // Paper layout: rows = ε, columns = B.
    let mut header: Vec<String> = vec!["eps \\ B".into()];
    header.extend(budgets.iter().map(|b| format!("{b}")));
    let mut table = Table::new(header);
    for (e, &eps) in epsilons.iter().enumerate() {
        let mut row: Vec<String> = vec![format!("{eps}")];
        for row_cells in &grid {
            row.push(format!("{}", row_cells[e].explored));
        }
        table.row(row);
    }
    println!("{}", table.render());
    eprintln!("elapsed: {:.1?}", t0.elapsed());
}
