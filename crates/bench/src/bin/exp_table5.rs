//! Experiment E3 — paper Table V: ISHM with the CGGS column-generation
//! inner solver across the same (B, ε) grid as Table IV.
//!
//! ```text
//! cargo run -p audit-bench --release --bin exp_table5 [budgets] [epsilons] [samples] [threads] [--scenario <key>]
//! ```

use audit_bench::cli::{default_threads, parse_count, parse_list, take_scenario_flag};
use audit_bench::defaults::{SEED, SYN_BUDGETS, SYN_EPSILONS, SYN_SAMPLES};
use audit_bench::report::{f4, thresholds_str, Table};
use audit_bench::scenarios::resolve_base_spec;
use audit_bench::syn_experiments::ishm_grid;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let scenario = take_scenario_flag(&mut args);
    let budgets = parse_list(args.first().cloned(), &SYN_BUDGETS);
    let epsilons = parse_list(args.get(1).cloned(), &SYN_EPSILONS);
    let samples = parse_count(args.get(2).cloned(), SYN_SAMPLES);
    let threads = parse_count(args.get(3).cloned(), default_threads());
    let (key, base) = resolve_base_spec(scenario, "syn-a", SEED);
    eprintln!(
        "Table V reproduction on {key}: ISHM + CGGS ({samples} samples, {threads} engine thread(s))"
    );
    let t0 = std::time::Instant::now();
    let grid = ishm_grid(&base, &budgets, &epsilons, true, samples, SEED, threads)
        .expect("ISHM+CGGS grid");
    let costs = base.audit_costs();

    let mut header: Vec<String> = vec!["B".into()];
    header.extend(epsilons.iter().map(|e| format!("eps={e}")));
    let mut table = Table::new(header);
    for row in &grid {
        let mut cells: Vec<String> = vec![format!("{}", row[0].budget)];
        for cell in row {
            cells.push(format!(
                "{} {}",
                f4(cell.value),
                thresholds_str(&cell.thresholds, &costs)
            ));
        }
        table.row(cells);
    }
    println!("{}", table.render());
    eprintln!("elapsed: {:.1?}", t0.elapsed());
}
