//! End-to-end smoke test: the `exp_hardness` experiment binary (Theorem 1
//! knapsack reduction) must verify the `OAP* = |E| − knapsack*` identity
//! on every instance of a tiny run and reject malformed arguments.

use std::process::Command;

#[test]
fn exp_hardness_verifies_the_reduction_on_a_tiny_run() {
    let exe = env!("CARGO_BIN_EXE_exp_hardness");
    let out = Command::new(exe)
        .args(["4"])
        .output()
        .expect("exp_hardness spawns");
    assert!(
        out.status.success(),
        "exp_hardness exited with {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        stdout.matches(" ok ").count(),
        4,
        "expected 4 verified instances:\n{stdout}"
    );
    assert!(
        !stdout.contains("MISMATCH"),
        "reduction identity violated:\n{stdout}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("all 4 reductions verified"),
        "missing summary line:\n{stderr}"
    );
}

#[test]
fn exp_hardness_rejects_a_malformed_instance_count() {
    let exe = env!("CARGO_BIN_EXE_exp_hardness");
    let out = Command::new(exe)
        .args(["not-a-number"])
        .output()
        .expect("exp_hardness spawns");
    assert!(!out.status.success(), "malformed count must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("instance count"),
        "error should name the bad argument:\n{stderr}"
    );
}
