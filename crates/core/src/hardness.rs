//! 0-1 knapsack and the executable NP-hardness reduction of Theorem 1.
//!
//! The paper proves OAP NP-hard by reducing 0-1 Knapsack to a restricted
//! auditing instance: a singleton order set, deterministic `Z_t = 1`,
//! victims identified with alert types, `M = K = 0`, and per-attacker
//! rewards `R(⟨e,v⟩) = 1` iff `v = t(e)`. Choosing thresholds then
//! coincides with choosing a knapsack subset: the auditor "packs" alert
//! types (weight `C_t = w_i`, value `v_i` = number of attackers bound to
//! the type) into the budget `B = W`, and the optimal loss is
//! `|E| − (optimal knapsack value)`.
//!
//! This module makes the construction executable: [`solve_knapsack`] is an
//! exact DP, [`knapsack_to_oap`] builds the game instance, and the tests
//! (plus `tests/hardness_reduction.rs` at the workspace root) verify the
//! reduction identity on random instances end-to-end.

use crate::model::{AttackAction, Attacker, GameSpec, GameSpecBuilder};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use stochastics::Constant;

/// A 0-1 knapsack instance with integer weights and values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnapsackInstance {
    /// Item weights `w_i > 0`.
    pub weights: Vec<u64>,
    /// Item values `v_i ≥ 0`.
    pub values: Vec<u64>,
    /// Weight budget `W`.
    pub capacity: u64,
}

impl KnapsackInstance {
    /// Construct and validate.
    pub fn new(weights: Vec<u64>, values: Vec<u64>, capacity: u64) -> Self {
        assert_eq!(
            weights.len(),
            values.len(),
            "weights/values length mismatch"
        );
        assert!(weights.iter().all(|&w| w > 0), "weights must be positive");
        Self {
            weights,
            values,
            capacity,
        }
    }

    /// Number of items.
    pub fn n_items(&self) -> usize {
        self.weights.len()
    }

    /// Total value of all items.
    pub fn total_value(&self) -> u64 {
        self.values.iter().sum()
    }
}

/// Exact 0-1 knapsack solution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KnapsackSolution {
    /// Optimal total value.
    pub value: u64,
    /// Chosen item indices (ascending).
    pub items: Vec<usize>,
}

/// Exact DP over capacities: `O(n·W)` time, `O(n·W)` space (kept simple —
/// the reduction instances are small by construction).
pub fn solve_knapsack(inst: &KnapsackInstance) -> KnapsackSolution {
    let n = inst.n_items();
    let w = inst.capacity as usize;
    // best[i][c] = best value using items < i with capacity c.
    let mut best = vec![vec![0u64; w + 1]; n + 1];
    for i in 0..n {
        let wi = inst.weights[i] as usize;
        let vi = inst.values[i];
        for c in 0..=w {
            let skip = best[i][c];
            let take = if wi <= c { best[i][c - wi] + vi } else { 0 };
            best[i + 1][c] = skip.max(take);
        }
    }
    // Back-track the chosen set.
    let mut items = Vec::new();
    let mut c = w;
    for i in (0..n).rev() {
        if best[i + 1][c] != best[i][c] {
            items.push(i);
            c -= inst.weights[i] as usize;
        }
    }
    items.reverse();
    KnapsackSolution {
        value: best[n][w],
        items,
    }
}

/// Build the Theorem 1 OAP instance from a knapsack instance.
///
/// * one alert type per item with `C_t = w_i` and `Z_t ≡ 1`;
/// * `v_i` attackers bound to type `i` (reward 1 on their type, 0
///   elsewhere; `M = K = 0`, `p_e = 1`);
/// * budget `B = W`; opting out is disabled (it changes nothing since all
///   utilities are non-negative).
pub fn knapsack_to_oap(inst: &KnapsackInstance) -> GameSpec {
    let n = inst.n_items();
    let mut b = GameSpecBuilder::new();
    for (i, &w) in inst.weights.iter().enumerate() {
        b.alert_type(format!("item{i}"), w as f64, Arc::new(Constant(1)));
    }
    for (i, &v) in inst.values.iter().enumerate() {
        for copy in 0..v {
            // Each attacker may aim at any type (victim set V = T), but only
            // their own type pays.
            let actions: Vec<AttackAction> = (0..n)
                .map(|t| {
                    let reward = if t == i { 1.0 } else { 0.0 };
                    AttackAction::deterministic(format!("type{t}"), t, reward, 0.0, 0.0)
                })
                .collect();
            b.attacker(Attacker::new(format!("e{i}_{copy}"), 1.0, actions));
        }
    }
    b.budget(inst.capacity as f64);
    b.allow_opt_out(false);
    b.build().expect("reduction instance is structurally valid")
}

/// The reduction identity: optimal OAP loss = `|E| − OPT_knapsack`.
///
/// Solves the OAP side by brute force over the `{0, C_t}` threshold lattice
/// with the singleton identity order (the theorem's restricted setting) and
/// the knapsack side by DP; returns `(oap_loss, |E| − knapsack_value)`.
/// The two must agree for every instance.
pub fn verify_reduction(inst: &KnapsackInstance) -> (f64, f64) {
    use crate::detection::{DetectionEstimator, DetectionModel};
    use crate::master::MasterSolver;
    use crate::ordering::AuditOrder;
    use crate::payoff::PayoffMatrix;

    let spec = knapsack_to_oap(inst);
    let n = inst.n_items();
    let bank = spec.sample_bank(1, 0); // Z is deterministic
    let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
    let order = vec![AuditOrder::identity(n)];

    // Enumerate b ∈ Π {0, C_t}: type t audited iff b_t = C_t.
    let mut best = f64::INFINITY;
    for mask in 0..(1u64 << n) {
        let thresholds: Vec<f64> = (0..n)
            .map(|t| {
                if mask & (1 << t) != 0 {
                    spec.alert_types[t].audit_cost
                } else {
                    0.0
                }
            })
            .collect();
        let m = PayoffMatrix::build(&spec, &est, order.clone(), &thresholds);
        let v = MasterSolver::solve(&spec, &m)
            .expect("reduction LP is feasible")
            .value;
        best = best.min(v);
    }

    let dp = solve_knapsack(inst);
    let expected = spec.n_attackers() as f64 - dp.value as f64;
    (best, expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knapsack_textbook_instance() {
        // Items (w, v): (2,3), (3,4), (4,5), (5,6); W = 5 → take (2,3)+(3,4).
        let inst = KnapsackInstance::new(vec![2, 3, 4, 5], vec![3, 4, 5, 6], 5);
        let sol = solve_knapsack(&inst);
        assert_eq!(sol.value, 7);
        assert_eq!(sol.items, vec![0, 1]);
    }

    #[test]
    fn knapsack_zero_capacity() {
        let inst = KnapsackInstance::new(vec![1, 2], vec![10, 20], 0);
        assert_eq!(solve_knapsack(&inst).value, 0);
    }

    #[test]
    fn knapsack_all_fit() {
        let inst = KnapsackInstance::new(vec![1, 1, 1], vec![5, 6, 7], 10);
        let sol = solve_knapsack(&inst);
        assert_eq!(sol.value, 18);
        assert_eq!(sol.items, vec![0, 1, 2]);
    }

    #[test]
    fn knapsack_selection_respects_capacity() {
        let inst = KnapsackInstance::new(vec![4, 3, 2], vec![9, 7, 4], 6);
        let sol = solve_knapsack(&inst);
        let weight: u64 = sol.items.iter().map(|&i| inst.weights[i]).sum();
        assert!(weight <= inst.capacity);
        let value: u64 = sol.items.iter().map(|&i| inst.values[i]).sum();
        assert_eq!(value, sol.value);
    }

    #[test]
    fn reduction_spec_shape() {
        let inst = KnapsackInstance::new(vec![2, 3], vec![2, 1], 3);
        let spec = knapsack_to_oap(&inst);
        assert_eq!(spec.n_types(), 2);
        assert_eq!(spec.n_attackers(), 3); // v_0 + v_1
        assert_eq!(spec.budget, 3.0);
        assert_eq!(spec.audit_costs(), vec![2.0, 3.0]);
    }

    #[test]
    fn reduction_identity_small_instances() {
        for (w, v, cap) in [
            (vec![2u64, 3, 4], vec![3u64, 4, 5], 5u64),
            (vec![1, 2, 3], vec![6, 10, 12], 5),
            (vec![5, 4, 6, 3], vec![10, 40, 30, 50], 10),
            (vec![1, 1], vec![1, 1], 1),
        ] {
            let inst = KnapsackInstance::new(w, v, cap);
            let (oap, expected) = verify_reduction(&inst);
            assert!(
                (oap - expected).abs() < 1e-6,
                "reduction mismatch on {inst:?}: OAP {oap} vs |E|−OPT {expected}"
            );
        }
    }
}
