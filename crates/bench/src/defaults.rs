//! Shared experiment parameters: the paper's grids plus reproducible seeds.

/// Budget grid of Tables III–VII (Section IV.B).
pub const SYN_BUDGETS: [f64; 10] = [2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0, 20.0];

/// Step-size grid of Tables IV–VI.
pub const SYN_EPSILONS: [f64; 10] = [0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50];

/// Step-size subset reported in Table VII.
pub const SYN_EPSILONS_T7: [f64; 5] = [0.10, 0.20, 0.30, 0.40, 0.50];

/// Budget grid of Figure 1 (Rea A): 10..=100 step 10.
pub fn fig1_budgets() -> Vec<f64> {
    (1..=10).map(|i| (i * 10) as f64).collect()
}

/// Budget grid of Figure 2 (Rea B): 10..=250 step 20.
pub fn fig2_budgets() -> Vec<f64> {
    (0..=12).map(|i| (10 + i * 20) as f64).collect()
}

/// ISHM step sizes plotted in Figures 1–2.
pub const FIG_EPSILONS: [f64; 3] = [0.1, 0.2, 0.3];

/// Monte-Carlo sample count for `Pal` estimation in the Syn A experiments.
pub const SYN_SAMPLES: usize = 1000;

/// Monte-Carlo sample count for the (larger) real-data experiments.
pub const REAL_SAMPLES: usize = 400;

/// Master seed for all experiment randomness.
pub const SEED: u64 = 20180422; // the paper's arXiv date

/// Random-order baseline: sampled orders (paper: 2000).
pub const RANDOM_ORDER_SAMPLES: usize = 2000;

/// Random-threshold baseline repetitions (paper: 5000; we default lower —
/// each repetition is a full CGGS solve — and report the count used).
pub const RANDOM_THRESHOLD_REPEATS: usize = 120;

pub use crate::cli::{default_threads, parse_count, parse_list, render_cache_stats, take_flag};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_match_paper() {
        assert_eq!(SYN_BUDGETS.len(), 10);
        assert_eq!(SYN_EPSILONS.len(), 10);
        assert_eq!(
            fig1_budgets(),
            vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0]
        );
        let f2 = fig2_budgets();
        assert_eq!(f2.first(), Some(&10.0));
        assert_eq!(f2.last(), Some(&250.0));
        assert_eq!(f2.len(), 13);
    }

    #[test]
    fn parse_count_prefers_argument() {
        assert_eq!(parse_count(Some("7".into()), 3), 7);
        assert_eq!(parse_count(None, 3), 3);
    }

    #[test]
    #[should_panic]
    fn parse_count_rejects_zero() {
        parse_count(Some("0".into()), 1);
    }
}
