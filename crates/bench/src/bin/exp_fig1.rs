//! Experiment E7 — paper Figure 1: auditor's loss on Rea A (EMR access
//! alerts) across budgets 10..=100 for the proposed model (ε ∈
//! {0.1, 0.2, 0.3}) and the three baselines.
//!
//! ```text
//! cargo run -p audit-bench --release --bin exp_fig1 [budgets] [samples] [repeats] [threads] [--scenario <key>]
//! ```
//!
//! `samples` overrides the Monte-Carlo sample count, `repeats` the
//! random-threshold baseline repetitions, `threads` the detection-engine
//! workers (default: `AUDIT_THREADS` or 1; thread count never changes the
//! numbers), and `--scenario` swaps the base game (default `emr-reaa`,
//! the laptop-scale Rea A configuration — fewer simulated people,
//! identical statistical structure, since the full-scale world only
//! changes simulation time, not the game).

use audit_bench::cli::{default_threads, parse_count, parse_list, take_scenario_flag};
use audit_bench::defaults::{
    FIG_EPSILONS, RANDOM_ORDER_SAMPLES, RANDOM_THRESHOLD_REPEATS, REAL_SAMPLES, SEED,
};
use audit_bench::real_experiments::{budget_sweep, render_figure, SweepConfig};
use audit_bench::scenarios::resolve_base_spec;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let scenario = take_scenario_flag(&mut args);
    let budgets = parse_list(
        args.first().cloned(),
        &audit_bench::defaults::fig1_budgets(),
    );
    let samples = parse_count(args.get(1).cloned(), REAL_SAMPLES);
    let repeats = parse_count(args.get(2).cloned(), RANDOM_THRESHOLD_REPEATS);
    let threads = parse_count(args.get(3).cloned(), default_threads());

    eprintln!("Figure 1 reproduction (Rea A budget sweep with baselines)");
    let t0 = std::time::Instant::now();
    let (_, spec) = resolve_base_spec(scenario, "emr-reaa", SEED);
    eprintln!(
        "per-type count-model means: {:?}",
        spec.distributions
            .iter()
            .map(|d| (d.mean() * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    let sweep = SweepConfig {
        epsilons: FIG_EPSILONS.to_vec(),
        n_samples: samples,
        seed: SEED,
        random_order_samples: RANDOM_ORDER_SAMPLES,
        random_threshold_repeats: repeats,
        dedup_actions: true,
        threads,
    };
    let data = budget_sweep(&spec, &budgets, &sweep).expect("sweep solves");
    println!("{}", render_figure(&data));
    eprintln!("elapsed: {:.1?}", t0.elapsed());
}
