//! P5 — the online runtime's re-solve path: cold solve vs warm-started
//! re-solve on a drifted refit of the `syn-seasonal` scenario.
//!
//! The fixture reproduces what the service does at a drift epoch: solve
//! the scenario cold, stream periods into the online fit, refit the
//! per-type count models from the recent window, and re-solve the refit
//! game. The comparison isolates what the two warm-start seams (ISHM
//! start vector + CGGS seed columns) buy over a from-scratch solve of the
//! same game; both paths reach the same objective within the CG tolerance
//! (enforced by `tests/runtime_properties.rs`).

use audit_game::scenario::registry;
use audit_game::solver::{AuditSolution, InnerKind, OapSolver, SolverConfig, WarmStart};
use audit_runtime::{warm_start_rescaled, OnlineFit};
use criterion::{criterion_group, criterion_main, Criterion};

struct Fixture {
    solver: OapSolver,
    drifted: audit_game::model::GameSpec,
    warm: WarmStart,
    incumbent: AuditSolution,
}

/// Solve `syn-seasonal` cold, then refit its count models from a 10-period
/// window of the live stream — the drifted game the service re-solves.
fn fixture() -> Fixture {
    let reg = registry();
    let sc = reg.get("syn-seasonal").expect("core scenario");
    let spec = sc.build(0).expect("builds");
    // Paper-scale Monte-Carlo sampling: `Pal` evaluation dominates the
    // solve, which is exactly the regime where skipping threshold
    // candidates and pricing iterations pays off.
    let solver = OapSolver::new(SolverConfig {
        inner: InnerKind::Cggs,
        n_samples: 1000,
        epsilon: 0.25,
        ..Default::default()
    });
    let incumbent = solver.solve(&spec).expect("initial solve");

    // Ten periods = days 0..9 of the weekly cycle: an 8-weekday window,
    // the busy side of the seasonal drift. The refit is busier than the
    // committed phase-uniform mixture, so the cold re-solve has a real
    // descent to do from its full-coverage start — the work the warm
    // start skips.
    let stream = sc.alert_stream(0, 10).expect("stream");
    let mut fit = OnlineFit::new(spec.n_types(), 10);
    for row in &stream {
        fit.observe(row);
    }
    let mut drifted = spec.clone();
    drifted.distributions = fit.refit(0.995);
    drifted.joint_counts = None;
    let warm = warm_start_rescaled(&incumbent.policy, &spec, &drifted);
    Fixture {
        solver,
        drifted,
        warm,
        incumbent,
    }
}

fn bench_runtime_resolve(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group("runtime_resolve_syn_seasonal");
    group.sample_size(20);
    group.bench_function("cold_solve", |b| {
        b.iter(|| f.solver.solve(&f.drifted).expect("cold re-solve"))
    });
    group.bench_function("warm_resolve", |b| {
        b.iter(|| {
            f.solver
                .solve_warm(&f.drifted, Some(&f.warm))
                .expect("warm re-solve")
        })
    });
    group.bench_function("warm_columns_only", |b| {
        let columns = WarmStart {
            thresholds: None,
            orders: f.incumbent.policy.orders.clone(),
        };
        b.iter(|| {
            f.solver
                .solve_warm(&f.drifted, Some(&columns))
                .expect("column-seeded re-solve")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_runtime_resolve);
criterion_main!(benches);
