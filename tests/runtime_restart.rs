//! Warm-restart equivalence of the online auditing service.
//!
//! The contract of [`AuditService::checkpoint`] / [`AuditService::restore`]
//! is total: a run interrupted at *any* epoch boundary and resumed from
//! its checkpoint must produce a [`RuntimeReport`] whose deterministic
//! fingerprint — which covers every telemetry field except wall-clock
//! latencies — is bit-identical to the uninterrupted run. This suite
//! drives that contract end to end through the public service API, at
//! every interruption point of a short horizon and across engine thread
//! counts (thread count never changes results, including through a
//! checkpoint).

use alert_audit::scenario::registry;
use audit_game::solver::{InnerKind, SolverConfig};
use audit_runtime::{AuditService, DriftConfig, RuntimeConfig};
use std::path::PathBuf;
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("audit-restart-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn config(epochs: usize, threads: usize) -> RuntimeConfig {
    RuntimeConfig {
        epochs,
        periods_per_epoch: 4,
        seed: 7,
        solver: SolverConfig {
            inner: InnerKind::Cggs,
            n_samples: 100,
            epsilon: 0.25,
            seed: 7,
            threads,
            ..Default::default()
        },
        drift: DriftConfig {
            window_periods: 8,
            ks_threshold: 0.25,
            max_stale_epochs: Some(4),
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Interrupt at every epoch boundary of an 8-epoch run; each restore must
/// land on the uninterrupted fingerprint.
#[test]
fn restore_is_fingerprint_identical_at_every_interruption_point() {
    let reg = registry();
    let scenario = reg.get("syn-seasonal").unwrap().clone();
    let epochs = 8;

    let full = AuditService::new(Arc::clone(&scenario), config(epochs, 1))
        .run()
        .unwrap();
    let want = full.fingerprint();

    for stop in 1..epochs {
        let dir = temp_dir(&format!("stop{stop}"));
        let service = AuditService::new(Arc::clone(&scenario), config(epochs, 1));
        let state = service.run_until(stop).unwrap();
        assert_eq!(state.epoch, stop);
        service.checkpoint(&state, &dir).unwrap();
        drop(service); // the original service is gone — a true cold restart

        let (restored, state) = AuditService::restore(Arc::clone(&scenario), &dir).unwrap();
        let report = restored.resume(state).unwrap();
        assert_eq!(
            report.fingerprint(),
            want,
            "restore at epoch {stop} diverged from the uninterrupted run"
        );
        assert_eq!(report.epochs.len(), full.epochs.len());
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A checkpoint taken under one engine thread count must restore and
/// finish identically under the same seedline regardless of threads —
/// parallelism is a wall-clock knob, never a results knob.
#[test]
fn restore_agrees_across_thread_counts() {
    let reg = registry();
    let scenario = reg.get("syn-seasonal").unwrap().clone();
    let epochs = 6;

    let mut fingerprints = Vec::new();
    for threads in [1usize, 2, 4] {
        let dir = temp_dir(&format!("threads{threads}"));
        let service = AuditService::new(Arc::clone(&scenario), config(epochs, threads));
        let state = service.run_until(3).unwrap();
        service.checkpoint(&state, &dir).unwrap();
        let (restored, state) = AuditService::restore(Arc::clone(&scenario), &dir).unwrap();
        fingerprints.push(restored.resume(state).unwrap().fingerprint());
        std::fs::remove_dir_all(&dir).ok();
    }
    assert_eq!(fingerprints[0], fingerprints[1]);
    assert_eq!(fingerprints[0], fingerprints[2]);
}

/// The adaptive-attacker scenario threads extra state through a restart:
/// the attacker's EWMA belief over published policies and the attack
/// telemetry counters. Interrupting mid-adaptation must not lose either —
/// every restore point lands on the uninterrupted fingerprint, and the
/// run must actually contain attacks (a zero-attack run would make this
/// test vacuous).
#[test]
fn adaptive_attacker_restores_fingerprint_identical_mid_adaptation() {
    let reg = registry();
    let scenario = reg.get("syn-adaptive").unwrap().clone();
    let epochs = 6;

    let full = AuditService::new(Arc::clone(&scenario), config(epochs, 1))
        .run()
        .unwrap();
    let want = full.fingerprint();
    let launched: u64 = full.epochs.iter().map(|e| e.attacks_launched).sum();
    assert!(launched > 0, "adaptive soak ran without a single attack");

    for stop in [2usize, 4] {
        let dir = temp_dir(&format!("adaptive{stop}"));
        let service = AuditService::new(Arc::clone(&scenario), config(epochs, 1));
        let state = service.run_until(stop).unwrap();
        assert_eq!(
            state.attacker_belief.len(),
            full.epochs[0].alerts_seen.len(),
            "belief vector arity drifted"
        );
        service.checkpoint(&state, &dir).unwrap();
        drop(service);

        let (restored, state) = AuditService::restore(Arc::clone(&scenario), &dir).unwrap();
        let report = restored.resume(state).unwrap();
        assert_eq!(
            report.fingerprint(),
            want,
            "adaptive restore at epoch {stop} diverged from the uninterrupted run"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Checkpointing at the horizon is legal: restore yields the finished
/// report without running another epoch.
#[test]
fn checkpoint_at_the_horizon_restores_the_finished_run() {
    let reg = registry();
    let scenario = reg.get("syn-a").unwrap().clone();
    let epochs = 4;
    let dir = temp_dir("done");

    let service = AuditService::new(Arc::clone(&scenario), config(epochs, 1));
    let state = service.run_until(epochs).unwrap();
    let want = service.report(state.clone()).fingerprint();
    service.checkpoint(&state, &dir).unwrap();

    let (restored, state) = AuditService::restore(Arc::clone(&scenario), &dir).unwrap();
    assert_eq!(state.epoch, epochs);
    let report = restored.resume(state).unwrap();
    assert_eq!(report.fingerprint(), want);
    std::fs::remove_dir_all(&dir).ok();
}

/// A checkpoint directory with a flipped byte in either file is rejected
/// with a typed error — the service never resumes from damaged state.
#[test]
fn damaged_checkpoint_files_are_rejected() {
    let reg = registry();
    let scenario = reg.get("syn-seasonal").unwrap().clone();
    let dir = temp_dir("damage");

    let service = AuditService::new(Arc::clone(&scenario), config(6, 1));
    let state = service.run_until(2).unwrap();
    service.checkpoint(&state, &dir).unwrap();

    for file in ["bank.snap", "state.snap"] {
        let path = dir.join(file);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        let damaged = temp_dir(&format!("damage-{file}"));
        std::fs::create_dir_all(&damaged).unwrap();
        for f in ["bank.snap", "state.snap"] {
            std::fs::copy(dir.join(f), damaged.join(f)).unwrap();
        }
        std::fs::write(damaged.join(file), &bytes).unwrap();
        match AuditService::restore(Arc::clone(&scenario), &damaged) {
            Ok(_) => panic!("{file}: damaged checkpoint restored successfully?!"),
            Err(err) => assert!(
                matches!(err, audit_game::error::GameError::Persist(_)),
                "{file}: unexpected error: {err}"
            ),
        }
        std::fs::remove_dir_all(&damaged).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}
