//! A minimal self-contained JSON reader/writer for the golden snapshot
//! files.
//!
//! The workspace's offline `serde` shim is a marker-trait stand-in with
//! no data format behind it (see `vendor/README.md`), so the conformance
//! suite carries its own tiny JSON layer: a [`Value`] tree, a pretty
//! writer, and a recursive-descent parser. Floats are written with Rust's
//! shortest-roundtrip formatting (`{:?}`), so `write → parse` restores
//! every `f64` bit-for-bit — which is what lets golden comparisons use
//! exact or near-exact tolerances.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (JSON has no NaN/infinity).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Keys are kept sorted (BTreeMap) so output is canonical.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field access.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The array, if this is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Build an array of numbers.
    pub fn nums(xs: impl IntoIterator<Item = f64>) -> Value {
        Value::Arr(xs.into_iter().map(Value::Num).collect())
    }

    /// Render as pretty-printed JSON with a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Num(x) => {
                assert!(x.is_finite(), "JSON cannot carry {x}");
                // {:?} is Rust's shortest f64 representation that parses
                // back to the same bits.
                let _ = write!(out, "{x:?}");
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\n{pad}  ");
                    item.write(out, indent + 1);
                }
                let _ = write!(out, "\n{pad}]");
            }
            Value::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\n{pad}  ");
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                let _ = write!(out, "\n{pad}}}");
            }
        }
    }

    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            c as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    other => return Err(format!("expected ',' or ']' , found {other:?}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(map));
                    }
                    other => return Err(format!("expected ',' or '}}', found {other:?}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let mut code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        if (0xD800..0xDC00).contains(&code) {
                            // High surrogate: must pair with a following
                            // \uDC00..\uDFFF low surrogate (JSON encodes
                            // non-BMP characters as UTF-16 pairs).
                            if bytes.get(*pos + 1..*pos + 3) != Some(b"\\u") {
                                return Err("unpaired high surrogate".into());
                            }
                            let low = parse_hex4(bytes, *pos + 3)?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err("invalid low surrogate".into());
                            }
                            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            *pos += 6;
                        }
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                    }
                    other => return Err(format!("invalid escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], start: usize) -> Result<u32, String> {
    let hex = bytes.get(start..start + 4).ok_or("truncated \\u escape")?;
    u32::from_str_radix(std::str::from_utf8(hex).map_err(|e| e.to_string())?, 16)
        .map_err(|e| e.to_string())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_structure_and_float_bits() {
        let v = Value::obj([
            ("name", Value::Str("syn-a".into())),
            ("budget", Value::Num(2.0)),
            ("objective", Value::Num(12.294_517_318_462_11)),
            ("tiny", Value::Num(3.9e-17)),
            ("flags", Value::Arr(vec![Value::Bool(true), Value::Null])),
            (
                "thresholds",
                Value::nums([1.0, 0.1 + 0.2, f64::MIN_POSITIVE]),
            ),
        ]);
        let text = v.render();
        let back = Value::parse(&text).unwrap();
        assert_eq!(v, back);
        // Bit-exact float restoration, including the non-representable sum.
        let t = back.get("thresholds").unwrap().as_arr().unwrap();
        assert_eq!(t[1].as_f64().unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
    }

    #[test]
    fn parses_hand_written_json() {
        let v = Value::parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny"}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2], Value::Num(-300.0));
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str().unwrap(),
            "x\ny"
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("12 34").is_err());
        assert!(Value::parse("\"unterminated").is_err());
    }

    #[test]
    fn surrogate_pairs_decode_to_non_bmp_chars() {
        let v = Value::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v, Value::Str("\u{1F600}".into()));
        // Raw (unescaped) non-BMP text also survives.
        assert_eq!(
            Value::parse("\"😀\"").unwrap(),
            Value::Str("\u{1F600}".into())
        );
        // Unpaired or malformed surrogates are rejected, not mangled.
        assert!(Value::parse(r#""\ud83d""#).is_err());
        assert!(Value::parse(r#""\ud83dA""#).is_err());
        assert!(Value::parse(r#""\udc00""#).is_err());
    }

    #[test]
    fn escapes_are_symmetric() {
        let v = Value::Str("quote \" slash \\ newline \n tab \t".into());
        assert_eq!(Value::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn all_short_escape_forms_round_trip() {
        // Every two-character escape of RFC 8259, plus a sub-0x20 control
        // that has no short form and must stay \u-encoded.
        let v = Value::Str("\" \\ / \n \t \r \u{0008} \u{000C} \u{0001}".into());
        let text = v.render();
        assert_eq!(Value::parse(&text).unwrap(), v);
        assert!(text.contains("\\b"), "backspace renders short: {text}");
        assert!(text.contains("\\f"), "form feed renders short: {text}");
        assert!(text.contains("\\u0001"), "other controls stay \\u: {text}");
        assert!(!text.contains("\\u0008"), "no generic backspace: {text}");
        assert!(!text.contains("\\u000c"), "no generic form feed: {text}");
    }

    #[test]
    fn backspace_and_formfeed_escapes_parse() {
        // Hand-written \b and \f (valid JSON) must parse, in both the
        // short and the \u spellings, to the same string.
        let short = Value::parse(r#""a\bz\fq""#).unwrap();
        let long = Value::parse("\"a\\u0008z\\u000cq\"").unwrap();
        assert_eq!(short, Value::Str("a\u{0008}z\u{000C}q".into()));
        assert_eq!(short, long);
        // Unknown escapes are still rejected.
        assert!(Value::parse(r#""\x""#).is_err());
    }

    #[test]
    fn canonical_object_ordering() {
        let a = Value::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let b = Value::parse(r#"{"a": 2, "z": 1}"#).unwrap();
        assert_eq!(a.render(), b.render());
    }
}
