//! Supervised fault tolerance: deterministic fault injection, tenant
//! quarantine bookkeeping, and retry/backoff policy.
//!
//! The runtime's robustness story is built on a single principle: **every
//! failure the supervisor handles must be reproducible**. Faults are not
//! sampled at run time from wall-clock entropy — they are declared up
//! front in a [`FaultPlan`], a value keyed by `(tenant, round, site)` that
//! can be fingerprinted, logged, and replayed. The same plan against the
//! same fleet produces the same failures, the same quarantine decisions,
//! and the same recovered reports, at every worker count.
//!
//! Three pieces compose:
//!
//! * [`FaultPlan`] — an immutable set of planned faults, either built
//!   explicitly ([`FaultPlan::inject`]) or generated from a seed
//!   ([`FaultPlan::seeded`]) via the same SplitMix-derived stream
//!   discipline ([`stochastics::rng::stream_rng`]) the rest of the
//!   runtime uses;
//! * [`FaultInjector`] — a per-tenant view of the plan handed to
//!   [`crate::service::AuditService`]. Each planned fault fires **exactly
//!   once** ([`FaultInjector::fires`] consumes it), so a quarantined
//!   tenant retried from its last good state does not re-trip the same
//!   fault forever: one-shot semantics are what make `Recovered` an
//!   observable outcome rather than a livelock;
//! * [`RetryPolicy`] — deterministic, round-based exponential backoff.
//!   Delays are counted in scheduler rounds, never wall-clock, so the
//!   retry schedule is part of the reproducible transcript.
//!
//! [`TenantHealth`] and [`TenantFailure`] are the supervisor's public
//! record of what happened to each tenant; the fleet scheduler
//! ([`crate::fleet::FleetService`]) attaches them to every tenant report.

use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::BTreeSet;
use std::fmt;
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::telemetry::Fnv;
use rand::Rng;
use stochastics::rng::stream_rng;

/// Stream id base for seeded fault-plan generation (xored with the
/// tenant index) — disjoint from the service's execution and attack
/// stream bases so fault plans never perturb simulation randomness.
pub const FAULT_STREAM_BASE: u64 = 0x0FA7_1A7E_0000_0000;

// ---------------------------------------------------------------------
// Fault sites
// ---------------------------------------------------------------------

/// A named injection point inside the runtime.
///
/// Each site models one concrete failure class the supervisor must
/// survive; the service consults its [`FaultInjector`] at exactly these
/// seams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FaultSite {
    /// The solver panics mid-epoch (models a bug or resource abort in the
    /// solve path). The fleet catches the unwind and quarantines the
    /// tenant; the tenant's in-flight state is discarded.
    SolverPanic,
    /// The committed re-solve returns a typed error. The service keeps
    /// serving on the incumbent policy and records
    /// [`audit_game::solver::DegradeReason::KeptIncumbent`].
    SolveError,
    /// The scenario delivers an epoch with every alert count zeroed
    /// (models an upstream TDMT outage: the feed is alive but empty).
    EmptyEpoch,
    /// The scenario delivers a truncated period row (wrong arity). The
    /// service rejects the epoch with
    /// [`audit_game::error::GameError::MalformedStream`].
    MalformedEpoch,
    /// The epoch's re-solve budget collapses to one evaluation, forcing
    /// the graceful-degradation ladder to its floor.
    BudgetExhaust,
    /// The checkpoint written at this state epoch is corrupted on disk
    /// after a successful save (models torn writes / media rot).
    CheckpointWrite,
    /// The checkpoint is corrupted before it is read back (models rot
    /// between save and restore). Applied by
    /// [`FaultInjector::corrupt_for_read`], which harnesses call between
    /// save and restore.
    CheckpointRead,
}

impl FaultSite {
    /// Every site, in declaration order.
    pub const ALL: [FaultSite; 7] = [
        FaultSite::SolverPanic,
        FaultSite::SolveError,
        FaultSite::EmptyEpoch,
        FaultSite::MalformedEpoch,
        FaultSite::BudgetExhaust,
        FaultSite::CheckpointWrite,
        FaultSite::CheckpointRead,
    ];

    /// Sites eligible for seeded plan generation: the in-loop faults a
    /// tenant can recover from without an on-disk checkpoint. The two
    /// checkpoint sites need a checkpoint directory to exist and are
    /// exercised by explicit plans instead.
    pub const SEEDED: [FaultSite; 5] = [
        FaultSite::SolverPanic,
        FaultSite::SolveError,
        FaultSite::EmptyEpoch,
        FaultSite::MalformedEpoch,
        FaultSite::BudgetExhaust,
    ];

    /// Stable string key (used in telemetry grep lines and JSON).
    pub fn key(&self) -> &'static str {
        match self {
            FaultSite::SolverPanic => "solver-panic",
            FaultSite::SolveError => "solve-error",
            FaultSite::EmptyEpoch => "empty-epoch",
            FaultSite::MalformedEpoch => "malformed-epoch",
            FaultSite::BudgetExhaust => "budget-exhaust",
            FaultSite::CheckpointWrite => "checkpoint-write",
            FaultSite::CheckpointRead => "checkpoint-read",
        }
    }

    /// Stable numeric code (used in fingerprints).
    pub fn code(&self) -> u64 {
        match self {
            FaultSite::SolverPanic => 1,
            FaultSite::SolveError => 2,
            FaultSite::EmptyEpoch => 3,
            FaultSite::MalformedEpoch => 4,
            FaultSite::BudgetExhaust => 5,
            FaultSite::CheckpointWrite => 6,
            FaultSite::CheckpointRead => 7,
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

// ---------------------------------------------------------------------
// Fault plan
// ---------------------------------------------------------------------

/// A deterministic set of planned faults, keyed `(tenant, round, site)`.
///
/// Round semantics match the fleet scheduler: round 0 is the tenant's
/// cold start, round `r ≥ 1` runs epoch `r − 1`. Checkpoint sites are
/// keyed by the **state epoch** of the checkpoint being written or read
/// instead, since checkpoints are taken outside the round loop.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: BTreeSet<(String, usize, FaultSite)>,
}

impl FaultPlan {
    /// An empty plan: no faults, and the runtime behaves bit-identically
    /// to one with no plan at all.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one planned fault (builder style).
    pub fn inject(mut self, tenant: &str, round: usize, site: FaultSite) -> Self {
        self.faults.insert((tenant.to_string(), round, site));
        self
    }

    /// Generate a plan from a seed: each tenant × round cell (rounds
    /// `1..=rounds`; cold starts are never seeded) independently draws a
    /// fault with probability `rate`, choosing uniformly among
    /// [`FaultSite::SEEDED`]. Deterministic in `(seed, tenants, rounds,
    /// rate)`; the tenant *index* keys the stream, so renaming a tenant
    /// does not reshuffle the others.
    pub fn seeded(seed: u64, tenants: &[String], rounds: usize, rate: f64) -> Self {
        let mut plan = FaultPlan::new();
        for (ti, tenant) in tenants.iter().enumerate() {
            let mut rng = stream_rng(seed, FAULT_STREAM_BASE ^ ((ti as u64) << 20));
            for round in 1..=rounds {
                if rng.gen::<f64>() < rate {
                    let site = FaultSite::SEEDED[rng.gen_range(0..FaultSite::SEEDED.len())];
                    plan.faults.insert((tenant.clone(), round, site));
                }
            }
        }
        plan
    }

    /// Does the plan contain this exact fault?
    pub fn contains(&self, tenant: &str, round: usize, site: FaultSite) -> bool {
        self.faults.contains(&(tenant.to_string(), round, site))
    }

    /// All faults planned for one tenant, in `(round, site)` order.
    pub fn faults_for(&self, tenant: &str) -> Vec<(usize, FaultSite)> {
        self.faults
            .iter()
            .filter(|(t, _, _)| t == tenant)
            .map(|(_, r, s)| (*r, *s))
            .collect()
    }

    /// The distinct tenants the plan touches, sorted.
    pub fn planned_tenants(&self) -> Vec<String> {
        let mut names: Vec<String> = self.faults.iter().map(|(t, _, _)| t.clone()).collect();
        names.dedup();
        names
    }

    /// Number of planned faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when no faults are planned.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Iterate every planned fault in `(tenant, round, site)` order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, usize, FaultSite)> {
        self.faults.iter().map(|(t, r, s)| (t.as_str(), *r, *s))
    }

    /// Order-independent deterministic fingerprint of the whole plan.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.word(self.faults.len() as u64);
        for (tenant, round, site) in &self.faults {
            h.bytes(tenant.as_bytes());
            h.word(*round as u64);
            h.word(site.code());
        }
        h.finish()
    }
}

// ---------------------------------------------------------------------
// Fault injector
// ---------------------------------------------------------------------

/// A per-tenant, one-shot view of a [`FaultPlan`].
///
/// The injector is cloned into the tenant's [`crate::service::AuditService`];
/// clones share the fired set, so a fault consumed before a panic stays
/// consumed when the tenant is retried from its last good state. That
/// one-shot discipline models transient chaos events (a single torn
/// write, a single poisoned epoch) and is what lets a quarantined tenant
/// actually recover instead of re-tripping the same fault every retry.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: Arc<FaultPlan>,
    tenant: String,
    fired: Arc<Mutex<BTreeSet<(usize, FaultSite)>>>,
}

impl FaultInjector {
    /// Build an injector for one tenant over a shared plan.
    pub fn new(plan: Arc<FaultPlan>, tenant: impl Into<String>) -> Self {
        Self {
            plan,
            tenant: tenant.into(),
            fired: Arc::new(Mutex::new(BTreeSet::new())),
        }
    }

    /// The tenant this injector speaks for.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Consume-and-fire: true exactly once per planned `(round, site)`.
    ///
    /// A panic between marking and acting leaves the fault consumed —
    /// deliberately, since the supervisor's retry must not replay it.
    pub fn fires(&self, round: usize, site: FaultSite) -> bool {
        if !self.plan.contains(&self.tenant, round, site) {
            return false;
        }
        // A panic while holding the lock (never the case here: insert
        // cannot panic) would poison it; recover the inner set rather
        // than propagate the poison.
        let mut fired = self
            .fired
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        fired.insert((round, site))
    }

    /// Check without consuming: planned and not yet fired.
    pub fn armed(&self, round: usize, site: FaultSite) -> bool {
        if !self.plan.contains(&self.tenant, round, site) {
            return false;
        }
        let fired = self
            .fired
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        !fired.contains(&(round, site))
    }

    /// Apply a pending [`FaultSite::CheckpointRead`] fault for the given
    /// state epoch by corrupting the file in place. Harnesses call this
    /// between save and restore; returns true when the fault fired.
    pub fn corrupt_for_read(&self, epoch: usize, path: &Path) -> std::io::Result<bool> {
        if !self.fires(epoch, FaultSite::CheckpointRead) {
            return Ok(false);
        }
        corrupt_file(path, epoch as u64)?;
        Ok(true)
    }
}

/// Deterministically corrupt a file: flip one byte at a salt-derived
/// offset (or append a byte to an empty file). Writes directly — the
/// corruption deliberately bypasses the atomic-write path, since it
/// models damage *after* a clean write.
pub fn corrupt_file(path: &Path, salt: u64) -> std::io::Result<()> {
    let mut bytes = std::fs::read(path)?;
    if bytes.is_empty() {
        bytes.push(0xFF);
    } else {
        let idx = (salt as usize ^ (bytes.len() / 2)) % bytes.len();
        bytes[idx] ^= 0x5A;
    }
    std::fs::write(path, &bytes)
}

// ---------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------

/// Deterministic retry/backoff policy for quarantined tenants.
///
/// All delays are measured in **scheduler rounds**, never wall-clock, so
/// the quarantine schedule is reproducible. A tenant that fails for the
/// `a`-th time at round `r` is quarantined until
/// [`RetryPolicy::resume_round`]`(r, a)`; after `max_retries` failures
/// the next failure is permanent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// How many times a tenant may be retried before a further failure
    /// becomes permanent.
    pub max_retries: usize,
    /// Base backoff in rounds; doubles on every consecutive failure.
    pub backoff_rounds: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            backoff_rounds: 1,
        }
    }
}

impl RetryPolicy {
    /// The round at which a tenant that failed at `failed_round` on its
    /// `attempt`-th failure (1-based) resumes: exponential backoff
    /// `backoff · 2^(attempt−1)` rounds later.
    pub fn resume_round(&self, failed_round: usize, attempt: usize) -> usize {
        let base = self.backoff_rounds.max(1);
        let shift = attempt.saturating_sub(1).min(16) as u32;
        failed_round.saturating_add(base.saturating_mul(1usize << shift))
    }

    /// Upper bound on the extra scheduler rounds one tenant's retries can
    /// add to a run: `backoff · (2^max_retries − 1)`. The fleet uses this
    /// to cap its round loop.
    pub fn worst_case_delay(&self) -> usize {
        let base = self.backoff_rounds.max(1);
        let doublings = self.max_retries.min(16) as u32;
        base.saturating_mul((1usize << doublings).saturating_sub(1))
    }
}

// ---------------------------------------------------------------------
// Tenant health record
// ---------------------------------------------------------------------

/// One failure a tenant suffered, as recorded by the supervisor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantFailure {
    /// Scheduler round at which the failure surfaced.
    pub round: usize,
    /// Human-readable cause (panic message or typed error display).
    pub cause: String,
    /// Round at which the tenant was scheduled to resume; `None` when
    /// the failure was permanent (retry budget exhausted).
    pub resume_round: Option<usize>,
}

/// The supervisor's verdict on one tenant after a fleet run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum TenantHealth {
    /// No failures: the tenant's report is bit-identical to a fault-free
    /// run.
    #[default]
    Healthy,
    /// The tenant failed at least once but completed after retrying from
    /// its last good state.
    Recovered {
        /// Every failure in round order.
        failures: Vec<TenantFailure>,
    },
    /// The tenant exhausted its retry budget (or could not be retried);
    /// its report covers only the epochs completed before the terminal
    /// failure.
    Failed {
        /// Round of the terminal failure.
        round: usize,
        /// Cause of the terminal failure.
        cause: String,
        /// Every failure in round order (the terminal one last).
        failures: Vec<TenantFailure>,
    },
}

impl TenantHealth {
    /// True only for [`TenantHealth::Healthy`].
    pub fn is_healthy(&self) -> bool {
        matches!(self, TenantHealth::Healthy)
    }

    /// Stable string key: `healthy`, `recovered`, or `failed`.
    pub fn key(&self) -> &'static str {
        match self {
            TenantHealth::Healthy => "healthy",
            TenantHealth::Recovered { .. } => "recovered",
            TenantHealth::Failed { .. } => "failed",
        }
    }

    /// Every recorded failure (empty for healthy tenants).
    pub fn failures(&self) -> &[TenantFailure] {
        match self {
            TenantHealth::Healthy => &[],
            TenantHealth::Recovered { failures } => failures,
            TenantHealth::Failed { failures, .. } => failures,
        }
    }

    /// Fold the health record into a fingerprint. Healthy contributes
    /// nothing beyond its marker word, keeping fault-free fleet
    /// fingerprints bit-identical to the pre-supervisor encoding.
    pub(crate) fn fold(&self, h: &mut Fnv) {
        match self {
            TenantHealth::Healthy => {}
            TenantHealth::Recovered { failures } => {
                h.word(0x7EC0_7E4D);
                h.word(failures.len() as u64);
                for fail in failures {
                    h.word(fail.round as u64);
                    h.bytes(fail.cause.as_bytes());
                    h.word(fail.resume_round.map(|r| r as u64 + 1).unwrap_or(0));
                }
            }
            TenantHealth::Failed {
                round,
                cause,
                failures,
            } => {
                h.word(0x00FA_11ED);
                h.word(*round as u64);
                h.bytes(cause.as_bytes());
                h.word(failures.len() as u64);
                for fail in failures {
                    h.word(fail.round as u64);
                    h.bytes(fail.cause.as_bytes());
                    h.word(fail.resume_round.map(|r| r as u64 + 1).unwrap_or(0));
                }
            }
        }
    }
}

/// Render a panic payload as a readable cause string.
pub fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plan_is_deterministic_and_scoped() {
        let tenants: Vec<String> = (0..6).map(|i| format!("tenant-{i}")).collect();
        let a = FaultPlan::seeded(42, &tenants, 8, 0.35);
        let b = FaultPlan::seeded(42, &tenants, 8, 0.35);
        assert_eq!(a, b, "same seed must yield the same plan");
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert!(!a.is_empty(), "rate 0.35 over 48 cells should plan faults");
        for (_, round, site) in a.iter() {
            assert!(round >= 1, "cold starts (round 0) are never seeded");
            assert!(round <= 8);
            assert!(FaultSite::SEEDED.contains(&site));
        }
        let c = FaultPlan::seeded(43, &tenants, 8, 0.35);
        assert_ne!(a.fingerprint(), c.fingerprint(), "seed must matter");
        let none = FaultPlan::seeded(42, &tenants, 8, 0.0);
        assert!(none.is_empty(), "rate 0 plans nothing");
    }

    #[test]
    fn injector_fires_each_planned_fault_exactly_once() {
        let plan = Arc::new(
            FaultPlan::new()
                .inject("t0", 2, FaultSite::SolverPanic)
                .inject("t0", 4, FaultSite::EmptyEpoch)
                .inject("t1", 2, FaultSite::SolverPanic),
        );
        let inj = FaultInjector::new(Arc::clone(&plan), "t0");
        assert!(!inj.fires(1, FaultSite::SolverPanic), "unplanned round");
        assert!(inj.armed(2, FaultSite::SolverPanic));
        assert!(inj.fires(2, FaultSite::SolverPanic), "first consult fires");
        assert!(!inj.fires(2, FaultSite::SolverPanic), "one-shot");
        assert!(!inj.armed(2, FaultSite::SolverPanic));

        // Clones share the fired set: a retried service must not re-trip.
        let clone = inj.clone();
        assert!(!clone.fires(2, FaultSite::SolverPanic));
        assert!(clone.fires(4, FaultSite::EmptyEpoch));
        assert!(!inj.fires(4, FaultSite::EmptyEpoch));

        // Another tenant's faults are invisible.
        assert!(!inj.fires(2, FaultSite::SolverPanic));
        let other = FaultInjector::new(plan, "t1");
        assert!(other.fires(2, FaultSite::SolverPanic));
    }

    #[test]
    fn retry_backoff_is_deterministic_and_bounded() {
        let policy = RetryPolicy {
            max_retries: 3,
            backoff_rounds: 2,
        };
        assert_eq!(policy.resume_round(5, 1), 7); // +2
        assert_eq!(policy.resume_round(5, 2), 9); // +4
        assert_eq!(policy.resume_round(5, 3), 13); // +8
        assert_eq!(policy.worst_case_delay(), 2 * (8 - 1));
        // Degenerate zero backoff still makes progress.
        let zero = RetryPolicy {
            max_retries: 1,
            backoff_rounds: 0,
        };
        assert!(zero.resume_round(3, 1) > 3);
    }

    #[test]
    fn corrupt_file_is_deterministic_and_touches_one_byte() {
        let dir = std::env::temp_dir().join(format!("audit-corrupt-helper-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("victim.bin");
        let original: Vec<u8> = (0..257u32).map(|i| (i % 251) as u8).collect();

        std::fs::write(&path, &original).unwrap();
        corrupt_file(&path, 7).unwrap();
        let once = std::fs::read(&path).unwrap();
        std::fs::write(&path, &original).unwrap();
        corrupt_file(&path, 7).unwrap();
        let twice = std::fs::read(&path).unwrap();
        assert_eq!(once, twice, "same salt corrupts the same byte");
        let diffs = original.iter().zip(&once).filter(|(a, b)| a != b).count();
        assert_eq!(diffs, 1, "exactly one byte flipped");

        let empty = dir.join("empty.bin");
        std::fs::write(&empty, b"").unwrap();
        corrupt_file(&empty, 0).unwrap();
        assert_eq!(std::fs::read(&empty).unwrap(), vec![0xFF]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn panic_message_extracts_common_payloads() {
        let static_payload = std::panic::catch_unwind(|| panic!("static cause")).unwrap_err();
        assert_eq!(panic_message(static_payload), "static cause");
        let formatted = std::panic::catch_unwind(|| panic!("cause {}", 42)).unwrap_err();
        assert_eq!(panic_message(formatted), "cause 42");
        assert_eq!(panic_message(Box::new(7u32)), "non-string panic payload");
    }

    #[test]
    fn health_record_reports_failures() {
        assert!(TenantHealth::Healthy.is_healthy());
        assert_eq!(TenantHealth::Healthy.key(), "healthy");
        assert!(TenantHealth::Healthy.failures().is_empty());
        let fail = TenantFailure {
            round: 3,
            cause: "boom".into(),
            resume_round: Some(5),
        };
        let rec = TenantHealth::Recovered {
            failures: vec![fail.clone()],
        };
        assert!(!rec.is_healthy());
        assert_eq!(rec.key(), "recovered");
        assert_eq!(rec.failures().len(), 1);
        let dead = TenantHealth::Failed {
            round: 7,
            cause: "gone".into(),
            failures: vec![fail],
        };
        assert_eq!(dead.key(), "failed");
        assert_eq!(dead.failures()[0].round, 3);
    }
}
