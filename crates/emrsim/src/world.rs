//! Hospital world model: people, departments, residences, and the planted
//! relationship pools that realize each combination alert type.
//!
//! Address-string equality and geographic proximity are modelled as
//! *independent* signals (geocoding noise, stale addresses, typos), which
//! is what makes all seven combinations of Table VIII — including "same
//! address but not neighbor" — realizable, just as they are in the real
//! VUMC data.

use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;
use stochastics::rng::stream_rng;
use tdmt::event::{AccessEvent, AttrValue, EntityId, RecordId};
use tdmt::rules::{CombinationPolicy, Rule, RuleEngine};

/// A hospital employee.
#[derive(Debug, Clone)]
pub struct Employee {
    /// Employee id (also the event entity id).
    pub id: u32,
    /// Index into the surname pool.
    pub surname: usize,
    /// Department index.
    pub department: usize,
    /// Residence id (address-string identity).
    pub residence: u32,
    /// Geocoded residence, miles on the city grid.
    pub geo: (f64, f64),
}

/// A patient record.
#[derive(Debug, Clone)]
pub struct Patient {
    /// Patient id (also the event record id).
    pub id: u32,
    /// Index into the surname pool.
    pub surname: usize,
    /// Residence id.
    pub residence: u32,
    /// Geocoded residence.
    pub geo: (f64, f64),
    /// `Some(employee id)` when this patient is also an employee.
    pub employee_link: Option<u32>,
}

/// Ground-truth relationship between an employee and a patient: exactly the
/// four base signals the TDMT rules predicate on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairProfile {
    /// Same last name.
    pub same_last_name: bool,
    /// Patient is an employee of the same department.
    pub same_department: bool,
    /// Same residential address (string identity).
    pub same_address: bool,
    /// Geocoded distance in miles.
    pub distance_miles: f64,
}

impl PairProfile {
    /// The benign profile (no signals).
    pub fn benign(distance: f64) -> Self {
        Self {
            same_last_name: false,
            same_department: false,
            same_address: false,
            distance_miles: distance,
        }
    }

    /// Which base rules fire (0 name, 1 dept, 2 addr, 3 neighbor).
    pub fn firing(&self) -> Vec<usize> {
        let mut f = Vec::new();
        if self.same_last_name {
            f.push(0);
        }
        if self.same_department {
            f.push(1);
        }
        if self.same_address {
            f.push(2);
        }
        if self.distance_miles <= NEIGHBOR_MILES {
            f.push(3);
        }
        f
    }
}

/// Neighborhood threshold (Section V.A: "within a distance threshold";
/// Table VIII uses 0.5 miles).
pub const NEIGHBOR_MILES: f64 = 0.5;

/// World-generation parameters.
#[derive(Debug, Clone)]
pub struct HospitalConfig {
    /// Number of employees.
    pub n_employees: usize,
    /// Number of patients.
    pub n_patients: usize,
    /// Number of departments.
    pub n_departments: usize,
    /// Surname vocabulary size.
    pub n_surnames: usize,
    /// City grid side length in miles.
    pub city_miles: f64,
    /// Planted pairs per combination alert type (must exceed the largest
    /// daily count the workload generator will request).
    pub pool_size: usize,
    /// Pre-verified benign pairs for bulk traffic.
    pub benign_pool_size: usize,
}

impl Default for HospitalConfig {
    fn default() -> Self {
        Self {
            n_employees: 800,
            n_patients: 3000,
            n_departments: 24,
            n_surnames: 240,
            city_miles: 12.0,
            pool_size: 700,
            benign_pool_size: 4000,
        }
    }
}

/// The generated world.
pub struct Hospital {
    /// Employees.
    pub employees: Vec<Employee>,
    /// Patients.
    pub patients: Vec<Patient>,
    config: HospitalConfig,
    /// Planted relationship overrides.
    planted: HashMap<(u32, u32), PairProfile>,
    /// Per-combination-type pair pools (employee idx, patient idx).
    pools: Vec<Vec<(u32, u32)>>,
    /// Verified benign pairs.
    benign_pool: Vec<(u32, u32)>,
}

impl std::fmt::Debug for Hospital {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hospital")
            .field("n_employees", &self.employees.len())
            .field("n_patients", &self.patients.len())
            .field("n_planted", &self.planted.len())
            .finish()
    }
}

impl Hospital {
    /// Generate a world deterministically from a seed.
    pub fn generate(config: HospitalConfig, seed: u64) -> Self {
        let mut rng = stream_rng(seed, 0);
        let city = config.city_miles;

        let employees: Vec<Employee> = (0..config.n_employees as u32)
            .map(|id| Employee {
                id,
                surname: rng.gen_range(0..config.n_surnames),
                department: rng.gen_range(0..config.n_departments),
                residence: id, // unique residence per employee by default
                geo: (rng.gen_range(0.0..city), rng.gen_range(0.0..city)),
            })
            .collect();

        // A slice of patients are employees themselves (they inherit the
        // employee's surname/residence and carry the link for the
        // department-co-worker rule).
        let n_linked = config.n_patients / 10;
        let mut patients: Vec<Patient> = Vec::with_capacity(config.n_patients);
        for id in 0..config.n_patients as u32 {
            if (id as usize) < n_linked {
                let emp = &employees[(id as usize) % employees.len()];
                patients.push(Patient {
                    id,
                    surname: emp.surname,
                    residence: emp.residence,
                    geo: emp.geo,
                    employee_link: Some(emp.id),
                });
            } else {
                patients.push(Patient {
                    id,
                    surname: rng.gen_range(0..config.n_surnames),
                    residence: 1_000_000 + id, // patient residences
                    geo: (rng.gen_range(0.0..city), rng.gen_range(0.0..city)),
                    employee_link: None,
                });
            }
        }

        let mut world = Self {
            employees,
            patients,
            config,
            planted: HashMap::new(),
            pools: vec![Vec::new(); crate::TABLE8_SUBSETS.len()],
            benign_pool: Vec::new(),
        };
        world.plant_pools(&mut stream_rng(seed, 1));
        world
    }

    /// Plant `pool_size` pairs per combination type with exactly the target
    /// base-rule subset, plus a verified benign pool.
    fn plant_pools(&mut self, rng: &mut impl Rng) {
        let n_emp = self.employees.len() as u32;
        let n_pat = self.patients.len() as u32;
        for (t, subset) in crate::TABLE8_SUBSETS.iter().enumerate() {
            let mut pool = Vec::with_capacity(self.config.pool_size);
            let mut guard = 0usize;
            while pool.len() < self.config.pool_size {
                guard += 1;
                assert!(guard < self.config.pool_size * 50, "pool planting stalled");
                let e = rng.gen_range(0..n_emp);
                // Department co-worker pairs need an employee-linked patient.
                let p = if subset.contains(&1) {
                    let linked = (self.config.n_patients / 10).max(1) as u32;
                    rng.gen_range(0..linked)
                } else {
                    rng.gen_range(0..n_pat)
                };
                if self.planted.contains_key(&(e, p)) {
                    continue;
                }
                let profile = self.profile_for_subset(subset, e, p, rng);
                self.planted.insert((e, p), profile);
                debug_assert_eq!(profile.firing(), *subset);
                pool.push((e, p));
            }
            self.pools[t] = pool;
        }
        // Benign pool: derived profiles with no firing rules, or planted
        // benign overrides when the natural pair accidentally matches.
        let mut guard = 0usize;
        while self.benign_pool.len() < self.config.benign_pool_size {
            guard += 1;
            assert!(
                guard < self.config.benign_pool_size * 50,
                "benign pool stalled"
            );
            let e = rng.gen_range(0..n_emp);
            let p = rng.gen_range(0..n_pat);
            if self.planted.contains_key(&(e, p)) {
                continue;
            }
            if !self.derived_profile(e, p).firing().is_empty() {
                // Accidental signal: plant an explicit benign override so
                // the pair is usable as bulk traffic.
                let far = rng.gen_range(1.0..self.config.city_miles);
                self.planted.insert((e, p), PairProfile::benign(far));
            }
            self.benign_pool.push((e, p));
        }
    }

    /// Construct a profile realizing exactly `subset` for pair `(e, p)`.
    fn profile_for_subset(
        &self,
        subset: &[usize],
        e: u32,
        p: u32,
        rng: &mut impl Rng,
    ) -> PairProfile {
        let neighbor = subset.contains(&3);
        let distance = if neighbor {
            rng.gen_range(0.0..NEIGHBOR_MILES)
        } else {
            rng.gen_range(NEIGHBOR_MILES + 0.3..self.config.city_miles)
        };
        let _ = (e, p);
        PairProfile {
            same_last_name: subset.contains(&0),
            same_department: subset.contains(&1),
            same_address: subset.contains(&2),
            distance_miles: distance,
        }
    }

    /// The relationship profile of any pair: the planted override when one
    /// exists, otherwise derived from person fields.
    pub fn profile(&self, e: u32, p: u32) -> PairProfile {
        self.planted
            .get(&(e, p))
            .copied()
            .unwrap_or_else(|| self.derived_profile(e, p))
    }

    fn derived_profile(&self, e: u32, p: u32) -> PairProfile {
        let emp = &self.employees[e as usize];
        let pat = &self.patients[p as usize];
        let same_department = pat
            .employee_link
            .map(|l| self.employees[l as usize].department == emp.department && l != emp.id)
            .unwrap_or(false);
        let dx = emp.geo.0 - pat.geo.0;
        let dy = emp.geo.1 - pat.geo.1;
        PairProfile {
            same_last_name: emp.surname == pat.surname,
            same_department,
            same_address: emp.residence == pat.residence,
            distance_miles: (dx * dx + dy * dy).sqrt(),
        }
    }

    /// Build the access event for a pair on a day, attaching the signal
    /// attributes the rule engine predicates on.
    pub fn event(&self, e: u32, p: u32, day: u32) -> AccessEvent {
        let profile = self.profile(e, p);
        AccessEvent::new(EntityId(e), RecordId(p), day)
            .with_attr("same_last_name", AttrValue::Bool(profile.same_last_name))
            .with_attr("same_department", AttrValue::Bool(profile.same_department))
            .with_attr("same_address", AttrValue::Bool(profile.same_address))
            .with_attr("distance_miles", AttrValue::Float(profile.distance_miles))
    }

    /// Pool of planted pairs for combination type `t`.
    pub fn pool(&self, t: usize) -> &[(u32, u32)] {
        &self.pools[t]
    }

    /// Verified benign pairs.
    pub fn benign_pool(&self) -> &[(u32, u32)] {
        &self.benign_pool
    }

    /// World configuration.
    pub fn config(&self) -> &HospitalConfig {
        &self.config
    }

    /// Draw a random benign pair.
    pub fn sample_benign(&self, rng: &mut impl Rng) -> (u32, u32) {
        *self
            .benign_pool
            .choose(rng)
            .expect("benign pool is non-empty")
    }

    /// The Rea A rule engine: four base rules and the seven registered
    /// combination types of Table VIII.
    pub fn rule_engine() -> RuleEngine {
        let rules = vec![
            Rule::flag("same-last-name", "same_last_name"),
            Rule::flag("department-co-worker", "same_department"),
            Rule::flag("same-address", "same_address"),
            Rule::new("neighbor", |ev: &AccessEvent| {
                ev.attr("distance_miles")
                    .and_then(AttrValue::as_float)
                    .map(|d| d <= NEIGHBOR_MILES)
                    .unwrap_or(false)
            }),
        ];
        let mut engine = RuleEngine::new(rules, CombinationPolicy::Registered);
        for (name, subset) in crate::TABLE8_NAMES.iter().zip(crate::TABLE8_SUBSETS) {
            engine.register_combination(*name, subset.to_vec());
        }
        engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Hospital {
        Hospital::generate(
            HospitalConfig {
                n_employees: 120,
                n_patients: 400,
                pool_size: 40,
                benign_pool_size: 100,
                ..Default::default()
            },
            7,
        )
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.pools, b.pools);
        assert_eq!(a.benign_pool, b.benign_pool);
    }

    #[test]
    fn pools_realize_their_subsets() {
        let h = small();
        let engine = Hospital::rule_engine();
        for t in 0..7 {
            assert_eq!(h.pool(t).len(), 40);
            for &(e, p) in h.pool(t) {
                let ev = h.event(e, p, 0);
                assert_eq!(
                    engine.label(&ev),
                    Ok(Some(t)),
                    "pool {t} pair ({e},{p}) labelled wrong"
                );
            }
        }
    }

    #[test]
    fn benign_pool_triggers_nothing() {
        let h = small();
        let engine = Hospital::rule_engine();
        for &(e, p) in h.benign_pool() {
            let ev = h.event(e, p, 0);
            assert_eq!(engine.label(&ev), Ok(None), "pair ({e},{p}) not benign");
        }
    }

    #[test]
    fn linked_patients_inherit_employee_identity() {
        let h = small();
        let linked = h
            .patients
            .iter()
            .filter(|p| p.employee_link.is_some())
            .count();
        assert_eq!(linked, 40); // n_patients / 10
        for p in h.patients.iter().filter(|p| p.employee_link.is_some()) {
            let e = &h.employees[p.employee_link.unwrap() as usize];
            assert_eq!(p.surname, e.surname);
            assert_eq!(p.residence, e.residence);
        }
    }

    #[test]
    fn derived_profile_is_symmetric_in_distance() {
        let h = small();
        let prof = h.profile(0, 399);
        assert!(prof.distance_miles >= 0.0);
        assert!(prof.distance_miles <= h.config().city_miles * 1.5);
    }

    #[test]
    fn rule_engine_has_seven_types() {
        let engine = Hospital::rule_engine();
        assert_eq!(engine.n_types(), 7);
        assert_eq!(engine.type_name(6), "Last Name; Same address; Neighbor");
    }
}
