//! Property-based tests of LP optimality certificates.
//!
//! For randomly generated feasible bounded LPs we verify the three classic
//! certificates the rest of the workspace relies on:
//!
//! 1. **primal feasibility** of the returned point,
//! 2. **strong duality**: primal objective equals the dual objective
//!    computed from the returned shadow prices,
//! 3. **dual feasibility + complementary slackness**, which together are
//!    what makes column-generation pricing (`reduced_cost_of_column`) sound.

use lp_solver::{Problem, Relation, Sense};
use proptest::prelude::*;

const TOL: f64 = 1e-6;

/// Random covering-style LP: min cᵀx s.t. Ax ≥ b, x ≥ 0 with strictly
/// positive A entries and non-negative b, c. Always feasible (scale x up)
/// and bounded (c ≥ 0 ⇒ objective ≥ 0).
fn covering_lp(n: usize, m: usize) -> impl Strategy<Value = (Vec<f64>, Vec<Vec<f64>>, Vec<f64>)> {
    (
        proptest::collection::vec(0.05f64..10.0, n),
        proptest::collection::vec(proptest::collection::vec(0.1f64..5.0, n), m),
        proptest::collection::vec(0.0f64..20.0, m),
    )
}

/// Random packing-style LP: max cᵀx s.t. Ax ≤ b, 0 ≤ x. Always feasible
/// (x = 0) and bounded (A > 0, b finite).
fn packing_lp(n: usize, m: usize) -> impl Strategy<Value = (Vec<f64>, Vec<Vec<f64>>, Vec<f64>)> {
    (
        proptest::collection::vec(0.0f64..10.0, n),
        proptest::collection::vec(proptest::collection::vec(0.1f64..5.0, n), m),
        proptest::collection::vec(0.5f64..20.0, m),
    )
}

fn build(
    sense: Sense,
    rel: Relation,
    c: &[f64],
    a: &[Vec<f64>],
    b: &[f64],
) -> (Problem, Vec<lp_solver::VarId>, Vec<lp_solver::ConstrId>) {
    let mut p = Problem::new(sense);
    let xs: Vec<_> = c
        .iter()
        .enumerate()
        .map(|(j, &cj)| p.add_var(format!("x{j}"), cj, 0.0, f64::INFINITY))
        .collect();
    let mut cs = Vec::new();
    for (i, row) in a.iter().enumerate() {
        let terms = xs.iter().copied().zip(row.iter().copied()).collect();
        cs.push(p.add_constraint(format!("r{i}"), terms, rel, b[i]));
    }
    (p, xs, cs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(80))]

    #[test]
    fn covering_lp_certificates((c, a, b) in covering_lp(5, 4)) {
        let (p, _, _) = build(Sense::Minimize, Relation::Ge, &c, &a, &b);
        let s = p.solve().unwrap();

        // 1. Primal feasibility.
        prop_assert!(p.max_violation(&s.x) < TOL);

        // 2. Strong duality: cᵀx* = yᵀb.
        let dual_obj: f64 = s.duals.iter().zip(&b).map(|(&y, &bi)| y * bi).sum();
        prop_assert!((s.objective - dual_obj).abs() < TOL * (1.0 + s.objective.abs()),
            "primal {} vs dual {}", s.objective, dual_obj);

        // 3a. Dual feasibility: y ≥ 0 (for min/Ge rows) and yᵀA ≤ c.
        for &y in &s.duals {
            prop_assert!(y >= -TOL, "negative dual {y}");
        }
        for j in 0..c.len() {
            let yta: f64 = s.duals.iter().zip(&a).map(|(&y, row)| y * row[j]).sum();
            prop_assert!(yta <= c[j] + TOL, "dual infeasible at col {j}: {yta} > {}", c[j]);
            // 3b. Complementary slackness: x_j > 0 ⇒ yᵀA_j = c_j.
            if s.x[j] > TOL {
                prop_assert!((yta - c[j]).abs() < 1e-5,
                    "slackness violated at col {j}: x = {}, gap = {}", s.x[j], c[j] - yta);
            }
        }
    }

    #[test]
    fn packing_lp_certificates((c, a, b) in packing_lp(5, 4)) {
        let (p, _, _) = build(Sense::Maximize, Relation::Le, &c, &a, &b);
        let s = p.solve().unwrap();

        prop_assert!(p.max_violation(&s.x) < TOL);
        prop_assert!(s.objective >= -TOL);

        // Strong duality for max/Le: cᵀx* = yᵀb with y ≥ 0 and yᵀA ≥ c.
        let dual_obj: f64 = s.duals.iter().zip(&b).map(|(&y, &bi)| y * bi).sum();
        prop_assert!((s.objective - dual_obj).abs() < TOL * (1.0 + s.objective.abs()));
        for &y in &s.duals {
            prop_assert!(y >= -TOL);
        }
        for j in 0..c.len() {
            let yta: f64 = s.duals.iter().zip(&a).map(|(&y, row)| y * row[j]).sum();
            prop_assert!(yta >= c[j] - TOL);
        }
    }

    #[test]
    fn equality_lp_duality(
        c in proptest::collection::vec(0.1f64..5.0, 4),
        b0 in 1.0f64..20.0,
    ) {
        // min cᵀx s.t. Σx = b0, x ≥ 0: optimum is min(c)·b0 with dual min(c).
        let mut p = Problem::minimize();
        let xs: Vec<_> = c.iter().enumerate()
            .map(|(j, &cj)| p.add_var(format!("x{j}"), cj, 0.0, f64::INFINITY))
            .collect();
        p.add_constraint("sum", xs.iter().map(|&x| (x, 1.0)).collect(), Relation::Eq, b0);
        let s = p.solve().unwrap();
        let cmin = c.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!((s.objective - cmin * b0).abs() < TOL * (1.0 + b0));
        prop_assert!((s.duals[0] - cmin).abs() < TOL);
    }

    #[test]
    fn random_matrix_game_value_bounds(
        entries in proptest::collection::vec(-5.0f64..5.0, 16),
    ) {
        // LP-computed game value must lie between maximin and minimax of
        // pure strategies, and both orientations must agree.
        let a: Vec<Vec<f64>> = entries.chunks(4).map(|r| r.to_vec()).collect();

        let solve_side = |row_player: bool| -> f64 {
            let mut p = if row_player { Problem::maximize() } else { Problem::minimize() };
            let v = p.add_free_var("v", 1.0);
            let ws: Vec<_> = (0..4)
                .map(|i| p.add_var(format!("w{i}"), 0.0, 0.0, f64::INFINITY))
                .collect();
            // `k` indexes `a` as row or column depending on orientation, so
            // an enumerate() rewrite would only fit one branch.
            #[allow(clippy::needless_range_loop)]
            for k in 0..4 {
                let mut terms = vec![(v, -1.0)];
                for (i, &w) in ws.iter().enumerate() {
                    let coeff = if row_player { a[i][k] } else { a[k][i] };
                    terms.push((w, coeff));
                }
                let rel = if row_player { Relation::Ge } else { Relation::Le };
                p.add_constraint(format!("c{k}"), terms, rel, 0.0);
            }
            p.add_constraint("sum", ws.iter().map(|&w| (w, 1.0)).collect(), Relation::Eq, 1.0);
            p.solve().unwrap().objective
        };

        let v_row = solve_side(true);
        let v_col = solve_side(false);
        prop_assert!((v_row - v_col).abs() < 1e-6, "row {v_row} vs col {v_col}");

        let maximin = (0..4).map(|i| {
            (0..4).map(|j| a[i][j]).fold(f64::INFINITY, f64::min)
        }).fold(f64::NEG_INFINITY, f64::max);
        let minimax = (0..4).map(|j| {
            (0..4).map(|i| a[i][j]).fold(f64::NEG_INFINITY, f64::max)
        }).fold(f64::INFINITY, f64::min);
        prop_assert!(v_row >= maximin - 1e-6);
        prop_assert!(v_row <= minimax + 1e-6);
    }

    #[test]
    fn column_pricing_is_sound(
        (c, a, b) in covering_lp(4, 3),
        new_col in proptest::collection::vec(0.1f64..5.0, 3),
        new_cost in 0.05f64..10.0,
    ) {
        // Solve, price an absent column, then actually add it and re-solve:
        // a non-negative reduced cost must mean no improvement; a negative
        // reduced cost must strictly improve a minimization.
        let (p, _, cons) = build(Sense::Minimize, Relation::Ge, &c, &a, &b);
        let s1 = p.solve().unwrap();
        let coeffs: Vec<(lp_solver::ConstrId, f64)> = new_col
            .iter()
            .enumerate()
            .map(|(i, &v)| (cons[i], v))
            .collect();
        let rc = s1.reduced_cost_of_column(new_cost, &coeffs);

        let mut c2 = c.clone();
        c2.push(new_cost);
        let a2: Vec<Vec<f64>> = a.iter().enumerate()
            .map(|(i, row)| { let mut r = row.clone(); r.push(new_col[i]); r })
            .collect();
        let (p2, _, _) = build(Sense::Minimize, Relation::Ge, &c2, &a2, &b);
        let s2 = p2.solve().unwrap();

        if rc >= 1e-7 {
            prop_assert!(s2.objective >= s1.objective - 1e-6,
                "rc {rc} >= 0 but objective improved {} -> {}", s1.objective, s2.objective);
        }
        if rc <= -1e-6 {
            prop_assert!(s2.objective <= s1.objective + 1e-7,
                "rc {rc} < 0 but objective did not improve {} -> {}",
                s1.objective, s2.objective);
        }
    }
}
