//! Cross-solver golden conformance harness.
//!
//! For every registry scenario this module solves the (conformance-scale)
//! game with each applicable solver mode under each detection model, and
//! serializes the resulting objective values and thresholds. The
//! `tests/scenario_conformance.rs` suite compares these reports against
//! committed snapshots in `tests/golden/*.json`, pinning every solver's
//! answer on every scenario: a performance refactor that drifts any
//! number fails CI immediately. Regenerate snapshots with
//! `UPDATE_GOLDEN=1 cargo test --test scenario_conformance`.
//!
//! Everything here is deterministic: fixed seeds, fixed sample counts,
//! single-threaded engines (thread count is separately proven not to
//! change results by `tests/detection_equivalence.rs`).

use crate::json::Value;
use audit_game::cggs::Cggs;
use audit_game::detection::{DetectionEstimator, DetectionModel};
use audit_game::error::GameError;
use audit_game::model::GameSpec;
use audit_game::scenario::Scenario;
use audit_game::solver::{InnerKind, OapSolver, SolverConfig};
use std::path::PathBuf;

/// Monte-Carlo samples per conformance cell — small on purpose: the suite
/// runs in debug CI, and golden comparison needs determinism, not
/// statistical accuracy.
pub const CONFORMANCE_SAMPLES: usize = 40;

/// ISHM step size for the conformance cells (coarse, for speed).
pub const CONFORMANCE_EPSILON: f64 = 0.4;

/// Exact inner enumeration materializes `|T|!` orders; beyond this many
/// types the `ishm-exact` cell is skipped (the registry's 7-type EMR
/// scenarios would need 5040 orders per threshold vector).
pub const EXACT_MAX_TYPES: usize = 5;

/// One solver configuration of the conformance matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverMode {
    /// Plain CGGS at the canonical threshold vector (no threshold search).
    Cggs,
    /// ISHM threshold search over the exact order enumeration.
    IshmExact,
    /// ISHM threshold search over the CGGS inner solver.
    IshmCggs,
}

impl SolverMode {
    /// Every mode, in snapshot order.
    pub const ALL: [SolverMode; 3] = [
        SolverMode::Cggs,
        SolverMode::IshmExact,
        SolverMode::IshmCggs,
    ];

    /// Stable snapshot key.
    pub fn key(&self) -> &'static str {
        match self {
            SolverMode::Cggs => "cggs",
            SolverMode::IshmExact => "ishm-exact",
            SolverMode::IshmCggs => "ishm-cggs",
        }
    }

    /// Whether the mode is tractable for this game.
    pub fn applicable(&self, spec: &GameSpec) -> bool {
        match self {
            SolverMode::IshmExact => spec.n_types() <= EXACT_MAX_TYPES,
            _ => true,
        }
    }
}

/// Snapshot key of a detection model.
pub fn detection_key(model: DetectionModel) -> &'static str {
    match model {
        DetectionModel::PaperApprox => "paper-approx",
        DetectionModel::AttackInclusive => "attack-inclusive",
        DetectionModel::Operational => "operational",
    }
}

/// The detection models of the conformance matrix, in snapshot order.
pub const DETECTION_MODELS: [DetectionModel; 3] = [
    DetectionModel::PaperApprox,
    DetectionModel::AttackInclusive,
    DetectionModel::Operational,
];

/// One solved cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Solver mode key.
    pub solver: &'static str,
    /// Detection model key.
    pub detection: &'static str,
    /// Objective value (auditor's loss).
    pub objective: f64,
    /// Threshold vector (budget units) the solve settled on.
    pub thresholds: Vec<f64>,
}

/// The full conformance report of one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Registry key.
    pub scenario: String,
    /// Seed the cells were solved at.
    pub seed: u64,
    /// `|T|` of the conformance-scale game.
    pub n_types: usize,
    /// `|E|` of the conformance-scale game.
    pub n_attackers: usize,
    /// Total actions of the conformance-scale game.
    pub n_actions: usize,
    /// Budget `B`.
    pub budget: f64,
    /// All solved cells, in matrix order.
    pub cells: Vec<Cell>,
}

/// The canonical fixed threshold vector for the plain-CGGS cells: full
/// coverage per type, capped by the budget.
pub fn canonical_thresholds(spec: &GameSpec) -> Vec<f64> {
    spec.threshold_upper_bounds()
        .into_iter()
        .map(|b| b.min(spec.budget))
        .collect()
}

/// Solve one cell.
pub fn run_cell(
    spec: &GameSpec,
    mode: SolverMode,
    model: DetectionModel,
    seed: u64,
) -> Result<Cell, GameError> {
    let (objective, thresholds) = match mode {
        SolverMode::Cggs => {
            let working = spec.dedup_actions();
            let bank = working.sample_bank(CONFORMANCE_SAMPLES, seed);
            let est = DetectionEstimator::new(&working, &bank, model);
            let thresholds = canonical_thresholds(&working);
            let out = Cggs::default().solve(&working, &est, &thresholds)?;
            (out.master.value, thresholds)
        }
        SolverMode::IshmExact | SolverMode::IshmCggs => {
            let inner = if mode == SolverMode::IshmExact {
                InnerKind::Exact
            } else {
                InnerKind::Cggs
            };
            let sol = OapSolver::new(SolverConfig {
                epsilon: CONFORMANCE_EPSILON,
                n_samples: CONFORMANCE_SAMPLES,
                seed,
                inner,
                detection: model,
                dedup_actions: true,
                threads: 1,
            })
            .solve(spec)?;
            (sol.loss, sol.policy.thresholds)
        }
    };
    Ok(Cell {
        solver: mode.key(),
        detection: detection_key(model),
        objective,
        thresholds,
    })
}

/// Solve the full conformance matrix of one scenario (at its small scale
/// and default seed).
pub fn run_scenario(sc: &dyn Scenario) -> Result<ScenarioReport, GameError> {
    let seed = sc.default_seed();
    let spec = sc.build_small(seed)?;
    let mut cells = Vec::new();
    for mode in SolverMode::ALL {
        if !mode.applicable(&spec) {
            continue;
        }
        for model in DETECTION_MODELS {
            cells.push(run_cell(&spec, mode, model, seed)?);
        }
    }
    Ok(ScenarioReport {
        scenario: sc.key().to_string(),
        seed,
        n_types: spec.n_types(),
        n_attackers: spec.n_attackers(),
        n_actions: spec.n_actions(),
        budget: spec.budget,
        cells,
    })
}

impl ScenarioReport {
    /// Serialize to the golden JSON format.
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("scenario", Value::Str(self.scenario.clone())),
            ("seed", Value::Num(self.seed as f64)),
            ("n_types", Value::Num(self.n_types as f64)),
            ("n_attackers", Value::Num(self.n_attackers as f64)),
            ("n_actions", Value::Num(self.n_actions as f64)),
            ("budget", Value::Num(self.budget)),
            (
                "cells",
                Value::Arr(
                    self.cells
                        .iter()
                        .map(|c| {
                            Value::obj([
                                ("solver", Value::Str(c.solver.to_string())),
                                ("detection", Value::Str(c.detection.to_string())),
                                ("objective", Value::Num(c.objective)),
                                ("thresholds", Value::nums(c.thresholds.iter().copied())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Compare against a parsed golden snapshot; `Err` carries a
    /// human-readable list of every mismatch.
    ///
    /// Objectives and thresholds compare with relative tolerance `1e-9` —
    /// effectively exact (the pipeline is deterministic), while staying
    /// robust to libm differences should the goldens ever be regenerated
    /// on another platform.
    pub fn compare_to_golden(&self, golden: &Value) -> Result<(), String> {
        let mut problems = Vec::new();
        let mut check_num = |field: &str, got: f64, want: Option<f64>| match want {
            Some(want) if approx_eq(got, want) => {}
            Some(want) => problems.push(format!("{field}: got {got:?}, golden {want:?}")),
            None => problems.push(format!("{field}: missing in golden")),
        };
        check_num(
            "seed",
            self.seed as f64,
            golden.get("seed").and_then(Value::as_f64),
        );
        check_num(
            "n_types",
            self.n_types as f64,
            golden.get("n_types").and_then(Value::as_f64),
        );
        check_num(
            "n_attackers",
            self.n_attackers as f64,
            golden.get("n_attackers").and_then(Value::as_f64),
        );
        check_num(
            "n_actions",
            self.n_actions as f64,
            golden.get("n_actions").and_then(Value::as_f64),
        );
        check_num(
            "budget",
            self.budget,
            golden.get("budget").and_then(Value::as_f64),
        );

        let golden_cells = golden
            .get("cells")
            .and_then(Value::as_arr)
            .unwrap_or_default();
        if golden_cells.len() != self.cells.len() {
            problems.push(format!(
                "cell count: got {}, golden {}",
                self.cells.len(),
                golden_cells.len()
            ));
        }
        for cell in &self.cells {
            let label = format!("{}/{}", cell.solver, cell.detection);
            let found = golden_cells.iter().find(|g| {
                g.get("solver").and_then(Value::as_str) == Some(cell.solver)
                    && g.get("detection").and_then(Value::as_str) == Some(cell.detection)
            });
            let Some(found) = found else {
                problems.push(format!("{label}: cell missing in golden"));
                continue;
            };
            match found.get("objective").and_then(Value::as_f64) {
                Some(want) if approx_eq(cell.objective, want) => {}
                other => problems.push(format!(
                    "{label}: objective got {:?}, golden {other:?}",
                    cell.objective
                )),
            }
            let want_thresholds: Vec<f64> = found
                .get("thresholds")
                .and_then(Value::as_arr)
                .map(|a| a.iter().filter_map(Value::as_f64).collect())
                .unwrap_or_default();
            let thresholds_match = want_thresholds.len() == cell.thresholds.len()
                && cell
                    .thresholds
                    .iter()
                    .zip(&want_thresholds)
                    .all(|(&a, &b)| approx_eq(a, b));
            if !thresholds_match {
                problems.push(format!(
                    "{label}: thresholds got {:?}, golden {want_thresholds:?}",
                    cell.thresholds
                ));
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems.join("\n"))
        }
    }
}

/// Relative comparison at `1e-9`, absolute near zero.
pub fn approx_eq(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= 1e-9 * scale
}

/// Directory holding the committed golden snapshots.
pub fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// Path of one scenario's snapshot.
pub fn golden_path(scenario_key: &str) -> PathBuf {
    golden_dir().join(format!("{scenario_key}.json"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_and_models_have_stable_keys() {
        assert_eq!(
            SolverMode::ALL.map(|m| m.key()),
            ["cggs", "ishm-exact", "ishm-cggs"]
        );
        assert_eq!(
            DETECTION_MODELS.map(detection_key),
            ["paper-approx", "attack-inclusive", "operational"]
        );
    }

    #[test]
    fn exact_mode_gates_on_type_count() {
        let small = audit_game::datasets::syn_a(); // 4 types
        assert!(SolverMode::IshmExact.applicable(&small));
        assert!(SolverMode::Cggs.applicable(&small));
    }

    #[test]
    fn report_roundtrips_and_self_compares() {
        let registry = audit_game::scenario::registry();
        let sc = registry.get("syn-a").unwrap();
        let report = run_scenario(sc.as_ref()).unwrap();
        assert_eq!(report.cells.len(), 9, "4-type scenario runs all 9 cells");
        let json = report.to_json().render();
        let parsed = crate::json::Value::parse(&json).unwrap();
        report.compare_to_golden(&parsed).unwrap();
    }

    #[test]
    fn comparison_flags_drift() {
        let registry = audit_game::scenario::registry();
        let sc = registry.get("syn-a").unwrap();
        let mut report = run_scenario(sc.as_ref()).unwrap();
        let golden = crate::json::Value::parse(&report.to_json().render()).unwrap();
        report.cells[0].objective += 1e-3;
        let err = report.compare_to_golden(&golden).unwrap_err();
        assert!(err.contains("objective"), "unexpected message: {err}");
    }
}
