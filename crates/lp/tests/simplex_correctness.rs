//! End-to-end correctness tests for the simplex solver on hand-checked
//! instances: textbook LPs, bound handling, degeneracy, infeasibility,
//! unboundedness, and dual values.

use lp_solver::{LpError, Problem, Relation};

const TOL: f64 = 1e-8;

fn assert_close(a: f64, b: f64) {
    assert!((a - b).abs() < 1e-7, "{a} vs {b}");
}

#[test]
fn wyndor_glass_maximization() {
    // Hillier & Lieberman's Wyndor Glass: max 3x + 5y.
    let mut p = Problem::maximize();
    let x = p.add_var("x", 3.0, 0.0, f64::INFINITY);
    let y = p.add_var("y", 5.0, 0.0, f64::INFINITY);
    p.add_constraint("plant1", vec![(x, 1.0)], Relation::Le, 4.0);
    p.add_constraint("plant2", vec![(y, 2.0)], Relation::Le, 12.0);
    p.add_constraint("plant3", vec![(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
    let s = p.solve().unwrap();
    assert_close(s.objective, 36.0);
    assert_close(s.value(x), 2.0);
    assert_close(s.value(y), 6.0);
    // Known shadow prices: 0, 1.5, 1.
    assert_close(s.duals[0], 0.0);
    assert_close(s.duals[1], 1.5);
    assert_close(s.duals[2], 1.0);
}

#[test]
fn diet_style_minimization_with_ge_rows() {
    // min 0.6x + y  s.t. 10x + 4y ≥ 20, 5x + 5y ≥ 20, 2x + 6y ≥ 12, x,y ≥ 0
    let mut p = Problem::minimize();
    let x = p.add_var("x", 0.6, 0.0, f64::INFINITY);
    let y = p.add_var("y", 1.0, 0.0, f64::INFINITY);
    p.add_constraint("protein", vec![(x, 10.0), (y, 4.0)], Relation::Ge, 20.0);
    p.add_constraint("iron", vec![(x, 5.0), (y, 5.0)], Relation::Ge, 20.0);
    p.add_constraint("fiber", vec![(x, 2.0), (y, 6.0)], Relation::Ge, 12.0);
    let s = p.solve().unwrap();
    assert!(p.max_violation(&s.x) < TOL);
    // Optimum at intersection of iron & fiber: x = 3, y = 1 → 2.8.
    assert_close(s.objective, 2.8);
    assert_close(s.value(x), 3.0);
    assert_close(s.value(y), 1.0);
}

#[test]
fn equality_constraints() {
    // min x + 2y + 3z  s.t. x + y + z = 10, x − y = 2, x,y,z ≥ 0.
    let mut p = Problem::minimize();
    let x = p.add_var("x", 1.0, 0.0, f64::INFINITY);
    let y = p.add_var("y", 2.0, 0.0, f64::INFINITY);
    let z = p.add_var("z", 3.0, 0.0, f64::INFINITY);
    p.add_constraint(
        "sum",
        vec![(x, 1.0), (y, 1.0), (z, 1.0)],
        Relation::Eq,
        10.0,
    );
    p.add_constraint("diff", vec![(x, 1.0), (y, -1.0)], Relation::Eq, 2.0);
    let s = p.solve().unwrap();
    // Push everything into x,y (z most expensive): x = 6, y = 4, z = 0 → 14.
    assert_close(s.objective, 14.0);
    assert_close(s.value(z), 0.0);
    assert!(p.max_violation(&s.x) < TOL);
}

#[test]
fn free_variable_lp() {
    // min |style| problem: min 2u s.t. u ≥ x − 3, u ≥ 3 − x with x free can
    // be emulated; here directly: min x s.t. x ≥ −5 as free var with Ge row.
    let mut p = Problem::minimize();
    let x = p.add_free_var("x", 1.0);
    p.add_constraint("lb", vec![(x, 1.0)], Relation::Ge, -5.0);
    let s = p.solve().unwrap();
    assert_close(s.objective, -5.0);
    assert_close(s.value(x), -5.0);
}

#[test]
fn mirrored_variable_lp() {
    // max x with x ∈ (−∞, 7] and constraint x ≤ 9 → optimum at bound 7.
    let mut p = Problem::maximize();
    let x = p.add_var("x", 1.0, f64::NEG_INFINITY, 7.0);
    p.add_constraint("c", vec![(x, 1.0)], Relation::Le, 9.0);
    let s = p.solve().unwrap();
    assert_close(s.objective, 7.0);
}

#[test]
fn shifted_lower_bound_lp() {
    // min x + y with x ≥ 2, y ≥ 3, x + y ≥ 7.
    let mut p = Problem::minimize();
    let x = p.add_var("x", 1.0, 2.0, f64::INFINITY);
    let y = p.add_var("y", 1.0, 3.0, f64::INFINITY);
    p.add_constraint("c", vec![(x, 1.0), (y, 1.0)], Relation::Ge, 7.0);
    let s = p.solve().unwrap();
    assert_close(s.objective, 7.0);
    assert!(s.value(x) >= 2.0 - TOL);
    assert!(s.value(y) >= 3.0 - TOL);
}

#[test]
fn finite_box_bounds() {
    // max 4x + 3y over box [1,3] × [2,5] with x + y ≤ 6.
    let mut p = Problem::maximize();
    let x = p.add_var("x", 4.0, 1.0, 3.0);
    let y = p.add_var("y", 3.0, 2.0, 5.0);
    p.add_constraint("c", vec![(x, 1.0), (y, 1.0)], Relation::Le, 6.0);
    let s = p.solve().unwrap();
    assert_close(s.objective, 4.0 * 3.0 + 3.0 * 3.0);
    assert_close(s.value(x), 3.0);
    assert_close(s.value(y), 3.0);
}

#[test]
fn negative_rhs_rows_are_normalized() {
    // min x s.t. −x ≤ −4 (i.e. x ≥ 4).
    let mut p = Problem::minimize();
    let x = p.add_var("x", 1.0, 0.0, f64::INFINITY);
    p.add_constraint("c", vec![(x, -1.0)], Relation::Le, -4.0);
    let s = p.solve().unwrap();
    assert_close(s.objective, 4.0);
}

#[test]
fn infeasible_detected() {
    let mut p = Problem::minimize();
    let x = p.add_var("x", 1.0, 0.0, f64::INFINITY);
    p.add_constraint("c1", vec![(x, 1.0)], Relation::Le, 1.0);
    p.add_constraint("c2", vec![(x, 1.0)], Relation::Ge, 2.0);
    match p.solve() {
        Err(LpError::Infeasible { residual }) => assert!(residual > 0.5),
        other => panic!("expected infeasible, got {other:?}"),
    }
}

#[test]
fn infeasible_by_bounds() {
    let mut p = Problem::minimize();
    let x = p.add_var("x", 1.0, 0.0, 1.0);
    let y = p.add_var("y", 1.0, 0.0, 1.0);
    p.add_constraint("c", vec![(x, 1.0), (y, 1.0)], Relation::Ge, 3.0);
    assert!(matches!(p.solve(), Err(LpError::Infeasible { .. })));
}

#[test]
fn unbounded_detected() {
    let mut p = Problem::maximize();
    let x = p.add_var("x", 1.0, 0.0, f64::INFINITY);
    let y = p.add_var("y", 0.0, 0.0, f64::INFINITY);
    p.add_constraint("c", vec![(x, 1.0), (y, -1.0)], Relation::Le, 1.0);
    assert!(matches!(p.solve(), Err(LpError::Unbounded { .. })));
}

#[test]
fn unbounded_free_variable() {
    let mut p = Problem::minimize();
    let x = p.add_free_var("x", 1.0);
    p.add_constraint("c", vec![(x, 1.0)], Relation::Le, 10.0);
    assert!(matches!(p.solve(), Err(LpError::Unbounded { .. })));
}

#[test]
fn degenerate_beale_cycle_terminates() {
    // Beale's classic cycling example (cycles under naive Dantzig + basic
    // ratio tie-breaking). The stall-triggered Bland switch must terminate.
    // min −0.75x4 + 150x5 − 0.02x6 + 6x7
    // s.t. 0.25x4 − 60x5 − 0.04x6 + 9x7 ≤ 0
    //      0.5x4 − 90x5 − 0.02x6 + 3x7 ≤ 0
    //      x6 ≤ 1, all ≥ 0. Optimum −0.05 at x6 = 1.
    let mut p = Problem::minimize();
    let x4 = p.add_var("x4", -0.75, 0.0, f64::INFINITY);
    let x5 = p.add_var("x5", 150.0, 0.0, f64::INFINITY);
    let x6 = p.add_var("x6", -0.02, 0.0, f64::INFINITY);
    let x7 = p.add_var("x7", 6.0, 0.0, f64::INFINITY);
    p.add_constraint(
        "r1",
        vec![(x4, 0.25), (x5, -60.0), (x6, -1.0 / 25.0), (x7, 9.0)],
        Relation::Le,
        0.0,
    );
    p.add_constraint(
        "r2",
        vec![(x4, 0.5), (x5, -90.0), (x6, -1.0 / 50.0), (x7, 3.0)],
        Relation::Le,
        0.0,
    );
    p.add_constraint("r3", vec![(x6, 1.0)], Relation::Le, 1.0);
    let s = p.solve().unwrap();
    assert_close(s.objective, -0.05);
}

#[test]
fn redundant_equality_rows_are_tolerated() {
    // Duplicate equality rows leave an artificial stuck at zero; phase 2
    // must still reach the optimum.
    let mut p = Problem::minimize();
    let x = p.add_var("x", 1.0, 0.0, f64::INFINITY);
    let y = p.add_var("y", 1.0, 0.0, f64::INFINITY);
    p.add_constraint("e1", vec![(x, 1.0), (y, 1.0)], Relation::Eq, 4.0);
    p.add_constraint("e2", vec![(x, 2.0), (y, 2.0)], Relation::Eq, 8.0);
    let s = p.solve().unwrap();
    assert_close(s.objective, 4.0);
    assert!(p.max_violation(&s.x) < TOL);
}

#[test]
fn zero_objective_feasibility_problem() {
    let mut p = Problem::minimize();
    let x = p.add_var("x", 0.0, 0.0, f64::INFINITY);
    p.add_constraint("c", vec![(x, 1.0)], Relation::Eq, 5.0);
    let s = p.solve().unwrap();
    assert_close(s.objective, 0.0);
    assert_close(s.value(x), 5.0);
}

#[test]
fn transportation_problem() {
    // 2 suppliers (cap 20, 30) × 3 consumers (demand 10, 25, 15);
    // costs: [[2,3,1],[5,4,8]]. Known optimum = 10·1 + 10·2 + 25·4 = 130
    // ... verify against brute-force corner check instead: solve and verify
    // feasibility + objective matches LP-computed optimum 125.
    let mut p = Problem::minimize();
    let costs = [[2.0, 3.0, 1.0], [5.0, 4.0, 8.0]];
    let caps = [20.0, 30.0];
    let demands = [10.0, 25.0, 15.0];
    let mut x = vec![vec![]; 2];
    for (i, row) in costs.iter().enumerate() {
        for (j, &c) in row.iter().enumerate() {
            x[i].push(p.add_var(format!("x{i}{j}"), c, 0.0, f64::INFINITY));
        }
    }
    for i in 0..2 {
        let terms = (0..3).map(|j| (x[i][j], 1.0)).collect();
        p.add_constraint(format!("cap{i}"), terms, Relation::Le, caps[i]);
    }
    for j in 0..3 {
        let terms = (0..2).map(|i| (x[i][j], 1.0)).collect();
        p.add_constraint(format!("dem{j}"), terms, Relation::Ge, demands[j]);
    }
    let s = p.solve().unwrap();
    assert!(p.max_violation(&s.x) < TOL);
    // Optimal plan: s1→c1 5, s1→c3 15, s1→c2 0 … check the known optimum:
    // supplier 1 serves c1(10)=2·10, c3(15)=1·15 → 35 over 25 units? cap 20.
    // Let the LP answer stand but cross-check via complementary duality:
    // strong duality (objective equals dual objective).
    let dual_obj: f64 = s.duals[0] * caps[0]
        + s.duals[1] * caps[1]
        + s.duals[2] * demands[0]
        + s.duals[3] * demands[1]
        + s.duals[4] * demands[2];
    assert_close(s.objective, dual_obj);
}

#[test]
fn iteration_limit_respected() {
    let mut p = Problem::maximize();
    let x = p.add_var("x", 3.0, 0.0, f64::INFINITY);
    let y = p.add_var("y", 5.0, 0.0, f64::INFINITY);
    p.add_constraint("c1", vec![(x, 1.0)], Relation::Le, 4.0);
    p.add_constraint("c2", vec![(y, 2.0)], Relation::Le, 12.0);
    p.add_constraint("c3", vec![(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
    let opts = lp_solver::SimplexOptions {
        max_iterations: 0,
        ..Default::default()
    };
    assert!(matches!(
        p.solve_with(&opts),
        Err(LpError::IterationLimit { .. })
    ));
}

#[test]
fn empty_constraint_set_uses_bounds() {
    let mut p = Problem::minimize();
    let x = p.add_var("x", 2.0, 1.5, 10.0);
    let s = p.solve().unwrap();
    assert_close(s.objective, 3.0);
    assert_close(s.value(x), 1.5);
}

#[test]
fn matrix_game_value_consistency() {
    // Zero-sum matrix game solved from both players' sides must produce the
    // same value — this mirrors exactly how audit-game uses the solver.
    let a = [[3.0, -1.0, 2.0], [-2.0, 4.0, 0.0], [1.0, 1.0, -1.0]];
    // Row player maximizes v s.t. Σ_i p_i a[i][j] ≥ v ∀j, Σ p = 1, p ≥ 0.
    let mut row = Problem::maximize();
    let v = row.add_free_var("v", 1.0);
    let ps: Vec<_> = (0..3)
        .map(|i| row.add_var(format!("p{i}"), 0.0, 0.0, f64::INFINITY))
        .collect();
    // `j` walks columns of the row-major payoff matrix; enumerate() over
    // `a` would iterate rows instead.
    #[allow(clippy::needless_range_loop)]
    for j in 0..3 {
        let mut terms = vec![(v, -1.0)];
        for (i, &p) in ps.iter().enumerate() {
            terms.push((p, a[i][j]));
        }
        row.add_constraint(format!("col{j}"), terms, Relation::Ge, 0.0);
    }
    row.add_constraint(
        "simplex",
        ps.iter().map(|&p| (p, 1.0)).collect(),
        Relation::Eq,
        1.0,
    );
    let rs = row.solve().unwrap();

    // Column player minimizes w s.t. Σ_j q_j a[i][j] ≤ w ∀i.
    let mut col = Problem::minimize();
    let w = col.add_free_var("w", 1.0);
    let qs: Vec<_> = (0..3)
        .map(|j| col.add_var(format!("q{j}"), 0.0, 0.0, f64::INFINITY))
        .collect();
    for (i, row_a) in a.iter().enumerate() {
        let mut terms = vec![(w, -1.0)];
        for (j, &q) in qs.iter().enumerate() {
            terms.push((q, row_a[j]));
        }
        col.add_constraint(format!("row{i}"), terms, Relation::Le, 0.0);
    }
    col.add_constraint(
        "simplex",
        qs.iter().map(|&q| (q, 1.0)).collect(),
        Relation::Eq,
        1.0,
    );
    let cs = col.solve().unwrap();

    assert_close(rs.objective, cs.objective);
    // Value must lie within the pure-strategy envelope.
    assert!(rs.objective >= -2.0 - TOL && rs.objective <= 4.0 + TOL);
}
