//! Offline shim for `proptest`.
//!
//! Reproduces the macro/strategy surface the workspace's property tests
//! use: the [`proptest!`] block with `#![proptest_config(...)]`,
//! `pat in strategy` arguments, [`prop_assert!`] / [`prop_assert_eq!`],
//! numeric-range and tuple strategies, [`collection::vec`], [`any`], and
//! [`Just`]. Cases are generated from a seed derived deterministically from
//! the test name, so failures reproduce bit-for-bit across runs. There is
//! no shrinking: a failing case panics with its case index and the assert
//! message. Swapping in the real crate restores shrinking without source
//! changes.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-block configuration (shim for `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic case generator (SplitMix64; seeded from the test name).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Build the generator for a named property; the same name always
    /// yields the same case sequence.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name, so each property gets its own stream.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample empty range");
        self.next_u64() % n
    }
}

/// A generator of test-case values (shim for `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value. (The real crate builds a shrinkable value tree;
    /// the shim generates the value directly.)
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_strategy_float_range!(f32, f64);

macro_rules! impl_strategy_tuple {
    ($(($($name:ident),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple!(
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
);

/// Always produces a clone of the given value (shim for `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (shim for `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, spanning several orders of magnitude.
        (rng.unit_f64() - 0.5) * 2e6
    }
}

/// Strategy returned by [`any`].
#[derive(Debug)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(PhantomData)
    }
}

/// Whole-domain strategy for `T` (shim for `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (shim for `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors of `element` values (shim for `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test file needs (shim for `proptest::prelude`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property; panics (no shrinking) under the shim.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            (<$crate::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident ( $($pat:pat_param in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_vec_strategies_respect_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..500 {
            let f = (0.05f64..10.0).generate(&mut rng);
            assert!((0.05..10.0).contains(&f));
            let u = (1u64..=5).generate(&mut rng);
            assert!((1..=5).contains(&u));
            let v = collection::vec(0u64..=4, 2..=6).generate(&mut rng);
            assert!((2..=6).contains(&v.len()));
            assert!(v.iter().all(|&x| x <= 4));
            let fixed = collection::vec(0.0f64..1.0, 7).generate(&mut rng);
            assert_eq!(fixed.len(), 7);
        }
    }

    #[test]
    fn tuples_and_any_generate() {
        let mut rng = TestRng::deterministic("tuple");
        let strat = (0.0f64..1.0, collection::vec(0u64..9, 3), any::<bool>());
        let (f, v, _b) = strat.generate(&mut rng);
        assert!((0.0..1.0).contains(&f));
        assert_eq!(v.len(), 3);
        assert_eq!(Just(41u32).generate(&mut rng), 41);
    }

    #[test]
    fn deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::deterministic("x");
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::deterministic("x");
            (0..4).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = TestRng::deterministic("y");
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_block_runs((lo, hi) in (0u32..50, 50u32..100), flip in any::<bool>()) {
            prop_assert!(lo < hi, "lo {lo} must stay below hi {hi}");
            let _ = flip;
            prop_assert_eq!(lo.min(hi), lo);
            prop_assert_ne!(hi, 100);
        }
    }
}
