//! Application synthesis calibrated to the Table IX alert rates.
//!
//! Each application is assigned to one of the five rule classes (or to the
//! benign class) with probability equal to the published per-1000 rates;
//! its attributes are then filled in consistently with the class. Per-batch
//! alert counts therefore follow `Binomial(n, r_t)`, whose standard
//! deviations match Table IX's within sampling error — evidence that the
//! original statistics come from exactly this kind of batch resampling.

use crate::schema::{Application, CheckingStatus, CreditHistory, Purpose, Skill};
use rand::seq::SliceRandom;
use rand::Rng;
use stochastics::rng::stream_rng;

/// Synthesis parameters.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Applications per batch (the Statlog dataset has 1000).
    pub n_applications: usize,
    /// Per-application probability of each rule class, indexed by alert
    /// type; the remainder is benign. Defaults to Table IX means / 1000.
    pub class_rates: [f64; 5],
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            n_applications: 1000,
            class_rates: [
                crate::TABLE9_MEANS[0] / 1000.0,
                crate::TABLE9_MEANS[1] / 1000.0,
                crate::TABLE9_MEANS[2] / 1000.0,
                crate::TABLE9_MEANS[3] / 1000.0,
                crate::TABLE9_MEANS[4] / 1000.0,
            ],
        }
    }
}

/// Generate one batch of applications.
pub fn generate_applications(config: &SynthConfig, seed: u64) -> Vec<Application> {
    let mut rng = stream_rng(seed, 0);
    let total: f64 = config.class_rates.iter().sum();
    assert!(total < 1.0, "class rates must leave room for benign mass");

    (0..config.n_applications as u32)
        .map(|id| {
            let u: f64 = rng.gen();
            let mut acc = 0.0;
            let mut class: Option<usize> = None;
            for (t, &r) in config.class_rates.iter().enumerate() {
                acc += r;
                if u < acc {
                    class = Some(t);
                    break;
                }
            }
            fill_application(id, class, &mut rng)
        })
        .collect()
}

/// Fill attributes consistent with the assigned class (`None` = benign).
fn fill_application(id: u32, class: Option<usize>, rng: &mut impl Rng) -> Application {
    let amount = rng.gen_range(250..18_500);
    let duration = *[6u32, 12, 18, 24, 36, 48, 60]
        .choose(rng)
        .expect("non-empty");
    let age = rng.gen_range(19..75);

    let (checking, history, skill, purpose) = match class {
        Some(0) => (
            CheckingStatus::None,
            any_history(rng),
            any_skill(rng),
            any_purpose(rng),
        ),
        Some(1) => (
            CheckingStatus::Negative,
            any_history(rng),
            any_skill(rng),
            *[Purpose::NewCar, Purpose::Education]
                .choose(rng)
                .expect("non-empty"),
        ),
        Some(2) => (
            positive_checking(rng),
            any_history(rng),
            Skill::Unskilled,
            Purpose::Education,
        ),
        Some(3) => (
            positive_checking(rng),
            any_history(rng),
            Skill::Unskilled,
            Purpose::Appliance,
        ),
        Some(4) => (
            positive_checking(rng),
            CreditHistory::Critical,
            skilled(rng),
            Purpose::Business,
        ),
        Some(_) => unreachable!("five rule classes"),
        None => benign_profile(rng),
    };

    let app = Application {
        id,
        checking,
        history,
        skill,
        purpose,
        amount,
        duration,
        age,
    };
    debug_assert_eq!(app.alert_type(), class, "class assignment must round-trip");
    app
}

fn any_history(rng: &mut impl Rng) -> CreditHistory {
    *[
        CreditHistory::Paid,
        CreditHistory::Existing,
        CreditHistory::Delayed,
        CreditHistory::Critical,
    ]
    .choose(rng)
    .expect("non-empty")
}

fn any_skill(rng: &mut impl Rng) -> Skill {
    *[
        Skill::UnskilledNonResident,
        Skill::Unskilled,
        Skill::Skilled,
        Skill::Management,
    ]
    .choose(rng)
    .expect("non-empty")
}

fn skilled(rng: &mut impl Rng) -> Skill {
    *[Skill::Skilled, Skill::Management]
        .choose(rng)
        .expect("non-empty")
}

fn positive_checking(rng: &mut impl Rng) -> CheckingStatus {
    *[CheckingStatus::Low, CheckingStatus::High]
        .choose(rng)
        .expect("non-empty")
}

fn any_purpose(rng: &mut impl Rng) -> Purpose {
    *Purpose::ALL.choose(rng).expect("non-empty")
}

/// A profile guaranteed to fire no rule: checking exists; if negative, the
/// purpose avoids {NewCar, Education}; if positive, the applicant is
/// skilled with a non-critical history (or a purpose outside the guarded
/// set).
fn benign_profile(rng: &mut impl Rng) -> (CheckingStatus, CreditHistory, Skill, Purpose) {
    if rng.gen_bool(0.4) {
        // Negative checking, safe purpose.
        let purpose = *[
            Purpose::UsedCar,
            Purpose::Appliance,
            Purpose::RadioTv,
            Purpose::Business,
            Purpose::Repairs,
            Purpose::Retraining,
        ]
        .choose(rng)
        .expect("non-empty");
        (
            CheckingStatus::Negative,
            any_history(rng),
            any_skill(rng),
            purpose,
        )
    } else {
        // Positive checking, skilled, non-critical history.
        let history = *[
            CreditHistory::Paid,
            CreditHistory::Existing,
            CreditHistory::Delayed,
        ]
        .choose(rng)
        .expect("non-empty");
        (
            positive_checking(rng),
            history,
            skilled(rng),
            any_purpose(rng),
        )
    }
}

/// Count alerts per type in a batch.
pub fn alert_counts(apps: &[Application]) -> [u64; 5] {
    let mut counts = [0u64; 5];
    for a in apps {
        if let Some(t) = a.alert_type() {
            counts[t] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_rates_track_table9() {
        let cfg = SynthConfig::default();
        // Average counts over several batches.
        let mut totals = [0.0f64; 5];
        let n_batches = 30;
        for b in 0..n_batches {
            let apps = generate_applications(&cfg, b);
            let counts = alert_counts(&apps);
            for (t, total) in totals.iter_mut().enumerate() {
                *total += counts[t] as f64;
            }
        }
        for (t, &total) in totals.iter().enumerate() {
            let mean = total / n_batches as f64;
            let tol = crate::TABLE9_STDS[t] + 3.0;
            assert!(
                (mean - crate::TABLE9_MEANS[t]).abs() < tol,
                "type {t}: mean {mean} vs Table IX {}",
                crate::TABLE9_MEANS[t]
            );
        }
    }

    #[test]
    fn batch_has_requested_size_and_is_deterministic() {
        let cfg = SynthConfig::default();
        let a = generate_applications(&cfg, 3);
        let b = generate_applications(&cfg, 3);
        assert_eq!(a.len(), 1000);
        assert_eq!(a, b);
        assert_ne!(a, generate_applications(&cfg, 4));
    }

    #[test]
    fn class_assignment_round_trips_through_rules() {
        // The debug_assert in fill_application catches mismatches in debug
        // builds; verify explicitly here for release-mode safety.
        let apps = generate_applications(&SynthConfig::default(), 8);
        for a in &apps {
            if let Some(t) = a.alert_type() {
                assert!(t < 5);
            }
        }
        let counts = alert_counts(&apps);
        assert!(counts[0] > 300, "rule 1 should dominate: {counts:?}");
        assert!(counts.iter().sum::<u64>() < 600);
    }

    #[test]
    fn custom_rates_are_respected() {
        let cfg = SynthConfig {
            n_applications: 5000,
            class_rates: [0.0, 0.0, 0.5, 0.0, 0.0],
        };
        let apps = generate_applications(&cfg, 1);
        let counts = alert_counts(&apps);
        assert_eq!(counts[0] + counts[1] + counts[3] + counts[4], 0);
        assert!((counts[2] as f64 - 2500.0).abs() < 150.0);
    }

    #[test]
    #[should_panic]
    fn rates_must_leave_benign_mass() {
        let cfg = SynthConfig {
            n_applications: 10,
            class_rates: [0.3, 0.3, 0.2, 0.15, 0.1],
        };
        generate_applications(&cfg, 0);
    }
}
