//! Daily workload generation: alert-bearing accesses whose per-type counts
//! track Table VIII, benign bulk traffic, and same-day repeats.

use crate::world::Hospital;
use rand::seq::SliceRandom;
use rand::Rng;
use stochastics::normal::std_normal_quantile;
use stochastics::rng::stream_rng;
use tdmt::log::AuditLog;

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Days to simulate (the paper observes 28 workdays).
    pub n_days: u32,
    /// Benign accesses per day. The real system sees ≈355k daily events;
    /// the default is scaled down 100× for tractability — benign volume
    /// does not enter the game model (only alert counts do), so the scale
    /// factor is cosmetic. Set higher to stress the TDMT pipeline.
    pub benign_per_day: usize,
    /// Fraction of *additional* duplicated events (same-day repeats) to
    /// emit, exercising the dedup filter (VUMC logs: 79.5% repeats).
    pub repeat_fraction: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            n_days: 28,
            benign_per_day: 3500,
            repeat_fraction: 0.6,
        }
    }
}

/// Generates day-partitioned access logs over a hospital world.
#[derive(Debug)]
pub struct WorkloadGenerator<'a> {
    hospital: &'a Hospital,
    config: WorkloadConfig,
}

impl<'a> WorkloadGenerator<'a> {
    /// Construct a generator.
    pub fn new(hospital: &'a Hospital, config: WorkloadConfig) -> Self {
        Self { hospital, config }
    }

    /// Simulate the full observation window into one audit log. The log
    /// includes repeats; run [`AuditLog::dedup_daily`] before counting, as
    /// the paper does.
    pub fn generate(&self, seed: u64) -> AuditLog {
        let mut log = AuditLog::new();
        for day in 0..self.config.n_days {
            self.generate_day(day, seed, &mut log);
        }
        log
    }

    /// Simulate a single day into `log`.
    pub fn generate_day(&self, day: u32, seed: u64, log: &mut AuditLog) {
        let mut rng = stream_rng(seed, 1000 + day as u64);
        let mut day_events: Vec<(u32, u32)> = Vec::new();

        // Alert-bearing accesses: counts per type follow the Table VIII
        // Gaussians, truncated to [0, pool size].
        for t in 0..crate::TABLE8_MEANS.len() {
            let pool = self.hospital.pool(t);
            let count = sample_gaussian_count(
                crate::TABLE8_MEANS[t],
                crate::TABLE8_STDS[t],
                pool.len(),
                &mut rng,
            );
            // Distinct pairs within the day: shuffle a prefix of the pool.
            let mut idx: Vec<usize> = (0..pool.len()).collect();
            idx.partial_shuffle(&mut rng, count);
            for &i in idx.iter().take(count) {
                day_events.push(pool[i]);
            }
        }

        // Benign bulk.
        for _ in 0..self.config.benign_per_day {
            day_events.push(self.hospital.sample_benign(&mut rng));
        }

        // Same-day repeats: re-emit a random sample of today's events.
        let n_repeats = (day_events.len() as f64 * self.config.repeat_fraction).round() as usize;
        for _ in 0..n_repeats {
            let &(e, p) = day_events.choose(&mut rng).expect("day has events");
            day_events.push((e, p));
        }

        day_events.shuffle(&mut rng);
        for (e, p) in day_events {
            log.push(self.hospital.event(e, p, day));
        }
    }
}

/// Draw `round(N(mean, std))` clamped to `[0, cap]` via inverse-CDF on a
/// uniform draw (cheap and deterministic per RNG stream).
fn sample_gaussian_count(mean: f64, std: f64, cap: usize, rng: &mut impl Rng) -> usize {
    let u: f64 = rng.gen_range(1e-9..1.0 - 1e-9);
    let z = std_normal_quantile(u);
    let x = (mean + std * z).round();
    x.clamp(0.0, cap as f64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::HospitalConfig;
    use stochastics::seeded_rng;

    fn hospital() -> Hospital {
        Hospital::generate(
            HospitalConfig {
                n_employees: 150,
                n_patients: 600,
                pool_size: 500,
                benign_pool_size: 800,
                ..Default::default()
            },
            3,
        )
    }

    #[test]
    fn gaussian_count_sampler_tracks_moments() {
        let mut rng = seeded_rng(5);
        let draws: Vec<f64> = (0..20_000)
            .map(|_| sample_gaussian_count(50.0, 10.0, 1000, &mut rng) as f64)
            .collect();
        let mean = stochastics::stats::mean(&draws);
        let std = stochastics::stats::std_dev(&draws);
        assert!((mean - 50.0).abs() < 0.5, "mean {mean}");
        assert!((std - 10.0).abs() < 0.5, "std {std}");
    }

    #[test]
    fn gaussian_count_respects_cap_and_floor() {
        let mut rng = seeded_rng(5);
        for _ in 0..2000 {
            let c = sample_gaussian_count(5.0, 20.0, 12, &mut rng);
            assert!(c <= 12);
        }
    }

    #[test]
    fn generated_day_counts_match_table8_statistics() {
        let h = hospital();
        let gen = WorkloadGenerator::new(
            &h,
            WorkloadConfig {
                n_days: 40,
                benign_per_day: 300,
                repeat_fraction: 0.5,
            },
        );
        let mut log = gen.generate(11);
        let dropped = log.dedup_daily();
        assert!(dropped > 0, "repeats must exist before dedup");

        let engine = Hospital::rule_engine();
        let series = log.per_type_series(&engine, |_, _| panic!("vocabulary gap"));
        for (t, obs) in series.iter().enumerate() {
            let xs: Vec<f64> = obs.iter().map(|&c| c as f64).collect();
            let mean = stochastics::stats::mean(&xs);
            let target = crate::TABLE8_MEANS[t].min(500.0); // pool cap truncation
            let tol = crate::TABLE8_STDS[t] * 0.75 + 6.0;
            assert!(
                (mean - target).abs() < tol,
                "type {t}: mean {mean} vs target {target} (tol {tol})"
            );
        }
    }

    #[test]
    fn repeats_are_same_day_duplicates() {
        let h = hospital();
        let gen = WorkloadGenerator::new(
            &h,
            WorkloadConfig {
                n_days: 2,
                benign_per_day: 100,
                repeat_fraction: 1.0,
            },
        );
        let mut log = gen.generate(1);
        let before = log.len();
        let dropped = log.dedup_daily();
        // repeat_fraction 1.0 doubles events modulo collisions; at least a
        // third must be repeats.
        assert!(
            dropped as f64 >= before as f64 / 3.0,
            "dropped {dropped} of {before}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let h = hospital();
        let gen = WorkloadGenerator::new(
            &h,
            WorkloadConfig {
                n_days: 3,
                benign_per_day: 50,
                repeat_fraction: 0.2,
            },
        );
        let a = gen.generate(9).to_bytes();
        let b = gen.generate(9).to_bytes();
        assert_eq!(a, b);
    }
}
