//! Experiment E9 — the Theorem 1 NP-hardness reduction, executed: random
//! 0-1 knapsack instances are mapped to restricted OAP instances and both
//! sides are solved exactly; the identity `OAP* = |E| − knapsack*` must
//! hold for every instance.
//!
//! ```text
//! cargo run -p audit-bench --release --bin exp_hardness [n_instances]
//! ```

use audit_bench::report::Table;
use audit_game::hardness::{solve_knapsack, verify_reduction, KnapsackInstance};
use rand::Rng;
use stochastics::seeded_rng;

fn main() {
    let n_instances: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("instance count"))
        .unwrap_or(25);
    let mut rng = seeded_rng(audit_bench::defaults::SEED);
    let mut table = Table::new(vec![
        "instance",
        "items",
        "capacity",
        "knapsack OPT",
        "|E| - OPT",
        "OAP optimum",
        "identity",
    ]);
    let mut all_ok = true;
    for i in 0..n_instances {
        let n = rng.gen_range(2..=8);
        let weights: Vec<u64> = (0..n).map(|_| rng.gen_range(1..=6)).collect();
        let values: Vec<u64> = (0..n).map(|_| rng.gen_range(0..=5)).collect();
        let capacity = rng.gen_range(1..=weights.iter().sum::<u64>());
        let inst = KnapsackInstance::new(weights, values, capacity);
        let dp = solve_knapsack(&inst);
        let (oap, expected) = verify_reduction(&inst);
        let ok = (oap - expected).abs() < 1e-6;
        all_ok &= ok;
        table.row(vec![
            format!("{i}"),
            format!("{}", inst.n_items()),
            format!("{}", inst.capacity),
            format!("{}", dp.value),
            format!("{expected}"),
            format!("{oap:.4}"),
            if ok {
                "ok".to_string()
            } else {
                "MISMATCH".to_string()
            },
        ]);
    }
    println!("{}", table.render());
    assert!(all_ok, "reduction identity violated");
    eprintln!("all {n_instances} reductions verified");
}
