//! The batched, parallel, memoizing `Pal` engine.
//!
//! Four layers of reuse stack on top of the scalar estimator, all of them
//! bit-identical to it (they reorder loops and share *states*, never
//! floating-point results):
//!
//! 1. **Prefix-trie sharing** (per batch): the batch's sequences are
//!    grouped into a [`QueryTrie`]; the per-sample detection state
//!    (consumed budget, per-type detection-mass sums) is computed once per
//!    trie *node* and extended per child, so `k` sequences sharing an
//!    `l`-long prefix pay for the prefix once. Worker threads split the
//!    batch by trie subtree — never by sample row — so accumulation order
//!    is fixed and results are thread-count invariant.
//! 2. **Commutative prefix folding**: for the consumption-order-independent
//!    detection models, paths differing only in their first two elements
//!    carry bitwise-identical states (IEEE addition commutes), so the trie
//!    merges them outright — a full `|T|!`-order frontier halves its deep
//!    levels. See the soundness discussion in the [`trie`](super::trie)
//!    module docs.
//! 3. **Prefix-state cache** (across batches): the consumed-budget vector
//!    and detection sum after every evaluated prefix are retained in a
//!    bounded second-chance cache keyed by the canonical path. CGGS greedy
//!    expansion (which re-extends the same prefix one type at a time) and
//!    ISHM's single-coordinate shrink candidates (which share every prefix
//!    avoiding the shrunk coordinate) hit this cache constantly, making
//!    consecutive solver queries incremental instead of from-scratch.
//! 4. **Saturation classing**: a threshold whose audit cap
//!    `⌊b_t/C_t⌋` covers the largest count in the bank (plus one for the
//!    attack-inclusive model) can never bind — every such threshold is
//!    detection-equivalent, so cache keys canonicalize them to one class
//!    and thresholds of types *outside* a query's sequence are excluded
//!    from its key entirely. ISHM spends its whole early search above the
//!    saturation point on real scenarios; those candidates collapse.
//!
//! The engine prefers the bank's compact `u32` column mirror when present
//! (counts are validated to fit at bank construction; oversized banks fall
//! back to the `u64` columns), halving the footprint of the hot columns.

use super::cache::SecondChance;
use super::trie::{Node, PalKey, QueryTrie};
use super::{budget_cap, detection_step_capped, DetectionEstimator, DetectionModel, PalQuery};
use crate::ordering::AuditOrder;
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};

/// Counters of a [`PalEngine`]'s caches and trie evaluator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Queries answered from the estimate cache.
    pub hits: u64,
    /// Queries that had to be evaluated.
    pub misses: u64,
    /// Estimates currently held.
    pub entries: usize,
    /// Estimate-cache entries displaced by second-chance eviction.
    pub evictions: u64,
    /// Prefix states currently held.
    pub state_entries: usize,
    /// Trie nodes whose column pass was skipped via a cached prefix state.
    pub state_hits: u64,
    /// Prefix-state entries displaced by second-chance eviction.
    pub state_evictions: u64,
    /// Column passes actually executed by the trie evaluator.
    pub columns_evaluated: u64,
    /// Column passes a per-query scalar evaluation would have executed but
    /// the trie/prefix-state sharing avoided.
    pub columns_saved: u64,
}

impl CacheStats {
    /// Accumulate another engine's counters into this one (used by the
    /// experiment drivers to report totals across solver-owned engines).
    /// Monotonic counters (hits, misses, evictions, column passes) sum;
    /// the point-in-time gauges `entries`/`state_entries` instead take the
    /// **maximum** — a sum of final cache sizes across engines measures
    /// nothing, while the max is the high-water cache footprint any single
    /// engine reached.
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.entries = self.entries.max(other.entries);
        self.evictions += other.evictions;
        self.state_entries = self.state_entries.max(other.state_entries);
        self.state_hits += other.state_hits;
        self.state_evictions += other.state_evictions;
        self.columns_evaluated += other.columns_evaluated;
        self.columns_saved += other.columns_saved;
    }
}

/// Per-sample evaluation state after an audit prefix: the consumed-budget
/// vector (one entry per bank sample) plus the raw detection-mass sum of
/// the prefix's last type. Extending a cached state by one type is exactly
/// one column pass — the incremental step both solvers live on.
#[derive(Clone)]
struct PrefixState {
    consumed: Vec<f64>,
    sum: f64,
}

/// A portable snapshot of an engine's prefix-state cache, exported with
/// [`PalEngine::export_states`] and adopted into another engine over the
/// **same** spec, bank, and detection model with
/// [`PalEngine::adopt_states`].
///
/// Cached prefix states are exact computed values, never approximations,
/// so an engine seeded from another engine's snapshot produces bit-
/// identical results to a cold one — it only skips the column passes the
/// donor already paid for. The soundness precondition is that the donor
/// and recipient evaluate the same game: same deduped spec (audit costs,
/// budget), same sample bank, same [`DetectionModel`] — which also fixes
/// the saturation classing the cache keys are canonicalized under. The
/// shape assertion in `adopt_states` catches gross mismatches; callers
/// are responsible for full identity (see
/// [`super::shared::shared_bank_key`]).
pub struct PalStateSeed {
    n_types: usize,
    n_samples: usize,
    entries: Vec<(PalKey, PrefixState)>,
}

impl PalStateSeed {
    /// Number of prefix states carried.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the seed carries no states at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl std::fmt::Debug for PalStateSeed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PalStateSeed")
            .field("n_types", &self.n_types)
            .field("n_samples", &self.n_samples)
            .field("entries", &self.entries.len())
            .finish()
    }
}

/// Default number of cached estimates.
pub const DEFAULT_PAL_CACHE_CAPACITY: usize = 1 << 18;

/// Default memory budget for the prefix-state cache, in bytes. Each entry
/// costs ~8 bytes per bank sample, so the entry capacity is derived per
/// engine from the bank size (clamped to a sane range).
pub const DEFAULT_STATE_CACHE_BYTES: usize = 32 << 20;

fn default_state_capacity(n_samples: usize) -> usize {
    (DEFAULT_STATE_CACHE_BYTES / (8 * n_samples + 256)).clamp(16, 65_536)
}

/// `f64::INFINITY.to_bits()` — the canonical bit pattern of the saturated
/// threshold class. Any saturated threshold behaves identically to `+∞`,
/// so the class is keyed by it.
const SATURATED_BITS: u64 = 0x7FF0_0000_0000_0000;

/// Batched, parallel, memoizing `Pal` evaluator. See the module docs for
/// the reuse layers; see `tests/detection_equivalence.rs` for the
/// bit-identity contract with [`DetectionEstimator`].
///
/// The estimate cache key is the audit sequence plus the **canonical bit
/// pattern** of each sequence type's threshold. Coarser quantization (e.g.
/// rounding to the audit-unit lattice) would be unsound: the recourse
/// formula consumes the *raw* `b_t` (`consumed += min(b_t, Z_t·C_t)`), so
/// thresholds equal under rounding can still yield different estimates.
/// The only safe collapses — proven by the saturation argument above — are
/// exactly the ones the canonical form applies.
pub struct PalEngine<'a> {
    est: DetectionEstimator<'a>,
    threads: usize,
    capacity: usize,
    state_capacity: usize,
    /// Per-type saturation point in audit units: caps at or above this
    /// value can never bind on this bank (model-adjusted).
    sat_units: Vec<f64>,
    results: RefCell<SecondChance<PalKey, Vec<f64>>>,
    states: RefCell<SecondChance<PalKey, PrefixState>>,
    hits: Cell<u64>,
    misses: Cell<u64>,
    state_hits: Cell<u64>,
    columns_evaluated: Cell<u64>,
    columns_saved: Cell<u64>,
}

impl<'a> PalEngine<'a> {
    /// Build a caching engine with the given worker count (`0` is treated
    /// as `1`).
    pub fn new(est: DetectionEstimator<'a>, threads: usize) -> Self {
        Self::with_capacities(
            est,
            threads,
            DEFAULT_PAL_CACHE_CAPACITY,
            default_state_capacity(est.bank.n_samples()),
        )
    }

    /// Build an engine that never caches across calls (every query is
    /// evaluated; batches still share work through the trie) — used by
    /// benchmarks to isolate the batching speedup, and by one-shot scans
    /// like brute force whose queries never repeat.
    pub fn uncached(est: DetectionEstimator<'a>, threads: usize) -> Self {
        Self::with_capacities(est, threads, 0, 0)
    }

    /// Build with an explicit estimate-cache capacity (`0` disables all
    /// cross-call caching, including prefix states).
    pub fn with_cache_capacity(
        est: DetectionEstimator<'a>,
        threads: usize,
        capacity: usize,
    ) -> Self {
        let state_capacity = if capacity == 0 {
            0
        } else {
            default_state_capacity(est.bank.n_samples())
        };
        Self::with_capacities(est, threads, capacity, state_capacity)
    }

    /// Build with explicit estimate- and prefix-state-cache capacities
    /// (entries; `0` disables the respective cache).
    pub fn with_capacities(
        est: DetectionEstimator<'a>,
        threads: usize,
        capacity: usize,
        state_capacity: usize,
    ) -> Self {
        assert!(
            est.bank.n_types() <= u16::MAX as usize,
            "cache key packs type indices into u16"
        );
        let sat_units = (0..est.bank.n_types())
            .map(|t| {
                let mc = est.bank.max_count(t) as f64;
                match est.model {
                    // The attack-inclusive ratio audits up to Z_t + 1
                    // alerts, so saturation needs one more unit of cap.
                    DetectionModel::AttackInclusive => mc + 1.0,
                    // The zero-count rule reads `cap ≥ 1`, so the class
                    // boundary never drops below one audit unit.
                    _ => mc.max(1.0),
                }
            })
            .collect();
        Self {
            est,
            threads: threads.max(1),
            capacity,
            state_capacity,
            sat_units,
            results: RefCell::new(SecondChance::new(capacity)),
            states: RefCell::new(SecondChance::new(state_capacity)),
            hits: Cell::new(0),
            misses: Cell::new(0),
            state_hits: Cell::new(0),
            columns_evaluated: Cell::new(0),
            columns_saved: Cell::new(0),
        }
    }

    /// The scalar estimator backing this engine.
    pub fn estimator(&self) -> &DetectionEstimator<'a> {
        &self.est
    }

    /// Worker threads used for batch evaluation.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Cache observability counters.
    pub fn cache_stats(&self) -> CacheStats {
        let results = self.results.borrow();
        let states = self.states.borrow();
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            entries: results.len(),
            evictions: results.evictions(),
            state_entries: states.len(),
            state_hits: self.state_hits.get(),
            state_evictions: states.evictions(),
            columns_evaluated: self.columns_evaluated.get(),
            columns_saved: self.columns_saved.get(),
        }
    }

    /// Snapshot the prefix-state cache as a portable seed. Entries come
    /// out in slot order — a pure function of this engine's own query
    /// history — so the export is deterministic for a deterministic
    /// caller.
    pub fn export_states(&self) -> PalStateSeed {
        let states = self.states.borrow();
        PalStateSeed {
            n_types: self.est.bank.n_types(),
            n_samples: self.est.bank.n_samples(),
            entries: states.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
        }
    }

    /// Seed the prefix-state cache from another engine's export. A no-op
    /// when state caching is disabled. Panics if the seed's shape (type
    /// count, bank size) does not match this engine's bank — a cheap
    /// guard; full bank/spec/model identity is the caller's contract (see
    /// [`PalStateSeed`]).
    pub fn adopt_states(&self, seed: &PalStateSeed) {
        if self.state_capacity == 0 || seed.entries.is_empty() {
            return;
        }
        assert_eq!(
            (seed.n_types, seed.n_samples),
            (self.est.bank.n_types(), self.est.bank.n_samples()),
            "prefix-state seed shape does not match this engine's bank"
        );
        let mut states = self.states.borrow_mut();
        for (k, v) in &seed.entries {
            states.insert(k.clone(), v.clone());
        }
    }

    /// The canonical bit pattern of threshold `b` for type `t`: saturated
    /// thresholds collapse to one class, everything else keys by exact
    /// bits.
    fn canonical_bits(&self, t: usize, b: f64) -> u64 {
        let c_t = self.est.spec.alert_types[t].audit_cost;
        let cap = (b / c_t).floor().max(0.0);
        if cap >= self.sat_units[t] {
            SATURATED_BITS
        } else {
            b.to_bits()
        }
    }

    /// Canonical equivalence key of a full threshold vector: two vectors
    /// with equal keys produce bit-identical `Pal` results for **every**
    /// sequence on this engine's bank (saturated coordinates collapse).
    /// Solver-side objective memos key on this to skip equivalent LPs.
    pub fn threshold_class_key(&self, thresholds: &[f64]) -> Vec<u64> {
        assert_eq!(thresholds.len(), self.est.spec.n_types());
        thresholds
            .iter()
            .enumerate()
            .map(|(t, &b)| self.canonical_bits(t, b))
            .collect()
    }

    fn query_key(&self, q: &PalQuery) -> PalKey {
        (
            q.seq.iter().map(|&t| t as u16).collect(),
            q.seq
                .iter()
                .map(|&t| self.canonical_bits(t, q.thresholds[t]))
                .collect(),
        )
    }

    /// `Pal` for one full order (cached).
    pub fn pal(&self, order: &AuditOrder, thresholds: &[f64]) -> Vec<f64> {
        self.pal_batch(std::slice::from_ref(&PalQuery::full(order, thresholds)))
            .pop()
            .expect("one query yields one result")
    }

    /// `Pal` for a prefix sequence (cached).
    pub fn pal_prefix(&self, prefix: &[usize], thresholds: &[f64]) -> Vec<f64> {
        self.pal_batch(std::slice::from_ref(&PalQuery::prefix(prefix, thresholds)))
            .pop()
            .expect("one query yields one result")
    }

    /// Single-coordinate threshold sweep: evaluate `Pal` for sequence
    /// `seq` under `thresholds` with coordinate `coord` replaced by each
    /// of `candidates`, in one batch. Results are aligned with
    /// `candidates` and bit-identical to evaluating each candidate alone.
    ///
    /// The sweep is processed in **sorted threshold order**: candidates
    /// are sorted, detection-equivalent runs (exact duplicates plus the
    /// entire saturated tail at or above the varying type's largest bank
    /// count) collapse to one evaluation each, and the surviving class
    /// representatives share the trie — the prefix before `coord`'s
    /// position is paid once, `coord`'s siblings share one budget-cap
    /// pass, and only the suffix is re-evaluated per class. ISHM's shrink
    /// search and the sensitivity module's threshold curves ride this
    /// kernel.
    pub fn pal_sweep(
        &self,
        seq: &[usize],
        thresholds: &[f64],
        coord: usize,
        candidates: &[f64],
    ) -> Vec<Vec<f64>> {
        let n_types = self.est.spec.n_types();
        assert!(coord < n_types, "sweep coordinate out of range");
        assert_eq!(thresholds.len(), n_types);
        if candidates.is_empty() {
            return Vec::new();
        }
        // A coordinate the sequence never audits cannot influence the
        // result: one evaluation serves every candidate.
        if !seq.contains(&coord) {
            let r = self.pal_prefix(seq, thresholds);
            return vec![r; candidates.len()];
        }
        // Sorted sweep: ascending candidate order makes equivalence
        // classes contiguous (equal bit patterns repeat back-to-back and
        // the saturated tail is one run), so one pass extracts the class
        // representatives.
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        order.sort_by(|&a, &b| candidates[a].total_cmp(&candidates[b]));
        let mut class_of = vec![usize::MAX; candidates.len()];
        let mut reps: Vec<f64> = Vec::new();
        let mut last_bits: Option<u64> = None;
        for &i in &order {
            let bits = self.canonical_bits(coord, candidates[i]);
            if last_bits != Some(bits) {
                reps.push(candidates[i]);
                last_bits = Some(bits);
            }
            class_of[i] = reps.len() - 1;
        }
        let queries: Vec<PalQuery> = reps
            .iter()
            .map(|&v| {
                let mut th = thresholds.to_vec();
                th[coord] = v;
                PalQuery::prefix(seq, &th)
            })
            .collect();
        let rep_results = self.pal_batch(&queries);
        class_of
            .into_iter()
            .map(|c| rep_results[c].clone())
            .collect()
    }

    /// Evaluate a whole candidate frontier in one pass: results are aligned
    /// with `queries`. Cached queries cost a lookup; the rest are grouped
    /// into a prefix trie and split across workers by subtree.
    pub fn pal_batch(&self, queries: &[PalQuery]) -> Vec<Vec<f64>> {
        let n_types = self.est.spec.n_types();
        let mut seen = vec![false; n_types];
        for q in queries {
            assert_eq!(q.thresholds.len(), n_types, "threshold arity mismatch");
            assert!(q.seq.len() <= n_types, "sequence longer than type set");
            // Audit sequences must not repeat a type: the column sweep
            // visits each type once, so a duplicate would silently diverge
            // from the scalar path (which re-walks it) — reject instead.
            seen.iter_mut().for_each(|s| *s = false);
            for &t in &q.seq {
                assert!(t < n_types, "type index {t} out of range");
                assert!(!seen[t], "audit sequence repeats type {t}");
                seen[t] = true;
            }
        }
        let mut results: Vec<Option<Vec<f64>>> = vec![None; queries.len()];
        let mut miss_idx: Vec<usize> = Vec::new();
        // Keys are built once per batch and moved into the cache on insert
        // — key construction allocates, and this path is the hot loop.
        let mut miss_keys: Vec<PalKey> = Vec::new();
        if self.capacity > 0 {
            let mut cache = self.results.borrow_mut();
            for (i, q) in queries.iter().enumerate() {
                let key = self.query_key(q);
                match cache.get(&key) {
                    Some(v) => results[i] = Some(v.clone()),
                    None => {
                        miss_idx.push(i);
                        miss_keys.push(key);
                    }
                }
            }
            self.hits
                .set(self.hits.get() + (queries.len() - miss_idx.len()) as u64);
            self.misses.set(self.misses.get() + miss_idx.len() as u64);
        } else {
            miss_idx.extend(0..queries.len());
        }

        let computed = self.eval_misses(queries, &miss_idx);

        if self.capacity > 0 && !miss_idx.is_empty() {
            let mut cache = self.results.borrow_mut();
            for (key, v) in miss_keys.into_iter().zip(&computed) {
                cache.insert(key, v.clone());
            }
        }
        for (i, v) in miss_idx.into_iter().zip(computed) {
            results[i] = Some(v);
        }
        results
            .into_iter()
            .map(|r| r.expect("every query resolved"))
            .collect()
    }

    /// Evaluate the missed queries through the trie, preserving `miss_idx`
    /// order.
    fn eval_misses(&self, queries: &[PalQuery], miss_idx: &[usize]) -> Vec<Vec<f64>> {
        if miss_idx.is_empty() {
            return Vec::new();
        }
        let n_types = self.est.spec.n_types();
        let n_samples = self.est.bank.n_samples();

        // Commutative folding is unsound for the operational model, whose
        // per-type consumption depends on the state it is evaluated in.
        let fold = !matches!(self.est.model, DetectionModel::Operational);
        let trie = QueryTrie::build(queries, miss_idx, fold, &|t, b| self.canonical_bits(t, b));
        let nodes = &trie.nodes;
        let n_nodes = nodes.len();

        // ---- Phase 1 (single-threaded): prefix-state lookups ----
        // Register every hit (`touch` marks the second-chance bit) and
        // adopt its detection sum; the consumed vectors stay in the cache
        // and are *borrowed* — not cloned — during the walk below.
        let mut hit_slot: Vec<Option<usize>> = vec![None; n_nodes];
        let mut sums = vec![0.0f64; n_nodes];
        if self.state_capacity > 0 {
            let mut sc = self.states.borrow_mut();
            let mut adopted = 0u64;
            for id in 1..n_nodes {
                if let Some(slot) = sc.touch(&nodes[id].key) {
                    hit_slot[id] = Some(slot);
                    sums[id] = sc.peek(slot).sum;
                    adopted += 1;
                }
            }
            self.state_hits.set(self.state_hits.get() + adopted);
        }
        let hit: Vec<bool> = hit_slot.iter().map(|s| s.is_some()).collect();

        // needs_walk: the subtree still contains at least one fresh pass.
        // Children have larger ids than parents, so a reverse scan works.
        let mut needs_walk = vec![false; n_nodes];
        for id in (1..n_nodes).rev() {
            needs_walk[id] = !hit[id] || nodes[id].children.iter().any(|&c| needs_walk[c]);
        }

        // ---- Phase 2: run the fresh passes, one trie subtree per worker ----
        let sc_ro = self.states.borrow();
        let adopted_consumed: Vec<Option<&[f64]>> = hit_slot
            .iter()
            .map(|slot| slot.map(|s| sc_ro.peek(s).consumed.as_slice()))
            .collect();
        let ctx = WalkCtx {
            est: self.est,
            nodes,
            hit: &hit,
            needs_walk: &needs_walk,
            adopted_consumed: &adopted_consumed,
            retain_below: if self.state_capacity > 0 { n_types } else { 0 },
        };
        let zeros = vec![0.0f64; n_samples];
        let roots: Vec<usize> = nodes[0]
            .children
            .iter()
            .copied()
            .filter(|&c| needs_walk[c])
            .collect();
        let workers = self.threads.min(roots.len()).max(1);
        let outputs: Vec<Vec<WalkOut>> = if workers <= 1 {
            let mut out = Vec::new();
            let mut caps = Vec::new();
            walk_set(&ctx, &roots, Some(&zeros), &mut out, &mut caps);
            vec![out]
        } else {
            let per = roots.len().div_ceil(workers);
            std::thread::scope(|scope| {
                let handles: Vec<_> = roots
                    .chunks(per)
                    .map(|part| {
                        let ctx = &ctx;
                        let zeros = &zeros;
                        scope.spawn(move || {
                            let mut out = Vec::new();
                            let mut caps = Vec::new();
                            walk_set(ctx, part, Some(zeros), &mut out, &mut caps);
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("pal worker panicked"))
                    .collect()
            })
        };
        drop(adopted_consumed);
        drop(sc_ro);

        // ---- Phase 3 (single-threaded): assemble and retain ----
        let mut fresh_states: Vec<Option<Vec<f64>>> = vec![None; n_nodes];
        let mut passes = 0u64;
        for part in outputs {
            for out in part {
                sums[out.id] = out.sum;
                fresh_states[out.id] = out.consumed;
                passes += 1;
            }
        }
        self.columns_evaluated
            .set(self.columns_evaluated.get() + passes);
        let scalar_cols: u64 = miss_idx.iter().map(|&i| queries[i].seq.len() as u64).sum();
        self.columns_saved
            .set(self.columns_saved.get() + (scalar_cols - passes));

        let nf = n_samples as f64;
        let mut results: Vec<Option<Vec<f64>>> = vec![None; queries.len()];
        for (chain, &qi) in trie.chains.iter().zip(miss_idx) {
            let mut r = vec![0.0; n_types];
            for &nid in chain {
                r[nodes[nid].t] = sums[nid] / nf;
            }
            results[qi] = Some(r);
        }

        // Retain fresh prefix states in deterministic (node id) order, so
        // cache content and evictions are identical at every thread count.
        if self.state_capacity > 0 {
            let mut sc = self.states.borrow_mut();
            for id in 1..n_nodes {
                if let Some(consumed) = fresh_states[id].take() {
                    sc.insert(
                        nodes[id].key.clone(),
                        PrefixState {
                            consumed,
                            sum: sums[id],
                        },
                    );
                }
            }
        }

        miss_idx
            .iter()
            .map(|&i| results[i].take().expect("miss evaluated"))
            .collect()
    }
}

impl std::fmt::Debug for PalEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PalEngine")
            .field("threads", &self.threads)
            .field("capacity", &self.capacity)
            .field("state_capacity", &self.state_capacity)
            .field("stats", &self.cache_stats())
            .finish()
    }
}

/// Shared read-only context of one trie walk.
struct WalkCtx<'e, 'a> {
    est: DetectionEstimator<'a>,
    nodes: &'e [Node],
    hit: &'e [bool],
    needs_walk: &'e [bool],
    adopted_consumed: &'e [Option<&'e [f64]>],
    /// Retain fresh states for nodes with `depth < retain_below` (`0`
    /// disables retention; full-length prefixes can never be extended, so
    /// they are never retained).
    retain_below: usize,
}

/// One evaluated trie node: its detection-mass sum and (when retained or
/// needed by descendants) the consumed-budget vector after the prefix.
struct WalkOut {
    id: usize,
    sum: f64,
    consumed: Option<Vec<f64>>,
}

/// Evaluate the fresh members of a sibling set and recurse. `children` is
/// a set of sibling node ids (or a partition of the root's children);
/// `parent_consumed` is the evaluation state after their common prefix.
///
/// Fresh siblings are processed grouped by type in **ascending threshold
/// order**: a group of two or more (a threshold sweep fanning out of one
/// prefix) shares a single budget-cap pass over the parent state, since
/// `B_t` does not depend on the type's own threshold.
fn walk_set(
    ctx: &WalkCtx<'_, '_>,
    children: &[usize],
    parent_consumed: Option<&[f64]>,
    out: &mut Vec<WalkOut>,
    caps: &mut Vec<f64>,
) {
    let spec = ctx.est.spec;
    let bank = ctx.est.bank;
    let model = ctx.est.model;
    let budget = spec.budget;

    let mut fresh: Vec<usize> = children.iter().copied().filter(|&c| !ctx.hit[c]).collect();
    fresh.sort_by(|&a, &b| {
        ctx.nodes[a]
            .t
            .cmp(&ctx.nodes[b].t)
            .then(ctx.nodes[a].b.total_cmp(&ctx.nodes[b].b))
            .then(a.cmp(&b))
    });

    // Compute every fresh sibling's pass before recursing: the caps
    // scratch buffer belongs to this sibling set and deeper recursion
    // would clobber it.
    let mut computed: Vec<WalkOut> = Vec::with_capacity(fresh.len());
    let mut i = 0;
    while i < fresh.len() {
        let t = ctx.nodes[fresh[i]].t;
        let mut j = i + 1;
        while j < fresh.len() && ctx.nodes[fresh[j]].t == t {
            j += 1;
        }
        let group = &fresh[i..j];
        let parent = parent_consumed.expect("fresh node requires parent prefix state");
        let c_t = spec.alert_types[t].audit_cost;
        let col = match bank.compact_column(t) {
            Some(c) => Col::Compact(c),
            None => Col::Wide(bank.column(t)),
        };
        let swept = group.len() >= 2;
        if swept {
            caps.clear();
            caps.extend(parent.iter().map(|&cons| budget_cap(budget, c_t, cons)));
        }
        for &id in group {
            let node = &ctx.nodes[id];
            let b_t = node.b;
            let thresh_cap = (b_t / c_t).floor().max(0.0);
            let retain = node.depth < ctx.retain_below;
            let needs_consumed = retain || node.children.iter().any(|&g| !ctx.hit[g]);
            let (sum, consumed) = if needs_consumed {
                let mut next = Vec::new();
                let sum = if swept {
                    pass_capped_extend(model, caps, c_t, b_t, thresh_cap, parent, col, &mut next)
                } else {
                    pass_extend(model, budget, c_t, b_t, thresh_cap, parent, col, &mut next)
                };
                (sum, Some(next))
            } else {
                let sum = if swept {
                    pass_capped_sum(model, caps, c_t, b_t, thresh_cap, col)
                } else {
                    pass_sum(model, budget, c_t, b_t, thresh_cap, parent, col)
                };
                (sum, None)
            };
            computed.push(WalkOut { id, sum, consumed });
        }
        i = j;
    }

    for mut done in computed {
        let node = &ctx.nodes[done.id];
        if node.children.iter().any(|&g| ctx.needs_walk[g]) {
            walk_set(ctx, &node.children, done.consumed.as_deref(), out, caps);
        }
        if node.depth >= ctx.retain_below {
            done.consumed = None;
        }
        out.push(done);
    }

    // Cached siblings whose subtrees still contain fresh passes.
    for &c in children {
        if ctx.hit[c] && ctx.needs_walk[c] {
            walk_set(
                ctx,
                &ctx.nodes[c].children,
                ctx.adopted_consumed[c],
                out,
                caps,
            );
        }
    }
}

/// A bank column in either width; counts widen to `u64` before arithmetic,
/// so both layouts produce bit-identical results.
#[derive(Copy, Clone)]
enum Col<'a> {
    Wide(&'a [u64]),
    Compact(&'a [u32]),
}

#[allow(clippy::too_many_arguments)]
fn pass_extend(
    model: DetectionModel,
    budget: f64,
    c_t: f64,
    b_t: f64,
    thresh_cap: f64,
    parent: &[f64],
    col: Col<'_>,
    next: &mut Vec<f64>,
) -> f64 {
    match col {
        Col::Wide(z) => pass_extend_z(model, budget, c_t, b_t, thresh_cap, parent, z, next),
        Col::Compact(z) => pass_extend_z(model, budget, c_t, b_t, thresh_cap, parent, z, next),
    }
}

#[allow(clippy::too_many_arguments)]
fn pass_extend_z<Z: Copy + Into<u64>>(
    model: DetectionModel,
    budget: f64,
    c_t: f64,
    b_t: f64,
    thresh_cap: f64,
    parent: &[f64],
    col: &[Z],
    next: &mut Vec<f64>,
) -> f64 {
    next.clear();
    next.reserve(parent.len());
    let mut sum = 0.0f64;
    for (&cons, &z) in parent.iter().zip(col) {
        let cap = budget_cap(budget, c_t, cons);
        let (contrib, spent) = detection_step_capped(model, cap, c_t, b_t, thresh_cap, z.into());
        sum += contrib;
        next.push(cons + spent);
    }
    sum
}

fn pass_sum(
    model: DetectionModel,
    budget: f64,
    c_t: f64,
    b_t: f64,
    thresh_cap: f64,
    parent: &[f64],
    col: Col<'_>,
) -> f64 {
    match col {
        Col::Wide(z) => pass_sum_z(model, budget, c_t, b_t, thresh_cap, parent, z),
        Col::Compact(z) => pass_sum_z(model, budget, c_t, b_t, thresh_cap, parent, z),
    }
}

fn pass_sum_z<Z: Copy + Into<u64>>(
    model: DetectionModel,
    budget: f64,
    c_t: f64,
    b_t: f64,
    thresh_cap: f64,
    parent: &[f64],
    col: &[Z],
) -> f64 {
    let mut sum = 0.0f64;
    for (&cons, &z) in parent.iter().zip(col) {
        let cap = budget_cap(budget, c_t, cons);
        let (contrib, _) = detection_step_capped(model, cap, c_t, b_t, thresh_cap, z.into());
        sum += contrib;
    }
    sum
}

#[allow(clippy::too_many_arguments)]
fn pass_capped_extend(
    model: DetectionModel,
    caps: &[f64],
    c_t: f64,
    b_t: f64,
    thresh_cap: f64,
    parent: &[f64],
    col: Col<'_>,
    next: &mut Vec<f64>,
) -> f64 {
    match col {
        Col::Wide(z) => pass_capped_extend_z(model, caps, c_t, b_t, thresh_cap, parent, z, next),
        Col::Compact(z) => pass_capped_extend_z(model, caps, c_t, b_t, thresh_cap, parent, z, next),
    }
}

#[allow(clippy::too_many_arguments)]
fn pass_capped_extend_z<Z: Copy + Into<u64>>(
    model: DetectionModel,
    caps: &[f64],
    c_t: f64,
    b_t: f64,
    thresh_cap: f64,
    parent: &[f64],
    col: &[Z],
    next: &mut Vec<f64>,
) -> f64 {
    next.clear();
    next.reserve(parent.len());
    let mut sum = 0.0f64;
    for ((&cap, &cons), &z) in caps.iter().zip(parent).zip(col) {
        let (contrib, spent) = detection_step_capped(model, cap, c_t, b_t, thresh_cap, z.into());
        sum += contrib;
        next.push(cons + spent);
    }
    sum
}

fn pass_capped_sum(
    model: DetectionModel,
    caps: &[f64],
    c_t: f64,
    b_t: f64,
    thresh_cap: f64,
    col: Col<'_>,
) -> f64 {
    match col {
        Col::Wide(z) => pass_capped_sum_z(model, caps, c_t, b_t, thresh_cap, z),
        Col::Compact(z) => pass_capped_sum_z(model, caps, c_t, b_t, thresh_cap, z),
    }
}

fn pass_capped_sum_z<Z: Copy + Into<u64>>(
    model: DetectionModel,
    caps: &[f64],
    c_t: f64,
    b_t: f64,
    thresh_cap: f64,
    col: &[Z],
) -> f64 {
    let mut sum = 0.0f64;
    for (&cap, &z) in caps.iter().zip(col) {
        let (contrib, _) = detection_step_capped(model, cap, c_t, b_t, thresh_cap, z.into());
        sum += contrib;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AttackAction, Attacker, GameSpec, GameSpecBuilder};
    use std::sync::Arc;
    use stochastics::{Constant, SampleBank, UniformCount};

    const MODELS: [DetectionModel; 3] = [
        DetectionModel::PaperApprox,
        DetectionModel::AttackInclusive,
        DetectionModel::Operational,
    ];

    /// Two types, deterministic Z = (2, 3), C = (1, 1).
    fn spec(budget: f64) -> GameSpec {
        let mut b = GameSpecBuilder::new();
        let t0 = b.alert_type("t0", 1.0, Arc::new(Constant(2)));
        let _t1 = b.alert_type("t1", 1.0, Arc::new(Constant(3)));
        b.attacker(Attacker::new(
            "e",
            1.0,
            vec![AttackAction::deterministic("v", t0, 1.0, 0.0, 0.0)],
        ));
        b.budget(budget);
        b.build().unwrap()
    }

    /// Three types with non-trivial random counts and mixed costs.
    fn spec3(budget: f64) -> GameSpec {
        let mut b = GameSpecBuilder::new();
        let t0 = b.alert_type("t0", 1.0, Arc::new(UniformCount::new(0, 5)));
        let _t1 = b.alert_type("t1", 1.5, Arc::new(UniformCount::new(1, 4)));
        let _t2 = b.alert_type("t2", 0.5, Arc::new(UniformCount::new(0, 7)));
        b.attacker(Attacker::new(
            "e",
            1.0,
            vec![AttackAction::deterministic("v", t0, 1.0, 0.0, 0.0)],
        ));
        b.budget(budget);
        b.build().unwrap()
    }

    fn bank_for(spec: &GameSpec) -> SampleBank {
        spec.sample_bank(4, 0)
    }

    #[test]
    fn engine_matches_scalar_bitwise() {
        let s = spec(2.0);
        let bank = bank_for(&s);
        for model in MODELS {
            let est = DetectionEstimator::new(&s, &bank, model);
            for threads in [1usize, 2, 4] {
                let engine = PalEngine::new(est, threads);
                for thresholds in [[1.0, 10.0], [0.0, 1.5], [2.0, 2.0]] {
                    for order in AuditOrder::enumerate_all(2) {
                        assert_eq!(
                            engine.pal(&order, &thresholds),
                            est.pal(&order, &thresholds),
                            "model {model:?}, threads {threads}"
                        );
                    }
                    assert_eq!(
                        engine.pal_prefix(&[1], &thresholds),
                        est.pal_prefix(&[1], &thresholds)
                    );
                }
            }
        }
    }

    #[test]
    fn folded_orders_match_scalar_bitwise() {
        // Commutative folding merges [a,b,...] with [b,a,...]: every full
        // order of a 3-type game with mixed costs must still equal the
        // scalar reference exactly, for every model (including the
        // unfoldable operational one).
        let s = spec3(4.0);
        let bank = s.sample_bank(64, 9);
        for model in MODELS {
            let est = DetectionEstimator::new(&s, &bank, model);
            let engine = PalEngine::new(est, 1);
            for thresholds in [[2.0, 3.0, 1.0], [0.5, 9.0, 2.5]] {
                let queries: Vec<PalQuery> = AuditOrder::enumerate_all(3)
                    .iter()
                    .map(|o| PalQuery::full(o, &thresholds))
                    .collect();
                let batch = engine.pal_batch(&queries);
                for (q, got) in queries.iter().zip(&batch) {
                    assert_eq!(
                        got,
                        &est.pal_prefix(&q.seq, &q.thresholds),
                        "model {model:?}, seq {:?}",
                        q.seq
                    );
                }
            }
        }
    }

    #[test]
    fn folding_reduces_column_passes_on_full_enumerations() {
        let s = spec3(4.0);
        let bank = s.sample_bank(16, 1);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let engine = PalEngine::uncached(est, 1);
        let thresholds = [2.0, 3.0, 1.0];
        let queries: Vec<PalQuery> = AuditOrder::enumerate_all(3)
            .iter()
            .map(|o| PalQuery::full(o, &thresholds))
            .collect();
        engine.pal_batch(&queries);
        let stats = engine.cache_stats();
        // 6 orders × 3 columns = 18 scalar passes. The plain trie has
        // 3 + 6 + 6 = 15 nodes; folding merges the depth-3 level down to
        // 3 classes: 3 + 6 + 3 = 12.
        assert_eq!(stats.columns_evaluated, 12);
        assert_eq!(stats.columns_saved, 6);
        // The operational model cannot fold: 15 passes.
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::Operational);
        let engine = PalEngine::uncached(est, 1);
        engine.pal_batch(&queries);
        assert_eq!(engine.cache_stats().columns_evaluated, 15);
    }

    #[test]
    fn engine_batch_preserves_query_order_and_caches() {
        let s = spec(2.0);
        let bank = bank_for(&s);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let engine = PalEngine::new(est, 2);
        let queries = vec![
            PalQuery::full(&AuditOrder::identity(2), &[1.0, 10.0]),
            PalQuery::prefix(&[0], &[1.0, 10.0]),
            PalQuery::full(&AuditOrder::new(vec![1, 0]).unwrap(), &[1.0, 10.0]),
        ];
        let first = engine.pal_batch(&queries);
        assert_eq!(first.len(), 3);
        for (q, r) in queries.iter().zip(&first) {
            assert_eq!(r, &est.pal_prefix(&q.seq, &q.thresholds));
        }
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.entries, 3);

        // Second round: all hits, same results.
        let second = engine.pal_batch(&queries);
        assert_eq!(first, second);
        let stats = engine.cache_stats();
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 3);
    }

    #[test]
    fn trie_shares_prefix_columns_within_a_batch() {
        let s = spec(2.0);
        let bank = bank_for(&s);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let engine = PalEngine::uncached(est, 1);
        // Both queries share the [0] prefix: 1 + 2 scalar columns, but the
        // trie evaluates only 2 nodes.
        let queries = vec![
            PalQuery::prefix(&[0], &[1.0, 1.0]),
            PalQuery::prefix(&[0, 1], &[1.0, 1.0]),
        ];
        let batch = engine.pal_batch(&queries);
        assert_eq!(batch[0], est.pal_prefix(&[0], &[1.0, 1.0]));
        assert_eq!(batch[1], est.pal_prefix(&[0, 1], &[1.0, 1.0]));
        let stats = engine.cache_stats();
        assert_eq!(stats.columns_evaluated, 2);
        assert_eq!(stats.columns_saved, 1);
    }

    #[test]
    fn prefix_states_carry_across_batches() {
        let s = spec(2.0);
        let bank = bank_for(&s);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let engine = PalEngine::new(est, 1);
        // Greedy-oracle shape: first the prefix trial, then its extension.
        engine.pal_prefix(&[0], &[1.0, 1.0]);
        let before = engine.cache_stats();
        assert_eq!(before.columns_evaluated, 1);
        engine.pal_prefix(&[0, 1], &[1.0, 1.0]);
        let after = engine.cache_stats();
        // The second call pays only the extension column: the [0] prefix
        // state is adopted from the cache.
        assert_eq!(after.columns_evaluated, 2);
        assert_eq!(after.state_hits, 1);
        assert_eq!(
            engine.pal_prefix(&[0, 1], &[1.0, 1.0]),
            est.pal_prefix(&[0, 1], &[1.0, 1.0])
        );
    }

    #[test]
    fn adopted_state_seed_is_bit_identical_and_skips_columns() {
        let s = spec3(4.0);
        let bank = s.sample_bank(64, 9);
        for model in MODELS {
            let est = DetectionEstimator::new(&s, &bank, model);
            let donor = PalEngine::new(est, 1);
            let thresholds = [2.0, 3.0, 1.0];
            let full: Vec<Vec<f64>> = AuditOrder::enumerate_all(3)
                .iter()
                .map(|o| donor.pal(o, &thresholds))
                .collect();
            let seed = donor.export_states();
            assert!(!seed.is_empty());

            // A seeded engine answers bit-identically while adopting
            // cached prefixes instead of recomputing their columns.
            let warm = PalEngine::new(est, 1);
            warm.adopt_states(&seed);
            let cold = PalEngine::new(est, 1);
            for (order, expect) in AuditOrder::enumerate_all(3).iter().zip(&full) {
                assert_eq!(&warm.pal(order, &thresholds), expect, "model {model:?}");
                assert_eq!(&cold.pal(order, &thresholds), expect, "model {model:?}");
            }
            let warm_stats = warm.cache_stats();
            let cold_stats = cold.cache_stats();
            assert!(warm_stats.state_hits > 0, "seed was never adopted");
            assert!(
                warm_stats.columns_evaluated < cold_stats.columns_evaluated,
                "adoption saved no column passes ({} vs {})",
                warm_stats.columns_evaluated,
                cold_stats.columns_evaluated
            );

            // Adoption into a state-cache-disabled engine is a no-op.
            let uncached = PalEngine::uncached(est, 1);
            uncached.adopt_states(&seed);
            assert_eq!(uncached.cache_stats().state_entries, 0);
        }
    }

    #[test]
    #[should_panic(expected = "seed shape")]
    fn adopting_a_mismatched_seed_panics() {
        let s3 = spec3(4.0);
        let bank3 = s3.sample_bank(64, 9);
        let est3 = DetectionEstimator::new(&s3, &bank3, DetectionModel::PaperApprox);
        let donor = PalEngine::new(est3, 1);
        donor.pal_prefix(&[0, 1], &[2.0, 3.0, 1.0]);
        let seed = donor.export_states();

        let s2 = spec(2.0);
        let bank2 = bank_for(&s2);
        let est2 = DetectionEstimator::new(&s2, &bank2, DetectionModel::PaperApprox);
        PalEngine::new(est2, 1).adopt_states(&seed);
    }

    #[test]
    fn saturated_thresholds_share_one_class() {
        // Bank max counts are (2, 3); any threshold with cap ≥ max count
        // is detection-equivalent (the paper model), so 5.0, 7.5 and ∞
        // collapse into one cached class per coordinate.
        let s = spec(2.0);
        let bank = bank_for(&s);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let engine = PalEngine::new(est, 1);
        let a = engine.pal(&AuditOrder::identity(2), &[5.0, 5.0]);
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 1);
        let b = engine.pal(&AuditOrder::identity(2), &[7.5, f64::INFINITY]);
        let stats = engine.cache_stats();
        assert_eq!(stats.hits, 1, "saturated variant must hit the class");
        assert_eq!(a, b);
        // And the class answer is bit-identical to both scalar evaluations.
        assert_eq!(a, est.pal(&AuditOrder::identity(2), &[5.0, 5.0]));
        assert_eq!(b, est.pal(&AuditOrder::identity(2), &[7.5, f64::INFINITY]));
        // Sub-saturation thresholds stay exact-keyed.
        let c = engine.pal(&AuditOrder::identity(2), &[1.0, 2.0]);
        assert_eq!(c, est.pal(&AuditOrder::identity(2), &[1.0, 2.0]));
        assert_eq!(engine.cache_stats().entries, 2);
    }

    #[test]
    fn sweep_matches_per_candidate_loop() {
        let s = spec(2.5);
        let bank = bank_for(&s);
        for model in MODELS {
            let est = DetectionEstimator::new(&s, &bank, model);
            let engine = PalEngine::new(est, 2);
            let candidates = [0.0, 1.0, 1.5, 2.0, 1.0, 9.0, 17.0];
            for seq in [vec![0usize, 1], vec![1, 0], vec![1], vec![0]] {
                for coord in [0usize, 1] {
                    let swept = engine.pal_sweep(&seq, &[1.5, 2.0], coord, &candidates);
                    assert_eq!(swept.len(), candidates.len());
                    for (&v, got) in candidates.iter().zip(&swept) {
                        let mut th = vec![1.5, 2.0];
                        th[coord] = v;
                        assert_eq!(
                            got,
                            &est.pal_prefix(&seq, &th),
                            "model {model:?}, seq {seq:?}, coord {coord}, v {v}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sweep_collapses_duplicate_and_saturated_candidates() {
        let s = spec(2.0);
        let bank = bank_for(&s);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let engine = PalEngine::new(est, 1);
        // Max count of type 0 is 2: candidates 2.0, 5.0, 9.0 saturate; the
        // two 1.0 duplicates share; distinct classes: {1.0, 1.5, sat}.
        let swept = engine.pal_sweep(&[0, 1], &[1.0, 1.0], 0, &[1.0, 5.0, 1.5, 1.0, 2.0, 9.0]);
        assert_eq!(swept.len(), 6);
        assert_eq!(engine.cache_stats().misses, 3);
        assert_eq!(swept[1], swept[4]);
        assert_eq!(swept[1], swept[5]);
        assert_eq!(swept[0], swept[3]);
        // Coordinate outside the sequence: one evaluation serves all.
        let engine = PalEngine::new(est, 1);
        let swept = engine.pal_sweep(&[1], &[1.0, 1.0], 0, &[0.5, 1.0, 2.0]);
        assert_eq!(engine.cache_stats().misses, 1);
        assert_eq!(swept[0], swept[2]);
        assert_eq!(swept[0], est.pal_prefix(&[1], &[0.5, 1.0]));
    }

    #[test]
    fn engine_cache_capacity_bounds_entries_with_evictions() {
        let s = spec(2.0);
        let bank = bank_for(&s);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let engine = PalEngine::with_cache_capacity(est, 1, 2);
        for k in 0..5u32 {
            let b = f64::from(k) * 0.25; // sub-saturation: distinct classes
            engine.pal(&AuditOrder::identity(2), &[b, b]);
        }
        let stats = engine.cache_stats();
        assert!(stats.entries <= 2, "entries {}", stats.entries);
        // Second-chance eviction displaces single entries, never wipes.
        assert!(stats.evictions >= 1);
        assert_eq!(stats.entries, 2);

        // A batch larger than the capacity stays bounded too.
        let engine = PalEngine::with_cache_capacity(est, 1, 2);
        let queries: Vec<PalQuery> = (0..5u32)
            .map(|k| PalQuery::full(&AuditOrder::identity(2), &[f64::from(k) * 0.25, 1.0]))
            .collect();
        let batch = engine.pal_batch(&queries);
        assert_eq!(batch.len(), 5);
        assert!(engine.cache_stats().entries <= 2);

        // Uncached engine never stores anything but still answers.
        let uncached = PalEngine::uncached(est, 1);
        let a = uncached.pal(&AuditOrder::identity(2), &[1.0, 1.0]);
        let b = uncached.pal(&AuditOrder::identity(2), &[1.0, 1.0]);
        assert_eq!(a, b);
        let stats = uncached.cache_stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.state_entries, 0);
    }

    #[test]
    fn absorb_sums_counters_and_maxes_gauges() {
        let mut a = CacheStats {
            hits: 10,
            misses: 5,
            entries: 7,
            evictions: 1,
            state_entries: 3,
            state_hits: 2,
            state_evictions: 0,
            columns_evaluated: 100,
            columns_saved: 40,
        };
        let b = CacheStats {
            hits: 1,
            misses: 2,
            entries: 4,
            evictions: 3,
            state_entries: 9,
            state_hits: 5,
            state_evictions: 6,
            columns_evaluated: 10,
            columns_saved: 20,
        };
        a.absorb(&b);
        assert_eq!(a.hits, 11);
        assert_eq!(a.misses, 7);
        assert_eq!(a.evictions, 4);
        assert_eq!(a.state_hits, 7);
        assert_eq!(a.state_evictions, 6);
        assert_eq!(a.columns_evaluated, 110);
        assert_eq!(a.columns_saved, 60);
        // Gauges take the high-water mark, not a meaningless sum.
        assert_eq!(a.entries, 7);
        assert_eq!(a.state_entries, 9);
    }

    #[test]
    fn hot_entries_survive_eviction_pressure() {
        let s = spec(2.0);
        let bank = bank_for(&s);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let engine = PalEngine::with_cache_capacity(est, 1, 4);
        let hot = [0.25, 0.25];
        engine.pal(&AuditOrder::identity(2), &hot);
        for k in 1..24u32 {
            // Re-touch the hot entry between cold inserts.
            engine.pal(&AuditOrder::identity(2), &hot);
            let b = f64::from(k) * 0.125;
            engine.pal(&AuditOrder::identity(2), &[b, 0.0]);
        }
        let stats = engine.cache_stats();
        assert!(stats.evictions >= 1);
        // 24 hot lookups: 1 miss + 23 hits means it was never evicted.
        assert!(stats.hits >= 23, "hot entry was evicted: {stats:?}");
    }

    #[test]
    #[should_panic(expected = "repeats type")]
    fn engine_rejects_repeated_types_in_sequence() {
        // A duplicated type would silently diverge from the scalar path
        // (one column visit vs two row-walk visits), so it must panic.
        let s = spec(2.0);
        let bank = bank_for(&s);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let engine = PalEngine::new(est, 1);
        engine.pal_prefix(&[0, 0], &[1.0, 1.0]);
    }

    #[test]
    fn engine_distinguishes_threshold_bit_patterns() {
        // 1.5 vs 1.0 thresholds floor to the same audit capacity but consume
        // different raw budget — the cache must key them apart (both are
        // below the type's saturation point of 2).
        let s = spec(2.5);
        let bank = bank_for(&s);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let engine = PalEngine::new(est, 1);
        let a = engine.pal(&AuditOrder::identity(2), &[1.0, 5.0]);
        let b = engine.pal(&AuditOrder::identity(2), &[1.5, 5.0]);
        assert_eq!(a, est.pal(&AuditOrder::identity(2), &[1.0, 5.0]));
        assert_eq!(b, est.pal(&AuditOrder::identity(2), &[1.5, 5.0]));
        assert_eq!(engine.cache_stats().entries, 2);
    }

    #[test]
    fn threshold_class_keys_separate_only_equivalent_vectors() {
        let s = spec(2.0);
        let bank = bank_for(&s);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let engine = PalEngine::new(est, 1);
        // Saturated coordinates collapse...
        assert_eq!(
            engine.threshold_class_key(&[5.0, 3.0]),
            engine.threshold_class_key(&[2.0, 97.5])
        );
        // ...but binding ones never do.
        assert_ne!(
            engine.threshold_class_key(&[1.0, 3.0]),
            engine.threshold_class_key(&[1.5, 3.0])
        );
        // Attack-inclusive needs one more unit of cap to saturate.
        let incl = DetectionEstimator::new(&s, &bank, DetectionModel::AttackInclusive);
        let engine = PalEngine::new(incl, 1);
        assert_ne!(
            engine.threshold_class_key(&[2.0, 4.0]),
            engine.threshold_class_key(&[3.0, 4.0])
        );
        assert_eq!(
            engine.threshold_class_key(&[3.0, 4.0]),
            engine.threshold_class_key(&[4.0, 4.0])
        );
    }
}
