//! Determinism contract of the multi-tenant fleet runtime.
//!
//! The fleet scheduler only decides *when* tenant work happens, never
//! *what* it computes, so the [`FleetReport::fingerprint`] must be
//! bit-identical across worker counts, reruns, and cache sharing — and a
//! one-tenant fleet must reproduce the plain [`AuditService::run`]
//! fingerprint exactly.

use alert_audit::prelude::*;
use alert_audit::runtime::{
    AuditService, DriftConfig, FleetConfig, FleetReport, FleetService, RuntimeConfig, TenantSpec,
};
use alert_audit::scenario::registry;
use stochastics::rng::derive_seed;

fn tenant_config(seed: u64) -> RuntimeConfig {
    RuntimeConfig {
        epochs: 3,
        periods_per_epoch: 4,
        seed,
        solver: SolverConfig {
            inner: InnerKind::Cggs,
            n_samples: 40,
            epsilon: 0.5,
            ..Default::default()
        },
        drift: DriftConfig::default(),
        warm_start: true,
        compare_cold: false,
    }
}

fn fleet_over(keys: &[&str], n: usize, workers: usize, share: bool) -> FleetReport {
    let reg = registry();
    let tenants = (0..n)
        .map(|i| {
            let key = keys[i % keys.len()];
            TenantSpec {
                name: format!("{key}#{i}"),
                scenario: reg.get(key).unwrap().clone(),
                config: tenant_config(derive_seed(7, i as u64)),
            }
        })
        .collect();
    FleetService::new(
        tenants,
        FleetConfig {
            workers,
            share_caches: share,
            ..FleetConfig::default()
        },
    )
    .run()
    .unwrap()
}

#[test]
fn fingerprint_is_invariant_across_worker_counts_and_reruns() {
    let keys = ["syn-a", "syn-seasonal"];
    let baseline = fleet_over(&keys, 6, 1, true);
    assert_eq!(baseline.tenants.len(), 6);
    assert_eq!(baseline.total_periods, 6 * 3 * 4);
    for workers in [1usize, 2, 4] {
        let run = fleet_over(&keys, 6, workers, true);
        assert_eq!(
            run.fingerprint(),
            baseline.fingerprint(),
            "workers {workers}"
        );
        // Not just the hash: every tenant's report fingerprint matches.
        for (a, b) in run.tenants.iter().zip(&baseline.tenants) {
            assert_eq!(a.tenant, b.tenant);
            assert_eq!(a.report.fingerprint(), b.report.fingerprint());
        }
    }
}

#[test]
fn shared_caches_are_bit_identical_to_isolated() {
    // All tenants share one scenario/spec, so the shared exchange is hit
    // constantly — and must still change nothing observable.
    let shared = fleet_over(&["syn-a"], 5, 4, true);
    let isolated = fleet_over(&["syn-a"], 5, 4, false);
    assert!(shared.shared && !isolated.shared);
    assert_eq!(shared.fingerprint(), isolated.fingerprint());
    // Sharing actually engaged: snapshots were published and adopted.
    assert!(shared.shared_cache.publishes > 0);
    assert!(
        shared.shared_cache.adoptions > 0,
        "identical banks never shared a snapshot: {:?}",
        shared.shared_cache
    );
    assert_eq!(isolated.shared_cache.publishes, 0);
}

#[test]
fn empty_fleet_is_a_valid_degenerate_run() {
    let report = FleetService::new(Vec::new(), FleetConfig::default())
        .run()
        .unwrap();
    assert_eq!(report.tenants.len(), 0);
    assert_eq!(report.total_periods, 0);
    assert_eq!(report.total_resolves(), 0);
}

#[test]
fn single_tenant_fleet_reproduces_the_plain_service_run() {
    let reg = registry();
    let scenario = reg.get("syn-seasonal").unwrap().clone();
    let config = tenant_config(derive_seed(7, 0));
    let solo = AuditService::new(scenario.clone(), config.clone())
        .run()
        .unwrap();
    for share in [true, false] {
        let fleet = fleet_over(&["syn-seasonal"], 1, 2, share);
        assert_eq!(fleet.tenants.len(), 1);
        assert_eq!(
            fleet.tenants[0].report.fingerprint(),
            solo.fingerprint(),
            "share {share}"
        );
        assert_eq!(fleet.total_periods, solo.total_periods());
    }
}
