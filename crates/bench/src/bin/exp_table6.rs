//! Experiment E4 — paper Table VI: average precision γ of ISHM (γ¹) and
//! ISHM+CGGS (γ²) against the brute-force optimum, per step size ε.
//!
//! Runs Table III + Table IV + Table V internally and reports
//! `γ_ε = 1 − mean_B |Ŝ(B,ε) − S(B)| / |S(B)|`.
//!
//! ```text
//! cargo run -p audit-bench --release --bin exp_table6 [budgets] [epsilons] [samples] [threads] [--scenario <key>]
//! ```

use audit_bench::cli::{default_threads, parse_count, parse_list, take_scenario_flag};
use audit_bench::defaults::{SEED, SYN_BUDGETS, SYN_EPSILONS, SYN_SAMPLES};
use audit_bench::report::Table;
use audit_bench::scenarios::resolve_base_spec;
use audit_bench::syn_experiments::{gamma_per_epsilon, ishm_grid, table3};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let scenario = take_scenario_flag(&mut args);
    let budgets = parse_list(args.first().cloned(), &SYN_BUDGETS);
    let epsilons = parse_list(args.get(1).cloned(), &SYN_EPSILONS);
    let samples = parse_count(args.get(2).cloned(), SYN_SAMPLES);
    let threads = parse_count(args.get(3).cloned(), default_threads());
    let (_, base) = resolve_base_spec(scenario, "syn-a", SEED);
    let t0 = std::time::Instant::now();

    eprintln!("[1/3] brute-force optimum (Table III)");
    let optimal = table3(&base, &budgets, samples, SEED, threads).expect("table3");
    eprintln!("[2/3] ISHM grid (Table IV)");
    let grid_exact =
        ishm_grid(&base, &budgets, &epsilons, false, samples, SEED, threads).expect("grid");
    eprintln!("[3/3] ISHM+CGGS grid (Table V)");
    let grid_cggs =
        ishm_grid(&base, &budgets, &epsilons, true, samples, SEED, threads).expect("grid");

    let g1 = gamma_per_epsilon(&optimal, &grid_exact);
    let g2 = gamma_per_epsilon(&optimal, &grid_cggs);

    let mut header: Vec<String> = vec!["eps".into()];
    header.extend(epsilons.iter().map(|e| format!("{e}")));
    let mut table = Table::new(header);
    let mut row1: Vec<String> = vec!["gamma1 (ISHM)".into()];
    row1.extend(g1.iter().map(|g| format!("{g:.4}")));
    table.row(row1);
    let mut row2: Vec<String> = vec!["gamma2 (ISHM+CGGS)".into()];
    row2.extend(g2.iter().map(|g| format!("{g:.4}")));
    table.row(row2);
    println!("{}", table.render());
    eprintln!("elapsed: {:.1?}", t0.elapsed());
}
