//! Experiment E11 — the multi-tenant fleet runtime: N independent audit
//! streams (one service loop each) multiplexed over a bounded worker
//! pool, with solver prefix-state snapshots shared across tenants whose
//! sample banks coincide.
//!
//! ```text
//! cargo run -p audit-bench --release --bin exp_fleet [tenants] [epochs] [workers] \
//!     [--scenario <key>] [--mix] [--seed <n>] [--isolated] [--json]
//! ```
//!
//! Every tenant runs the scenario with its own seed, derived from the
//! master `--seed` by tenant index, so the whole fleet is one
//! deterministic function of `(tenants, epochs, --scenario/--mix, seed)`
//! — the printed `fleet fingerprint` is bit-identical across reruns,
//! worker counts, and `--isolated` (cache sharing changes wall-clock
//! only; the CI fleet smoke greps exactly that). `--mix` cycles tenants
//! over a fixed scenario mix (rational, seasonal, heavy-tail, quantal)
//! instead of one scenario; `--isolated` disables cross-tenant cache
//! sharing; `--json` emits the full fleet report as one JSON document.

use alert_audit::telemetry::fleet_report_to_json;
use audit_bench::cli::{
    default_threads, parse_count, take_flag, take_scenario_flag, take_value_flag,
};
use audit_bench::report::Table;
use audit_runtime::{FleetConfig, FleetService, RuntimeConfig, TenantSpec};
use stochastics::rng::derive_seed;

/// The `--mix` rotation: one rational baseline plus the three strategic
/// workload families.
const MIX: [&str; 4] = ["syn-a", "syn-seasonal", "syn-heavy-tail", "syn-quantal"];

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let scenario_key = take_scenario_flag(&mut args);
    let mix = take_flag(&mut args, "--mix");
    let master_seed = take_value_flag(&mut args, "--seed")
        .map(|s| s.parse().expect("--seed is a u64"))
        .unwrap_or(0u64);
    let isolated = take_flag(&mut args, "--isolated");
    let json = take_flag(&mut args, "--json");
    let n_tenants = parse_count(args.first().cloned(), 64);
    let epochs = parse_count(args.get(1).cloned(), 8);
    let workers = parse_count(args.get(2).cloned(), default_threads());
    assert!(
        !(mix && scenario_key.is_some()),
        "--mix and --scenario are mutually exclusive"
    );
    let base_key = scenario_key.unwrap_or_else(|| "syn-a".into());

    let reg = alert_audit::scenario::registry();
    let keys: Vec<&str> = if mix {
        MIX.to_vec()
    } else {
        vec![base_key.as_str()]
    };
    let defaults = RuntimeConfig::default();
    let tenants: Vec<TenantSpec> = (0..n_tenants)
        .map(|i| {
            let key = keys[i % keys.len()];
            let scenario = reg.resolve(key).unwrap_or_else(|e| panic!("{e}")).clone();
            TenantSpec {
                name: format!("{key}#{i}"),
                scenario,
                config: RuntimeConfig {
                    epochs,
                    // Tenant streams are independent: each gets its own
                    // derived seed for build/stream/execution randomness.
                    seed: derive_seed(master_seed, i as u64),
                    ..defaults.clone()
                },
            }
        })
        .collect();

    eprintln!(
        "fleet: {n_tenants} tenant(s) x {epochs} epoch(s) x {} period(s), {} worker(s), caches {}",
        defaults.periods_per_epoch,
        workers,
        if isolated { "isolated" } else { "shared" },
    );

    let fleet = FleetService::new(
        tenants,
        FleetConfig {
            workers,
            share_caches: !isolated,
            ..FleetConfig::default()
        },
    );
    let report = fleet.run().expect("fleet runs");

    if json {
        println!("{}", fleet_report_to_json(&report).render());
    } else {
        let mut table = Table::new(vec![
            "tenant",
            "epochs",
            "resolves",
            "drift",
            "start ms",
            "mean epoch ms",
        ]);
        for t in &report.tenants {
            let mean_epoch = if t.epoch_millis.is_empty() {
                0.0
            } else {
                t.epoch_millis.iter().sum::<f64>() / t.epoch_millis.len() as f64
            };
            table.row(vec![
                t.tenant.clone(),
                format!("{}", t.report.epochs.len()),
                format!("{}", t.report.resolves()),
                format!("{}", t.report.drift_epochs()),
                format!("{:.1}", t.start_millis),
                format!("{mean_epoch:.2}"),
            ]);
        }
        println!("{}", table.render());
    }

    // In --json mode stdout must stay a single parseable document, so the
    // summary lines move to stderr there.
    let summary = |line: String| {
        if json {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    summary(format!(
        "tenants: {} total periods: {} total resolves: {}",
        report.tenants.len(),
        report.total_periods,
        report.total_resolves()
    ));
    summary(format!(
        "period latency ms: p50 {:.3} p95 {:.3} p99 {:.3}",
        report.latency_p50_millis, report.latency_p95_millis, report.latency_p99_millis
    ));
    if report.shared {
        summary(format!(
            "shared cache: banks={} publishes={} adoptions={}",
            report.shared_cache.banks, report.shared_cache.publishes, report.shared_cache.adoptions
        ));
    }
    summary(format!("fleet fingerprint: {:016x}", report.fingerprint()));
    summary(format!("periods/sec: {:.1}", report.periods_per_sec));
    eprintln!("elapsed: {:.1} ms", report.wall_millis);
}
