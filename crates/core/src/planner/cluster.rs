//! Workload-similarity clustering of alert types — the decomposition
//! substrate for the wide-type inner evaluator.
//!
//! Two types belong together when they attract comparable attack mass
//! per audit dollar: the master mixture trades them off against each
//! other, so their relative order matters, while the order *across*
//! density tiers is largely settled (high-density types go early in any
//! good column). Clustering therefore sorts types by mass-per-cost
//! density and chunks adjacent runs, giving within-cluster order
//! enumeration where it pays and fixed cross-cluster structure where it
//! does not.

use super::attack_mass;
use crate::model::GameSpec;

/// Types per cluster. Three keeps within-cluster enumeration trivial
/// (3! = 6 permutations) while covering 20–50 types in 7–17 clusters.
pub const DEFAULT_CLUSTER_SIZE: usize = 3;

/// A partition of the alert types into workload-similarity clusters,
/// ordered from the densest (most attack mass per audit cost) tier down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeClusters {
    clusters: Vec<Vec<usize>>,
}

impl TypeClusters {
    /// Partition `spec`'s types: rank by attack-mass-per-cost density
    /// (descending, ties by type index) and chunk adjacent runs of
    /// `cluster_size`. Deterministic — the same spec always clusters
    /// identically.
    pub fn build(spec: &GameSpec, cluster_size: usize) -> Self {
        let mass = attack_mass(spec);
        let costs = spec.audit_costs();
        let mut ranked: Vec<usize> = (0..spec.n_types()).collect();
        ranked.sort_by(|&a, &b| {
            let da = mass[a] / costs[a];
            let db = mass[b] / costs[b];
            db.partial_cmp(&da)
                .expect("attack densities are finite")
                .then(a.cmp(&b))
        });
        let clusters = ranked
            .chunks(cluster_size.max(1))
            .map(|c| c.to_vec())
            .collect();
        Self { clusters }
    }

    /// How many clusters `n_types` types split into at `cluster_size` —
    /// the planner reports this without building a spec.
    pub fn cluster_count(n_types: usize, cluster_size: usize) -> usize {
        n_types.div_ceil(cluster_size.max(1))
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// `true` when the partition is empty (zero-type spec).
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The clusters, densest tier first; each cluster lists its types in
    /// density order.
    pub fn clusters(&self) -> &[Vec<usize>] {
        &self.clusters
    }

    /// Iterate the clusters in tier order.
    pub fn iter(&self) -> std::slice::Iter<'_, Vec<usize>> {
        self.clusters.iter()
    }

    /// The canonical flat order: clusters concatenated tier by tier. This
    /// is the decomposition's "all-else-fixed" spine — every block column
    /// permutes one cluster against this backdrop.
    pub fn canonical_order(&self) -> Vec<usize> {
        self.clusters.iter().flatten().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::syn_a;
    use crate::model::{AttackAction, Attacker, GameSpecBuilder};
    use std::sync::Arc;
    use stochastics::Constant;

    fn spec_with_rewards(rewards: &[f64]) -> GameSpec {
        let mut b = GameSpecBuilder::new();
        let ts: Vec<usize> = (0..rewards.len())
            .map(|i| b.alert_type(format!("t{i}"), 1.0, Arc::new(Constant(1))))
            .collect();
        for (i, (&t, &r)) in ts.iter().zip(rewards).enumerate() {
            b.attacker(Attacker::new(
                format!("e{i}"),
                1.0,
                vec![AttackAction::deterministic(format!("v{i}"), t, r, 0.5, 2.0)],
            ));
        }
        b.budget(2.0);
        b.build().unwrap()
    }

    #[test]
    fn clusters_partition_all_types_once() {
        let spec = spec_with_rewards(&[1.0, 5.0, 3.0, 2.0, 4.0, 6.0, 0.5]);
        let tc = TypeClusters::build(&spec, 3);
        assert_eq!(tc.len(), 3);
        let mut all = tc.canonical_order();
        all.sort_unstable();
        assert_eq!(all, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn densest_types_land_in_the_first_cluster() {
        // Rewards pick the density order directly (unit costs, M fixed).
        let spec = spec_with_rewards(&[1.0, 9.0, 3.0, 8.0]);
        let tc = TypeClusters::build(&spec, 2);
        assert_eq!(tc.clusters()[0], vec![1, 3]);
        assert_eq!(tc.clusters()[1], vec![2, 0]);
    }

    #[test]
    fn ties_break_by_type_index() {
        let spec = spec_with_rewards(&[2.0, 2.0, 2.0, 2.0]);
        let tc = TypeClusters::build(&spec, 3);
        assert_eq!(tc.canonical_order(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn cluster_count_matches_build() {
        for (n, size, want) in [(25, 3, 9), (50, 3, 17), (5, 3, 2), (3, 3, 1), (6, 0, 6)] {
            assert_eq!(TypeClusters::cluster_count(n, size), want);
        }
        let spec = syn_a();
        let tc = TypeClusters::build(&spec, DEFAULT_CLUSTER_SIZE);
        assert_eq!(
            tc.len(),
            TypeClusters::cluster_count(spec.n_types(), DEFAULT_CLUSTER_SIZE)
        );
    }

    #[test]
    fn clustering_is_deterministic() {
        let spec = spec_with_rewards(&[3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]);
        let a = TypeClusters::build(&spec, 3);
        let b = TypeClusters::build(&spec, 3);
        assert_eq!(a, b);
    }
}
