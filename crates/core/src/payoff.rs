//! Attacker utilities (paper eq. 2–3) and payoff matrices over sets of
//! audit orders.

use crate::detection::{DetectionEstimator, PalEngine, PalQuery};
use crate::model::{AttackAction, GameSpec};
use crate::ordering::AuditOrder;

/// `Pat(o, b, ⟨e,v⟩) = Σ_t P^t_ev · Pal(o, b, t)` — the probability that an
/// attack is detected, given per-type alert-detection probabilities.
pub fn detection_prob(action: &AttackAction, pal: &[f64]) -> f64 {
    action.alert_probs.iter().map(|&(t, p)| p * pal[t]).sum()
}

/// Attacker utility (paper eq. 3, with the penalty entering negatively):
///
/// `U_a = Pat·(−M) + (1 − Pat)·R − K`.
pub fn action_utility(action: &AttackAction, pal: &[f64]) -> f64 {
    let pat = detection_prob(action, pal);
    pat * (-action.penalty) + (1.0 - pat) * action.reward - action.attack_cost
}

/// Flat index space over all `(attacker, action)` pairs of a spec.
#[derive(Debug, Clone)]
pub struct ActionIndex {
    /// `offsets[e]..offsets[e+1]` are the flat indices of attacker `e`.
    offsets: Vec<usize>,
}

impl ActionIndex {
    /// Build the index for a spec.
    pub fn new(spec: &GameSpec) -> Self {
        let mut offsets = Vec::with_capacity(spec.n_attackers() + 1);
        offsets.push(0);
        for att in &spec.attackers {
            offsets.push(offsets.last().unwrap() + att.actions.len());
        }
        Self { offsets }
    }

    /// Total number of actions.
    pub fn n_actions(&self) -> usize {
        *self.offsets.last().unwrap()
    }

    /// Number of attackers.
    pub fn n_attackers(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Flat index range of attacker `e`.
    pub fn range(&self, e: usize) -> std::ops::Range<usize> {
        self.offsets[e]..self.offsets[e + 1]
    }

    /// Attacker owning flat index `i`.
    pub fn attacker_of(&self, i: usize) -> usize {
        // offsets is sorted; binary search for the containing window.
        match self.offsets.binary_search(&i) {
            Ok(e) if e + 1 < self.offsets.len() => e,
            Ok(e) => e - 1,
            Err(e) => e - 1,
        }
    }
}

/// Payoff matrix `U_a(o, b, ⟨e,v⟩)` for a concrete threshold vector and a
/// set of candidate orders: `values[col][i]` is the utility of flat action
/// `i` against order column `col`.
#[derive(Debug, Clone)]
pub struct PayoffMatrix {
    /// One column per candidate order.
    pub orders: Vec<AuditOrder>,
    /// `Pal` vector per column (cached for diagnostics/best-response work).
    pub pals: Vec<Vec<f64>>,
    /// Column-major utilities: `values[col][flat_action]`.
    pub values: Vec<Vec<f64>>,
    /// Flat action index.
    pub index: ActionIndex,
}

/// One payoff-matrix column: every flat action's utility against the
/// detection vector `pal`. All matrix-construction paths share this so the
/// scalar and engine-built matrices can never drift apart.
fn utility_column(spec: &GameSpec, pal: &[f64]) -> Vec<f64> {
    let mut col = Vec::with_capacity(spec.n_actions());
    for att in &spec.attackers {
        for act in &att.actions {
            col.push(action_utility(act, pal));
        }
    }
    col
}

impl PayoffMatrix {
    /// Evaluate the payoff matrix for `orders` under fixed thresholds.
    pub fn build(
        spec: &GameSpec,
        est: &DetectionEstimator<'_>,
        orders: Vec<AuditOrder>,
        thresholds: &[f64],
    ) -> Self {
        let index = ActionIndex::new(spec);
        let mut pals = Vec::with_capacity(orders.len());
        let mut values = Vec::with_capacity(orders.len());
        for order in &orders {
            let pal = est.pal(order, thresholds);
            values.push(utility_column(spec, &pal));
            pals.push(pal);
        }
        Self {
            orders,
            pals,
            values,
            index,
        }
    }

    /// As [`PayoffMatrix::build`], but through the batched engine: every
    /// order's `Pal` vector is evaluated (or recalled) in a single
    /// [`PalEngine::pal_batch`] call, so the columns are grouped into one
    /// prefix trie — orders sharing audit prefixes (all of them, on a full
    /// enumeration) pay for each shared prefix once — and split across the
    /// engine's workers by trie subtree. Results are identical to the
    /// scalar path.
    pub fn build_with_engine(
        spec: &GameSpec,
        engine: &PalEngine<'_>,
        orders: Vec<AuditOrder>,
        thresholds: &[f64],
    ) -> Self {
        let index = ActionIndex::new(spec);
        let queries: Vec<PalQuery> = orders
            .iter()
            .map(|o| PalQuery::full(o, thresholds))
            .collect();
        let pals = engine.pal_batch(&queries);
        let values = pals.iter().map(|pal| utility_column(spec, pal)).collect();
        Self {
            orders,
            pals,
            values,
            index,
        }
    }

    /// As [`PayoffMatrix::push_order`], but routed through the engine so
    /// column generation reuses cached `Pal` estimates.
    pub fn push_order_with_engine(
        &mut self,
        spec: &GameSpec,
        engine: &PalEngine<'_>,
        order: AuditOrder,
        thresholds: &[f64],
    ) {
        let pal = engine.pal(&order, thresholds);
        self.orders.push(order);
        self.values.push(utility_column(spec, &pal));
        self.pals.push(pal);
    }

    /// Append one more order column (used by column generation).
    pub fn push_order(
        &mut self,
        spec: &GameSpec,
        est: &DetectionEstimator<'_>,
        order: AuditOrder,
        thresholds: &[f64],
    ) {
        let pal = est.pal(&order, thresholds);
        self.orders.push(order);
        self.values.push(utility_column(spec, &pal));
        self.pals.push(pal);
    }

    /// Number of order columns.
    pub fn n_orders(&self) -> usize {
        self.orders.len()
    }

    /// Auditor's loss if the auditor plays mixture `p` over the columns and
    /// every attacker best-responds (including opting out when allowed):
    /// `Σ_e p_e · max_v Σ_o p_o · U_a(o,b,⟨e,v⟩)` (paper eq. 4).
    pub fn loss_under_mixture(&self, spec: &GameSpec, p: &[f64]) -> f64 {
        assert_eq!(p.len(), self.n_orders());
        let mut loss = 0.0;
        for (e, att) in spec.attackers.iter().enumerate() {
            let mut best = f64::NEG_INFINITY;
            for i in self.index.range(e) {
                let expected: f64 = self
                    .values
                    .iter()
                    .zip(p)
                    .map(|(col, &po)| po * col[i])
                    .sum();
                best = best.max(expected);
            }
            if spec.allow_opt_out || att.actions.is_empty() {
                best = best.max(0.0);
            }
            if best.is_finite() {
                loss += att.attack_prob * best;
            }
        }
        loss
    }

    /// Each attacker's best response under mixture `p`: `Some(flat index)`
    /// of the chosen action, or `None` when opting out is optimal.
    pub fn best_responses(&self, spec: &GameSpec, p: &[f64]) -> Vec<Option<usize>> {
        assert_eq!(p.len(), self.n_orders());
        let mut out = Vec::with_capacity(spec.n_attackers());
        for (e, _att) in spec.attackers.iter().enumerate() {
            let mut best: Option<(usize, f64)> = None;
            for i in self.index.range(e) {
                let expected: f64 = self
                    .values
                    .iter()
                    .zip(p)
                    .map(|(col, &po)| po * col[i])
                    .sum();
                if best.map(|(_, v)| expected > v).unwrap_or(true) {
                    best = Some((i, expected));
                }
            }
            match best {
                Some((i, v)) if !(spec.allow_opt_out && v < 0.0) => out.push(Some(i)),
                _ => out.push(None),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detection::DetectionModel;
    use crate::model::{Attacker, GameSpecBuilder};
    use std::sync::Arc;
    use stochastics::Constant;

    fn spec() -> GameSpec {
        let mut b = GameSpecBuilder::new();
        let t0 = b.alert_type("t0", 1.0, Arc::new(Constant(1)));
        let t1 = b.alert_type("t1", 1.0, Arc::new(Constant(1)));
        b.attacker(Attacker::new(
            "e0",
            1.0,
            vec![
                AttackAction::deterministic("v0", t0, 10.0, 1.0, 5.0),
                AttackAction::deterministic("v1", t1, 8.0, 1.0, 5.0),
            ],
        ));
        b.attacker(Attacker::new(
            "e1",
            0.5,
            vec![AttackAction::deterministic("v0", t0, 4.0, 1.0, 5.0)],
        ));
        b.budget(1.0);
        b.build().unwrap()
    }

    #[test]
    fn utility_formula() {
        let act = AttackAction::deterministic("v", 0, 10.0, 1.0, 5.0);
        // Pal = 1: caught for sure → −5 − 1 = −6.
        assert!((action_utility(&act, &[1.0, 0.0]) + 6.0).abs() < 1e-12);
        // Pal = 0: undetected → 10 − 1 = 9.
        assert!((action_utility(&act, &[0.0, 0.0]) - 9.0).abs() < 1e-12);
        // Pal = 0.5 → 0.5·(−5) + 0.5·10 − 1 = 1.5.
        assert!((action_utility(&act, &[0.5, 0.0]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn stochastic_alert_mapping() {
        let act = AttackAction {
            victim: "v".into(),
            alert_probs: vec![(0, 0.6), (1, 0.2)],
            reward: 10.0,
            attack_cost: 0.0,
            penalty: 0.0,
        };
        // Pat = 0.6·1 + 0.2·0.5 = 0.7 → U = 0.3·10 = 3.
        assert!((detection_prob(&act, &[1.0, 0.5]) - 0.7).abs() < 1e-12);
        assert!((action_utility(&act, &[1.0, 0.5]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn action_index_ranges() {
        let s = spec();
        let idx = ActionIndex::new(&s);
        assert_eq!(idx.n_actions(), 3);
        assert_eq!(idx.n_attackers(), 2);
        assert_eq!(idx.range(0), 0..2);
        assert_eq!(idx.range(1), 2..3);
        assert_eq!(idx.attacker_of(0), 0);
        assert_eq!(idx.attacker_of(1), 0);
        assert_eq!(idx.attacker_of(2), 1);
    }

    #[test]
    fn payoff_matrix_shape_and_loss() {
        let s = spec();
        let bank = s.sample_bank(2, 0);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let orders = AuditOrder::enumerate_all(2);
        let m = PayoffMatrix::build(&s, &est, orders, &[1.0, 1.0]);
        assert_eq!(m.n_orders(), 2);
        assert_eq!(m.values[0].len(), 3);

        // Budget 1, Z = (1,1): first type in order is fully audited, second
        // gets nothing. Under order [0,1]: Pal = (1, 0).
        assert!((m.pals[0][0] - 1.0).abs() < 1e-12);
        assert!(m.pals[0][1].abs() < 1e-12);

        // Pure strategy [1, 0] (always audit type 0 first): e0 best response
        // is v1 (type 1, undetected: 8−1 = 7); e1 is caught: −6 → overall
        // loss = 1·7 + 0.5·(−6) = 4 (no opt-out).
        let loss = m.loss_under_mixture(&s, &[1.0, 0.0]);
        assert!((loss - 4.0).abs() < 1e-12);
    }

    #[test]
    fn opt_out_floors_attacker_utility() {
        let mut s = spec();
        s.allow_opt_out = true;
        let bank = s.sample_bank(2, 0);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let orders = AuditOrder::enumerate_all(2);
        let m = PayoffMatrix::build(&s, &est, orders, &[1.0, 1.0]);
        // e1's only option yields −6 under order [0,1]; opting out yields 0.
        let loss = m.loss_under_mixture(&s, &[1.0, 0.0]);
        assert!((loss - 7.0).abs() < 1e-12);
        let br = m.best_responses(&s, &[1.0, 0.0]);
        assert_eq!(br[0], Some(1)); // v1 for attacker 0
        assert_eq!(br[1], None); // deterred
    }

    #[test]
    fn mixture_interpolates_losses() {
        let s = spec();
        let bank = s.sample_bank(2, 0);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let orders = AuditOrder::enumerate_all(2);
        let m = PayoffMatrix::build(&s, &est, orders, &[1.0, 1.0]);
        let l0 = m.loss_under_mixture(&s, &[1.0, 0.0]);
        let l1 = m.loss_under_mixture(&s, &[0.0, 1.0]);
        let lmix = m.loss_under_mixture(&s, &[0.5, 0.5]);
        // Best responses make loss convex in p: mixture ≤ interpolation.
        assert!(lmix <= 0.5 * (l0 + l1) + 1e-12);
    }

    #[test]
    fn engine_build_matches_scalar_build() {
        let s = spec();
        let bank = s.sample_bank(32, 7);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let orders = AuditOrder::enumerate_all(2);
        let scalar = PayoffMatrix::build(&s, &est, orders.clone(), &[1.0, 1.0]);
        for threads in [1, 3] {
            let engine = PalEngine::new(est, threads);
            let mut batched =
                PayoffMatrix::build_with_engine(&s, &engine, vec![orders[0].clone()], &[1.0, 1.0]);
            batched.push_order_with_engine(&s, &engine, orders[1].clone(), &[1.0, 1.0]);
            assert_eq!(scalar.pals, batched.pals);
            assert_eq!(scalar.values, batched.values);
            assert_eq!(scalar.orders, batched.orders);
        }
    }

    #[test]
    fn push_order_extends_matrix() {
        let s = spec();
        let bank = s.sample_bank(2, 0);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let mut m = PayoffMatrix::build(&s, &est, vec![AuditOrder::identity(2)], &[1.0, 1.0]);
        m.push_order(&s, &est, AuditOrder::new(vec![1, 0]).unwrap(), &[1.0, 1.0]);
        assert_eq!(m.n_orders(), 2);
        assert_eq!(m.values[1].len(), 3);
    }
}
