//! Assembly of the Rea B game (Section V.A, credit-card fraud auditing).
//!
//! 100 labelled applicants act as potential adversaries; each can "attack"
//! one of the 8 application purposes (the victims), triggering the alert
//! their attribute profile produces under that purpose. `F_t` is fitted
//! from per-batch alert counts over repeated synthetic batches — the
//! stand-in for "historical alert logs".

use crate::schema::{Application, Purpose};
use crate::synth::{alert_counts, generate_applications, SynthConfig};
use audit_game::error::GameError;
use audit_game::model::{AttackAction, Attacker, GameSpec, GameSpecBuilder};
use rand::seq::SliceRandom;
use stochastics::rng::stream_rng;
use tdmt::profile::{AlertProfile, FitKind};

/// Rea B assembly parameters.
#[derive(Debug, Clone)]
pub struct ReaBConfig {
    /// Batch synthesis settings.
    pub synth: SynthConfig,
    /// Historical batches used to fit `F_t`.
    pub n_history_batches: usize,
    /// Applicant-attackers (paper: 100).
    pub n_attackers: usize,
    /// Audit budget `B`.
    pub budget: f64,
    /// Count-model fit.
    pub fit: FitKind,
    /// Master seed.
    pub seed: u64,
}

impl Default for ReaBConfig {
    fn default() -> Self {
        Self {
            synth: SynthConfig::default(),
            n_history_batches: 40,
            n_attackers: 100,
            budget: 10.0,
            fit: FitKind::Gaussian,
            seed: 0,
        }
    }
}

/// Build the Rea B game together with the fitted alert profile.
pub fn build_game_with_profile(config: &ReaBConfig) -> Result<(GameSpec, AlertProfile), GameError> {
    // Historical batches → per-type count series → F_t.
    let mut observations: Vec<Vec<u64>> = (0..5)
        .map(|_| Vec::with_capacity(config.n_history_batches))
        .collect();
    for b in 0..config.n_history_batches {
        let apps = generate_applications(&config.synth, config.seed.wrapping_add(b as u64));
        let counts = alert_counts(&apps);
        for t in 0..5 {
            observations[t].push(counts[t]);
        }
    }
    let profile = AlertProfile::from_observations(
        crate::TABLE9_NAMES.iter().map(|s| s.to_string()).collect(),
        observations,
        config.fit,
    );

    // The "current" batch provides the attacker population: labelled
    // applications only, sampled uniformly.
    let apps = generate_applications(&config.synth, config.seed.wrapping_add(777));
    let mut labelled: Vec<&Application> =
        apps.iter().filter(|a| a.alert_type().is_some()).collect();
    let mut rng = stream_rng(config.seed, 99);
    labelled.shuffle(&mut rng);
    assert!(
        labelled.len() >= config.n_attackers,
        "batch produced too few labelled applications"
    );

    let mut b = GameSpecBuilder::new();
    for t in 0..5 {
        b.alert_type(
            crate::TABLE9_NAMES[t],
            crate::REA_B_UNIT_COST,
            profile.distributions[t].clone(),
        );
    }
    for app in labelled.into_iter().take(config.n_attackers) {
        let actions: Vec<AttackAction> = Purpose::ALL
            .iter()
            .map(|&purpose| match app.alert_type_with_purpose(purpose) {
                None => AttackAction::benign(format!("{purpose:?}"), crate::REA_B_UNIT_COST),
                Some(t) => AttackAction::deterministic(
                    format!("{purpose:?}"),
                    t,
                    crate::REA_B_BENEFITS[t],
                    crate::REA_B_UNIT_COST,
                    crate::REA_B_PENALTY,
                ),
            })
            .collect();
        b.attacker(Attacker::new(format!("app{}", app.id), 1.0, actions));
    }
    b.budget(config.budget);
    b.allow_opt_out(true);
    Ok((b.build()?, profile))
}

/// Build the Rea B game spec only.
pub fn build_game(config: &ReaBConfig) -> Result<GameSpec, GameError> {
    build_game_with_profile(config).map(|(spec, _)| spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rea_b_game_has_paper_shape() {
        let (spec, profile) = build_game_with_profile(&ReaBConfig::default()).unwrap();
        assert_eq!(spec.n_types(), 5);
        assert_eq!(spec.n_attackers(), 100);
        assert_eq!(spec.n_actions(), 800);
        assert!(spec.allow_opt_out);
        assert_eq!(profile.n_types(), 5);
        spec.validate().unwrap();
    }

    #[test]
    fn fitted_means_track_table9() {
        let (_, profile) = build_game_with_profile(&ReaBConfig::default()).unwrap();
        for t in 0..5 {
            let tol = crate::TABLE9_STDS[t] * 1.5 + 2.0;
            assert!(
                (profile.means[t] - crate::TABLE9_MEANS[t]).abs() < tol,
                "type {t}: fitted {} vs Table IX {}",
                profile.means[t],
                crate::TABLE9_MEANS[t]
            );
        }
    }

    #[test]
    fn attackers_keep_their_profile_across_purposes() {
        let spec = build_game(&ReaBConfig::default()).unwrap();
        for att in &spec.attackers {
            assert_eq!(att.actions.len(), 8);
            // Rule 1 applicants (no checking account) alert on EVERY purpose.
            let alerting = att
                .actions
                .iter()
                .filter(|a| !a.alert_probs.is_empty())
                .count();
            assert!(alerting >= 1, "labelled applicant must alert somewhere");
            let all_type0 = att
                .actions
                .iter()
                .all(|a| a.alert_probs.first().map(|&(t, _)| t == 0).unwrap_or(false));
            if all_type0 {
                assert_eq!(alerting, 8);
            }
        }
    }

    #[test]
    fn rewards_follow_benefit_vector() {
        let spec = build_game(&ReaBConfig::default()).unwrap();
        for att in &spec.attackers {
            for act in &att.actions {
                if let Some(&(t, _)) = act.alert_probs.first() {
                    assert_eq!(act.reward, crate::REA_B_BENEFITS[t]);
                    assert_eq!(act.penalty, crate::REA_B_PENALTY);
                }
            }
        }
    }

    #[test]
    fn build_is_deterministic() {
        let a = build_game(&ReaBConfig::default()).unwrap();
        let b = build_game(&ReaBConfig::default()).unwrap();
        assert_eq!(a.n_actions(), b.n_actions());
        for (x, y) in a.attackers.iter().zip(&b.attackers) {
            assert_eq!(x.name, y.name);
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_populations() {
        let a = build_game(&ReaBConfig::default()).unwrap();
        let b = build_game(&ReaBConfig {
            seed: 1,
            ..Default::default()
        })
        .unwrap();
        let names_a: Vec<_> = a.attackers.iter().map(|x| &x.name).collect();
        let names_b: Vec<_> = b.attackers.iter().map(|x| &x.name).collect();
        assert_ne!(names_a, names_b);
    }
}
