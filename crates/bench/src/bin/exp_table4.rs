//! Experiment E2 — paper Table IV: ISHM (exact inner LP) approximation of
//! the optimum across budgets B ∈ {2..20} and step sizes ε ∈ {0.05..0.5}.
//!
//! ```text
//! cargo run -p audit-bench --release --bin exp_table4 [budgets] [epsilons] [samples] [threads]
//! ```

use audit_bench::defaults::{
    default_threads, parse_count, parse_list, SEED, SYN_BUDGETS, SYN_EPSILONS, SYN_SAMPLES,
};
use audit_bench::report::{f4, thresholds_str, Table};
use audit_bench::syn_experiments::ishm_grid;
use audit_game::datasets::syn_a_with_budget;

fn main() {
    let budgets = parse_list(std::env::args().nth(1), &SYN_BUDGETS);
    let epsilons = parse_list(std::env::args().nth(2), &SYN_EPSILONS);
    let samples = parse_count(std::env::args().nth(3), SYN_SAMPLES);
    let threads = parse_count(std::env::args().nth(4), default_threads());
    eprintln!(
        "Table IV reproduction: ISHM with exact inner LP ({samples} samples, {threads} engine thread(s))"
    );
    let t0 = std::time::Instant::now();
    let grid = ishm_grid(&budgets, &epsilons, false, samples, SEED, threads).expect("ISHM grid");
    let costs = syn_a_with_budget(2.0).audit_costs();

    let mut header: Vec<String> = vec!["B".into()];
    header.extend(epsilons.iter().map(|e| format!("eps={e}")));
    let mut table = Table::new(header);
    for row in &grid {
        let mut cells: Vec<String> = vec![format!("{}", row[0].budget)];
        for cell in row {
            cells.push(format!(
                "{} {}",
                f4(cell.value),
                thresholds_str(&cell.thresholds, &costs)
            ));
        }
        table.row(cells);
    }
    println!("{}", table.render());
    eprintln!("elapsed: {:.1?}", t0.elapsed());
}
