//! Exhaustive threshold search — the paper's optimal baseline.
//!
//! Section IV.B computes the OAP optimum by brute force: enumerate every
//! integer threshold vector `b` with `b_t/C_t ∈ {0, …, J_t}` (where `J_t`
//! is the full-coverage bound) and `Σ_t b_t ≥ B` (thresholds summing below
//! the budget waste auditing resource), solving the exact master LP for
//! each. Exponential in `|T|`; usable only on small instances such as
//! Syn A, which is precisely its role: the gold standard that Tables IV–VI
//! measure ISHM/CGGS against.

use crate::detection::{DetectionEstimator, PalEngine};
use crate::error::GameError;
use crate::master::{MasterSolution, MasterSolver};
use crate::model::GameSpec;
use crate::ordering::AuditOrder;
use crate::payoff::PayoffMatrix;

/// Result of the exhaustive search.
#[derive(Debug, Clone)]
pub struct BruteForceResult {
    /// Optimal threshold vector (budget units; `b_t = k_t·C_t`).
    pub thresholds: Vec<f64>,
    /// Optimal objective value.
    pub value: f64,
    /// Master solution at the optimum.
    pub master: MasterSolution,
    /// Order columns aligned with `master.p_orders`.
    pub orders: Vec<AuditOrder>,
    /// Number of threshold vectors actually evaluated (after the
    /// `Σ b_t ≥ B` filter).
    pub explored: usize,
    /// Total size of the unfiltered search lattice `Π (J_t + 1)`.
    pub space_size: u128,
}

/// Size of the unfiltered threshold lattice `Π_t (J_t + 1)` — the
/// denominator of the exploration-ratio vector `T'` in Section IV.C.
pub fn threshold_space_size(spec: &GameSpec) -> u128 {
    spec.distributions
        .iter()
        .map(|d| d.support_max() as u128 + 1)
        .product()
}

/// Exhaustively solve the OAP for the given spec.
///
/// `orders` is the feasible order set (all `|T|!` permutations unless the
/// organization restricts them). Every threshold vector on the integer
/// lattice satisfying the budget-cover filter is evaluated with the exact
/// master LP.
///
/// Uses a single-threaded, *uncached* engine: brute force never revisits a
/// `(order, thresholds)` pair, so memoization would only burn memory. Pass
/// a configured engine via [`solve_brute_force_with`] to parallelize the
/// per-lattice-point order batch.
pub fn solve_brute_force(
    spec: &GameSpec,
    est: &DetectionEstimator<'_>,
    orders: &[AuditOrder],
) -> Result<BruteForceResult, GameError> {
    let engine = PalEngine::uncached(*est, 1);
    solve_brute_force_with(spec, &engine, orders)
}

/// As [`solve_brute_force`], against a caller-owned [`PalEngine`]: each
/// lattice point evaluates all order columns in one batch across the
/// engine's workers.
pub fn solve_brute_force_with(
    spec: &GameSpec,
    engine: &PalEngine<'_>,
    orders: &[AuditOrder],
) -> Result<BruteForceResult, GameError> {
    spec.validate()?;
    if orders.is_empty() {
        return Err(GameError::InvalidConfig(
            "brute force needs a non-empty order set".into(),
        ));
    }
    let n = spec.n_types();
    let costs = spec.audit_costs();
    let caps: Vec<u64> = spec.distributions.iter().map(|d| d.support_max()).collect();
    let space_size = threshold_space_size(spec);

    // The cover filter Σ b_t ≥ B is meaningful only when the lattice can
    // reach the budget at all; otherwise the all-max vector is the only
    // sensible candidate and we keep vectors at the maximal simplex.
    let max_sum: f64 = caps.iter().zip(&costs).map(|(&k, &c)| k as f64 * c).sum();
    let min_cover = spec.budget.min(max_sum);

    let mut best: Option<(Vec<f64>, f64, MasterSolution)> = None;
    let mut explored = 0usize;

    let mut k = vec![0u64; n];
    loop {
        let thresholds: Vec<f64> = k
            .iter()
            .zip(&costs)
            .map(|(&ki, &c)| ki as f64 * c)
            .collect();
        let total: f64 = thresholds.iter().sum();
        if total + 1e-9 >= min_cover {
            let m = PayoffMatrix::build_with_engine(spec, engine, orders.to_vec(), &thresholds);
            let sol = MasterSolver::solve(spec, &m)?;
            explored += 1;
            let better = best
                .as_ref()
                .map(|(_, v, _)| sol.value < *v - 1e-12)
                .unwrap_or(true);
            if better {
                best = Some((thresholds, sol.value, sol));
            }
        }
        // Odometer increment over the lattice.
        let mut i = 0usize;
        loop {
            if i == n {
                let (thresholds, value, master) =
                    best.expect("lattice contains the all-max vector");
                let m = PayoffMatrix::build_with_engine(spec, engine, orders.to_vec(), &thresholds);
                return Ok(BruteForceResult {
                    thresholds,
                    value,
                    master,
                    orders: m.orders,
                    explored,
                    space_size,
                });
            }
            if k[i] < caps[i] {
                k[i] += 1;
                break;
            }
            k[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detection::DetectionModel;
    use crate::ishm::{ExactEvaluator, Ishm, IshmConfig};
    use crate::model::{AttackAction, Attacker, GameSpecBuilder};
    use std::sync::Arc;
    use stochastics::Constant;

    fn spec(budget: f64) -> GameSpec {
        let mut b = GameSpecBuilder::new();
        let t0 = b.alert_type("t0", 1.0, Arc::new(Constant(2)));
        let t1 = b.alert_type("t1", 1.0, Arc::new(Constant(2)));
        b.attacker(Attacker::new(
            "e0",
            1.0,
            vec![
                AttackAction::deterministic("v0", t0, 8.0, 0.5, 4.0),
                AttackAction::deterministic("v1", t1, 6.0, 0.5, 4.0),
            ],
        ));
        b.attacker(Attacker::new(
            "e1",
            1.0,
            vec![AttackAction::deterministic("v1", t1, 7.0, 0.5, 4.0)],
        ));
        b.budget(budget);
        b.build().unwrap()
    }

    #[test]
    fn space_size_is_lattice_product() {
        let s = spec(2.0);
        assert_eq!(threshold_space_size(&s), 9); // (2+1)·(2+1)
    }

    #[test]
    fn brute_force_finds_global_optimum() {
        let s = spec(2.0);
        let bank = s.sample_bank(4, 0);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let orders = AuditOrder::enumerate_all(2);
        let bf = solve_brute_force(&s, &est, &orders).unwrap();

        // Every lattice point the filter admits must be ≥ the optimum.
        for k0 in 0..=2u64 {
            for k1 in 0..=2u64 {
                let t = vec![k0 as f64, k1 as f64];
                if t.iter().sum::<f64>() < 2.0 {
                    continue;
                }
                let m = PayoffMatrix::build(&s, &est, orders.clone(), &t);
                let v = MasterSolver::solve(&s, &m).unwrap().value;
                assert!(
                    v >= bf.value - 1e-9,
                    "thresholds {t:?} give {v} < brute-force optimum {}",
                    bf.value
                );
            }
        }
        assert!(bf.explored > 0);
        assert!(bf.explored as u128 <= bf.space_size);
    }

    #[test]
    fn ishm_never_beats_brute_force() {
        let s = spec(2.0);
        let bank = s.sample_bank(4, 0);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let orders = AuditOrder::enumerate_all(2);
        let bf = solve_brute_force(&s, &est, &orders).unwrap();

        let mut eval = ExactEvaluator::new(&s, est);
        let ishm = Ishm::new(IshmConfig {
            epsilon: 0.1,
            ..Default::default()
        })
        .solve(&s, &mut eval)
        .unwrap();
        assert!(
            ishm.value >= bf.value - 1e-7,
            "heuristic {} beat exhaustive optimum {}",
            ishm.value,
            bf.value
        );
    }

    #[test]
    fn engine_threads_do_not_change_the_optimum() {
        let s = spec(2.0);
        let bank = s.sample_bank(16, 0);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let orders = AuditOrder::enumerate_all(2);
        let baseline = solve_brute_force(&s, &est, &orders).unwrap();
        for threads in [2usize, 4] {
            let engine = PalEngine::uncached(est, threads);
            let bf = solve_brute_force_with(&s, &engine, &orders).unwrap();
            assert_eq!(bf.value, baseline.value);
            assert_eq!(bf.thresholds, baseline.thresholds);
            assert_eq!(bf.explored, baseline.explored);
        }
    }

    #[test]
    fn budget_above_lattice_still_solves() {
        let s = spec(100.0);
        let bank = s.sample_bank(4, 0);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let orders = AuditOrder::enumerate_all(2);
        let bf = solve_brute_force(&s, &est, &orders).unwrap();
        // With unlimited budget the all-max thresholds audit everything:
        // all attacks detected → each attacker's best is −M−K = −4.5;
        // two attackers → −9.
        assert!((bf.value + 9.0).abs() < 1e-6, "value {}", bf.value);
    }
}
