//! The deterministic epoch loop: execute, observe, gate, re-solve.
//!
//! [`AuditService`] turns a registry scenario into a long-running
//! operational auditor. Per **period** it executes the committed
//! [`AuditPolicy`] on the next alert vector of the scenario's stream; per
//! **epoch** (a fixed number of periods) it evaluates the drift gate and,
//! only when the committed count model no longer explains the recent
//! window, refits the per-type distributions and re-solves the game —
//! **warm-started** from the incumbent solution so the service interrupts
//! itself as briefly as possible. Telemetry is recorded every epoch.
//!
//! The loop is **restartable**: all mutable state lives in a
//! [`ServiceState`] that advances one epoch at a time, so a run can be
//! cut at any epoch boundary ([`AuditService::run_until`]), persisted
//! ([`AuditService::checkpoint`]), reloaded in a fresh process
//! ([`AuditService::restore`]) and resumed ([`AuditService::resume`])
//! with a [`RuntimeReport`] fingerprint **bit-identical** to an
//! uninterrupted run. Two design choices make that exactness cheap:
//!
//! * execution randomness is drawn from a **per-period** derived stream
//!   (`stream_rng(seed, EXEC_STREAM_BASE ^ period_index)`) rather than
//!   one run-long generator, so no RNG state ever needs persisting — the
//!   restored process re-derives the stream of every remaining period;
//! * everything else the loop carries (spec, policy, drift tracker,
//!   telemetry) is either persisted bit-exactly or recomputed from
//!   persisted inputs through the same deterministic constructors (the
//!   alert stream, the solver sample bank, the predicted `Pal` vector).
//!
//! Determinism: given the same [`RuntimeConfig`], the run is bit-identical
//! across reruns and solver thread counts (the engine guarantees
//! thread-invariant solves). Wall-clock latencies are measured but
//! excluded from the telemetry fingerprint.

use crate::online::{DriftConfig, OnlineFit};
use crate::supervisor::{FaultInjector, FaultSite};
use crate::telemetry::{EpochTelemetry, RuntimeReport};
use audit_game::attacker::AttackerModel;
use audit_game::detection::{CacheStats, DetectionEstimator, PalEngine, SharedPalCache};
use audit_game::error::GameError;
use audit_game::execute::{execute_policy, AuditPolicy, RealizedAlert};
use audit_game::model::GameSpec;
use audit_game::payoff::action_utility;
use audit_game::persist::PersistError;
use audit_game::scenario::Scenario;
use audit_game::solver::{DegradeReason, InnerKind, OapSolver, SolverConfig, WarmStart};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;
use stochastics::rng::stream_rng;
use stochastics::snapshot::SnapshotError;

/// High bits of the execution-randomness stream ids: period `i` executes
/// with `stream_rng(seed, EXEC_STREAM_BASE ^ i)`. Disjoint by construction
/// from the scenario build/stream and solver bank streams, and derived
/// (not carried), so checkpoint/restore never persists RNG state.
pub const EXEC_STREAM_BASE: u64 = 0x0E0C_0000_0000_0000;

/// High bits of the strategic-attack randomness streams: period `i` of a
/// non-rational scenario draws its attack traffic from
/// `stream_rng(seed, ATTACK_STREAM_BASE ^ i)`. Disjoint from
/// [`EXEC_STREAM_BASE`] and every scenario/solver stream; rational
/// scenarios never touch it, keeping their runs bit-identical to the
/// pre-seam behaviour.
pub const ATTACK_STREAM_BASE: u64 = 0x0A77_0000_0000_0000;

/// Configuration of one service run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Epochs to simulate.
    pub epochs: usize,
    /// Periods per epoch (the drift gate runs at epoch boundaries).
    pub periods_per_epoch: usize,
    /// Master seed: drives the scenario build, the alert stream, the
    /// execution randomness, and the solver sample banks.
    pub seed: u64,
    /// Solver configuration for the initial solve and every re-solve.
    pub solver: SolverConfig,
    /// Drift gate configuration.
    pub drift: DriftConfig,
    /// Warm-start re-solves from the incumbent solution (`false` forces
    /// cold re-solves; results may differ within the heuristic's
    /// tolerance, only the search path is guaranteed cheaper warm).
    pub warm_start: bool,
    /// Additionally run a shadow **cold** solve at every re-solve and
    /// record its objective/latency next to the committed warm one — the
    /// built-in cold-vs-warm comparison behind `BENCH_runtime.json`.
    pub compare_cold: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            epochs: 24,
            periods_per_epoch: 5,
            seed: 0,
            solver: SolverConfig {
                // Column generation by default: the online path exercises
                // both warm-start seams (ISHM start + CGGS seed columns).
                inner: InnerKind::Cggs,
                n_samples: 200,
                epsilon: 0.25,
                ..Default::default()
            },
            drift: DriftConfig::default(),
            warm_start: true,
            compare_cold: false,
        }
    }
}

/// Warm-start state for re-solving `new` after a drift away from `old`.
///
/// The incumbent's support orders seed the CGGS column pool, and the ISHM
/// search starts from a vector **bracketing the incumbent from above**:
/// per type, the larger of
///
/// * the incumbent threshold rescaled by the growth of that type's
///   full-coverage bound (ISHM only ever shrinks, so an upward drift must
///   raise the starting point for the new optimum to stay reachable), and
/// * the **budget-saturation point** `B` — a per-type threshold at or
///   above the whole period budget can never bind (audits of one type
///   cannot outspend the total budget), so starting there is
///   value-equivalent to the cold full-coverage start while keeping the
///   ε-shrink lattice dense over the range where thresholds actually
///   matter. This is what makes the warm re-solve safe: its starting
///   objective equals the cold start's, and the search can only improve
///   from there.
///
/// rounded up to the audit-cost lattice and clamped to the new coverage
/// bounds.
pub fn warm_start_rescaled(policy: &AuditPolicy, old: &GameSpec, new: &GameSpec) -> WarmStart {
    let old_ub = old.threshold_upper_bounds();
    let new_ub = new.threshold_upper_bounds();
    let costs = new.audit_costs();
    let thresholds = policy
        .thresholds
        .iter()
        .enumerate()
        .map(|(t, &b)| {
            let scale = if old_ub[t] > 0.0 {
                (new_ub[t] / old_ub[t]).max(1.0)
            } else {
                1.0
            };
            let bracket = (b * scale).max(new.budget);
            let lattice = (bracket / costs[t]).ceil() * costs[t];
            lattice.min(new_ub[t])
        })
        .collect();
    WarmStart {
        thresholds: Some(thresholds),
        orders: policy.orders.clone(),
    }
}

/// The complete mutable state of the epoch loop between two epoch
/// boundaries — everything [`AuditService::run`] carries from one epoch
/// to the next, and exactly what a checkpoint persists (plus the spec's
/// sample bank; the alert stream and predicted-`Pal` vector are
/// recomputed from it deterministically on restore).
///
/// Invariants (verified on restore): `records.len() == epoch`, the drift
/// tracker has observed `epoch · periods_per_epoch` periods, and
/// `next_alert_id` equals the total alert count over all records.
#[derive(Debug, Clone)]
pub struct ServiceState {
    /// Next epoch to run; epochs `0..epoch` are recorded in `records`.
    pub epoch: usize,
    /// The committed game — the scenario's build at the config seed, or
    /// the latest refit spec after a re-solve epoch.
    pub spec: GameSpec,
    /// The incumbent committed policy.
    pub policy: AuditPolicy,
    /// Predicted loss of the incumbent policy.
    pub loss: f64,
    /// Detection-engine counters over the initial solve and every
    /// committed re-solve so far.
    pub engine_cache: CacheStats,
    /// The streaming drift tracker.
    pub fit: OnlineFit,
    /// Id the next realized alert will take (global, monotone).
    pub next_alert_id: u64,
    /// Incumbent age in epochs, as seen by the drift gate.
    pub epochs_since_resolve: usize,
    /// Objective of the initial (cold) solve.
    pub initial_objective: f64,
    /// Wall-clock milliseconds of the initial solve.
    pub initial_solve_millis: f64,
    /// The incumbent policy's predicted mixture `Pal` per type, evaluated
    /// on the solver's sample bank for the committed spec. Derived state:
    /// recomputed (bit-identically) from `spec` + `policy` on restore.
    pub predicted: Vec<f64>,
    /// The strategic attacker's belief over per-type detection
    /// probabilities: an EWMA of the *published* predicted `Pal` vectors,
    /// updated at every epoch boundary with the scenario's learning rate.
    /// Starts at zero (the attacker has seen no policy yet). Persisted in
    /// checkpoints — unlike `predicted` it depends on the whole policy
    /// history, not just the incumbent.
    pub attacker_belief: Vec<f64>,
    /// Telemetry of the epochs already run.
    pub records: Vec<EpochTelemetry>,
}

/// The long-running epoch-based auditing service over one scenario.
pub struct AuditService {
    scenario: Arc<dyn Scenario>,
    config: RuntimeConfig,
    shared: Option<SharedPalCache>,
    injector: Option<FaultInjector>,
}

impl AuditService {
    /// Build a service over `scenario`.
    pub fn new(scenario: Arc<dyn Scenario>, config: RuntimeConfig) -> Self {
        assert!(config.epochs > 0, "need at least one epoch");
        assert!(config.periods_per_epoch > 0, "need at least one period");
        Self {
            scenario,
            config,
            shared: None,
            injector: None,
        }
    }

    /// Attach a deterministic fault injector (see [`crate::supervisor`]).
    /// The service consults it at every named [`FaultSite`]; with no
    /// injector — or an empty plan — every consultation is free of side
    /// effects and the run is bit-identical to an uninstrumented one.
    pub fn with_injector(mut self, injector: FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Injector-fires check for one `(round, site)`, a no-op without one.
    fn fault(&self, round: usize, site: FaultSite) -> bool {
        self.injector
            .as_ref()
            .is_some_and(|inj| inj.fires(round, site))
    }

    /// Attach a shared prefix-state exchange: every solve and
    /// predicted-`Pal` pass of this service adopts and publishes
    /// snapshots through it, so services whose sample banks coincide
    /// amortize each other's column passes. Bit-identical to running
    /// isolated — adopted states are exact values, and cache counters are
    /// excluded from the telemetry fingerprint (see
    /// [`audit_game::detection::SharedPalCache`]).
    pub fn with_shared_cache(mut self, shared: SharedPalCache) -> Self {
        self.shared = Some(shared);
        self
    }

    /// The configuration the service runs under.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The scenario the service runs on.
    pub fn scenario(&self) -> &Arc<dyn Scenario> {
        &self.scenario
    }

    /// Run the full epoch loop and return the telemetry report.
    pub fn run(&self) -> Result<RuntimeReport, GameError> {
        let state = self.run_until(self.config.epochs)?;
        Ok(self.report(state))
    }

    /// Run the loop from a cold start up to (but not including)
    /// `stop_epoch`, returning the live state — the checkpointable half
    /// of [`AuditService::run`]. `stop_epoch >= epochs` runs to the end.
    pub fn run_until(&self, stop_epoch: usize) -> Result<ServiceState, GameError> {
        let mut state = self.start()?;
        self.advance(&mut state, stop_epoch)?;
        Ok(state)
    }

    /// Resume a state (from [`AuditService::run_until`] or
    /// [`AuditService::restore`]) through the remaining epochs and return
    /// the full report. The result is bit-identical — fingerprint and
    /// all — to an uninterrupted [`AuditService::run`], wall-clock
    /// latency fields aside.
    pub fn resume(&self, mut state: ServiceState) -> Result<RuntimeReport, GameError> {
        self.advance(&mut state, self.config.epochs)?;
        Ok(self.report(state))
    }

    /// Assemble the telemetry report of a (fully or partially) run state.
    pub fn report(&self, state: ServiceState) -> RuntimeReport {
        RuntimeReport {
            scenario: self.scenario.key().to_string(),
            seed: self.config.seed,
            periods_per_epoch: self.config.periods_per_epoch,
            initial_objective: state.initial_objective,
            initial_solve_millis: state.initial_solve_millis,
            engine_cache: state.engine_cache,
            epochs: state.records,
        }
    }

    /// Persist the state (spec + solver sample bank, incumbent policy and
    /// warm-start, drift tracker, epoch cursor, telemetry chain) to
    /// `dir`, from which [`AuditService::restore`] can resume in a fresh
    /// process. See [`crate::checkpoint`] for the on-disk layout.
    pub fn checkpoint(&self, state: &ServiceState, dir: &Path) -> Result<(), GameError> {
        crate::checkpoint::save_checkpoint(dir, self.scenario.key(), &self.config, state)
            .map_err(GameError::from)?;
        // Injected torn write: the save itself succeeded (and rotated the
        // previous pair into `last_good/`), then the primary state file
        // rots on disk. Keyed by the state epoch, since checkpoints are
        // taken outside the round loop.
        if self.fault(state.epoch, FaultSite::CheckpointWrite) {
            crate::supervisor::corrupt_file(
                &dir.join(crate::checkpoint::STATE_FILE),
                state.epoch as u64,
            )
            .map_err(|e| {
                GameError::Persist(PersistError::Snapshot(SnapshotError::Io(format!(
                    "injected checkpoint-write fault: {e}"
                ))))
            })?;
        }
        Ok(())
    }

    /// Reload a checkpoint written by [`AuditService::checkpoint`],
    /// rebuilding the service (the configuration is carried by the
    /// checkpoint) and the mid-run state. `scenario` must be the same
    /// registry scenario the checkpoint was taken from — the persisted
    /// alert stream is *not* stored and is re-derived from it.
    pub fn restore(
        scenario: Arc<dyn Scenario>,
        dir: &Path,
    ) -> Result<(AuditService, ServiceState), GameError> {
        let loaded = crate::checkpoint::load_checkpoint(dir)?;
        if loaded.scenario_key != scenario.key() {
            return Err(GameError::Persist(PersistError::Provenance(format!(
                "checkpoint was taken on scenario '{}', not '{}'",
                loaded.scenario_key,
                scenario.key()
            ))));
        }
        Ok((AuditService::new(scenario, loaded.config), loaded.state))
    }

    /// The solver every solve of this service uses, joined to the shared
    /// exchange when one is attached.
    fn solver(&self) -> OapSolver {
        self.solver_for(self.config.solver.clone())
    }

    /// As [`AuditService::solver`], under an overridden solver config —
    /// the injected budget-exhaustion fault re-solves with a one-
    /// evaluation work budget through this seam.
    fn solver_for(&self, cfg: SolverConfig) -> OapSolver {
        let solver = OapSolver::new(cfg);
        match &self.shared {
            Some(shared) => solver.with_shared_cache(shared.clone()),
            None => solver,
        }
    }

    /// Cold-start seam for schedulers that interleave many services
    /// (see `crate::fleet`): build and solve the scenario, returning the
    /// live state without running any epoch. Equivalent to the first half
    /// of [`AuditService::run_until`].
    pub fn start_state(&self) -> Result<ServiceState, GameError> {
        self.start()
    }

    /// The scenario's full alert stream for this service's horizon — the
    /// input [`AuditService::advance_with_stream`] consumes. Split out so
    /// a round-based scheduler derives it once instead of per epoch.
    pub fn full_alert_stream(&self) -> Result<Vec<Vec<u64>>, GameError> {
        self.scenario.alert_stream(
            self.config.seed,
            self.config.epochs * self.config.periods_per_epoch,
        )
    }

    /// As the internal advance loop, but over a caller-held alert stream
    /// (from [`AuditService::full_alert_stream`]): run epochs until
    /// `stop` (clamped to the configured horizon). Bit-identical to
    /// [`AuditService::run_until`]/resume — the stream is deterministic
    /// in `(seed, horizon)` either way.
    pub fn advance_with_stream(
        &self,
        state: &mut ServiceState,
        stop: usize,
        stream: &[Vec<u64>],
    ) -> Result<(), GameError> {
        let stop = stop.min(self.config.epochs);
        while state.epoch < stop {
            self.run_epoch(state, stream)?;
        }
        Ok(())
    }

    /// Cold start: build and solve the scenario, arm the drift tracker.
    fn start(&self) -> Result<ServiceState, GameError> {
        // Round 0 is the cold start in the fault plan's round keying.
        if self.fault(0, FaultSite::SolverPanic) {
            panic!(
                "injected fault: solver-panic at cold start of tenant '{}'",
                self.injector.as_ref().map_or("", |i| i.tenant())
            );
        }
        let cfg = &self.config;
        let spec = self.scenario.build(cfg.seed)?;
        spec.validate()?;
        let n = spec.n_types();
        let solver = self.solver();

        let t0 = Instant::now();
        let solution = solver.solve(&spec)?;
        let initial_solve_millis = millis_since(t0);
        let predicted = predicted_pal(&spec, &solution.policy, &cfg.solver, self.shared.as_ref());

        Ok(ServiceState {
            epoch: 0,
            spec,
            predicted,
            attacker_belief: vec![0.0; n],
            loss: solution.loss,
            engine_cache: solution.cache,
            policy: solution.policy,
            fit: OnlineFit::new(n, cfg.drift.window_periods),
            next_alert_id: 0,
            epochs_since_resolve: 0,
            initial_objective: solution.loss,
            initial_solve_millis,
            records: Vec::with_capacity(cfg.epochs),
        })
    }

    /// Run epochs until `stop` (clamped to the configured horizon).
    fn advance(&self, state: &mut ServiceState, stop: usize) -> Result<(), GameError> {
        let cfg = &self.config;
        let stop = stop.min(cfg.epochs);
        if state.epoch >= stop {
            return Ok(());
        }
        let stream = self
            .scenario
            .alert_stream(cfg.seed, cfg.epochs * cfg.periods_per_epoch)?;
        while state.epoch < stop {
            self.run_epoch(state, &stream)?;
        }
        Ok(())
    }

    /// Execute one epoch: run the committed policy period by period, gate
    /// on drift, optionally re-solve, and record telemetry.
    fn run_epoch(&self, st: &mut ServiceState, stream: &[Vec<u64>]) -> Result<(), GameError> {
        let cfg = &self.config;
        let epoch = st.epoch;
        let n = st.spec.n_types();
        let model = self.scenario.attacker_model();

        // --- injected faults (round r ≥ 1 runs epoch r − 1) ---
        // All consultations happen up front, in a fixed order, so a fault
        // plan perturbs exactly the epoch it names regardless of which
        // branch the epoch later takes. Each fires at most once per plan
        // entry (see `FaultInjector::fires`).
        let round = epoch + 1;
        if self.fault(round, FaultSite::SolverPanic) {
            panic!(
                "injected fault: solver-panic in epoch {epoch} of tenant '{}'",
                self.injector.as_ref().map_or("", |i| i.tenant())
            );
        }
        if self.fault(round, FaultSite::MalformedEpoch) {
            // A truncated period row, surfaced through the same typed
            // rejection real malformed input gets below.
            return Err(GameError::MalformedStream {
                period: epoch * cfg.periods_per_epoch,
                expected: n,
                got: n.saturating_sub(1),
            });
        }
        let empty_epoch = self.fault(round, FaultSite::EmptyEpoch);
        let budget_fault = self.fault(round, FaultSite::BudgetExhaust);
        let solve_fault = self.fault(round, FaultSite::SolveError);
        let solver = if budget_fault {
            let mut scfg = self.config.solver.clone();
            scfg.work_budget = Some(1);
            self.solver_for(scfg)
        } else {
            self.solver()
        };

        // --- execute the committed policy, one period at a time ---
        let mut seen = vec![0u64; n];
        let mut audited = vec![0u64; n];
        let mut spent = 0.0f64;
        let mut attacks_launched = 0u64;
        let mut attacks_detected = 0u64;
        let mut attacker_utility = 0.0f64;
        let mut auditor_damage = 0.0f64;
        let damage_model = model.damage_model();
        for period in 0..cfg.periods_per_epoch {
            let period_index = epoch * cfg.periods_per_epoch + period;
            // Malformed input is rejected with a typed error before any
            // state mutates — an out-of-arity row would otherwise panic
            // on the per-type index below (or silently drop types).
            let raw = stream.get(period_index).ok_or(GameError::MalformedStream {
                period: period_index,
                expected: n,
                got: 0,
            })?;
            if raw.len() != n {
                return Err(GameError::MalformedStream {
                    period: period_index,
                    expected: n,
                    got: raw.len(),
                });
            }
            // An injected empty epoch models an upstream TDMT outage: the
            // feed delivers, but every count is zero. Everything else —
            // attack traffic, execution randomness — is untouched.
            let zero_row;
            let row = if empty_epoch {
                zero_row = vec![0u64; n];
                &zero_row
            } else {
                raw
            };
            let mut alerts = Vec::with_capacity(row.iter().map(|&z| z as usize).sum());
            for (t, &z) in row.iter().enumerate() {
                seen[t] += z;
                for _ in 0..z {
                    alerts.push(RealizedAlert {
                        alert_type: t,
                        id: st.next_alert_id,
                    });
                    st.next_alert_id += 1;
                }
            }
            // --- strategic attack traffic (non-rational scenarios only) ---
            // Each active attacker responds to its belief about the
            // committed policy: the adaptive model's EWMA over published
            // policies, or the current published prediction otherwise.
            // Rational scenarios inject nothing and draw no randomness, so
            // their runs stay bit-identical to the pre-seam service.
            let mut pending: Vec<(Option<RealizedAlert>, f64, f64, f64)> = Vec::new();
            let mut observed = if model.is_rational() {
                Vec::new()
            } else {
                row.clone()
            };
            if !model.is_rational() {
                let belief = if matches!(model, AttackerModel::Adaptive(_)) {
                    &st.attacker_belief
                } else {
                    &st.predicted
                };
                let mut attack_rng = stream_rng(cfg.seed, ATTACK_STREAM_BASE ^ period_index as u64);
                for att in &st.spec.attackers {
                    if att.actions.is_empty()
                        || !attack_rng.gen_bool(att.attack_prob.clamp(0.0, 1.0))
                    {
                        continue;
                    }
                    let utilities: Vec<f64> = att
                        .actions
                        .iter()
                        .map(|a| action_utility(a, belief))
                        .collect();
                    let Some(pick) =
                        model.choose_action(&utilities, st.spec.allow_opt_out, &mut attack_rng)
                    else {
                        continue; // deterred
                    };
                    let action = &att.actions[pick];
                    attacks_launched += 1;
                    // The attack raises at most one alert: `alert_probs`
                    // are mutually exclusive type probabilities (that is
                    // what makes `Pat = Σ_t P^t · Pal_t` exact).
                    let u: f64 = attack_rng.gen();
                    let mut acc = 0.0;
                    let mut raised = None;
                    for &(t, p) in &action.alert_probs {
                        acc += p;
                        if u <= acc {
                            let alert = RealizedAlert {
                                alert_type: t,
                                id: st.next_alert_id,
                            };
                            st.next_alert_id += 1;
                            seen[t] += 1;
                            observed[t] += 1;
                            alerts.push(alert.clone());
                            raised = Some(alert);
                            break;
                        }
                    }
                    pending.push((raised, action.reward, action.attack_cost, action.penalty));
                }
            }
            // Execution randomness is a fresh derived stream per period,
            // so a restored run re-derives the exact remaining streams
            // without any generator state in the checkpoint.
            let mut exec_rng = stream_rng(cfg.seed, EXEC_STREAM_BASE ^ period_index as u64);
            let run = execute_policy(&st.policy, &st.spec, &alerts, &mut exec_rng);
            for (t, ids) in run.audited.iter().enumerate() {
                audited[t] += ids.len() as u64;
            }
            spent += run.spent;
            for (raised, reward, cost, penalty) in pending {
                let caught = raised.as_ref().is_some_and(|a| run.contains(a));
                if caught {
                    attacks_detected += 1;
                    attacker_utility += -penalty - cost;
                    auditor_damage -= damage_model.recovery_per_penalty * penalty;
                } else {
                    attacker_utility += reward - cost;
                    auditor_damage += damage_model.damage_per_reward * reward;
                }
            }
            // The drift tracker sees what an operational fit would see:
            // the full alert traffic, attacks included — which is exactly
            // how an adapting attacker population can trip the gate.
            if model.is_rational() {
                st.fit.observe(row);
            } else {
                st.fit.observe(&observed);
            }
        }
        let realized_rate: Vec<f64> = seen
            .iter()
            .zip(&audited)
            .map(|(&s, &a)| if s == 0 { 0.0 } else { a as f64 / s as f64 })
            .collect();
        let pal_gap = st
            .predicted
            .iter()
            .zip(&realized_rate)
            .map(|(&p, &r)| (p - r).abs())
            .sum::<f64>()
            / n as f64;
        // The record carries the prediction of the policy that was
        // actually executed this epoch — the vector `pal_gap` was
        // computed against — even if a re-solve below replaces it.
        let predicted_executed = st.predicted.clone();

        // The strategic attacker observed one more epoch of the published
        // policy: fold it into the EWMA belief. Rational scenarios carry
        // the belief too (it is cheap and keeps the state uniform), they
        // just never read it.
        let lr = model.belief_learning_rate();
        for (b, &p) in st.attacker_belief.iter_mut().zip(&predicted_executed) {
            *b = (1.0 - lr) * *b + lr * p;
        }

        // --- drift gate ---
        let (max_ks, ks_degenerate) = st.fit.max_ks_guarded(&st.spec.distributions);
        let drift = st.fit.window_full() && max_ks > cfg.drift.ks_threshold;
        let stale = cfg
            .drift
            .max_stale_epochs
            .is_some_and(|m| st.epochs_since_resolve >= m);
        let gate_age = st.epochs_since_resolve;
        // Injected solve faults force a re-solve attempt this epoch so
        // the degradation path they target actually runs.
        let resolve = (drift && st.epochs_since_resolve >= cfg.drift.cooldown_epochs)
            || stale
            || budget_fault
            || solve_fault;

        let mut solve_explored = None;
        let mut solve_millis = None;
        let mut cold_objective = None;
        let mut cold_explored = None;
        let mut cold_millis = None;
        let mut degrade = None;
        let mut resolved = false;
        if resolve {
            let mut new_spec = st.spec.clone();
            // Drift reacts to the recent window; a pure staleness
            // refresh (gate quiet) recalibrates to the lifetime
            // streaming moments instead.
            new_spec.distributions = if drift {
                st.fit.refit(cfg.drift.fit_coverage)
            } else {
                st.fit.refit_lifetime(cfg.drift.fit_coverage)
            };
            // The service's committed model is the refit marginals; a
            // stale correlated sampler would contradict them.
            new_spec.joint_counts = None;

            if cfg.compare_cold {
                let t = Instant::now();
                let shadow = solver.solve(&new_spec)?;
                cold_millis = Some(millis_since(t));
                cold_objective = Some(shadow.loss);
                cold_explored = Some(shadow.stats.thresholds_explored);
            }
            let warm = warm_start_rescaled(&st.policy, &st.spec, &new_spec);
            let t = Instant::now();
            let committed = if solve_fault {
                Err(GameError::InvalidConfig(
                    "injected fault: solve-error on the committed re-solve".into(),
                ))
            } else if cfg.warm_start {
                solver.solve_warm(&new_spec, Some(&warm))
            } else {
                solver.solve(&new_spec)
            };
            match committed {
                Ok(committed) => {
                    solve_millis = Some(millis_since(t));
                    solve_explored = Some(committed.stats.thresholds_explored);
                    degrade = committed.degrade;
                    st.engine_cache.absorb(&committed.cache);
                    st.spec = new_spec;
                    st.policy = committed.policy;
                    st.loss = committed.loss;
                    st.predicted =
                        predicted_pal(&st.spec, &st.policy, &cfg.solver, self.shared.as_ref());
                    st.epochs_since_resolve = 0;
                    resolved = true;
                }
                Err(_) => {
                    // The final rung of the degradation ladder: the
                    // re-solve failed outright, so keep serving on the
                    // incumbent policy and spec. The incumbent stays
                    // feasible (it was committed under the same budget),
                    // its age keeps counting so the staleness gate will
                    // retry, and the telemetry records the rung.
                    degrade = Some(DegradeReason::KeptIncumbent);
                    st.epochs_since_resolve += 1;
                }
            }
        } else {
            st.epochs_since_resolve += 1;
        }

        st.records.push(EpochTelemetry {
            epoch,
            periods: cfg.periods_per_epoch,
            alerts_seen: seen,
            alerts_audited: audited,
            mean_spent: spent / cfg.periods_per_epoch as f64,
            realized_rate,
            predicted_pal: predicted_executed,
            pal_gap,
            max_ks,
            drift,
            resolved,
            epochs_since_resolve: gate_age,
            objective: st.loss,
            thresholds: st.policy.thresholds.clone(),
            attacks_launched,
            attacks_detected,
            attacker_utility,
            auditor_damage,
            solve_explored,
            solve_millis,
            cold_objective,
            cold_explored,
            cold_millis,
            degrade,
            ks_degenerate,
        });
        st.epoch += 1;
        Ok(())
    }
}

/// The committed policy's predicted mixture `Pal` under the spec it was
/// solved against (evaluated on the same sample bank the solver used).
/// With a shared exchange attached, the pass adopts the solver's
/// published prefix states first and publishes its own back — the result
/// is bitwise unchanged (adopted states are exact values); only column
/// passes are saved.
pub(crate) fn predicted_pal(
    spec: &GameSpec,
    policy: &AuditPolicy,
    cfg: &SolverConfig,
    shared: Option<&SharedPalCache>,
) -> Vec<f64> {
    let bank = spec.sample_bank(cfg.n_samples, cfg.seed);
    let est = DetectionEstimator::new(spec, &bank, cfg.detection);
    let engine = PalEngine::new(est, cfg.threads);
    let key = shared.map(|s| {
        let key = OapSolver::new(cfg.clone()).share_key(spec);
        if let Some(seed) = s.get(key) {
            engine.adopt_states(&seed);
        }
        key
    });
    let predicted = policy.expected_pal(&engine);
    if let (Some(shared), Some(key)) = (shared, key) {
        shared.publish(key, engine.export_states());
    }
    predicted
}

fn millis_since(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}
