//! Experiment E13 — the chaos harness: a multi-tenant fleet run under a
//! deterministic fault plan, diffed against the fault-free run of the
//! same fleet to prove fault isolation.
//!
//! ```text
//! cargo run -p audit-bench --release --bin exp_chaos [tenants] [epochs] [workers] \
//!     [--scenario <key>] [--seed <n>] [--rate <p>] [--plan <spec>] \
//!     [--budget <n>] [--json]
//! ```
//!
//! Two runs of the **same** tenant set execute back to back: a baseline
//! with an empty [`FaultPlan`] and a chaos run under the plan. The plan
//! is either seeded (`--rate`, default 0.2 faults per tenant x round
//! cell, sites drawn from [`FaultSite::SEEDED`]) or explicit
//! (`--plan "tenant:round:site,..."`). The harness then:
//!
//! * prints every planned fault and every tenant's supervisor verdict
//!   (`health: ...` lines) plus every degraded epoch (`degrade: ...`
//!   lines) — the grep surface the CI chaos step pins;
//! * computes the **healthy-subset fingerprint**: the chaos run's
//!   healthy tenants hashed at their original indices, which must be
//!   bit-identical to the same subset of the baseline (`fault
//!   isolation: identical`). Divergence exits non-zero;
//! * reports recovery latency (mean quarantine backoff in scheduler
//!   rounds) and the degraded-solve overhead (throughput and degraded
//!   epoch counts against the baseline).
//!
//! `--budget <n>` caps every tenant's solver work budget in **both**
//! runs (so the isolation diff stays clean) and drives the graceful-
//! degradation ladder: degraded epochs then appear in the baseline too.
//! Everything is a deterministic function of `(tenants, epochs,
//! --scenario, --seed, --rate/--plan, --budget)`; worker count changes
//! wall-clock only.

use alert_audit::telemetry::fleet_report_to_json;
use audit_bench::cli::{
    default_threads, parse_count, take_flag, take_scenario_flag, take_value_flag,
};
use audit_runtime::{
    FaultPlan, FaultSite, FleetConfig, FleetReport, FleetService, RuntimeConfig, TenantHealth,
    TenantSpec,
};
use stochastics::rng::derive_seed;

/// Parse an explicit `--plan` spec: comma- or semicolon-separated
/// `tenant:round:site` triples, `site` by its stable key.
fn parse_plan(spec: &str) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for part in spec.split([',', ';']).filter(|p| !p.trim().is_empty()) {
        let fields: Vec<&str> = part.trim().split(':').collect();
        assert!(
            fields.len() == 3,
            "--plan entries are tenant:round:site, got '{part}'"
        );
        let round: usize = fields[1]
            .parse()
            .unwrap_or_else(|_| panic!("--plan round must be a usize, got '{}'", fields[1]));
        let site = FaultSite::ALL
            .iter()
            .find(|s| s.key() == fields[2])
            .copied()
            .unwrap_or_else(|| {
                let known: Vec<&str> = FaultSite::ALL.iter().map(|s| s.key()).collect();
                panic!(
                    "unknown fault site '{}'; known sites: {}",
                    fields[2],
                    known.join(", ")
                )
            });
        plan = plan.inject(fields[0], round, site);
    }
    plan
}

fn build_fleet(tenants: &[TenantSpec], workers: usize, plan: FaultPlan) -> FleetReport {
    // TenantSpec holds an Arc'd scenario, so re-building the spec list per
    // run is cheap; each run gets fresh services (and fresh injectors).
    let specs: Vec<TenantSpec> = tenants
        .iter()
        .map(|t| TenantSpec {
            name: t.name.clone(),
            scenario: t.scenario.clone(),
            config: t.config.clone(),
        })
        .collect();
    FleetService::new(
        specs,
        FleetConfig {
            workers,
            fault_plan: plan,
            ..FleetConfig::default()
        },
    )
    .run()
    .expect("fleet runs")
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let scenario_key = take_scenario_flag(&mut args).unwrap_or_else(|| "syn-a".into());
    let master_seed: u64 = take_value_flag(&mut args, "--seed")
        .map(|s| s.parse().expect("--seed is a u64"))
        .unwrap_or(0);
    let rate: f64 = take_value_flag(&mut args, "--rate")
        .map(|s| s.parse().expect("--rate is a probability"))
        .unwrap_or(0.2);
    let plan_spec = take_value_flag(&mut args, "--plan");
    let budget: Option<usize> =
        take_value_flag(&mut args, "--budget").map(|s| s.parse().expect("--budget is a usize"));
    let json = take_flag(&mut args, "--json");
    let n_tenants = parse_count(args.first().cloned(), 8);
    let epochs = parse_count(args.get(1).cloned(), 6);
    let workers = parse_count(args.get(2).cloned(), default_threads());

    let reg = alert_audit::scenario::registry();
    let scenario = reg
        .resolve(&scenario_key)
        .unwrap_or_else(|e| panic!("{e}"))
        .clone();
    let defaults = RuntimeConfig::default();
    let tenants: Vec<TenantSpec> = (0..n_tenants)
        .map(|i| {
            let mut config = RuntimeConfig {
                epochs,
                seed: derive_seed(master_seed, i as u64),
                ..defaults.clone()
            };
            config.solver.work_budget = budget;
            TenantSpec {
                name: format!("{scenario_key}#{i}"),
                scenario: scenario.clone(),
                config,
            }
        })
        .collect();
    let names: Vec<String> = tenants.iter().map(|t| t.name.clone()).collect();

    let plan = match plan_spec {
        Some(spec) => parse_plan(&spec),
        None => FaultPlan::seeded(master_seed, &names, epochs, rate),
    };

    eprintln!(
        "chaos: {n_tenants} tenant(s) x {epochs} epoch(s), {workers} worker(s), \
         scenario {scenario_key}, plan {} fault(s), budget {}",
        plan.len(),
        budget
            .map(|b| b.to_string())
            .unwrap_or_else(|| "none".into()),
    );

    let baseline = build_fleet(&tenants, workers, FaultPlan::new());
    let chaos = build_fleet(&tenants, workers, plan.clone());

    // In --json mode stdout is one parseable document; the grep surface
    // moves to stderr there.
    let line = |l: String| {
        if json {
            eprintln!("{l}");
        } else {
            println!("{l}");
        }
    };

    line(format!(
        "fault plan: {} fault(s) fingerprint: {:016x}",
        plan.len(),
        plan.fingerprint()
    ));
    for (tenant, round, site) in plan.iter() {
        line(format!("fault: tenant={tenant} round={round} site={site}"));
    }

    let mut backoffs: Vec<f64> = Vec::new();
    for t in &chaos.tenants {
        for f in t.health.failures() {
            if let Some(resume) = f.resume_round {
                backoffs.push((resume - f.round) as f64);
            }
        }
        match &t.health {
            TenantHealth::Healthy => {}
            TenantHealth::Recovered { failures } => line(format!(
                "health: {} recovered retries={}",
                t.tenant,
                failures.len()
            )),
            TenantHealth::Failed { round, cause, .. } => line(format!(
                "health: {} failed round={round} cause={cause}",
                t.tenant
            )),
        }
    }
    let (healthy, recovered, failed) = chaos.health_counts();
    line(format!(
        "health counts: healthy={healthy} recovered={recovered} failed={failed}"
    ));

    let degraded_of = |r: &FleetReport| -> usize {
        r.tenants
            .iter()
            .flat_map(|t| &t.report.epochs)
            .filter(|e| e.degrade.is_some())
            .count()
    };
    for t in &chaos.tenants {
        for e in &t.report.epochs {
            if let Some(d) = e.degrade {
                line(format!(
                    "degrade: tenant={} epoch={} reason={}",
                    t.tenant,
                    e.epoch,
                    d.key()
                ));
            }
        }
    }
    line(format!(
        "degraded epochs: {} (baseline {})",
        degraded_of(&chaos),
        degraded_of(&baseline)
    ));
    if backoffs.is_empty() {
        line("recovery latency: no retries".into());
    } else {
        line(format!(
            "recovery latency: mean={:.1} round(s) over {} retry(ies)",
            backoffs.iter().sum::<f64>() / backoffs.len() as f64,
            backoffs.len()
        ));
    }

    line(format!(
        "healthy subset: {}/{} fingerprint: {:016x}",
        chaos.healthy_names().len(),
        chaos.tenants.len(),
        chaos.healthy_fingerprint()
    ));

    // Fault isolation: tenants the plan never touched must be
    // bit-identical to the same tenants of the fault-free baseline.
    // (Supervisor-healthy is the wrong subset here: a tenant can absorb
    // an empty-epoch or budget-exhaust fault without ever failing, and
    // its report then legitimately differs from the baseline.)
    let planned = plan.planned_tenants();
    let untouched: Vec<String> = names
        .iter()
        .filter(|n| !planned.contains(n))
        .cloned()
        .collect();
    let chaos_subset = chaos.subset_fingerprint(&untouched);
    let baseline_subset = baseline.subset_fingerprint(&untouched);
    line(format!(
        "untouched subset: {}/{} fingerprint: {chaos_subset:016x}",
        untouched.len(),
        chaos.tenants.len()
    ));
    line(format!(
        "baseline untouched fingerprint: {baseline_subset:016x}"
    ));
    let isolated = chaos_subset == baseline_subset;
    line(format!(
        "fault isolation: {}",
        if isolated { "identical" } else { "DIVERGED" }
    ));

    line(format!("fleet fingerprint: {:016x}", chaos.fingerprint()));
    line(format!(
        "baseline fingerprint: {:016x}",
        baseline.fingerprint()
    ));
    line(format!(
        "periods/sec: chaos {:.1} baseline {:.1}",
        chaos.periods_per_sec, baseline.periods_per_sec
    ));

    if json {
        let doc = alert_audit::json::Value::obj([
            (
                "plan",
                alert_audit::json::Value::obj([
                    ("faults", alert_audit::json::Value::Num(plan.len() as f64)),
                    (
                        "fingerprint",
                        alert_audit::json::Value::Str(format!("{:016x}", plan.fingerprint())),
                    ),
                ]),
            ),
            ("fault_isolation", alert_audit::json::Value::Bool(isolated)),
            (
                "baseline_fingerprint",
                alert_audit::json::Value::Str(format!("{:016x}", baseline.fingerprint())),
            ),
            ("chaos", fleet_report_to_json(&chaos)),
        ]);
        println!("{}", doc.render());
    }
    eprintln!(
        "elapsed: {:.1} ms",
        chaos.wall_millis + baseline.wall_millis
    );

    if !isolated {
        eprintln!("FAULT ISOLATION VIOLATED: healthy tenants diverged from the fault-free run");
        std::process::exit(1);
    }
}
