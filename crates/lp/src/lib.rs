//! A self-contained dense linear-programming solver.
//!
//! The alert-prioritization game of Yan et al. (ICDE 2018) is solved through
//! a sequence of linear programs whose *dual values* drive column generation
//! (Algorithm 1, CGGS). Off-the-shelf Rust LP crates either lack dual
//! extraction or are unsuitable for the Stackelberg master/subproblem loop,
//! so this crate implements the classic **two-phase primal simplex** on a
//! dense tableau from scratch:
//!
//! * arbitrary variable bounds (finite/infinite lower and upper),
//! * `≤`, `=`, `≥` constraints, minimization or maximization,
//! * Dantzig pricing with an automatic switch to Bland's rule to break
//!   cycling on degenerate problems,
//! * primal solution, optimal basis, **and dual values / shadow prices**
//!   read off the final tableau — the ingredient CGGS needs for reduced
//!   costs,
//! * careful infeasibility / unboundedness reporting.
//!
//! The implementation favours clarity and numerical robustness over raw
//! speed: the tableau is dense (`O(m·n)` per pivot), which is the right
//! trade-off for the game master problems in this workspace (at most a few
//! hundred rows once the game is expressed in its attacker-mixture
//! orientation; see `audit-game`'s LP formulation module).
//!
//! # Example
//!
//! ```
//! use lp_solver::{Problem, Relation, Sense};
//!
//! // max 3x + 5y  s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18, x,y ≥ 0
//! let mut p = Problem::new(Sense::Maximize);
//! let x = p.add_var("x", 3.0, 0.0, f64::INFINITY);
//! let y = p.add_var("y", 5.0, 0.0, f64::INFINITY);
//! p.add_constraint("c1", vec![(x, 1.0)], Relation::Le, 4.0);
//! p.add_constraint("c2", vec![(y, 2.0)], Relation::Le, 12.0);
//! p.add_constraint("c3", vec![(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
//! let sol = p.solve().unwrap();
//! assert!((sol.objective - 36.0).abs() < 1e-9);
//! assert!((sol.value(x) - 2.0).abs() < 1e-9);
//! assert!((sol.value(y) - 6.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod error;
pub mod linalg;
pub mod mps;
mod problem;
mod simplex;
mod solution;

pub use error::LpError;
pub use problem::{ConstrId, Problem, Relation, Sense, VarId};
pub use simplex::SimplexOptions;
pub use solution::Solution;
