//! Property tests of the scenario substrate: bit-identical builds across
//! reruns and thread counts, deterministic alert streams, and budget
//! monotonicity of the solved objective on registry scenarios.

use alert_audit::conformance::canonical_thresholds;
use alert_audit::game::cggs::Cggs;
use alert_audit::game::detection::{DetectionEstimator, DetectionModel};
use alert_audit::scenario::registry;
use proptest::prelude::*;

/// Same seed ⇒ bit-identical `GameSpec` on every rebuild, including
/// rebuilds racing on four threads. The fingerprint covers every float of
/// the spec bit-exactly plus a probe of the joint count model, so this
/// pins the whole construction pipeline (world simulation, workload,
/// fitting, attack grids) to be deterministic and thread-independent.
#[test]
fn scenario_builds_are_bit_identical_across_reruns_and_threads() {
    let reg = registry();
    for sc in reg.iter() {
        let seed = sc.default_seed().wrapping_add(1);
        let reference = sc.build_small(seed).unwrap().fingerprint();
        let again = sc.build_small(seed).unwrap().fingerprint();
        assert_eq!(reference, again, "{}: rerun drifted", sc.key());

        let concurrent: Vec<u64> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| scope.spawn(|| sc.build_small(seed).unwrap().fingerprint()))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("builder thread"))
                .collect()
        });
        for (i, fp) in concurrent.iter().enumerate() {
            assert_eq!(
                *fp,
                reference,
                "{}: thread {i} built a different game",
                sc.key()
            );
        }
    }
}

/// The full-scale build must be exactly as reproducible as the small one
/// (the conformance suite only exercises the small variant).
#[test]
fn full_scale_builds_are_reproducible() {
    let reg = registry();
    for sc in reg.iter() {
        let seed = sc.default_seed();
        assert_eq!(
            sc.build(seed).unwrap().fingerprint(),
            sc.build(seed).unwrap().fingerprint(),
            "{}: full build drifted",
            sc.key()
        );
    }
}

/// Alert streams are deterministic, shaped `n_periods × n_types`, and
/// distinct across seeds (for every scenario whose stream is stochastic).
#[test]
fn alert_streams_are_deterministic_and_shaped() {
    let reg = registry();
    for sc in reg.iter() {
        let stream = sc.alert_stream(5, 8).unwrap();
        assert_eq!(stream.len(), 8, "{}", sc.key());
        let n_types = sc.build(5).unwrap().n_types();
        assert!(
            stream.iter().all(|row| row.len() == n_types),
            "{}: ragged stream",
            sc.key()
        );
        assert_eq!(stream, sc.alert_stream(5, 8).unwrap(), "{}", sc.key());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// More audit budget can only help the auditor: with the threshold
    /// vector held fixed, `Pal` is non-decreasing in `B` (proved at the
    /// engine level by `game_properties`), so the game value at the same
    /// thresholds is non-increasing. Checked across the core registry
    /// scenarios at random seeds and budget pairs.
    #[test]
    fn objective_is_monotone_in_budget_at_fixed_thresholds(
        seed in 0u64..100,
        scenario_idx in 0usize..4,
        low_budget in 1.0f64..6.0,
        extra in 0.5f64..8.0,
    ) {
        let keys = ["syn-a", "syn-heavy-tail", "syn-correlated", "syn-seasonal"];
        let reg = registry();
        let sc = reg.get(keys[scenario_idx]).unwrap();
        let mut spec = sc.build_small(seed).unwrap();

        spec.budget = low_budget;
        let thresholds = canonical_thresholds(&spec);
        let bank = spec.sample_bank(40, seed);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let poor = Cggs::default().solve(&spec, &est, &thresholds).unwrap().master.value;

        spec.budget = low_budget + extra;
        let bank = spec.sample_bank(40, seed);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let rich = Cggs::default().solve(&spec, &est, &thresholds).unwrap().master.value;

        prop_assert!(
            rich <= poor + 1e-7,
            "{}: loss rose from {poor} to {rich} when budget grew {low_budget} -> {}",
            keys[scenario_idx], low_budget + extra
        );
    }
}
