//! Statlog-compatible application schema and the Table IX alert rules.

use serde::{Deserialize, Serialize};

/// Checking-account status (Statlog attribute 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CheckingStatus {
    /// No checking account (A14).
    None,
    /// Balance below zero (A11).
    Negative,
    /// Balance in `[0, 200)` DM (A12).
    Low,
    /// Balance `≥ 200` DM or salary account (A13).
    High,
}

impl CheckingStatus {
    /// "Checking > 0" in the Table IX rule descriptions.
    pub fn is_positive(&self) -> bool {
        matches!(self, CheckingStatus::Low | CheckingStatus::High)
    }
}

/// Credit history (Statlog attribute 3, abridged).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CreditHistory {
    /// All credits paid back duly.
    Paid,
    /// Existing credits paid back duly till now.
    Existing,
    /// Delay in paying off in the past.
    Delayed,
    /// Critical account / other credits existing (A34).
    Critical,
}

/// Job skill level (Statlog attribute 17, abridged).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Skill {
    /// Unemployed / unskilled non-resident.
    UnskilledNonResident,
    /// Unskilled resident (A172).
    Unskilled,
    /// Skilled employee / official.
    Skilled,
    /// Management / self-employed / highly qualified.
    Management,
}

impl Skill {
    /// "Unskilled" in the Table IX rule descriptions.
    pub fn is_unskilled(&self) -> bool {
        matches!(self, Skill::Unskilled | Skill::UnskilledNonResident)
    }
}

/// The eight application purposes that act as the victims of the Rea B
/// audit game ("The 8 selected purposes of application are the 'victims'").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Purpose {
    /// New car.
    NewCar,
    /// Used car.
    UsedCar,
    /// Furniture / domestic appliance.
    Appliance,
    /// Radio / television.
    RadioTv,
    /// Education.
    Education,
    /// Business.
    Business,
    /// Repairs.
    Repairs,
    /// Retraining.
    Retraining,
}

impl Purpose {
    /// All eight purposes, in victim-index order.
    pub const ALL: [Purpose; 8] = [
        Purpose::NewCar,
        Purpose::UsedCar,
        Purpose::Appliance,
        Purpose::RadioTv,
        Purpose::Education,
        Purpose::Business,
        Purpose::Repairs,
        Purpose::Retraining,
    ];

    /// Victim index of this purpose.
    pub fn index(&self) -> usize {
        Purpose::ALL
            .iter()
            .position(|p| p == self)
            .expect("purpose is in ALL")
    }
}

/// One credit-card application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Application {
    /// Applicant id.
    pub id: u32,
    /// Checking-account status.
    pub checking: CheckingStatus,
    /// Credit history.
    pub history: CreditHistory,
    /// Job skill level.
    pub skill: Skill,
    /// Application purpose.
    pub purpose: Purpose,
    /// Requested amount (DM) — flavour attribute.
    pub amount: u32,
    /// Duration in months — flavour attribute.
    pub duration: u32,
    /// Applicant age — flavour attribute.
    pub age: u32,
}

impl Application {
    /// The Table IX alert type this application triggers, or `None` when
    /// the screening rules stay silent. Rules are evaluated in table order;
    /// by construction (disjoint checking-status and purpose guards) at
    /// most one rule can fire.
    pub fn alert_type(&self) -> Option<usize> {
        alert_for(self.checking, self.history, self.skill, self.purpose)
    }

    /// The alert the same applicant would trigger when filing under a
    /// different purpose — the attack calculus of the Rea B game, where an
    /// adversary picks the purpose ("victim") but keeps their profile.
    pub fn alert_type_with_purpose(&self, purpose: Purpose) -> Option<usize> {
        alert_for(self.checking, self.history, self.skill, purpose)
    }
}

/// Rule table of Table IX.
pub fn alert_for(
    checking: CheckingStatus,
    history: CreditHistory,
    skill: Skill,
    purpose: Purpose,
) -> Option<usize> {
    // 1: No checking account, any purpose.
    if checking == CheckingStatus::None {
        return Some(0);
    }
    // 2: Checking < 0, purpose ∈ {New car, Education}.
    if checking == CheckingStatus::Negative
        && matches!(purpose, Purpose::NewCar | Purpose::Education)
    {
        return Some(1);
    }
    if checking.is_positive() && skill.is_unskilled() {
        // 3: Checking > 0, unskilled, Education.
        if purpose == Purpose::Education {
            return Some(2);
        }
        // 4: Checking > 0, unskilled, Appliance.
        if purpose == Purpose::Appliance {
            return Some(3);
        }
    }
    // 5: Checking > 0, critical account, Business.
    if checking.is_positive() && history == CreditHistory::Critical && purpose == Purpose::Business
    {
        return Some(4);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app(
        checking: CheckingStatus,
        history: CreditHistory,
        skill: Skill,
        purpose: Purpose,
    ) -> Application {
        Application {
            id: 0,
            checking,
            history,
            skill,
            purpose,
            amount: 1000,
            duration: 12,
            age: 35,
        }
    }

    #[test]
    fn rule1_fires_for_any_purpose() {
        for p in Purpose::ALL {
            let a = app(CheckingStatus::None, CreditHistory::Paid, Skill::Skilled, p);
            assert_eq!(a.alert_type(), Some(0));
        }
    }

    #[test]
    fn rule2_requires_negative_checking_and_car_or_education() {
        let a = app(
            CheckingStatus::Negative,
            CreditHistory::Paid,
            Skill::Skilled,
            Purpose::NewCar,
        );
        assert_eq!(a.alert_type(), Some(1));
        let a = app(
            CheckingStatus::Negative,
            CreditHistory::Paid,
            Skill::Skilled,
            Purpose::Education,
        );
        assert_eq!(a.alert_type(), Some(1));
        let a = app(
            CheckingStatus::Negative,
            CreditHistory::Paid,
            Skill::Skilled,
            Purpose::Repairs,
        );
        assert_eq!(a.alert_type(), None);
    }

    #[test]
    fn rules_3_and_4_need_positive_checking_and_unskilled() {
        let a = app(
            CheckingStatus::Low,
            CreditHistory::Paid,
            Skill::Unskilled,
            Purpose::Education,
        );
        assert_eq!(a.alert_type(), Some(2));
        let a = app(
            CheckingStatus::High,
            CreditHistory::Paid,
            Skill::Unskilled,
            Purpose::Appliance,
        );
        assert_eq!(a.alert_type(), Some(3));
        let a = app(
            CheckingStatus::High,
            CreditHistory::Paid,
            Skill::Skilled,
            Purpose::Appliance,
        );
        assert_eq!(a.alert_type(), None);
        let a = app(
            CheckingStatus::Negative,
            CreditHistory::Paid,
            Skill::Unskilled,
            Purpose::Appliance,
        );
        assert_eq!(a.alert_type(), None);
    }

    #[test]
    fn rule5_critical_business() {
        let a = app(
            CheckingStatus::Low,
            CreditHistory::Critical,
            Skill::Skilled,
            Purpose::Business,
        );
        assert_eq!(a.alert_type(), Some(4));
        let a = app(
            CheckingStatus::Low,
            CreditHistory::Paid,
            Skill::Skilled,
            Purpose::Business,
        );
        assert_eq!(a.alert_type(), None);
    }

    #[test]
    fn purpose_switching_changes_the_alert() {
        let a = app(
            CheckingStatus::Low,
            CreditHistory::Critical,
            Skill::Unskilled,
            Purpose::Repairs,
        );
        assert_eq!(a.alert_type(), None);
        assert_eq!(a.alert_type_with_purpose(Purpose::Education), Some(2));
        assert_eq!(a.alert_type_with_purpose(Purpose::Appliance), Some(3));
        assert_eq!(a.alert_type_with_purpose(Purpose::Business), Some(4));
    }

    #[test]
    fn purpose_indices_are_stable() {
        assert_eq!(Purpose::NewCar.index(), 0);
        assert_eq!(Purpose::Retraining.index(), 7);
        for (i, p) in Purpose::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }
}
