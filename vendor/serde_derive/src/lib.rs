//! Offline shim for `serde_derive`.
//!
//! The workspace only uses serde for `#[derive(Serialize, Deserialize)]`
//! markers on data types — nothing serializes at runtime yet. These derives
//! therefore expand to nothing; they exist so the derive attribute resolves.
//! Swap `vendor/serde*` for the real crates.io releases to get actual
//! serialization (no source changes needed, the derive surface is identical).

use proc_macro::TokenStream;

/// No-op stand-in for serde's `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for serde's `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
