//! Game-level persistence on top of [`stochastics::snapshot`]: codecs for
//! [`GameSpec`], [`WarmStart`], [`AuditPolicy`], and the combined
//! scenario snapshot (spec + common-random-number bank + provenance) that
//! the [`crate::scenario::BankSource`] seam and the runtime's
//! checkpoint/restore are built on.
//!
//! Specs are persisted **by constructor parameters**, not by evaluated
//! pmfs: every count distribution and joint model stores the arguments of
//! its deterministic constructor (see [`stochastics::DistParams`]), so a
//! loaded spec is rebuilt through exactly the code paths that built the
//! original and `GameSpec::fingerprint()` matches bit for bit. The stored
//! fingerprint is verified on load — a snapshot that decodes cleanly but
//! reconstructs a different game is rejected, closing the gap between
//! "the bytes are intact" (payload checksum) and "the game is the same"
//! (fingerprint).
//!
//! Decoding never panics: every value that feeds a panicking constructor
//! (`AuditOrder::new`, `AuditPolicy::new`, simplex weights, distribution
//! parameters) is validated first and surfaces as a typed
//! [`PersistError`].

use crate::error::GameError;
use crate::execute::AuditPolicy;
use crate::model::{AttackAction, Attacker, GameSpec, GameSpecBuilder};
use crate::ordering::AuditOrder;
use crate::scenario::{RegimeMixingCounts, SeasonalCounts};
use crate::solver::WarmStart;
use std::path::Path;
use std::sync::Arc;
use stochastics::snapshot::{
    read_bank, write_bank, BankReadOptions, DistParams, JointParams, SectionReader, SectionWriter,
    Snapshot, SnapshotError,
};
use stochastics::{JointCountModel, SampleBank};

/// Payload kind of a scenario snapshot (spec + bank + provenance).
pub const KIND_SCENARIO_BANK: u32 = 1;
/// Payload kind of a runtime service checkpoint (defined here so the kind
/// namespace has one home; the codec lives in `audit-runtime`).
pub const KIND_RUNTIME_STATE: u32 = 2;

/// Section tag: snapshot provenance (scenario key + seed).
pub const TAG_PROVENANCE: u64 = 0x01;
/// Section tag: spec scalars (budget, opt-out, counts, fingerprint).
pub const TAG_SPEC_META: u64 = 0x20;
/// Section tag: alert types (name, audit cost, distribution parameters).
pub const TAG_SPEC_TYPES: u64 = 0x21;
/// Section tag: attacker/action table.
pub const TAG_SPEC_ATTACKERS: u64 = 0x22;
/// Section tag: optional joint count model parameters.
pub const TAG_SPEC_JOINT: u64 = 0x23;
/// Section tag: warm-start state (thresholds + CGGS seed orders).
pub const TAG_WARM_START: u64 = 0x30;
/// Section tag: an executable audit policy.
pub const TAG_POLICY: u64 = 0x31;

/// Typed failure of game-level persistence.
#[derive(Debug, Clone, PartialEq)]
pub enum PersistError {
    /// The underlying snapshot container failed to encode or decode.
    Snapshot(SnapshotError),
    /// The in-memory object cannot be persisted (e.g. a custom
    /// distribution or joint model without snapshot parameters).
    Unsupported(String),
    /// The reconstructed spec does not fingerprint to the stored value —
    /// the snapshot does not describe the game it claims to.
    FingerprintMismatch {
        /// Fingerprint recorded in the snapshot.
        stored: u64,
        /// Fingerprint of the reconstructed spec.
        computed: u64,
    },
    /// The snapshot's provenance (scenario key, seed, shape) does not
    /// match what the caller asked for.
    Provenance(String),
    /// The decoded spec or policy is structurally invalid.
    Spec(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Snapshot(e) => write!(f, "{e}"),
            PersistError::Unsupported(msg) => write!(f, "cannot persist: {msg}"),
            PersistError::FingerprintMismatch { stored, computed } => write!(
                f,
                "spec fingerprint mismatch: snapshot claims {stored:016x}, \
                 reconstruction yields {computed:016x}"
            ),
            PersistError::Provenance(msg) => write!(f, "snapshot provenance mismatch: {msg}"),
            PersistError::Spec(msg) => write!(f, "snapshot decodes to an invalid object: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnapshotError> for PersistError {
    fn from(e: SnapshotError) -> Self {
        PersistError::Snapshot(e)
    }
}

// ---------------------------------------------------------------------
// GameSpec codec
// ---------------------------------------------------------------------

fn dist_params_of(
    d: &dyn stochastics::CountDistribution,
    what: &str,
) -> Result<DistParams, PersistError> {
    d.snapshot_params().ok_or_else(|| {
        PersistError::Unsupported(format!("{what} does not expose snapshot parameters"))
    })
}

/// Append the full spec (meta, types, attackers, optional joint model) to
/// a container. Fails when a distribution or joint model is not
/// persistable.
pub fn encode_spec(snap: &mut Snapshot, spec: &GameSpec) -> Result<(), PersistError> {
    let mut meta = SectionWriter::new();
    meta.put_f64(spec.budget);
    meta.put_bool(spec.allow_opt_out);
    meta.put_usize(spec.n_types());
    meta.put_usize(spec.n_attackers());
    meta.put_u64(spec.fingerprint());
    snap.add_section(TAG_SPEC_META, meta);

    let mut types = SectionWriter::new();
    for (t, d) in spec.alert_types.iter().zip(&spec.distributions) {
        types.put_str(&t.name);
        types.put_f64(t.audit_cost);
        dist_params_of(
            d.as_ref(),
            &format!("distribution of alert type '{}'", t.name),
        )?
        .encode(&mut types);
    }
    snap.add_section(TAG_SPEC_TYPES, types);

    let mut attackers = SectionWriter::new();
    for att in &spec.attackers {
        attackers.put_str(&att.name);
        attackers.put_f64(att.attack_prob);
        attackers.put_usize(att.actions.len());
        for act in &att.actions {
            attackers.put_str(&act.victim);
            attackers.put_usize(act.alert_probs.len());
            for &(t, p) in &act.alert_probs {
                attackers.put_usize(t);
                attackers.put_f64(p);
            }
            attackers.put_f64(act.reward);
            attackers.put_f64(act.attack_cost);
            attackers.put_f64(act.penalty);
        }
    }
    snap.add_section(TAG_SPEC_ATTACKERS, attackers);

    if let Some(joint) = &spec.joint_counts {
        let params = joint.snapshot_params().ok_or_else(|| {
            PersistError::Unsupported(
                "joint count model does not expose snapshot parameters".into(),
            )
        })?;
        let mut w = SectionWriter::new();
        params.encode(&mut w);
        snap.add_section(TAG_SPEC_JOINT, w);
    }
    Ok(())
}

/// Rebuild a joint count model from its persisted parameters. The regime
/// path restores the **already-normalized** weights through
/// [`RegimeMixingCounts::from_normalized`] so reconstruction is
/// bit-exact.
pub fn instantiate_joint(params: &JointParams) -> Arc<dyn JointCountModel> {
    let rows = |rows: &[Vec<DistParams>]| {
        rows.iter()
            .map(|row| row.iter().map(DistParams::instantiate).collect())
            .collect()
    };
    match params {
        JointParams::Regime {
            weights,
            components,
        } => Arc::new(RegimeMixingCounts::from_normalized(
            weights.clone(),
            rows(components),
        )),
        JointParams::Seasonal { phases } => Arc::new(SeasonalCounts::new(rows(phases))),
    }
}

/// Decode, validate, and fingerprint-verify a spec from a container.
pub fn decode_spec(snap: &Snapshot) -> Result<GameSpec, PersistError> {
    let mut meta = snap.section(TAG_SPEC_META)?;
    let budget = meta.get_f64()?;
    let allow_opt_out = meta.get_bool()?;
    let n_types = meta.get_usize()?;
    let n_attackers = meta.get_usize()?;
    let stored_fingerprint = meta.get_u64()?;

    let mut b = GameSpecBuilder::new();
    let mut types = snap.section(TAG_SPEC_TYPES)?;
    for _ in 0..n_types {
        let name = types.get_str()?;
        let audit_cost = types.get_f64()?;
        let dist = DistParams::decode(&mut types)?.instantiate();
        b.alert_type(name, audit_cost, dist);
    }

    let mut attackers = snap.section(TAG_SPEC_ATTACKERS)?;
    for _ in 0..n_attackers {
        let name = attackers.get_str()?;
        let attack_prob = attackers.get_f64()?;
        let n_actions = attackers.get_usize()?;
        let mut actions = Vec::with_capacity(n_actions.min(4096));
        for _ in 0..n_actions {
            let victim = attackers.get_str()?;
            let n_probs = attackers.get_usize()?;
            let mut alert_probs = Vec::with_capacity(n_probs.min(4096));
            for _ in 0..n_probs {
                let t = attackers.get_usize()?;
                let p = attackers.get_f64()?;
                alert_probs.push((t, p));
            }
            actions.push(AttackAction {
                victim,
                alert_probs,
                reward: attackers.get_f64()?,
                attack_cost: attackers.get_f64()?,
                penalty: attackers.get_f64()?,
            });
        }
        b.attacker(Attacker::new(name, attack_prob, actions));
    }
    b.budget(budget);
    b.allow_opt_out(allow_opt_out);
    if let Some(mut joint) = snap.try_section(TAG_SPEC_JOINT) {
        b.joint_counts(instantiate_joint(&JointParams::decode(&mut joint)?));
    }
    // `build` runs the full structural validation (type references,
    // probability ranges, joint-model arity) before any solver sees the
    // spec.
    let spec = b.build().map_err(|e| PersistError::Spec(e.to_string()))?;
    let computed = spec.fingerprint();
    if computed != stored_fingerprint {
        return Err(PersistError::FingerprintMismatch {
            stored: stored_fingerprint,
            computed,
        });
    }
    Ok(spec)
}

// ---------------------------------------------------------------------
// WarmStart / AuditPolicy codecs
// ---------------------------------------------------------------------

fn encode_orders(w: &mut SectionWriter, orders: &[AuditOrder]) {
    w.put_usize(orders.len());
    for o in orders {
        w.put_u64s(&o.types().iter().map(|&t| t as u64).collect::<Vec<_>>());
    }
}

fn decode_orders(r: &mut SectionReader<'_>) -> Result<Vec<AuditOrder>, PersistError> {
    let n = r.get_usize()?;
    let mut orders = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let perm: Vec<usize> = r
            .get_u64s()?
            .into_iter()
            .map(|t| {
                usize::try_from(t).map_err(|_| PersistError::Spec("order index overflow".into()))
            })
            .collect::<Result<_, _>>()?;
        // `AuditOrder::new` validates permutation-ness and returns a typed
        // error; a corrupted-but-checksum-valid file cannot panic here.
        orders.push(AuditOrder::new(perm).map_err(|e| PersistError::Spec(e.to_string()))?);
    }
    Ok(orders)
}

/// Append warm-start state (ISHM thresholds + CGGS seed order columns).
pub fn encode_warm_start(snap: &mut Snapshot, warm: &WarmStart) {
    let mut w = SectionWriter::new();
    match &warm.thresholds {
        Some(th) => {
            w.put_bool(true);
            w.put_f64s(th);
        }
        None => w.put_bool(false),
    }
    encode_orders(&mut w, &warm.orders);
    snap.add_section(TAG_WARM_START, w);
}

/// Decode warm-start state.
pub fn decode_warm_start(snap: &Snapshot) -> Result<WarmStart, PersistError> {
    let mut r = snap.section(TAG_WARM_START)?;
    let thresholds = if r.get_bool()? {
        let th = r.get_f64s()?;
        if th.iter().any(|x| !x.is_finite()) {
            return Err(PersistError::Spec("non-finite warm threshold".into()));
        }
        Some(th)
    } else {
        None
    };
    Ok(WarmStart {
        thresholds,
        orders: decode_orders(&mut r)?,
    })
}

/// Append an executable audit policy (thresholds + mixed orders + their
/// probabilities).
pub fn encode_policy(snap: &mut Snapshot, policy: &AuditPolicy) {
    let mut w = SectionWriter::new();
    w.put_f64s(&policy.thresholds);
    encode_orders(&mut w, &policy.orders);
    w.put_f64s(&policy.probs);
    snap.add_section(TAG_POLICY, w);
}

/// Decode an audit policy, validating the simplex and order shapes before
/// the asserting [`AuditPolicy::new`] constructor runs.
pub fn decode_policy(snap: &Snapshot) -> Result<AuditPolicy, PersistError> {
    let mut r = snap.section(TAG_POLICY)?;
    let thresholds = r.get_f64s()?;
    let orders = decode_orders(&mut r)?;
    let probs = r.get_f64s()?;
    if thresholds.iter().any(|x| !x.is_finite()) {
        return Err(PersistError::Spec("non-finite policy threshold".into()));
    }
    if orders.is_empty() || orders.len() != probs.len() {
        return Err(PersistError::Spec(format!(
            "policy holds {} orders but {} probabilities",
            orders.len(),
            probs.len()
        )));
    }
    let total: f64 = probs.iter().sum();
    if !(total.is_finite() && (total - 1.0).abs() < 1e-6) || probs.iter().any(|&p| p < -1e-9) {
        return Err(PersistError::Spec(
            "policy probabilities are not a distribution".into(),
        ));
    }
    Ok(AuditPolicy::new(thresholds, orders, probs))
}

// ---------------------------------------------------------------------
// Scenario snapshot: provenance + spec + bank in one file
// ---------------------------------------------------------------------

/// A loaded scenario snapshot: where it came from and what it holds.
#[derive(Debug, Clone)]
pub struct ScenarioSnapshot {
    /// Scenario registry key the snapshot was saved from.
    pub key: String,
    /// Seed the spec (and bank) were generated with.
    pub seed: u64,
    /// The reconstructed, fingerprint-verified game.
    pub spec: GameSpec,
    /// The persisted common-random-number bank.
    pub bank: SampleBank,
}

/// Serialize a scenario snapshot (provenance + spec + bank) to bytes.
pub fn scenario_snapshot_bytes(
    key: &str,
    seed: u64,
    spec: &GameSpec,
    bank: &SampleBank,
) -> Result<Vec<u8>, PersistError> {
    let mut snap = Snapshot::new(KIND_SCENARIO_BANK);
    let mut prov = SectionWriter::new();
    prov.put_str(key);
    prov.put_u64(seed);
    snap.add_section(TAG_PROVENANCE, prov);
    encode_spec(&mut snap, spec)?;
    write_bank(&mut snap, bank);
    Ok(snap.to_bytes())
}

/// Save a scenario snapshot to a file.
pub fn save_scenario_snapshot(
    path: &Path,
    key: &str,
    seed: u64,
    spec: &GameSpec,
    bank: &SampleBank,
) -> Result<(), PersistError> {
    let bytes = scenario_snapshot_bytes(key, seed, spec, bank)?;
    std::fs::write(path, bytes)
        .map_err(|e| PersistError::Snapshot(SnapshotError::Io(format!("{}: {e}", path.display()))))
}

/// Decode a scenario snapshot from bytes, verifying container integrity,
/// spec fingerprint, and spec/bank shape agreement.
pub fn scenario_snapshot_from_bytes(
    bytes: &[u8],
    opts: BankReadOptions,
) -> Result<ScenarioSnapshot, PersistError> {
    let snap = Snapshot::from_bytes(bytes)?;
    snap.expect_kind(KIND_SCENARIO_BANK)?;
    let mut prov = snap.section(TAG_PROVENANCE)?;
    let key = prov.get_str()?;
    let seed = prov.get_u64()?;
    let spec = decode_spec(&snap)?;
    let bank = read_bank(&snap, opts)?;
    if bank.n_types() != spec.n_types() {
        return Err(PersistError::Provenance(format!(
            "bank covers {} types but the spec has {}",
            bank.n_types(),
            spec.n_types()
        )));
    }
    Ok(ScenarioSnapshot {
        key,
        seed,
        spec,
        bank,
    })
}

/// Load a scenario snapshot from a file.
pub fn load_scenario_snapshot(
    path: &Path,
    opts: BankReadOptions,
) -> Result<ScenarioSnapshot, PersistError> {
    let bytes = std::fs::read(path).map_err(|e| {
        PersistError::Snapshot(SnapshotError::Io(format!("{}: {e}", path.display())))
    })?;
    scenario_snapshot_from_bytes(&bytes, opts)
}

impl From<PersistError> for GameError {
    fn from(e: PersistError) -> Self {
        GameError::Persist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::registry;
    use crate::solver::{OapSolver, SolverConfig};

    #[test]
    fn spec_roundtrips_fingerprint_identically_on_every_core_scenario() {
        for sc in registry().iter() {
            let spec = sc.build_small(sc.default_seed()).unwrap();
            let mut snap = Snapshot::new(KIND_SCENARIO_BANK);
            encode_spec(&mut snap, &spec).unwrap();
            let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
            let decoded = decode_spec(&back).unwrap_or_else(|e| panic!("{}: {e}", sc.key()));
            assert_eq!(
                decoded.fingerprint(),
                spec.fingerprint(),
                "{} drifted through persistence",
                sc.key()
            );
            // The fingerprint already covers a joint-model probe bank, but
            // draw a larger one to be explicit: identical sampling streams.
            let a = spec.sample_bank(64, 17);
            let b = decoded.sample_bank(64, 17);
            assert_eq!(a.columns_flat(), b.columns_flat(), "{}", sc.key());
        }
    }

    #[test]
    fn tampered_fingerprint_is_rejected() {
        let spec = registry().build("syn-a", 0).unwrap();
        let mut snap = Snapshot::new(KIND_SCENARIO_BANK);
        // Write a meta section with a wrong fingerprint, then the real
        // type/attacker sections.
        let mut meta = SectionWriter::new();
        meta.put_f64(spec.budget);
        meta.put_bool(spec.allow_opt_out);
        meta.put_usize(spec.n_types());
        meta.put_usize(spec.n_attackers());
        meta.put_u64(spec.fingerprint() ^ 1);
        snap.add_section(TAG_SPEC_META, meta);
        let mut real = Snapshot::new(KIND_SCENARIO_BANK);
        encode_spec(&mut real, &spec).unwrap();
        for tag in [TAG_SPEC_TYPES, TAG_SPEC_ATTACKERS] {
            let mut w = SectionWriter::new();
            let mut r = real.section(tag).unwrap();
            let mut words = Vec::new();
            while r.remaining() >= 8 {
                words.push(r.get_u64().unwrap());
            }
            for word in words {
                w.put_u64(word);
            }
            snap.add_section(tag, w);
        }
        let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert!(matches!(
            decode_spec(&back),
            Err(PersistError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn warm_start_and_policy_roundtrip() {
        let spec = registry().build("syn-a", 0).unwrap();
        let sol = OapSolver::new(SolverConfig {
            n_samples: 40,
            epsilon: 0.25,
            ..Default::default()
        })
        .solve(&spec)
        .unwrap();

        let mut snap = Snapshot::new(KIND_RUNTIME_STATE);
        encode_policy(&mut snap, &sol.policy);
        encode_warm_start(&mut snap, &WarmStart::from_policy(&sol.policy));
        let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();

        let policy = decode_policy(&back).unwrap();
        assert_eq!(policy.thresholds, sol.policy.thresholds);
        assert_eq!(policy.orders, sol.policy.orders);
        assert_eq!(policy.probs, sol.policy.probs);

        let warm = decode_warm_start(&back).unwrap();
        assert_eq!(warm.thresholds.as_deref(), Some(&sol.policy.thresholds[..]));
        assert_eq!(warm.orders, sol.policy.orders);

        // Empty warm start roundtrips too.
        let mut snap = Snapshot::new(KIND_RUNTIME_STATE);
        encode_warm_start(&mut snap, &WarmStart::default());
        let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        let warm = decode_warm_start(&back).unwrap();
        assert!(warm.thresholds.is_none());
        assert!(warm.orders.is_empty());
    }

    #[test]
    fn corrupt_policy_yields_typed_errors_not_panics() {
        // Non-permutation order.
        let mut snap = Snapshot::new(KIND_RUNTIME_STATE);
        let mut w = SectionWriter::new();
        w.put_f64s(&[1.0, 2.0]);
        w.put_usize(1);
        w.put_u64s(&[0, 0]); // duplicate index: not a permutation
        w.put_f64s(&[1.0]);
        snap.add_section(TAG_POLICY, w);
        let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert!(matches!(decode_policy(&back), Err(PersistError::Spec(_))));

        // Probabilities off the simplex.
        let mut snap = Snapshot::new(KIND_RUNTIME_STATE);
        let mut w = SectionWriter::new();
        w.put_f64s(&[1.0, 2.0]);
        w.put_usize(1);
        w.put_u64s(&[0, 1]);
        w.put_f64s(&[0.4]); // sums to 0.4
        snap.add_section(TAG_POLICY, w);
        let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert!(matches!(decode_policy(&back), Err(PersistError::Spec(_))));
    }

    #[test]
    fn scenario_snapshot_roundtrips_and_checks_provenance() {
        let reg = registry();
        let sc = reg.get("syn-correlated").unwrap();
        let spec = sc.build_small(3).unwrap();
        let bank = spec.sample_bank(64, 3);
        let bytes = scenario_snapshot_bytes(sc.key(), 3, &spec, &bank).unwrap();
        let snap = scenario_snapshot_from_bytes(&bytes, BankReadOptions::default()).unwrap();
        assert_eq!(snap.key, "syn-correlated");
        assert_eq!(snap.seed, 3);
        assert_eq!(snap.spec.fingerprint(), spec.fingerprint());
        assert_eq!(snap.bank.columns_flat(), bank.columns_flat());
        // Save→load→save is byte-identical.
        let again = scenario_snapshot_bytes(&snap.key, snap.seed, &snap.spec, &snap.bank).unwrap();
        assert_eq!(again, bytes);
    }

    struct Opaque;
    impl stochastics::CountDistribution for Opaque {
        fn pmf(&self, n: u64) -> f64 {
            if n == 0 {
                1.0
            } else {
                0.0
            }
        }
        fn support_max(&self) -> u64 {
            0
        }
    }

    #[test]
    fn unsupported_distribution_fails_with_typed_error() {
        let mut spec = registry().build("syn-a", 0).unwrap();
        spec.distributions[0] = Arc::new(Opaque);
        let mut snap = Snapshot::new(KIND_SCENARIO_BANK);
        assert!(matches!(
            encode_spec(&mut snap, &spec),
            Err(PersistError::Unsupported(_))
        ));
    }
}
