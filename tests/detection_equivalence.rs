//! Differential tests of the batched `PalEngine` against the legacy scalar
//! `pal` path.
//!
//! The engine promises more than statistical agreement: because work is
//! split by trie subtree (never by sample row) and every prefix
//! accumulates in a fixed order through the shared per-sample kernel, its
//! results are **bit-identical** to `DetectionEstimator::pal` /
//! `pal_prefix` for every query, at every thread count — including
//! everything the incremental layers reorganize: prefix-trie sharing,
//! commutative path folding, cross-batch prefix states, saturation
//! classing, single-coordinate sweeps, and the compact `u32` column
//! mirror. These tests enforce exact `==` on the returned `f64` vectors —
//! no tolerances anywhere.

use alert_audit::game::datasets::{random_game, RandomGameConfig};
use alert_audit::game::detection::{DetectionEstimator, DetectionModel, PalEngine, PalQuery};
use alert_audit::game::ordering::AuditOrder;
use stochastics::SampleBank;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
const MODELS: [DetectionModel; 3] = [
    DetectionModel::PaperApprox,
    DetectionModel::AttackInclusive,
    DetectionModel::Operational,
];

fn cfg(n_types: usize, budget: f64) -> RandomGameConfig {
    RandomGameConfig {
        n_types,
        n_attackers: 3,
        n_victims: 5,
        budget,
        allow_opt_out: false,
        benign_prob: 0.15,
    }
}

/// Deterministic threshold grids for a seed: integral, fractional, zero,
/// and oversized entries — every code path of the recourse formula.
fn threshold_grids(n_types: usize, seed: u64) -> Vec<Vec<f64>> {
    let base = (seed % 5) as f64;
    vec![
        vec![base + 1.0; n_types],
        (0..n_types).map(|t| t as f64 * 0.5).collect(),
        (0..n_types)
            .map(|t| if t % 2 == 0 { 0.0 } else { 10.0 + base })
            .collect(),
        (0..n_types).map(|t| 1.5 + t as f64 * 0.25).collect(),
    ]
}

/// Every policy the solvers can ask about on a small game: all full
/// orders plus every prefix of each, for each threshold grid.
fn all_queries(n_types: usize, seed: u64) -> Vec<PalQuery> {
    let mut queries = Vec::new();
    for thresholds in threshold_grids(n_types, seed) {
        for order in AuditOrder::enumerate_all(n_types) {
            for len in 0..=n_types {
                queries.push(PalQuery::prefix(&order.types()[..len], &thresholds));
            }
        }
    }
    queries
}

#[test]
fn engine_is_bit_identical_to_scalar_path_on_random_games() {
    for seed in 0..8u64 {
        let n_types = 2 + (seed % 3) as usize; // 2, 3, or 4 types
        let spec = random_game(&cfg(n_types, 3.0 + seed as f64), seed);
        let bank = spec.sample_bank(64, seed ^ 0xC0FFEE);
        let queries = all_queries(n_types, seed);
        for model in MODELS {
            let est = DetectionEstimator::new(&spec, &bank, model);
            for threads in THREAD_COUNTS {
                let engine = PalEngine::new(est, threads);
                let batch = engine.pal_batch(&queries);
                for (q, got) in queries.iter().zip(&batch) {
                    let want = est.pal_prefix(&q.seq, &q.thresholds);
                    assert_eq!(
                        got, &want,
                        "seed {seed}, model {model:?}, threads {threads}, query {q:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn full_order_queries_match_legacy_pal_exactly() {
    for seed in 0..6u64 {
        let spec = random_game(&cfg(3, 4.0), seed);
        let bank = spec.sample_bank(100, seed);
        for model in MODELS {
            let est = DetectionEstimator::new(&spec, &bank, model);
            for threads in THREAD_COUNTS {
                let engine = PalEngine::new(est, threads);
                for order in AuditOrder::enumerate_all(3) {
                    for thresholds in threshold_grids(3, seed) {
                        assert_eq!(
                            engine.pal(&order, &thresholds),
                            est.pal(&order, &thresholds),
                            "seed {seed}, model {model:?}, threads {threads}, order {order}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn batch_results_are_independent_of_thread_count() {
    let spec = random_game(&cfg(4, 6.0), 99);
    let bank = spec.sample_bank(256, 7);
    let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
    let queries = all_queries(4, 99);
    let reference = PalEngine::new(est, 1).pal_batch(&queries);
    for threads in [2usize, 3, 4, 8] {
        let engine = PalEngine::new(est, threads);
        assert_eq!(
            engine.pal_batch(&queries),
            reference,
            "threads {threads} diverged"
        );
    }
}

/// A small deterministic policy set for games too large to enumerate all
/// `|T|!` orders: the identity order, its reverse, every rotation of the
/// identity, plus every prefix of the first three. Rotations guarantee
/// each type appears in the lead position (exercising trie roots) and the
/// prefixes exercise partial sequences.
fn probe_queries(n_types: usize, thresholds: &[f64]) -> Vec<PalQuery> {
    let identity: Vec<usize> = (0..n_types).collect();
    let reverse: Vec<usize> = identity.iter().rev().copied().collect();
    let mut seqs: Vec<Vec<usize>> = vec![identity.clone(), reverse];
    for r in 1..n_types {
        let mut rot = identity.clone();
        rot.rotate_left(r);
        seqs.push(rot);
    }
    let mut queries = Vec::new();
    for seq in seqs.iter().take(3) {
        for len in 0..=seq.len() {
            queries.push(PalQuery::prefix(&seq[..len], thresholds));
        }
    }
    for seq in seqs.iter().skip(3) {
        queries.push(PalQuery::prefix(seq, thresholds));
    }
    queries
}

#[test]
fn trie_batch_matches_scalar_on_all_registry_scenarios() {
    // The full cross-solver net runs on every scenario in the registry:
    // real-data shapes (mixed audit costs, empirical count models, joint
    // correlated samplers) exercise every branch of the trie evaluator —
    // folding on/off, saturation classing with bank-max below the support
    // max, compact vs wide columns.
    let reg = alert_audit::scenario::registry();
    for sc in reg.iter() {
        let spec = sc.build_small(7).expect("scenario builds");
        let bank = spec.sample_bank(32, 11);
        let n = spec.n_types();
        let upper = spec.threshold_upper_bounds();
        let grids: Vec<Vec<f64>> = vec![
            upper.iter().map(|&u| (u * 0.4).floor()).collect(),
            upper
                .iter()
                .enumerate()
                .map(|(t, &u)| if t % 2 == 0 { 0.0 } else { u * 2.0 })
                .collect(),
            upper.iter().map(|&u| (u * 0.75).floor() + 0.5).collect(),
        ];
        for model in MODELS {
            let est = DetectionEstimator::new(&spec, &bank, model);
            for threads in THREAD_COUNTS {
                let engine = PalEngine::new(est, threads);
                for thresholds in &grids {
                    let queries = probe_queries(n, thresholds);
                    let batch = engine.pal_batch(&queries);
                    for (q, got) in queries.iter().zip(&batch) {
                        assert_eq!(
                            got,
                            &est.pal_prefix(&q.seq, &q.thresholds),
                            "scenario {}, model {model:?}, threads {threads}, seq {:?}",
                            sc.key(),
                            q.seq
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn sweep_matches_per_candidate_loop_on_random_games() {
    for seed in 0..6u64 {
        let n_types = 2 + (seed % 3) as usize;
        let spec = random_game(&cfg(n_types, 4.0 + seed as f64), seed);
        let bank = spec.sample_bank(64, seed);
        // Candidate grid mixing duplicates, fractional values, zero, and a
        // saturated tail.
        let candidates: Vec<f64> = vec![0.0, 1.0, 2.5, 1.0, 0.75, 40.0, 4.0, 40.0];
        for model in MODELS {
            let est = DetectionEstimator::new(&spec, &bank, model);
            for threads in THREAD_COUNTS {
                let engine = PalEngine::new(est, threads);
                for base in threshold_grids(n_types, seed) {
                    for order in AuditOrder::enumerate_all(n_types).iter().take(3) {
                        for coord in 0..n_types {
                            let swept = engine.pal_sweep(order.types(), &base, coord, &candidates);
                            for (&v, got) in candidates.iter().zip(&swept) {
                                let mut th = base.clone();
                                th[coord] = v;
                                assert_eq!(
                                    got,
                                    &est.pal(order, &th),
                                    "seed {seed}, model {model:?}, threads {threads}, \
                                     coord {coord}, v {v}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn compact_and_wide_columns_are_bit_identical() {
    // A bank with a count beyond u32 falls back to the wide (u64) columns;
    // the same rows with the count clamped into range keep the compact
    // mirror. Both paths must agree with the scalar reference exactly.
    let spec = random_game(&cfg(2, 5.0), 3);
    let rows_small: Vec<Vec<u64>> = vec![vec![2, 3], vec![0, 7], vec![5, 1], vec![4, 4]];
    let mut rows_big = rows_small.clone();
    rows_big[2][0] = u64::from(u32::MAX) + 9;
    let compact = SampleBank::from_rows(rows_small);
    let wide = SampleBank::from_rows(rows_big);
    assert!(compact.has_compact_columns());
    assert!(!wide.has_compact_columns());
    for bank in [&compact, &wide] {
        for model in MODELS {
            let est = DetectionEstimator::new(&spec, bank, model);
            for threads in THREAD_COUNTS {
                let engine = PalEngine::new(est, threads);
                let queries = probe_queries(2, &[1.5, 6.0]);
                let batch = engine.pal_batch(&queries);
                for (q, got) in queries.iter().zip(&batch) {
                    assert_eq!(
                        got,
                        &est.pal_prefix(&q.seq, &q.thresholds),
                        "compact={}, model {model:?}, threads {threads}",
                        bank.has_compact_columns()
                    );
                }
            }
        }
    }
}

#[test]
fn cross_batch_prefix_states_replay_scalar_results() {
    // Drive the engine the way CGGS does — prefix trials, then their
    // extensions, across several calls — and then the way ISHM does —
    // single-coordinate perturbed full frontiers — asserting exact
    // equality throughout, so the prefix-state cache can never leak an
    // approximation.
    let spec = random_game(&cfg(4, 6.0), 21);
    let bank = spec.sample_bank(128, 2);
    for model in MODELS {
        let est = DetectionEstimator::new(&spec, &bank, model);
        let engine = PalEngine::new(est, 2);
        let base = vec![2.0, 3.0, 1.5, 4.0];
        // CGGS shape: greedy prefix growth.
        let mut prefix: Vec<usize> = Vec::new();
        for t in [2usize, 0, 3, 1] {
            let trials: Vec<PalQuery> = (0..4)
                .filter(|x| !prefix.contains(x))
                .map(|x| {
                    let mut s = prefix.clone();
                    s.push(x);
                    PalQuery::prefix(&s, &base)
                })
                .collect();
            for (q, got) in trials.iter().zip(engine.pal_batch(&trials)) {
                assert_eq!(
                    got,
                    est.pal_prefix(&q.seq, &q.thresholds),
                    "model {model:?}"
                );
            }
            prefix.push(t);
        }
        // ISHM shape: coordinate-perturbed frontiers over all orders.
        for coord in 0..4 {
            for shrink in [0.9, 0.5, 0.0] {
                let mut th = base.clone();
                th[coord] = (th[coord] * shrink).floor();
                let queries: Vec<PalQuery> = AuditOrder::enumerate_all(4)
                    .iter()
                    .map(|o| PalQuery::full(o, &th))
                    .collect();
                for (q, got) in queries.iter().zip(engine.pal_batch(&queries)) {
                    assert_eq!(
                        got,
                        est.pal_prefix(&q.seq, &q.thresholds),
                        "model {model:?}, coord {coord}, shrink {shrink}"
                    );
                }
            }
        }
        let stats = engine.cache_stats();
        assert!(
            stats.state_hits > 0,
            "prefix states never engaged: {stats:?}"
        );
        assert!(stats.columns_saved > 0);
    }
}

#[test]
fn cache_hits_replay_the_exact_first_answer() {
    let spec = random_game(&cfg(3, 5.0), 11);
    let bank = spec.sample_bank(128, 3);
    let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
    let engine = PalEngine::new(est, 2);
    let queries = all_queries(3, 11);
    let cold = engine.pal_batch(&queries);
    let warm = engine.pal_batch(&queries);
    assert_eq!(cold, warm);
    let stats = engine.cache_stats();
    assert_eq!(stats.hits as usize, queries.len());
    assert_eq!(stats.misses as usize, queries.len());
    // Not every query is distinct (prefixes repeat across orders), so the
    // cache holds fewer entries than the batch had queries.
    assert!(stats.entries < queries.len());
}
